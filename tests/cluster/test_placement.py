"""Placement units: replica-distinct ownership, full coverage, manifest
validation."""

import pytest

from repro.cluster.placement import Placement


def test_every_group_owned_by_distinct_workers():
    p = Placement(n=220, group_size=16, workers=4, replicas=2)
    for g in range(p.groups):
        owners = p.owners(g)
        assert len(owners) == 2
        assert len(set(owners)) == 2  # a kill never takes every copy
        assert owners[0] == p.primary(g)


def test_assignments_cover_every_copy_exactly_once():
    p = Placement(n=220, group_size=16, workers=4, replicas=2)
    seen = {}
    for w in range(p.workers):
        for g, k in p.assignment(w).items():
            assert p.owners(g)[k] == w
            seen.setdefault(g, set()).add(k)
    # across all workers, every group's copies 0..R-1 each land once
    assert set(seen) == set(range(p.groups))
    assert all(copies == {0, 1} for copies in seen.values())


def test_primary_ranges_are_contiguous_and_balanced():
    p = Placement(n=1000, group_size=10, workers=4, replicas=1)
    primaries = [p.primary(g) for g in range(p.groups)]
    assert primaries == sorted(primaries)  # contiguous ranges
    counts = {w: primaries.count(w) for w in range(4)}
    assert max(counts.values()) - min(counts.values()) <= 1


def test_group_of_range_checked():
    p = Placement(n=100, group_size=16, workers=2)
    assert p.group_of(0) == 0
    assert p.group_of(99) == 99 // 16
    with pytest.raises(ValueError, match="outside"):
        p.group_of(100)
    with pytest.raises(ValueError, match="outside"):
        p.primary(p.groups)
    with pytest.raises(ValueError, match="outside"):
        p.assignment(2)


def test_fewer_workers_than_replicas_refused():
    with pytest.raises(ValueError, match="start at least 3 workers"):
        Placement(n=100, group_size=16, workers=2, replicas=3)


def test_single_worker_single_replica_owns_everything():
    p = Placement(n=100, group_size=16, workers=1, replicas=1)
    assert p.assignment(0) == {g: 0 for g in range(p.groups)}


def test_from_manifest_requires_packed_layout():
    packed = {
        "version": 3, "layout": "packed",
        "n": 220, "group_size": 16, "replicas": 2,
    }
    p = Placement.from_manifest(packed, workers=4)
    assert (p.n, p.group_size, p.replicas) == (220, 16, 2)

    with pytest.raises(ValueError, match="packed=True"):
        Placement.from_manifest(
            {"version": 1, "layout": "files", "n": 220}, workers=4
        )


def test_spec_round_trip():
    p = Placement(n=220, group_size=16, workers=4, replicas=2)
    assert Placement(**p.spec()) == p
