"""Wire protocol units: framing, validation, typed error transport."""

import socket
import struct

import pytest

from repro.cluster.wire import (
    FRAME_BYTES,
    MAX_PAYLOAD,
    MSG_FORWARD,
    MSG_LABEL,
    MSG_STATUS,
    REPLY_ERROR,
    ClusterError,
    NotOwnerError,
    WIRE_MAGIC,
    WIRE_VERSION,
    WireProtocolError,
    WorkerUnavailableError,
    decode_error,
    error_payload,
    msg_name,
    raise_remote,
    recv_frame,
    send_frame,
    send_value,
)
from repro.routing.serving import (
    ReplicaExhaustedError,
    ServingError,
    ShardIntegrityError,
    ShardUnavailableError,
)
from repro.routing.shard_codec import (
    ChecksumError,
    ShardCodecError,
    decode_value,
)


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def test_frame_round_trip(pair):
    a, b = pair
    written = send_frame(a, MSG_LABEL, b"payload")
    assert written == FRAME_BYTES + len(b"payload")
    assert recv_frame(b) == (MSG_LABEL, b"payload")


def test_empty_payload_round_trip(pair):
    a, b = pair
    send_frame(a, MSG_STATUS, b"")
    assert recv_frame(b) == (MSG_STATUS, b"")


def test_value_round_trip(pair):
    a, b = pair
    value = ([3, (1, 2.5, "x")], {"k": None})
    send_value(a, MSG_FORWARD, value)
    msg, payload = recv_frame(b)
    assert msg == MSG_FORWARD
    assert decode_value(payload) == value


def test_clean_close_is_none(pair):
    a, b = pair
    a.close()
    assert recv_frame(b) is None


def test_mid_frame_close_is_torn_frame(pair):
    a, b = pair
    a.sendall(b"RC\x01")  # half a header, then gone
    a.close()
    with pytest.raises(WireProtocolError, match="mid-frame"):
        recv_frame(b)


def test_close_before_payload_is_torn_frame(pair):
    a, b = pair
    frame = struct.Struct("<2sBBI").pack(
        WIRE_MAGIC, WIRE_VERSION, MSG_LABEL, 100
    )
    a.sendall(frame + b"short")
    a.close()
    with pytest.raises(WireProtocolError):
        recv_frame(b)


def test_bad_magic_rejected(pair):
    a, b = pair
    a.sendall(struct.Struct("<2sBBI").pack(b"XX", WIRE_VERSION, 1, 0))
    with pytest.raises(WireProtocolError, match="magic"):
        recv_frame(b)


def test_unknown_version_rejected(pair):
    a, b = pair
    a.sendall(
        struct.Struct("<2sBBI").pack(WIRE_MAGIC, WIRE_VERSION + 1, 1, 0)
    )
    with pytest.raises(WireProtocolError, match="version"):
        recv_frame(b)


def test_oversized_declared_length_rejected(pair):
    a, b = pair
    a.sendall(
        struct.Struct("<2sBBI").pack(
            WIRE_MAGIC, WIRE_VERSION, 1, MAX_PAYLOAD + 1
        )
    )
    with pytest.raises(WireProtocolError, match="refusing to allocate"):
        recv_frame(b)


def test_oversized_send_rejected_before_writing(pair):
    a, b = pair
    with pytest.raises(WireProtocolError, match="frame limit"):
        send_frame(a, MSG_LABEL, b"x" * (MAX_PAYLOAD + 1))


def test_send_to_dead_peer_is_worker_unavailable(pair):
    a, b = pair
    b.close()
    with pytest.raises(WorkerUnavailableError):
        # the first send may land in the buffer; flood until EPIPE
        for _ in range(64):
            send_frame(a, MSG_LABEL, b"x" * 65536)


def test_error_payload_round_trip():
    exc = ShardUnavailableError("group 3 is gone")
    assert decode_error(error_payload(exc)) == (
        "ShardUnavailableError",
        "group 3 is gone",
    )


def test_malformed_error_payload_rejected():
    from repro.routing.shard_codec import encode_value

    with pytest.raises(WireProtocolError, match="malformed"):
        decode_error(encode_value([1, 2, 3]))


@pytest.mark.parametrize(
    "cls",
    [
        ServingError,
        ShardUnavailableError,
        ShardIntegrityError,
        ShardCodecError,
        ChecksumError,
        ClusterError,
        WireProtocolError,
        NotOwnerError,
    ],
)
def test_raise_remote_rebuilds_each_type(cls):
    with pytest.raises(cls) as info:
        raise_remote(cls.__name__, "boom", worker=2)
    assert type(info.value) is cls
    assert str(info.value) == "[worker 2] boom"


def test_raise_remote_replica_exhausted_special_case():
    with pytest.raises(ReplicaExhaustedError) as info:
        raise_remote("ReplicaExhaustedError", "all copies bad")
    assert "all copies bad" in str(info.value)


def test_raise_remote_unknown_name_degrades_to_cluster_error():
    with pytest.raises(ClusterError, match="SomethingNew: boom"):
        raise_remote("SomethingNew", "boom", worker=0)


def test_remote_errors_stay_serving_errors():
    # degraded-mode callers keyed on ServingError keep working across
    # the RPC boundary
    assert issubclass(ClusterError, ServingError)
    assert issubclass(WorkerUnavailableError, ConnectionError)
    with pytest.raises(ServingError):
        raise_remote("NotOwnerError", "wrong worker")


def test_msg_name_covers_registered_and_unknown():
    assert msg_name(MSG_STATUS) == "STATUS"
    assert msg_name(REPLY_ERROR) == "ERROR"
    assert msg_name(0x7F) == "msg 0x7f"
