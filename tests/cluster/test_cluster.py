"""Cluster serving acceptance: the multi-process fleet is
indistinguishable from the single-process serving stack.

For EVERY registered scheme on a seeded n >= 200 graph, a 4-worker
fleet with 2 replicas over the same packed shard directory must:

* produce **hop-identical** :class:`RouteResult`\\ s — same paths, same
  float lengths (weights re-summed hop by hop in simulator order), same
  header-word and phase accounting — as the single-process
  ``LocalRouter`` loop,
* account **identical serve counters** — the per-worker store counters
  summed across the fleet equal the single store's (loads, hits, bytes
  read), and likewise the header accounting,
* raise the **same typed errors with the same messages** when a route
  exhausts its hop budget,
* survive a **SIGKILL of a worker mid-batch**: every route still
  completes identically via replica failover, and the client's
  per-worker RPC ledger reconciles exactly against the surviving
  workers' own request counters.
"""

import os
import shutil

import pytest

from repro.api import SubstrateCache, build, get_spec, scheme_names
from repro.cluster import Placement, start_cluster
from repro.cluster.wire import NotOwnerError, WorkerUnavailableError
from repro.cluster.worker import build_worker_store
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.routing.serving import (
    LocalRouter,
    ShardUnavailableError,
    open_store,
    write_shards,
)
from repro.routing.simulator import RoutingLoopError, route as sim_route

N = 220
GROUP_SIZE = 16  # n=220 spans 14 groups — every worker owns several
WORKERS = 4
REPLICAS = 2
PAIRS = 20

#: store counters that must sum exactly across the fleet
STORE_KEYS = ("loads", "hits", "bytes_read", "retries",
              "checksum_failures", "failovers", "repairs")


@pytest.fixture(scope="module")
def graphs():
    gu = erdos_renyi(N, 7.0 / (N - 1), seed=17)
    gw = with_random_weights(gu, seed=18, low=1.0, high=8.0)
    return {"unweighted": gu, "weighted": gw}


@pytest.fixture(scope="module")
def caches():
    return {"unweighted": SubstrateCache(), "weighted": SubstrateCache()}


@pytest.fixture(scope="module")
def shard_root(tmp_path_factory):
    return tmp_path_factory.mktemp("cluster-shards")


@pytest.fixture(scope="module")
def served(graphs, caches, shard_root):
    """A replicated packed shard dir per scheme (the cluster layout)."""
    out = {}
    for name in scheme_names():
        spec = get_spec(name)
        kind = "weighted" if spec.weighted_capable else "unweighted"
        session = build(name, graphs[kind], cache=caches[kind], seed=6)
        path = str(shard_root / name)
        write_shards(
            session.scheme, path,
            spec_name=session.spec_name, params=session.params,
            seed=session.seed, packed=True, group_size=GROUP_SIZE,
            replicas=REPLICAS,
        )
        out[name] = path
    return out


@pytest.fixture(scope="module")
def workload():
    return sample_pairs(N, PAIRS, seed=101)


@pytest.fixture(scope="module")
def reference(served, workload):
    """Single-process ground truth: routes + final serve counters."""
    out = {}
    for name, path in served.items():
        store = open_store(path)
        router = LocalRouter(store)
        results = [sim_route(router, s, t) for s, t in workload]
        out[name] = (results, store.stats(), router.header_stats())
        store.close()
    return out


@pytest.mark.parametrize("name", scheme_names())
def test_cluster_routes_and_counters_match_single_process(
    name, served, reference, workload
):
    ref_results, ref_store, ref_header = reference[name]
    with start_cluster(served[name], workers=WORKERS) as handle:
        with handle.router() as router:
            got = router.route_batch(list(workload))
            assert len(got) == len(ref_results)
            for ref, res in zip(ref_results, got):
                assert res.path == ref.path
                assert res.length == ref.length  # bit-identical float
                assert res.hops == ref.hops
                assert res.max_header_words == ref.max_header_words
                assert res.phase_hops == ref.phase_hops
                assert res.delivered
            stats = router.cluster_stats()
            for key in STORE_KEYS:
                assert stats["store"][key] == ref_store[key], key
            for key in ("headers_encoded", "header_bytes",
                        "max_header_bytes"):
                assert stats["header"][key] == ref_header[key], key
            assert stats["failovers"] == 0
            assert stats["routes"] == len(workload)
            assert stats["total_hops"] == sum(r.hops for r in ref_results)
            health = router.health()
            assert health["status"] == "ok"
            assert health["serving"] is True


def test_loop_budget_error_message_matches_simulator(served, workload):
    path = served["tz2"]
    # a pair the scheme needs more than one hop for
    store = open_store(path)
    try:
        single = LocalRouter(store)
        pair = next(
            (s, t) for s, t in workload
            if sim_route(single, s, t).hops > 1
        )
        with pytest.raises(RoutingLoopError) as single_err:
            sim_route(LocalRouter(store), pair[0], pair[1], max_hops=1)
    finally:
        store.close()
    with start_cluster(path, workers=WORKERS) as handle:
        with handle.router() as router:
            with pytest.raises(RoutingLoopError) as cluster_err:
                router.route(pair[0], pair[1], max_hops=1)
    assert str(cluster_err.value) == str(single_err.value)
    assert (
        cluster_err.value.result.path == single_err.value.result.path
    )


def test_kill_a_worker_mid_batch(served, reference, workload):
    """SIGKILL one worker while a batch is in flight: every route still
    completes hop-identically via replica failover, and the counters
    reconcile exactly."""
    name = "tz2"
    ref_results, _, _ = reference[name]
    victim = 1
    with start_cluster(served[name], workers=WORKERS) as handle:
        with handle.router() as router:
            killed = []

            def chaos(index, result):
                if len(killed) == 0 and index >= len(workload) // 4:
                    handle.kill_worker(victim)
                    killed.append(victim)

            got = router.route_batch(
                list(workload), on_route_done=chaos, batch_size=4
            )
            assert killed == [victim]
            # 1) every route survived, hop-identical to fault-free
            assert len(got) == len(ref_results)
            for ref, res in zip(ref_results, got):
                assert res.path == ref.path
                assert res.length == ref.length
                assert res.phase_hops == ref.phase_hops
            # 2) the loss was observed and failed over
            assert victim in router.dead_workers
            assert router.failovers >= 1
            stats = router.cluster_stats()
            assert stats["per_worker"][victim] is None
            # 3) client/worker ledgers reconcile exactly: each
            # surviving worker served precisely the requests the
            # client accounted to it
            for w in range(WORKERS):
                status = stats["per_worker"][w]
                if status is None:
                    assert w == victim
                    continue
                assert sum(status["requests"].values()) == (
                    router.rpcs_by_worker.get(w, 0)
                ), f"worker {w} ledger mismatch"
            health = router.health()
            assert health["status"] == "degraded"
            assert health["serving"] is True  # every group still owned
        assert victim not in handle.alive()


def test_worker_store_is_restricted_to_its_assignment(served):
    path = served["tz2"]
    placement = Placement(
        n=N, group_size=GROUP_SIZE, workers=WORKERS, replicas=REPLICAS
    )
    assignment = placement.assignment(0)
    store = build_worker_store(path, assignment)
    try:
        owned = set(store.owned_groups())
        assert owned == set(assignment)
        inside = next(
            v for v in range(N) if v // GROUP_SIZE in owned
        )
        outside = next(
            v for v in range(N) if v // GROUP_SIZE not in owned
        )
        assert store.owns(inside) and not store.owns(outside)
        store.node(inside)  # serves its own groups
        with pytest.raises(ShardUnavailableError, match="owner"):
            store.node(outside)  # refuses, pointing at the owner
    finally:
        store.close()


def test_partially_written_replica_fails_worker_startup_typed(
    served, tmp_path
):
    """The satellite-6 bugfix, startup half: a replica root missing its
    groups/ subdir surfaces as ShardUnavailableError naming the
    replica — not a raw OSError — and fails start_cluster typed."""
    broken = str(tmp_path / "broken")
    shutil.copytree(served["tz2"], broken)
    shutil.rmtree(os.path.join(broken, "replica", "1", "groups"))
    with pytest.raises(ShardUnavailableError) as err:
        start_cluster(broken, workers=WORKERS)
    message = str(err.value)
    assert "replica 1" in message
    assert "partially written" in message
    assert "repair()" in message


def test_unreachable_worker_address_is_typed(served):
    placement = Placement(
        n=N, group_size=GROUP_SIZE, workers=1, replicas=1
    )
    from repro.cluster import ClusterRouter

    router = ClusterRouter(
        {0: ("127.0.0.1", 1)},  # port 1: nothing listens there
        placement,
        timeout_s=2.0,
    )
    with router:
        with pytest.raises(WorkerUnavailableError, match="worker 0"):
            router.worker_status(0)


def test_misrouted_request_is_not_owner_error(served):
    """A worker asked about a vertex outside its assignment answers
    NotOwnerError — a placement bug signal, not a data fault."""
    path = served["tz2"]
    with start_cluster(path, workers=WORKERS) as handle:
        with handle.router() as router:
            placement = handle.placement
            # find a vertex whose owner chain excludes worker 0
            outside = next(
                v for v in range(N)
                if 0 not in placement.owners(placement.group_of(v))
            )
            from repro.cluster.wire import MSG_LABEL

            with pytest.raises(NotOwnerError):
                router._request(0, MSG_LABEL, [outside])
