"""CLI and session surface of the cluster subsystem.

``repro cluster route`` must print hop lines byte-identical to
single-process ``repro route --shards`` over the same directory;
``cluster serve`` runs as a real process that stops cleanly on SIGTERM
while ``cluster status`` / ``cluster route --cluster`` /
``RoutingSession.connect`` talk to it over the written spec.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.__main__ import main
from repro.api import RoutingSession, SubstrateCache, build
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.routing.serving import write_shards

N = 120
GROUP_SIZE = 16
SOURCE, TARGET = 3, 77


@pytest.fixture(scope="module")
def shards(tmp_path_factory):
    g = with_random_weights(
        erdos_renyi(N, 7.0 / (N - 1), seed=17), seed=18, low=1.0, high=8.0
    )
    session = build("tz2", g, cache=SubstrateCache(), seed=6)
    path = str(tmp_path_factory.mktemp("cli-cluster") / "shards")
    write_shards(
        session.scheme, path,
        spec_name=session.spec_name, params=session.params,
        seed=session.seed, packed=True, group_size=GROUP_SIZE,
        replicas=2,
    )
    return path


def _hop_lines(text):
    return [
        line for line in text.splitlines() if line.startswith("route ")
    ]


def test_cluster_route_hop_lines_match_single_process(shards, capsys):
    rc = main([
        "route", "--shards", shards,
        "--source", str(SOURCE), "--target", str(TARGET),
    ])
    assert rc == 0
    single = _hop_lines(capsys.readouterr().out)
    rc = main([
        "cluster", "route", "--shards", shards, "--workers", "4",
        "--source", str(SOURCE), "--target", str(TARGET),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert _hop_lines(out) == single  # byte-identical
    assert "health: ok" in out


def test_route_max_resident_bounds_the_lru(shards, capsys):
    rc = main([
        "route", "--shards", shards, "--max-resident", "4",
        "--source", str(SOURCE), "--target", str(TARGET),
    ])
    assert rc == 0
    assert "route " in capsys.readouterr().out


def test_max_resident_without_shards_rejected():
    with pytest.raises(SystemExit, match="requires --shards"):
        main(["route", "--max-resident", "4"])


def test_cluster_route_needs_exactly_one_target(shards):
    with pytest.raises(SystemExit, match="exactly one"):
        main(["cluster", "route"])
    with pytest.raises(SystemExit, match="exactly one"):
        main([
            "cluster", "route", "--shards", shards,
            "--cluster", "whatever.json",
        ])


def test_cluster_route_pairs_batch(shards, capsys):
    rc = main([
        "cluster", "route", "--shards", shards, "--workers", "3",
        "--pairs", "5", "--seed", "9",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert len(_hop_lines(out)) == 5
    assert "5 routes" in out


def test_cluster_serve_sigterm_and_reconnect(shards, tmp_path, capsys):
    """`cluster serve` as a real process: the spec it writes serves
    `status`, `route --cluster` and RoutingSession.connect, and the
    fleet stops cleanly on SIGTERM."""
    spec_path = str(tmp_path / "cluster.json")
    env = dict(os.environ)
    src_dir = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src_dir) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "cluster", "serve",
         "--shards", shards, "--workers", "3", "--out", spec_path],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.monotonic() + 60
        while not os.path.exists(spec_path):
            assert proc.poll() is None, proc.stdout.read()
            assert time.monotonic() < deadline, "serve never wrote spec"
            time.sleep(0.1)
        with open(spec_path) as fh:
            spec = json.load(fh)
        assert spec["placement"]["workers"] == 3
        assert spec["spec"] == "tz2"

        rc = main(["cluster", "status", "--cluster", spec_path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "health: ok" in out
        assert "worker 2" in out

        rc = main([
            "cluster", "route", "--cluster", spec_path,
            "--source", str(SOURCE), "--target", str(TARGET),
        ])
        assert rc == 0
        assert f"route {SOURCE} -> {TARGET}" in capsys.readouterr().out

        session = RoutingSession.connect(spec_path)
        with session.scheme:
            result = session.route(SOURCE, TARGET)
            assert result.delivered
            assert session.serve_stats()["routes"] == 1
            assert session.health()["serving"] is True
            assert "cluster of 3 workers" in session.describe()

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0, out
        assert "stopping cluster" in out
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)
