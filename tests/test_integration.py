"""Cross-module integration tests: the full paper pipeline on one graph.

These tests mirror how a downstream user composes the library: one graph,
one shared metric, several schemes and oracles, compared against each other
the way the paper's Table 1 does.
"""

import pytest

from repro.baselines.pr_oracle import PROracle
from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.baselines.tz_oracle import TZOracle
from repro.eval.harness import evaluate_oracle, evaluate_scheme
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.schemes import (
    Stretch2Plus1Scheme,
    Stretch4kMinus7Scheme,
    Stretch5PlusScheme,
    Warmup3Scheme,
)


@pytest.fixture(scope="module")
def world():
    g = erdos_renyi(90, 0.06, seed=301)
    gw = with_random_weights(g, seed=302)
    return {
        "g": g,
        "gw": gw,
        "m": MetricView(g),
        "mw": MetricView(gw),
        "pairs": sample_pairs(90, 260, seed=303),
    }


def test_unweighted_table1_block(world):
    """Theorem 10 must beat the unweighted baselines on stretch while using
    more space than Theorem 11-class schemes — the Table 1 ordering."""
    ev10 = evaluate_scheme(
        world["g"], Stretch2Plus1Scheme, world["pairs"],
        metric=world["m"], eps=0.5, seed=1,
    )
    ev_tz3 = evaluate_scheme(
        world["g"], ThorupZwickScheme, world["pairs"],
        metric=world["m"], k=3, seed=1,
    )
    assert ev10.within_bound and ev_tz3.within_bound
    # (2+eps,1) routing is never worse than the 7-stretch baseline here
    assert ev10.stretch.max_stretch <= ev_tz3.stretch.max_stretch + 1e-9


def test_weighted_table1_block(world):
    ev11 = evaluate_scheme(
        world["gw"], Stretch5PlusScheme, world["pairs"],
        metric=world["mw"], eps=0.6, seed=1,
    )
    ev16 = evaluate_scheme(
        world["gw"], Stretch4kMinus7Scheme, world["pairs"],
        metric=world["mw"], k=4, eps=1.0, seed=1,
    )
    ev_tz2 = evaluate_scheme(
        world["gw"], ThorupZwickScheme, world["pairs"],
        metric=world["mw"], k=2, seed=1,
    )
    assert ev11.within_bound and ev16.within_bound and ev_tz2.within_bound
    # space ordering: 3-stretch TZ (n^1/2) uses more table space than the
    # n^{1/4}-type Theorem 16 scheme
    assert (
        ev_tz2.stats.avg_table_words > ev16.stats.avg_table_words * 0.5
    )


def test_routing_almost_matches_oracle(world):
    """The paper's headline: routing stretch ~ oracle stretch + eps."""
    ev10 = evaluate_scheme(
        world["g"], Stretch2Plus1Scheme, world["pairs"],
        metric=world["m"], eps=0.5, seed=2,
    )
    ev_pr = evaluate_oracle(
        world["g"], PROracle, world["pairs"], metric=world["m"], seed=2
    )
    assert ev_pr.within_bound
    # the routed stretch is within eps + additive slack of the oracle's
    assert ev10.stretch.max_stretch <= ev_pr.max_stretch + 0.5 + 1.0


def test_oracle_vs_scheme_total_space(world):
    """Oracles spend total space; schemes spend per-vertex space.

    PR stores Õ(n^{5/3}) in total; Theorem 10 stores Õ(n^{2/3}) per vertex
    = Õ(n^{5/3}) total as well — the two should be the same order."""
    ev10 = evaluate_scheme(
        world["g"], Stretch2Plus1Scheme, world["pairs"],
        metric=world["m"], eps=0.5, seed=3,
    )
    pr = PROracle(world["g"], metric=world["m"], seed=3)
    ratio = ev10.stats.total_table_words / max(pr.space_words()["total"], 1)
    assert 0.05 < ratio < 50.0


def test_shared_metric_consistency(world):
    """All constructions on a shared MetricView agree on distances."""
    s1 = Warmup3Scheme(world["gw"], eps=0.5, metric=world["mw"], seed=4)
    s2 = Stretch5PlusScheme(world["gw"], eps=0.6, metric=world["mw"], seed=4)
    assert s1.metric is world["mw"]
    assert s2.metric is world["mw"]
    o = TZOracle(world["gw"], k=2, metric=world["mw"], seed=4)
    for u, v in world["pairs"][:50]:
        assert o.query(u, v) >= world["mw"].d(u, v) - 1e-9
