"""Smoke tests of the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestRoute:
    def test_route_prints_path(self, capsys):
        rc = main(
            ["route", "--scheme", "tz2", "--n", "80", "--target", "33"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "route 0 -> 33" in out
        assert "stretch" in out

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["route", "--scheme", "nope"])


class TestValidate:
    def test_validate_ok(self, capsys):
        rc = main(
            ["validate", "--scheme", "warmup3", "--n", "80",
             "--pairs", "60"]
        )
        assert rc == 0
        assert "validation: OK" in capsys.readouterr().out

    def test_thm10_on_geo_rejected(self):
        with pytest.raises(SystemExit):
            main(["validate", "--scheme", "thm10", "--family", "geo"])


class TestTable1:
    def test_table1_runs(self, capsys):
        rc = main(["table1", "--n", "90", "--pairs", "80"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Thm 11" in out
