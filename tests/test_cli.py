"""Smoke tests of the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestRoute:
    def test_route_prints_path(self, capsys):
        rc = main(
            ["route", "--scheme", "tz2", "--n", "80", "--target", "33"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "route 0 -> 33" in out
        assert "stretch" in out

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["route", "--scheme", "nope"])


class TestValidate:
    def test_validate_ok(self, capsys):
        rc = main(
            ["validate", "--scheme", "warmup3", "--n", "80",
             "--pairs", "60"]
        )
        assert rc == 0
        assert "validation: OK" in capsys.readouterr().out

    def test_thm10_on_geo_rejected(self):
        with pytest.raises(SystemExit):
            main(["validate", "--scheme", "thm10", "--family", "geo"])


class TestTable1:
    def test_table1_runs(self, capsys):
        rc = main(["table1", "--n", "90", "--pairs", "80"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Thm 11" in out

    def test_table1_reports_shared_substrate(self, capsys):
        rc = main(["table1", "--n", "60", "--pairs", "40"])
        assert rc == 0
        assert "substrate" in capsys.readouterr().out


class TestListSchemes:
    def test_lists_every_registered_scheme(self, capsys):
        from repro.api import scheme_names

        rc = main(["list-schemes"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in scheme_names():
            assert name in out
        assert "stretch" in out

    def test_shows_parameter_defaults(self, capsys):
        rc = main(["list-schemes"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "eps=0.6" in out  # thm11 default
        assert "k=4" in out      # thm16 / tz4 default


class TestSaveLoad:
    def test_save_then_route(self, capsys, tmp_path):
        path = str(tmp_path / "session.json")
        rc = main(
            ["save", "--scheme", "tz2", "--n", "70", "--out", path]
        )
        assert rc == 0
        assert "saved to" in capsys.readouterr().out

        rc = main(["load", path, "--source", "2", "--target", "41"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "loaded TZ 4k-5 (k=2) [tz2]" in out
        assert "route 2 -> 41" in out
        assert "stretch" in out

    def test_save_then_measure(self, capsys, tmp_path):
        path = str(tmp_path / "session.json")
        assert main(
            ["save", "--scheme", "warmup3", "--n", "60", "--out", path]
        ) == 0
        capsys.readouterr()
        rc = main(["load", path, "--measure", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "measured 40 pairs" in out
        assert "max stretch" in out

    def test_load_identical_route_decision(self, capsys, tmp_path):
        path = str(tmp_path / "session.json")
        args = ["--scheme", "thm11", "--n", "70", "--seed", "4"]
        assert main(["save", *args, "--out", path]) == 0
        capsys.readouterr()
        assert main(["route", *args, "--source", "5", "--target", "33"]) == 0
        built = capsys.readouterr().out.splitlines()[1]
        assert main(["load", path, "--source", "5", "--target", "33"]) == 0
        loaded = capsys.readouterr().out.splitlines()[1]
        assert built == loaded  # same path line, preprocessing skipped

    def test_load_missing_file_rejected(self):
        with pytest.raises(SystemExit, match="cannot load"):
            main(["load", "/nonexistent/session.json"])

    def test_load_garbage_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text('{"format": "wrong"}')
        with pytest.raises(SystemExit, match="cannot load"):
            main(["load", str(path)])


class TestShard:
    def test_shard_then_route(self, capsys, tmp_path):
        out = str(tmp_path / "shards")
        args = ["--scheme", "thm11", "--n", "80", "--seed", "4"]
        rc = main(["shard", *args, "--out", out])
        assert rc == 0
        text = capsys.readouterr().out
        assert "sharded to" in text
        assert "codec v1" in text
        assert "reconciled" in text

        # same pair through a cold build and through the shards: the
        # path lines must match exactly (route prints the hop list)
        assert main(["route", *args, "--source", "5", "--target", "33"]) == 0
        built = capsys.readouterr().out.splitlines()[1]
        rc = main(
            ["route", "--shards", out, "--source", "5", "--target", "33"]
        )
        assert rc == 0
        served = capsys.readouterr().out
        assert built in served
        assert "served from" in served
        assert "shard loads" in served

    def test_shard_dir_loads_via_load(self, capsys, tmp_path):
        out = str(tmp_path / "shards")
        assert main(
            ["shard", "--scheme", "tz2", "--n", "70", "--out", out]
        ) == 0
        capsys.readouterr()
        rc = main(["load", out, "--measure", "30"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "loaded TZ 4k-5 (k=2) [tz2]" in text
        assert "measured 30 pairs" in text

    def test_route_shards_on_bogus_dir_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot serve"):
            main(["route", "--shards", str(tmp_path / "nope")])

    def test_route_shards_rejects_build_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="--scheme"):
            main(
                ["route", "--shards", str(tmp_path), "--scheme", "thm10"]
            )

    def test_shard_pack_then_route(self, capsys, tmp_path):
        import os

        out = str(tmp_path / "packed")
        args = ["--scheme", "thm11", "--n", "80", "--seed", "4"]
        rc = main(["shard", *args, "--out", out, "--pack"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "packed group files" in text
        assert os.path.isdir(os.path.join(out, "groups"))
        assert not os.path.isdir(os.path.join(out, "shards"))

        # per-vertex and packed layouts must print identical route lines
        per_file = str(tmp_path / "per-file")
        assert main(["shard", *args, "--out", per_file]) == 0
        capsys.readouterr()
        assert main(
            ["route", "--shards", per_file, "--source", "5", "--target", "33"]
        ) == 0
        v1_line = next(
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("route ")
        )
        assert main(
            ["route", "--shards", out, "--source", "5", "--target", "33"]
        ) == 0
        served = capsys.readouterr().out
        assert v1_line in served
        assert "packed layout" in served
        assert "wire headers" in served

    def test_packed_dir_loads_via_load(self, capsys, tmp_path):
        out = str(tmp_path / "packed")
        assert main(
            ["shard", "--scheme", "tz2", "--n", "70", "--out", out, "--pack"]
        ) == 0
        capsys.readouterr()
        rc = main(["load", out, "--measure", "30"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "loaded TZ 4k-5 (k=2) [tz2]" in text
        assert "measured 30 pairs" in text

    def test_reshard_pack_removes_stale_per_file_layout(
        self, capsys, tmp_path
    ):
        import os

        out = str(tmp_path / "shards")
        assert main(
            ["shard", "--scheme", "tz2", "--n", "60", "--out", out]
        ) == 0
        assert main(
            ["shard", "--scheme", "tz2", "--n", "60", "--out", out, "--pack"]
        ) == 0
        capsys.readouterr()
        # the per-file tree is gone; the packed layout serves
        assert not os.path.isdir(os.path.join(out, "shards"))
        assert main(["load", out, "--measure", "20"]) == 0

    def test_reshard_removes_stale_shards(self, capsys, tmp_path):
        import os

        out = str(tmp_path / "shards")
        assert main(
            ["shard", "--scheme", "tz2", "--n", "90", "--out", out]
        ) == 0
        assert main(
            ["shard", "--scheme", "tz2", "--n", "40", "--out", out]
        ) == 0
        capsys.readouterr()
        shard_files = [
            f for _, _, files in os.walk(os.path.join(out, "shards"))
            for f in files
        ]
        assert len(shard_files) == 40  # no orphans from the n=90 run
        assert main(["load", out, "--measure", "20"]) == 0


class TestPresets:
    def test_family_preset_applied_automatically(self, capsys):
        rc = main(
            ["route", "--scheme", "warmup3", "--family", "grid",
             "--n", "64", "--target", "21"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[preset grid: alpha=1.5]" in out

    def test_preset_none_disables(self, capsys):
        rc = main(
            ["route", "--scheme", "warmup3", "--family", "grid",
             "--n", "64", "--target", "21", "--preset", "none"]
        )
        assert rc == 0
        assert "[preset" not in capsys.readouterr().out

    def test_er_preset_is_silent_noop(self, capsys):
        rc = main(
            ["route", "--scheme", "warmup3", "--n", "60", "--target", "9"]
        )
        assert rc == 0
        assert "[preset" not in capsys.readouterr().out

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit, match="unknown preset"):
            main(
                ["route", "--scheme", "warmup3", "--n", "60",
                 "--preset", "torus"]
            )

    def test_table1_applies_family_preset(self, capsys):
        rc = main(["table1", "--family", "grid", "--n", "49",
                   "--pairs", "30"])
        assert rc == 0
        assert "[preset grid]" in capsys.readouterr().out

    def test_table1_preset_none_and_unknown(self, capsys):
        rc = main(["table1", "--family", "grid", "--n", "49",
                   "--pairs", "30", "--preset", "none"])
        assert rc == 0
        assert "[preset" not in capsys.readouterr().out
        with pytest.raises(SystemExit, match="unknown preset"):
            main(["table1", "--n", "49", "--pairs", "30",
                  "--preset", "torus"])
