"""Spanner constructions: stretch property and size tradeoff."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.spanners import (
    baswana_sen_spanner,
    greedy_spanner,
    spanner_stretch_ok,
)
from repro.graph.generators import (
    complete,
    erdos_renyi,
    random_tree,
    with_random_weights,
)
from repro.graph.metric import MetricView


class TestGreedySpanner:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_property(self, k):
        g = with_random_weights(erdos_renyi(40, 0.2, seed=1), seed=2)
        h = greedy_spanner(g, k)
        assert spanner_stretch_ok(g, h, 2 * k - 1)

    def test_k1_keeps_everything_needed(self):
        """A 1-spanner must preserve distances exactly."""
        g = with_random_weights(erdos_renyi(30, 0.2, seed=3), seed=4)
        h = greedy_spanner(g, 1)
        mg, mh = MetricView(g), MetricView(h, use_scipy=False)
        for u in range(0, 30, 3):
            for v in range(1, 30, 4):
                assert mh.d(u, v) == pytest.approx(mg.d(u, v))

    def test_tree_is_its_own_spanner(self):
        g = random_tree(40, seed=5)
        h = greedy_spanner(g, 2)
        assert h.m == g.m

    def test_size_decreases_with_k(self):
        g = complete(30)
        sizes = [greedy_spanner(g, k).m for k in (1, 2, 3)]
        assert sizes[0] == g.m  # unit weights, k=1 keeps all edges
        assert sizes[0] > sizes[1] >= sizes[2]

    def test_k2_size_bound_on_clique(self):
        """On K_n the 3-spanner has O(n^{3/2}) edges; generous check."""
        n = 40
        g = complete(n)
        h = greedy_spanner(g, 2)
        assert h.m <= 3 * n ** 1.5

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            greedy_spanner(complete(4), 0)

    @given(seed=st.integers(0, 25), k=st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_property_random_weighted(self, seed, k):
        g = with_random_weights(
            erdos_renyi(24, 0.25, seed=seed), seed=seed + 50
        )
        h = greedy_spanner(g, k)
        assert spanner_stretch_ok(g, h, 2 * k - 1)


class TestBaswanaSen:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_property(self, k):
        g = with_random_weights(erdos_renyi(40, 0.2, seed=6), seed=7)
        h = baswana_sen_spanner(g, k, seed=8)
        assert spanner_stretch_ok(g, h, 2 * k - 1)

    @given(seed=st.integers(0, 25), k=st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_property_random(self, seed, k):
        g = erdos_renyi(26, 0.25, seed=seed)
        h = baswana_sen_spanner(g, k, seed=seed + 1)
        assert spanner_stretch_ok(g, h, 2 * k - 1)

    def test_sparser_than_input_on_clique(self):
        g = complete(40)
        h = baswana_sen_spanner(g, 2, seed=9)
        assert h.m < g.m

    def test_deterministic_for_seed(self):
        g = erdos_renyi(30, 0.3, seed=10)
        h1 = baswana_sen_spanner(g, 2, seed=11)
        h2 = baswana_sen_spanner(g, 2, seed=11)
        assert sorted(h1.edges()) == sorted(h2.edges())

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            baswana_sen_spanner(complete(4), 0)
