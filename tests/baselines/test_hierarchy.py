"""The Thorup–Zwick sampled hierarchy."""

import pytest

from repro.baselines.hierarchy import SampledHierarchy


@pytest.fixture(scope="module")
def h3(metric_er):
    return SampledHierarchy(metric_er, 3, seed=1)


class TestLevels:
    def test_monotone_and_nonempty(self, h3, metric_er):
        assert h3.level(0) == list(range(metric_er.n))
        assert set(h3.level(2)) <= set(h3.level(1)) <= set(h3.level(0))
        assert h3.level(2)
        assert h3.level(3) == []

    def test_level_of(self, h3, metric_er):
        for w in range(metric_er.n):
            lvl = h3.level_of(w)
            assert w in h3.level(lvl)
            assert lvl + 1 >= 3 or w not in h3.level(lvl + 1)

    def test_invalid_k_rejected(self, metric_er):
        with pytest.raises(ValueError):
            SampledHierarchy(metric_er, 1)

    def test_deterministic(self, metric_er):
        a = SampledHierarchy(metric_er, 3, seed=9)
        b = SampledHierarchy(metric_er, 3, seed=9)
        for i in range(3):
            assert a.level(i) == b.level(i)


class TestPivots:
    def test_pivot_distance_matches(self, h3, metric_er):
        for v in range(metric_er.n):
            for i in range(3):
                d = h3.pivot_distance(i, v)
                assert d == pytest.approx(
                    min(metric_er.d(v, w) for w in h3.level(i))
                )

    def test_collapse_invariant(self, h3):
        h3.validate()  # checks v in C(p_i(v)) for all i, among others

    def test_pivot_in_level(self, h3):
        for v in range(h3.n):
            for i in range(3):
                assert h3.pivot(i, v) in h3.level(i) or h3.pivot(
                    i, v
                ) in h3.level(i + 1)


class TestClusters:
    def test_transposition(self, h3):
        for v in range(h3.n):
            for w in h3.bunch(v):
                assert v in h3.cluster(w)

    def test_cluster_definition(self, h3, metric_er):
        for w in range(0, h3.n, 7):
            lvl = h3.level_of(w)
            nxt = h3.level(lvl + 1)
            for v in range(h3.n):
                if nxt:
                    bound = min(metric_er.d(v, x) for x in nxt)
                else:
                    bound = float("inf")
                assert (v in h3.cluster(w)) == (metric_er.d(w, v) < bound)

    def test_level0_cluster_bound_from_lemma4(self, h3, metric_er):
        """Lemma 4 bounds level-0 clusters by 4n/s, s = n^{1-1/k}."""
        n = metric_er.n
        bound = 4 * n / (n ** (1 - 1 / 3))
        level1 = set(h3.level(1))
        for w in range(n):
            if w not in level1:
                assert len(h3.cluster(w)) <= bound

    def test_top_level_clusters_are_everything(self, h3):
        for w in h3.level(2):
            assert len(h3.cluster(w)) == h3.n

    def test_max_bunch_size(self, h3):
        assert h3.max_bunch_size() == max(
            len(h3.bunch(v)) for v in range(h3.n)
        )


class TestWeighted:
    def test_validate_on_weighted(self, metric_er_weighted):
        h = SampledHierarchy(metric_er_weighted, 4, seed=2)
        h.validate()
