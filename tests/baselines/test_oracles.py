"""Distance-oracle baselines: TZ (2k-1) and PR (2,1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pr_oracle import PROracle
from repro.baselines.tz_oracle import TZOracle
from repro.graph.generators import erdos_renyi, grid, with_random_weights
from repro.graph.metric import MetricView


class TestTZOracle:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_bound_all_pairs_unweighted(self, k, er_unweighted, metric_er):
        o = TZOracle(er_unweighted, k=k, metric=metric_er, seed=1)
        n = er_unweighted.n
        for u in range(n):
            for v in range(n):
                if u == v:
                    assert o.query(u, v) == 0.0
                    continue
                d = metric_er.d(u, v)
                est = o.query(u, v)
                assert d - 1e-9 <= est <= (2 * k - 1) * d + 1e-9

    @pytest.mark.parametrize("k", [2, 3])
    def test_bound_weighted(self, k, er_weighted, metric_er_weighted):
        o = TZOracle(er_weighted, k=k, metric=metric_er_weighted, seed=2)
        n = er_weighted.n
        for u in range(0, n, 3):
            for v in range(1, n, 4):
                if u == v:
                    continue
                d = metric_er_weighted.d(u, v)
                est = o.query(u, v)
                assert d - 1e-9 <= est <= (2 * k - 1) * d + 1e-9

    def test_k1_is_exact(self, er_unweighted, metric_er):
        o = TZOracle(er_unweighted, k=1, metric=metric_er)
        for u in range(0, er_unweighted.n, 5):
            for v in range(er_unweighted.n):
                assert o.query(u, v) == pytest.approx(metric_er.d(u, v))

    def test_space_decreases_with_k(self, er_unweighted, metric_er):
        spaces = [
            TZOracle(er_unweighted, k=k, metric=metric_er, seed=3)
            .space_words()["total"]
            for k in (1, 2, 3)
        ]
        assert spaces[0] > spaces[1] > 0
        assert spaces[1] > spaces[2] * 0.5  # noisy but same order

    @given(seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_random_graphs_k2(self, seed):
        g = erdos_renyi(36, 0.15, seed=seed)
        m = MetricView(g)
        o = TZOracle(g, k=2, metric=m, seed=seed)
        for u in range(0, 36, 4):
            for v in range(1, 36, 5):
                if u == v:
                    continue
                d = m.d(u, v)
                assert d - 1e-9 <= o.query(u, v) <= 3 * d + 1e-9

    def test_invalid_k(self, er_unweighted, metric_er):
        with pytest.raises(ValueError):
            TZOracle(er_unweighted, k=0, metric=metric_er)


class TestPROracle:
    def test_bound_all_pairs(self, er_unweighted, metric_er):
        o = PROracle(er_unweighted, metric=metric_er, seed=1)
        n = er_unweighted.n
        for u in range(n):
            for v in range(n):
                if u == v:
                    assert o.query(u, v) == 0.0
                    continue
                d = metric_er.d(u, v)
                est = o.query(u, v)
                assert d - 1e-9 <= est <= 2 * d + 1 + 1e-9

    def test_grid(self):
        g = grid(8, 8)
        m = MetricView(g)
        o = PROracle(g, metric=m, seed=2)
        for u in range(0, 64, 3):
            for v in range(1, 64, 4):
                if u == v:
                    continue
                d = m.d(u, v)
                assert d <= o.query(u, v) <= 2 * d + 1

    @given(seed=st.integers(0, 25))
    @settings(max_examples=12, deadline=None)
    def test_random_graphs(self, seed):
        g = erdos_renyi(32, 0.12, seed=seed)
        m = MetricView(g)
        o = PROracle(g, metric=m, seed=seed)
        for u in range(0, 32, 3):
            for v in range(1, 32, 3):
                if u == v:
                    continue
                d = m.d(u, v)
                assert d - 1e-9 <= o.query(u, v) <= 2 * d + 1 + 1e-9

    def test_requires_unweighted(self, er_weighted, metric_er_weighted):
        with pytest.raises(ValueError):
            PROracle(er_weighted, metric=metric_er_weighted)

    def test_landmarks_hit_every_ball(self, er_unweighted, metric_er):
        o = PROracle(er_unweighted, metric=metric_er, seed=3)
        landmark_set = set(o.landmarks)
        for u in range(er_unweighted.n):
            assert landmark_set & set(o.family.ball(u))

    def test_space_reported(self, er_unweighted, metric_er):
        o = PROracle(er_unweighted, metric=metric_er, seed=4)
        space = o.space_words()
        assert space["total"] >= space["max_per_vertex"] > 0
