"""The Thorup–Zwick (4k-5) compact routing baseline."""

import pytest

from repro.baselines.hierarchy import SampledHierarchy
from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.graph.generators import erdos_renyi, grid, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.simulator import measure_stretch, route


class TestStretch:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_bound_unweighted(self, k, er_unweighted, metric_er):
        s = ThorupZwickScheme(er_unweighted, k=k, metric=metric_er, seed=1)
        pairs = [
            (u, v)
            for u in range(0, er_unweighted.n, 3)
            for v in range(1, er_unweighted.n, 4)
            if u != v
        ]
        report = measure_stretch(
            s, metric_er, pairs, multiplicative_slack=s.stretch_bound()
        )
        assert report.max_additive_over <= 1e-9

    @pytest.mark.parametrize("k", [2, 3])
    def test_bound_weighted(self, k, er_weighted, metric_er_weighted):
        s = ThorupZwickScheme(er_weighted, k=k, metric=metric_er_weighted, seed=2)
        pairs = [
            (u, v)
            for u in range(0, er_weighted.n, 3)
            for v in range(1, er_weighted.n, 4)
            if u != v
        ]
        report = measure_stretch(
            s, metric_er_weighted, pairs,
            multiplicative_slack=s.stretch_bound(),
        )
        assert report.max_additive_over <= 1e-6

    def test_grid(self):
        g = grid(8, 8)
        m = MetricView(g)
        s = ThorupZwickScheme(g, k=3, metric=m, seed=3)
        for u in range(0, 64, 5):
            for v in range(1, 64, 6):
                if u == v:
                    continue
                r = route(s, u, v)
                assert r.length <= 7 * m.d(u, v) + 1e-9


class TestStructure:
    def test_invalid_k_rejected(self, er_unweighted, metric_er):
        with pytest.raises(ValueError):
            ThorupZwickScheme(er_unweighted, k=1, metric=metric_er)

    def test_tables_shrink_with_k(self, er_unweighted, metric_er):
        sizes = []
        for k in (2, 3, 4):
            s = ThorupZwickScheme(er_unweighted, k=k, metric=metric_er, seed=4)
            sizes.append(s.stats().avg_table_words)
        assert sizes[0] > sizes[2]

    def test_own_cluster_pairs_exact(self, er_unweighted, metric_er):
        s = ThorupZwickScheme(er_unweighted, k=3, metric=metric_er, seed=5)
        level1 = set(s.hierarchy.level(1))
        checked = 0
        for u in range(er_unweighted.n):
            if u in level1:
                continue
            for v in s.hierarchy.cluster(u):
                if v != u:
                    assert route(s, u, v).length == pytest.approx(
                        metric_er.d(u, v)
                    )
                    checked += 1
        assert checked > 0

    def test_shared_hierarchy_reused(self, er_unweighted, metric_er):
        h = SampledHierarchy(metric_er, 3, seed=6)
        s = ThorupZwickScheme(
            er_unweighted, k=3, metric=metric_er, hierarchy=h
        )
        assert s.hierarchy is h

    def test_label_has_k_entries(self, er_unweighted, metric_er):
        s = ThorupZwickScheme(er_unweighted, k=3, metric=metric_er, seed=7)
        for v in range(0, er_unweighted.n, 9):
            _, entries = s.label_of(v)
            assert len(entries) == 3
