"""Workload-aware parameter presets on the scheme registry."""

import pytest

from repro.api import (
    UnknownPresetError,
    build,
    get_spec,
    scheme_names,
)
from repro.graph.generators import grid, preferential_attachment


class TestResolution:
    def test_preset_overrides_defaults(self):
        spec = get_spec("thm11")
        resolved = spec.resolve_params({}, preset="grid")
        assert resolved["alpha"] == 1.5
        assert resolved["eps"] == spec.param("eps").default

    def test_explicit_params_beat_preset(self):
        spec = get_spec("thm11")
        resolved = spec.resolve_params({"alpha": 2.25}, preset="grid")
        assert resolved["alpha"] == 2.25

    def test_er_preset_is_the_calibration_baseline(self):
        spec = get_spec("warmup3")
        assert spec.resolve_params({}, preset="er") == spec.defaults()

    def test_no_preset_keeps_defaults(self):
        spec = get_spec("thm10")
        assert spec.resolve_params({}) == spec.defaults()

    def test_preset_values_are_validated(self):
        spec = get_spec("thm11")
        # every declared preset must pass the spec's own param schema
        for preset in spec.preset_names():
            spec.resolve_params({}, preset=preset)

    def test_ball_schemes_define_family_presets(self):
        for name in ("thm10", "thm11", "thm13", "thm15", "thm16",
                     "warmup3", "name-indep"):
            assert get_spec(name).preset_names() == [
                "ba", "er", "geo", "grid",
            ], name


class TestUnknownPreset:
    def test_unknown_preset_lists_known(self):
        with pytest.raises(UnknownPresetError) as err:
            get_spec("thm11").resolve_params({}, preset="torus")
        msg = str(err.value)
        assert "torus" in msg and "thm11" in msg
        assert "ba, er, geo, grid" in msg

    def test_schemes_without_presets_say_so(self):
        with pytest.raises(UnknownPresetError, match="no presets"):
            get_spec("tz2").resolve_params({}, preset="grid")

    def test_unknown_preset_is_a_param_error(self):
        from repro.api import SchemeParamError

        with pytest.raises(SchemeParamError):
            get_spec("thm11").resolve_params({}, preset="nope")


class TestBuildIntegration:
    def test_build_applies_preset(self):
        g = grid(8, 8)
        session = build("warmup3", g, seed=2, preset="grid")
        assert session.params["alpha"] == 1.5
        # the fatter balls must still produce a working scheme
        result = session.route(0, 63)
        assert result.delivered

    def test_build_preset_with_override(self):
        g = preferential_attachment(60, 2, seed=5)
        session = build("warmup3", g, seed=2, preset="ba", eps=0.9)
        assert session.params["eps"] == 0.9
        # the preset_frontier-calibrated ba alpha (see _family_presets)
        assert session.params["alpha"] == 1.25

    def test_registered_presets_build_on_their_family(self):
        """Each family preset actually constructs on that topology."""
        from repro.__main__ import _build_graph

        for family in ("grid", "ba"):
            g = _build_graph(family, 70, 3, False)
            session = build("warmup3", g, seed=3, preset=family)
            assert session.validate(sample=30).ok

    def test_every_scheme_accepts_none_preset(self):
        for name in scheme_names():
            spec = get_spec(name)
            assert spec.resolve_params({}, preset=None) == spec.defaults()
