"""RoutingSession lifecycle: build, measure, persist, restore.

The core guarantee: for EVERY registered scheme, build → ``save`` →
``load`` produces a scheme that makes identical ``step`` decisions (same
paths, same header sizes) and reports identical word counts on a sampled
workload — without re-running preprocessing.
"""

import json

import pytest

from repro.api import (
    RoutingSession,
    SubstrateCache,
    build,
    get_spec,
    load,
    scheme_names,
)
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights

N = 70


@pytest.fixture(scope="module")
def graphs():
    gu = erdos_renyi(N, 8.0 / (N - 1), seed=33)
    gw = with_random_weights(gu, seed=34, low=1.0, high=8.0)
    return {"unweighted": gu, "weighted": gw}


@pytest.fixture(scope="module")
def caches():
    return {"unweighted": SubstrateCache(), "weighted": SubstrateCache()}


def _session_for(name, graphs, caches):
    spec = get_spec(name)
    kind = "weighted" if spec.weighted_capable else "unweighted"
    return build(name, graphs[kind], cache=caches[kind], seed=6)


@pytest.mark.parametrize("name", scheme_names())
def test_roundtrip_identical_decisions_and_words(
    name, graphs, caches, tmp_path
):
    session = _session_for(name, graphs, caches)
    path = session.save(str(tmp_path / f"{name}.json"))
    restored = load(path)

    assert restored.loaded
    assert restored.spec_name == name
    assert restored.name == session.name
    assert restored.graph.n == session.graph.n

    # identical step decisions on a sampled workload
    for s, t in sample_pairs(session.graph.n, 40, seed=91):
        original = session.route(s, t)
        again = restored.route(s, t)
        assert again.path == original.path, (name, s, t)
        assert again.length == pytest.approx(original.length)
        assert again.max_header_words == original.max_header_words

    # identical word accounting
    st1, st2 = session.stats(), restored.stats()
    assert st2.total_table_words == st1.total_table_words
    assert st2.max_table_words == st1.max_table_words
    assert st2.max_label_words == st1.max_label_words
    assert st2.table_breakdown_max == st1.table_breakdown_max


@pytest.mark.parametrize("name", ["thm11", "tz3"])
def test_loaded_session_measures_within_bound(name, graphs, caches, tmp_path):
    session = _session_for(name, graphs, caches)
    path = session.save(str(tmp_path / f"{name}.json"))
    restored = load(path)
    report = restored.measure(count=60, seed=5)
    alpha, beta = restored.stretch_bound()
    assert report.max_additive_over <= beta + 1e-9


class TestSessionSurface:
    def test_build_times_separated(self, graphs):
        session = build("tz2", graphs["weighted"], seed=1)
        assert session.build_seconds > 0.0
        assert session.substrate_seconds > 0.0  # cold facade build
        warm = build(
            "tz3", graphs["weighted"],
            substrate=session.substrate, seed=1,
        )
        assert warm.substrate_seconds < session.substrate_seconds

    def test_validate_passes_for_built_scheme(self, graphs, caches):
        session = _session_for("warmup3", graphs, caches)
        result = session.validate(sample=50)
        assert result.ok, result.problems

    def test_graph_serialization_preserves_port_order(self, graphs, caches,
                                                      tmp_path):
        session = _session_for("tz2", graphs, caches)
        payload = session.to_payload()
        restored = RoutingSession.from_payload(
            json.loads(json.dumps(payload))
        )
        g1, g2 = session.graph, restored.graph
        assert g2.n == g1.n and g2.m == g1.m
        for u in g1.vertices():
            # insertion order — not just the neighbour sets — survives,
            # so the deterministic port numbering is reproduced exactly
            assert g2.neighbors(u) == g1.neighbors(u)
            for port in range(session.scheme.ports.degree(u)):
                assert restored.scheme.ports.neighbor(u, port) == \
                    session.scheme.ports.neighbor(u, port)


class TestPayloadValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            RoutingSession.from_payload({"format": "something-else"})

    def test_spec_class_mismatch_rejected(self, graphs, caches, tmp_path):
        session = _session_for("tz2", graphs, caches)
        payload = session.to_payload()
        payload["spec"] = "thm11"  # wrong family for the persisted class
        with pytest.raises(ValueError, match="built by"):
            RoutingSession.from_payload(payload)

    def test_tampered_ports_rejected(self, graphs, caches):
        session = _session_for("tz2", graphs, caches)
        payload = session.to_payload()
        payload["ports"][0] = payload["ports"][0][:-1]
        with pytest.raises(ValueError, match="permutation"):
            RoutingSession.from_payload(payload)

    def test_unknown_spec_rejected(self, graphs, caches):
        session = _session_for("tz2", graphs, caches)
        payload = session.to_payload()
        payload["spec"] = "never-registered"
        with pytest.raises(KeyError, match="registered schemes"):
            RoutingSession.from_payload(payload)
