"""The scheme registry: specs, parameter validation, error reporting."""

import pytest

from repro.api import (
    ParamSpec,
    SchemeParamError,
    SchemeSpec,
    TABLE1_SCHEMES,
    UnknownSchemeError,
    all_specs,
    get_spec,
    scheme_names,
)


class TestLookup:
    def test_table1_names_registered(self):
        for name in TABLE1_SCHEMES:
            assert get_spec(name).name == name

    def test_legacy_cli_names_registered(self):
        # every name the pre-registry CLI accepted must keep resolving
        for name in ["thm10", "thm11", "thm16", "warmup3", "name-indep",
                     "tz2", "tz3"]:
            assert get_spec(name).name == name

    def test_unknown_name_lists_registered_specs(self):
        with pytest.raises(UnknownSchemeError) as exc_info:
            get_spec("nope")
        message = str(exc_info.value)
        assert "nope" in message
        for name in scheme_names():
            assert name in message

    def test_all_specs_sorted_and_complete(self):
        specs = all_specs()
        assert [s.name for s in specs] == scheme_names()
        assert len(specs) >= 10


class TestParams:
    def test_defaults_resolve(self):
        spec = get_spec("thm11")
        params = spec.resolve_params({})
        assert params["eps"] == 0.6

    def test_override_coerced(self):
        spec = get_spec("thm16")
        params = spec.resolve_params({"k": "5"})
        assert params["k"] == 5
        assert isinstance(params["k"], int)

    def test_unknown_param_rejected_with_expected_names(self):
        spec = get_spec("tz2")
        with pytest.raises(SchemeParamError, match="no parameter"):
            spec.resolve_params({"eps": 0.5})

    def test_below_minimum_rejected(self):
        spec = get_spec("thm13")
        with pytest.raises(SchemeParamError, match="minimum"):
            spec.resolve_params({"ell": 1})

    def test_non_numeric_rejected(self):
        spec = get_spec("thm11")
        with pytest.raises(SchemeParamError, match="not a valid"):
            spec.resolve_params({"eps": "fast"})


class TestGraphChecks:
    def test_unweighted_only_rejects_weighted(self, er_weighted):
        with pytest.raises(SchemeParamError, match="unweighted"):
            get_spec("thm10").check_graph(er_weighted)

    def test_weighted_capable_accepts_both(self, er_unweighted, er_weighted):
        spec = get_spec("thm11")
        spec.check_graph(er_unweighted)
        spec.check_graph(er_weighted)


class TestRegisterGuard:
    def test_duplicate_registration_rejected(self):
        from repro.api import register

        spec = SchemeSpec(
            name="thm11",
            factory=lambda g, **kw: None,
            summary="dup",
            stretch="(1, 0)",
            params=(ParamSpec("eps", 0.5),),
        )
        with pytest.raises(ValueError, match="already registered"):
            register(spec)
