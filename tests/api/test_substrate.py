"""Substrate sharing: one metric/ports/balls per graph across schemes."""

import pytest

from repro.api import Substrate, SubstrateCache, TABLE1_SCHEMES, build
from repro.graph.generators import erdos_renyi, with_random_weights


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(90, 7.0 / 89, seed=17)


class TestSubstrateHandle:
    def test_metric_and_ports_built_once_and_stamped(self, graph):
        sub = Substrate(graph)
        m1, m2 = sub.metric, sub.metric
        p1, p2 = sub.ports, sub.ports
        assert m1 is m2
        assert p1 is p2
        assert m1.substrate_stamp == sub.generation
        assert p1.substrate_stamp == sub.generation

    def test_generations_are_unique_per_handle(self, graph):
        assert Substrate(graph).generation != Substrate(graph).generation

    def test_adopted_artifact_keeps_original_stamp(self, graph):
        # Stamps prove which substrate BUILT an artifact: adopting a
        # metric from another handle must not forge its provenance.
        first = Substrate(graph)
        metric = first.metric
        second = Substrate(graph, metric=metric)
        assert second.metric is metric
        assert metric.substrate_stamp == first.generation

    def test_ball_family_memoized_per_ell(self, graph):
        sub = Substrate(graph)
        f1 = sub.ball_family(12)
        f2 = sub.ball_family(12)
        f3 = sub.ball_family(13)
        assert f1 is f2
        assert f3 is not f1
        assert sub.owns_family(f1)
        assert sub.stats()["balls"]["hits"] == 1

    def test_landmarks_memoized_on_s_and_seed(self, graph):
        sub = Substrate(graph)
        a = sub.landmark_sample(9.0, 3)
        b = sub.landmark_sample(9.0, 3)
        sub.landmark_sample(9.0, 4)
        assert a == b
        stats = sub.stats()["landmarks"]
        # same (s, seed) -> cache hit; different seed -> its own entry
        assert stats["hits"] == 1
        assert stats["misses"] == 2

    def test_hierarchy_memoized_on_k_and_seed(self, graph):
        sub = Substrate(graph)
        h1 = sub.hierarchy(3, 5)
        h2 = sub.hierarchy(3, 5)
        h3 = sub.hierarchy(4, 5)
        assert h1 is h2
        assert h3 is not h1

    def test_coloring_memoized_on_ell_q_seed(self, graph):
        sub = Substrate(graph)
        c1 = sub.coloring(20, 5, 3)
        c2 = sub.coloring(20, 5, 3)
        sub.coloring(20, 5, 4)
        assert c1 == c2
        assert c1 is not c2  # defensive copy per caller
        stats = sub.stats()["coloring"]
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        # memoization is invisible in the result
        from repro.structures.coloring import find_coloring

        cold = find_coloring(
            sub.ball_family(20).balls(), graph.n, 5, seed=3
        )
        assert c1 == cold

    def test_hash_coloring_memoized(self, graph):
        sub = Substrate(graph)
        s1, c1 = sub.hash_coloring(20, 5, 3)
        s2, c2 = sub.hash_coloring(20, 5, 3)
        assert (s1, c1) == (s2, c2)
        assert sub.stats()["coloring"]["hits"] == 1

    def test_hitting_set_memoized_per_ell(self, graph):
        sub = Substrate(graph)
        h1 = sub.hitting_set(20)
        h2 = sub.hitting_set(20)
        sub.hitting_set(21)
        assert h1 == h2
        stats = sub.stats()["hitting"]
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        from repro.structures.hitting_set import greedy_hitting_set

        assert h1 == greedy_hitting_set(sub.ball_family(20).balls())


class TestTechnique1StateSharing:
    """The eps-independent Technique 1 state (coloring, hitting set,
    global hub trees) is shared on the substrate: an eps-resweep of a
    Technique 1 scheme rebuilds none of it, and the shared build is
    bit-identical to a cold one."""

    def test_resweep_hits_coloring_hitting_and_trees(self, graph):
        cache = SubstrateCache()
        build("warmup3", graph, cache=cache, seed=5, eps=0.5)
        sub = cache.substrate(graph)
        before = sub.stats()
        build("warmup3", graph, cache=cache, seed=5, eps=0.9)
        after = sub.stats()
        for kind in ("coloring", "hitting", "trees"):
            assert after[kind]["hits"] > before[kind].get("hits", 0), kind
            assert after[kind]["misses"] == before[kind]["misses"], kind

    def test_shared_technique1_build_equals_cold(self, graph):
        cache = SubstrateCache()
        build("thm10", graph, cache=cache, seed=5)  # warms the substrate
        shared = build("thm10", graph, cache=cache, seed=5, eps=0.8)
        cold = build("thm10", graph, seed=5, eps=0.8)
        assert (
            cold.stats().total_table_words
            == shared.stats().total_table_words
        )
        for pair in [(0, 50), (3, 88), (12, 45)]:
            assert cold.route(*pair).path == shared.route(*pair).path


class TestSubstrateCache:
    def test_one_handle_per_graph(self, graph):
        cache = SubstrateCache()
        assert cache.substrate(graph) is cache.substrate(graph)

    def test_distinct_graphs_distinct_handles(self, graph):
        other = erdos_renyi(40, 0.2, seed=3)
        cache = SubstrateCache()
        assert cache.substrate(graph) is not cache.substrate(other)

    def test_mutated_graph_gets_fresh_handle(self):
        g = erdos_renyi(30, 0.3, seed=9)
        cache = SubstrateCache()
        first = cache.substrate(g)
        missing = next(
            (u, v)
            for u in g.vertices()
            for v in g.vertices()
            if u < v and not g.has_edge(u, v)
        )
        g.add_edge(*missing)
        assert cache.substrate(g) is not first


class TestFacadeSharing:
    """The acceptance-criterion test: all five Table-1 schemes on one
    n≈1000 graph through the facade reuse one metric + port assignment,
    proven by the substrate generation stamps."""

    @pytest.fixture(scope="class")
    def sessions(self):
        g = erdos_renyi(1000, 7.0 / 999, seed=23)
        cache = SubstrateCache()
        return [
            build(name, g, cache=cache, seed=11) for name in TABLE1_SCHEMES
        ], cache.substrate(g)

    def test_one_generation_stamp_across_all_five(self, sessions):
        built, substrate = sessions
        assert len(built) == 5
        stamps = {s.scheme.metric.substrate_stamp for s in built}
        stamps |= {s.scheme.ports.substrate_stamp for s in built}
        assert stamps == {substrate.generation}

    def test_metric_and_ports_identical_objects(self, sessions):
        built, substrate = sessions
        for session in built:
            assert session.scheme.metric is substrate.metric
            assert session.scheme.ports is substrate.ports

    def test_metric_built_once(self, sessions):
        _, substrate = sessions
        assert substrate.stats()["metric"]["misses"] == 1
        assert substrate.stats()["ports"]["misses"] == 1

    def test_ball_structures_reused_across_schemes(self, sessions):
        _, substrate = sessions
        # thm10 and thm11 request the same q = n^(1/3) ball family; the
        # second request must be a cache hit, not a rebuild.
        assert substrate.stats()["balls"]["hits"] >= 1
        assert substrate.stats()["ball_ports"]["hits"] >= 1

    def test_shared_equals_cold_build(self, sessions):
        built, _ = sessions
        # Sharing must be invisible in the result: a cold thm11 build on
        # the same graph produces word-identical tables.
        session_cold = build("thm11", built[0].graph, seed=11)
        shared = next(s for s in built if s.spec_name == "thm11")
        assert (
            session_cold.stats().total_table_words
            == shared.stats().total_table_words
        )
        for pair in [(0, 500), (3, 997), (123, 456)]:
            assert (
                session_cold.route(*pair).path == shared.route(*pair).path
            )


class TestInjectionSafety:
    def test_foreign_substrate_rejected(self, graph):
        other = erdos_renyi(40, 0.2, seed=3)
        sub = Substrate(other)
        with pytest.raises(ValueError, match="different graph"):
            build("tz2", graph, substrate=sub)

    def test_explicit_metric_disables_memoization(self, graph):
        from repro.graph.metric import MetricView
        from repro.schemes import Warmup3Scheme

        sub = Substrate(graph)
        own_metric = MetricView(graph)
        scheme = Warmup3Scheme(
            graph, metric=own_metric, substrate=sub, seed=2
        )
        # The scheme kept the caller's metric and must not have pulled
        # ball families computed against the substrate's metric.
        assert scheme.metric is own_metric
        assert "balls" not in sub.stats()
