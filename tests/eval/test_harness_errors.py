"""Harness error paths: broken schemes and oracles must be caught."""

import pytest

from repro.eval.harness import evaluate_oracle, evaluate_scheme
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi
from repro.graph.metric import MetricView


class _LyingOracle:
    """Returns d-1: underestimates, which an oracle must never do."""

    name = "lying oracle"

    def __init__(self, graph, metric=None, **kwargs):
        self.graph = graph
        self.metric = metric if metric is not None else MetricView(graph)

    def stretch_bound(self):
        return 1.0

    def query(self, u, v):
        return max(0.0, self.metric.d(u, v) - 1.0)

    def space_words(self):
        return {"total": 0, "max_per_vertex": 0}


class _TrivialExactOracle:
    """Wraps the metric directly: stretch exactly 1."""

    name = "exact oracle"

    def __init__(self, graph, metric=None, **kwargs):
        self.graph = graph
        self.metric = metric if metric is not None else MetricView(graph)

    def stretch_bound(self):
        return 1.0

    def query(self, u, v):
        return self.metric.d(u, v)

    def space_words(self):
        return {"total": 2 * self.graph.n ** 2, "max_per_vertex": 2 * self.graph.n}


@pytest.fixture(scope="module")
def world():
    g = erdos_renyi(40, 0.15, seed=801)
    return g, MetricView(g), sample_pairs(40, 60, seed=802)


class TestOracleEvaluation:
    def test_underestimating_oracle_rejected(self, world):
        g, metric, pairs = world
        with pytest.raises(RuntimeError, match="underestimates"):
            evaluate_oracle(g, _LyingOracle, pairs, metric=metric)

    def test_exact_oracle_reports_one(self, world):
        g, metric, pairs = world
        ev = evaluate_oracle(g, _TrivialExactOracle, pairs, metric=metric)
        assert ev.max_stretch == pytest.approx(1.0)
        assert ev.within_bound
        assert ev.total_words == 2 * g.n ** 2

    def test_empty_workload(self, world):
        g, metric, _ = world
        ev = evaluate_oracle(g, _TrivialExactOracle, [], metric=metric)
        assert ev.pairs == 0
        assert ev.within_bound


class TestSchemeEvaluation:
    def test_reports_violation_when_bound_lies(self, world):
        g, metric, pairs = world
        from repro.schemes import Warmup3Scheme

        class _Overclaiming(Warmup3Scheme):
            def stretch_bound(self):
                return 1.0  # claims exactness it cannot deliver

        ev = evaluate_scheme(
            g, _Overclaiming, pairs, metric=metric, eps=0.5, seed=1
        )
        assert not ev.within_bound
        assert "VIOLATION" in ev.row()

    def test_build_time_recorded(self, world):
        g, metric, pairs = world
        from repro.schemes import Warmup3Scheme

        ev = evaluate_scheme(
            g, Warmup3Scheme, pairs[:10], metric=metric, eps=0.5, seed=1
        )
        assert ev.build_seconds > 0
