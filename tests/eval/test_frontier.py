"""Preset frontier recording: sweep, feasibility edges, calibration."""

import pytest

from repro.api import get_spec
from repro.eval.frontier import (
    FrontierPoint,
    alpha_frontier,
    calibrate_alpha,
    preset_frontiers,
)
from repro.eval.workloads import family_graph
from repro.graph.generators import erdos_renyi


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(100, 7.0 / 99, seed=41)


class TestAlphaFrontier:
    def test_points_cover_the_sweep(self, graph):
        points = alpha_frontier(
            graph, "warmup3", family="er",
            alphas=(0.75, 1.0), pairs=40, seed=2,
        )
        assert [p.alpha for p in points] == [0.75, 1.0]
        for p in points:
            assert p.feasible
            assert p.max_stretch >= 1.0
            assert p.avg_table_words > 0
            assert p.to_json()["family"] == "er"

    def test_infeasible_alpha_recorded_not_raised(self, graph):
        # alpha ~ 0 makes balls far too thin for the Lemma 6 coloring;
        # the point must land on the frontier as infeasible, because the
        # left edge is exactly what calibration needs to see.
        points = alpha_frontier(
            graph, "warmup3", family="er",
            alphas=(1e-6, 1.0), pairs=40, seed=2,
        )
        assert not points[0].feasible
        assert points[0].error
        assert points[1].feasible

    def test_non_coloring_failures_propagate(self, graph):
        # Only ColoringError means "infeasible alpha"; anything else is
        # a bug or caller misuse and must not become calibration data.
        from repro.api import SchemeParamError
        from repro.graph.generators import with_random_weights

        weighted = with_random_weights(graph, seed=7)
        with pytest.raises(SchemeParamError, match="unweighted"):
            alpha_frontier(
                weighted, "thm10", family="er", alphas=(1.0,), pairs=5
            )

    def test_table_words_grow_with_alpha(self, graph):
        points = alpha_frontier(
            graph, "warmup3", family="er",
            alphas=(0.75, 1.5), pairs=20, seed=2,
        )
        assert points[0].avg_table_words < points[1].avg_table_words


class TestPresetFrontiers:
    def test_records_one_frontier_per_family(self):
        frontiers = preset_frontiers(
            "warmup3", n=80, families=("er", "grid"),
            alphas=(1.0,), pairs=30, seed=3,
        )
        assert set(frontiers) == {"er", "grid"}
        for family, points in frontiers.items():
            assert all(p.family == family for p in points)

    def test_weighted_preference_matches_the_cli(self):
        # warmup3 prefers weighted graphs; the frontier must measure the
        # same graph the CLI would build for --family er.
        frontiers = preset_frontiers(
            "warmup3", n=80, families=("er",),
            alphas=(1.0,), pairs=20, seed=3,
        )
        assert frontiers["er"][0].feasible
        g = family_graph("er", 80, 3, weighted=True)
        assert not g.is_unweighted()

    def test_unweighted_scheme_skips_weighted_family(self):
        # thm10 is stated for unweighted graphs; geo graphs are
        # intrinsically weighted, so no preset frontier exists there.
        frontiers = preset_frontiers(
            "thm10", n=80, families=("geo",), alphas=(1.0,), pairs=10,
        )
        assert frontiers == {}

    def test_scheme_without_alpha_rejected(self):
        from repro.api import SchemeParamError

        with pytest.raises(SchemeParamError, match="alpha"):
            preset_frontiers("tz2", n=60, families=("er",))


class TestCalibration:
    def _point(
        self, alpha, feasible=True, within=True, words=100.0, stretch=2.0
    ):
        return FrontierPoint(
            family="er", alpha=alpha, feasible=feasible,
            within_bound=within, avg_table_words=words,
            max_stretch=stretch,
        )

    def test_picks_smallest_table_among_eligible(self):
        points = [
            self._point(0.5, feasible=False),
            self._point(0.75, within=False, words=80.0),
            self._point(1.0, words=90.0),
            self._point(1.5, words=120.0),
        ]
        assert calibrate_alpha(points) == 1.0

    def test_ties_break_toward_thinner_balls(self):
        points = [
            self._point(0.5, feasible=False),  # edge recorded
            self._point(1.0, words=90.0),
            self._point(0.75, words=90.0),
        ]
        assert calibrate_alpha(points) == 0.75

    def test_all_feasible_frontier_distrusts_its_left_edge(self):
        # Without a recorded infeasible point, the sweep minimum is an
        # artifact of where the sweep started, not a measurement — it
        # must not be recommended.
        points = [
            self._point(0.5, words=80.0),
            self._point(0.75, words=90.0),
        ]
        assert calibrate_alpha(points) == 0.75
        assert calibrate_alpha([self._point(0.5)]) is None

    def test_selection_is_stretch_targeted_not_just_cheapest(self):
        # The cheapest in-bound point routes badly (stretch 3.0 vs the
        # sweep's best 1.95); calibration must chase the measured
        # stretch the presets were hand-tuned for, not the grid edge.
        points = [
            self._point(0.5, feasible=False),
            self._point(0.75, words=80.0, stretch=3.0),
            self._point(1.0, words=100.0, stretch=2.0),
            self._point(1.5, words=150.0, stretch=1.95),
        ]
        assert calibrate_alpha(points) == 1.0  # within 10% of 1.95

    def test_none_when_nothing_qualifies(self):
        assert calibrate_alpha([self._point(0.5, feasible=False)]) is None
        assert calibrate_alpha([]) is None
