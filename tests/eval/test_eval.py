"""Evaluation harness: workloads, metrics, end-to-end evaluation."""

import math

import pytest

from repro.baselines.pr_oracle import PROracle
from repro.baselines.tz_oracle import TZOracle
from repro.eval.harness import evaluate_oracle, evaluate_scheme
from repro.eval.metrics import (
    fit_exponent,
    polylog_normalized_exponent,
    words_to_bits,
)
from repro.eval.reporting import (
    PAPER_TABLE1_REFERENCE,
    banner,
    reference_row,
    table,
)
from repro.eval.workloads import all_pairs, sample_pairs, stratified_pairs
from repro.schemes import Warmup3Scheme


class TestWorkloads:
    def test_all_pairs_count(self):
        pairs = list(all_pairs(5))
        assert len(pairs) == 20
        assert all(u != v for u, v in pairs)

    def test_sample_pairs_distinct_and_seeded(self):
        a = sample_pairs(30, 100, seed=1)
        b = sample_pairs(30, 100, seed=1)
        assert a == b
        assert len(a) == 100
        assert all(u != v for u, v in a)

    def test_sample_pairs_tiny_graph(self):
        assert sample_pairs(1, 10) == []

    def test_stratified_buckets(self, metric_er_weighted):
        buckets = stratified_pairs(
            metric_er_weighted, per_bucket=10, buckets=3, seed=2
        )
        # weighted distances are continuous, so no bucket collapses
        assert set(buckets) == {"q1", "q2", "q3"}
        for pairs in buckets.values():
            assert 0 < len(pairs) <= 10
        avg = {
            k: sum(metric_er_weighted.d(u, v) for u, v in ps) / len(ps)
            for k, ps in buckets.items()
        }
        assert avg["q1"] <= avg["q3"]

    def test_stratified_drops_collapsed_buckets(self, metric_er):
        """Integer distances can collapse quantile edges; empty buckets
        must be dropped, never returned half-broken."""
        buckets = stratified_pairs(metric_er, per_bucket=10, buckets=3, seed=2)
        assert buckets  # something is returned
        for pairs in buckets.values():
            assert pairs


class TestMetrics:
    def test_words_to_bits(self):
        assert words_to_bits(10, 1024) == 100

    def test_fit_exponent_recovers_powers(self):
        sizes = [100, 200, 400, 800]
        for e_true in (1.0, 2.0 / 3.0, 1.0 / 3.0):
            values = [5.0 * s**e_true for s in sizes]
            e, c = fit_exponent(sizes, values)
            assert e == pytest.approx(e_true, abs=1e-9)
            assert c == pytest.approx(5.0, rel=1e-6)

    def test_fit_exponent_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_exponent([100], [5.0])

    def test_polylog_normalization(self):
        sizes = [128, 256, 512, 1024]
        values = [s ** 0.5 * math.log2(s) for s in sizes]
        raw_e, _ = fit_exponent(sizes, values)
        norm_e = polylog_normalized_exponent(sizes, values)
        assert abs(norm_e - 0.5) < abs(raw_e - 0.5)


class TestHarness:
    def test_evaluate_scheme(self, er_weighted, metric_er_weighted):
        ev = evaluate_scheme(
            er_weighted,
            Warmup3Scheme,
            sample_pairs(er_weighted.n, 120, seed=3),
            metric=metric_er_weighted,
            eps=0.5,
            seed=1,
        )
        assert ev.within_bound
        assert ev.stretch.pairs > 0
        assert ev.stats.max_table_words > 0
        assert "ok" in ev.row()

    def test_evaluate_oracle_tz(self, er_unweighted, metric_er):
        ev = evaluate_oracle(
            er_unweighted,
            TZOracle,
            sample_pairs(er_unweighted.n, 150, seed=4),
            metric=metric_er,
            k=2,
            seed=1,
        )
        assert ev.within_bound
        assert ev.total_words > 0

    def test_evaluate_oracle_pr(self, er_unweighted, metric_er):
        ev = evaluate_oracle(
            er_unweighted,
            PROracle,
            sample_pairs(er_unweighted.n, 150, seed=5),
            metric=metric_er,
            seed=1,
        )
        assert ev.within_bound
        assert "ok" in ev.row()


class TestReporting:
    def test_banner(self):
        assert banner("Table 1").startswith("== Table 1")

    def test_reference_rows_render(self):
        for entry in PAPER_TABLE1_REFERENCE:
            assert "[paper]" in reference_row(entry)

    def test_table_alignment(self):
        text = table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # fixed width
