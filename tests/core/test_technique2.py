"""Technique 2 (Lemma 8): (1+eps) routing from U_i into W_i."""

import pytest

from repro.core.technique2 import Technique2, eps_to_b_lemma8
from repro.graph.generators import erdos_renyi, grid, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.ball_routing import BallRoutingTables
from repro.routing.model import SizedTable
from repro.routing.ports import PortAssignment
from repro.structures.balls import BallFamily
from repro.structures.coloring import color_classes, find_coloring


def _build(g, eps, q=3, ell=12, targets=None, port_seed=None, seed=0):
    m = MetricView(g)
    fam = BallFamily(m, ell)
    ports = PortAssignment(g, seed=port_seed)
    tables = [SizedTable(u) for u in g.vertices()]
    for t in tables:
        BallRoutingTables(m, fam, ports).install(t)
    colors = find_coloring(
        [fam.ball(u) for u in g.vertices()], g.n, q, seed=seed
    )
    classes = color_classes(colors, q)
    if targets is None:
        # default target set: a spread of vertices, chunked into q parts
        pool = list(range(0, g.n, 3))
        per = -(-len(pool) // q)
        targets = [pool[i * per : (i + 1) * per] for i in range(q)]
    tech = Technique2(m, fam, ports, classes, targets, eps)
    for t in tables:
        tech.install(t)
    return m, ports, tables, tech, classes, targets


def _route(tech, ports, tables, u, w, max_hops=4000):
    header = tech.start(tables[u], u, w)
    cur = u
    length = 0.0
    for _ in range(max_hops):
        port, header = tech.step(tables[cur], cur, header, w)
        if port is None:
            assert cur == w
            return length
        nxt = ports.neighbor(cur, port)
        length += tech.metric.graph.weight(cur, nxt)
        cur = nxt
    raise AssertionError("technique 2 routing did not terminate")


class TestEpsToB:
    def test_values(self):
        assert eps_to_b_lemma8(1.0) == 3
        assert eps_to_b_lemma8(0.5) == 5
        assert eps_to_b_lemma8(2.0) == 2

    def test_stretch_formula(self):
        # stretch is 1 + 2/(b-1) <= 1 + eps
        for eps in (2.0, 1.0, 0.5, 0.25):
            b = eps_to_b_lemma8(eps)
            assert 1 + 2.0 / (b - 1) <= 1 + eps + 1e-12

    def test_invalid(self):
        with pytest.raises(ValueError):
            eps_to_b_lemma8(-1.0)


class TestStretch:
    @pytest.mark.parametrize("eps", [1.0, 0.5])
    def test_unweighted(self, eps):
        g = erdos_renyi(70, 0.07, seed=51)
        m, ports, tables, tech, classes, targets = _build(g, eps)
        for i, cls in enumerate(classes):
            for u in cls[::4]:
                for w in targets[i]:
                    if u == w:
                        continue
                    length = _route(tech, ports, tables, u, w)
                    assert length <= (1 + eps) * m.d(u, w) + 1e-9

    def test_weighted(self):
        g = with_random_weights(erdos_renyi(60, 0.08, seed=52), seed=53)
        eps = 0.5
        m, ports, tables, tech, classes, targets = _build(g, eps)
        for i, cls in enumerate(classes):
            for u in cls[::4]:
                for w in targets[i]:
                    if u == w:
                        continue
                    length = _route(tech, ports, tables, u, w)
                    assert length <= (1 + eps) * m.d(u, w) + m.tol

    def test_grid_relay_chains(self):
        """Grids have long paths and small balls: relays must chain."""
        g = grid(9, 9)
        eps = 1.0
        m, ports, tables, tech, classes, targets = _build(
            g, eps, q=2, ell=10
        )
        for i, cls in enumerate(classes):
            for u in cls[::6]:
                for w in targets[i][::2]:
                    if u == w:
                        continue
                    length = _route(tech, ports, tables, u, w)
                    assert length <= (1 + eps) * m.d(u, w) + 1e-9

    def test_port_independence(self):
        g = erdos_renyi(50, 0.1, seed=54)
        m, ports, tables, tech, classes, targets = _build(
            g, 1.0, port_seed=13
        )
        for i, cls in enumerate(classes):
            for u in cls[::5]:
                for w in targets[i][::2]:
                    if u != w:
                        length = _route(tech, ports, tables, u, w)
                        assert length <= 2.0 * m.d(u, w) + 1e-9


class TestStructure:
    def test_partition_count_mismatch_rejected(self):
        g = erdos_renyi(30, 0.15, seed=55)
        m = MetricView(g)
        fam = BallFamily(m, 8)
        ports = PortAssignment(g)
        with pytest.raises(ValueError):
            Technique2(
                m, fam, ports, [list(range(30))], [[0], [1]], 0.5
            )

    def test_hitting_validation_fires(self):
        """A partition class missing from some ball must be rejected."""
        g = grid(1, 20)  # path graph: tiny balls
        m = MetricView(g)
        fam = BallFamily(m, 3)
        ports = PortAssignment(g)
        # class 1 = {0}: certainly absent from far-away balls
        classes = [list(range(1, 20)), [0]]
        targets = [[5], [15]]
        with pytest.raises(ValueError):
            Technique2(
                m, fam, ports, classes, targets, 0.5, validate_hitting=True
            )

    def test_unknown_target_rejected_at_start(self):
        g = erdos_renyi(40, 0.12, seed=56)
        m, ports, tables, tech, classes, targets = _build(g, 1.0)
        u = classes[0][0]
        # a target belonging to another class's partition
        foreign = next(w for w in targets[1] if w != u)
        with pytest.raises(ValueError):
            tech.start(tables[u], u, foreign)

    def test_sequences_words_logarithmic(self):
        g = with_random_weights(erdos_renyi(60, 0.08, seed=57), seed=58)
        m, ports, tables, tech, classes, targets = _build(g, 0.5)
        import math

        cap = 2 * tech.b * (math.log2(m.n * m.normalized_diameter()) + 2) + 2
        for i, cls in enumerate(classes):
            for u in cls:
                for w in targets[i]:
                    if u == w:
                        continue
                    waypoints = tables[u].get(tech.cat_seq, w)
                    assert len(waypoints) <= cap

    def test_duplicate_target_rejected(self):
        g = erdos_renyi(30, 0.15, seed=59)
        m = MetricView(g)
        fam = BallFamily(m, 10)
        ports = PortAssignment(g)
        colors = find_coloring(
            [fam.ball(u) for u in g.vertices()], g.n, 2, seed=1
        )
        classes = color_classes(colors, 2)
        with pytest.raises(ValueError):
            Technique2(m, fam, ports, classes, [[4], [4]], 0.5)
