"""Technique 1 (Lemma 7): (1+eps) intra-class routing."""

import pytest

from repro.core.technique1 import Technique1, eps_to_b_lemma7
from repro.graph.generators import erdos_renyi, grid, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.ball_routing import BallRoutingTables
from repro.routing.model import SizedTable
from repro.routing.ports import PortAssignment
from repro.structures.balls import BallFamily
from repro.structures.coloring import color_classes, find_coloring


def _build(g, eps, q=4, ell=10, port_seed=None, seed=0):
    m = MetricView(g)
    fam = BallFamily(m, ell)
    ports = PortAssignment(g, seed=port_seed)
    tables = [SizedTable(u) for u in g.vertices()]
    ball_tables = BallRoutingTables(m, fam, ports)
    for t in tables:
        ball_tables.install(t)
    colors = find_coloring(
        [fam.ball(u) for u in g.vertices()], g.n, q, seed=seed
    )
    classes = color_classes(colors, q)
    tech = Technique1(m, fam, ports, classes, eps, seed=seed)
    for t in tables:
        tech.install(t)
    return m, ports, tables, tech, classes


def _route(tech, ports, tables, u, v, max_hops=2000):
    header = tech.start(tables[u], u, v)
    cur = u
    length = 0.0
    for _ in range(max_hops):
        port, header = tech.step(tables[cur], cur, header, v)
        if port is None:
            assert cur == v
            return length
        nxt = ports.neighbor(cur, port)
        length += tech.metric.graph.weight(cur, nxt)
        cur = nxt
    raise AssertionError("technique 1 routing did not terminate")


class TestEpsToB:
    def test_values(self):
        assert eps_to_b_lemma7(2.0) == 1
        assert eps_to_b_lemma7(1.0) == 2
        assert eps_to_b_lemma7(0.5) == 4
        assert eps_to_b_lemma7(0.1) == 20

    def test_invalid(self):
        with pytest.raises(ValueError):
            eps_to_b_lemma7(0.0)


class TestStretch:
    @pytest.mark.parametrize("eps", [1.0, 0.5, 0.25])
    def test_unweighted(self, eps):
        g = erdos_renyi(70, 0.07, seed=31)
        m, ports, tables, tech, classes = _build(g, eps)
        for cls in classes:
            for u in cls[::3]:
                for v in cls[::2]:
                    if u == v:
                        continue
                    length = _route(tech, ports, tables, u, v)
                    assert length <= (1 + eps) * m.d(u, v) + 1e-9

    def test_weighted(self):
        g = with_random_weights(erdos_renyi(60, 0.08, seed=32), seed=33)
        eps = 0.5
        m, ports, tables, tech, classes = _build(g, eps)
        for cls in classes:
            for u in cls[::3]:
                for v in cls[::2]:
                    if u == v:
                        continue
                    length = _route(tech, ports, tables, u, v)
                    assert length <= (1 + eps) * m.d(u, v) + m.tol

    def test_grid_long_paths(self):
        g = grid(8, 8)
        eps = 0.5
        m, ports, tables, tech, classes = _build(g, eps, q=3, ell=8)
        for cls in classes:
            for u in cls[::4]:
                for v in cls[::5]:
                    if u == v:
                        continue
                    length = _route(tech, ports, tables, u, v)
                    assert length <= (1 + eps) * m.d(u, v) + 1e-9

    def test_port_independence(self):
        g = erdos_renyi(50, 0.1, seed=34)
        m, ports, tables, tech, classes = _build(g, 0.5, port_seed=77)
        cls = classes[0]
        for u in cls[::2]:
            for v in cls[::3]:
                if u != v:
                    length = _route(tech, ports, tables, u, v)
                    assert length <= 1.5 * m.d(u, v) + 1e-9


class TestStructure:
    def test_cross_class_pair_rejected(self):
        g = erdos_renyi(50, 0.1, seed=35)
        _, _, tables, tech, classes = _build(g, 0.5)
        u = classes[0][0]
        v = classes[1][0]
        with pytest.raises(ValueError):
            tech.start(tables[u], u, v)

    def test_header_bounded_by_2b_plus_2(self):
        g = erdos_renyi(70, 0.07, seed=36)
        _, _, tables, tech, classes = _build(g, 0.5)
        for cls in classes:
            for u in cls:
                for v in cls:
                    if u == v:
                        continue
                    waypoints, _ = tables[u].get(tech.cat_seq, v)
                    assert len(waypoints) <= 2 * tech.b + 2

    def test_incomplete_partition_rejected(self):
        g = erdos_renyi(30, 0.15, seed=37)
        m = MetricView(g)
        fam = BallFamily(m, 6)
        ports = PortAssignment(g)
        with pytest.raises(ValueError):
            Technique1(m, fam, ports, [[0, 1, 2]], 0.5)

    def test_overlapping_partition_rejected(self):
        g = erdos_renyi(30, 0.15, seed=38)
        m = MetricView(g)
        fam = BallFamily(m, 6)
        ports = PortAssignment(g)
        classes = [list(range(30)), [0]]
        with pytest.raises(ValueError):
            Technique1(m, fam, ports, classes, 0.5)

    def test_explicit_hitting_set_used(self):
        g = erdos_renyi(40, 0.12, seed=39)
        m = MetricView(g)
        fam = BallFamily(m, 8)
        ports = PortAssignment(g)
        hitting = list(range(40))  # trivially hits everything
        tech = Technique1(
            m, fam, ports, [list(range(40))], 0.5, hitting=hitting
        )
        assert tech.hitting == sorted(hitting)

    def test_class_of(self):
        g = erdos_renyi(40, 0.12, seed=40)
        _, _, _, tech, classes = _build(g, 1.0)
        for idx, cls in enumerate(classes):
            for v in cls:
                assert tech.class_of(v) == idx
