"""Property tests of the index-selection lemmas (Lemmas 12 and 14).

These lemmas carry the stretch analysis of Theorems 13 and 15; the tests
verify them over random admissible series, plus the degenerate shapes the
routing actually produces (all-zero series, boundary-tight series).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index_selection import (
    lemma12_index,
    lemma14_index,
    verify_series_hypotheses,
)


@st.composite
def admissible_series(draw, max_ell=8):
    """Random series satisfying the lemma hypotheses.

    Draw x freely in [0,1] with x_0 = 0, then cap y_{l-i} by 1 - x_i so
    every hypothesis holds by construction.
    """
    ell = draw(st.integers(1, max_ell))
    xs = [0.0] + [
        draw(st.floats(0, 1, allow_nan=False)) for _ in range(ell)
    ]
    ys = [0.0] * (ell + 1)
    for i in range(ell + 1):
        cap = 1.0 - xs[i]
        j = ell - i
        if j == 0:
            continue
        ys[j] = draw(st.floats(0, max(cap, 0.0), allow_nan=False))
    return xs, ys


class TestHypotheses:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            verify_series_hypotheses([0, 0.5], [0])

    def test_nonzero_start(self):
        with pytest.raises(ValueError):
            verify_series_hypotheses([0.1, 0.5], [0, 0.2])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            verify_series_hypotheses([0, 1.5], [0, 0])

    def test_hypothesis_violation(self):
        # l=2 with x_1 + y_1 = 1.8 > 1 breaks the pairing hypothesis
        with pytest.raises(ValueError):
            verify_series_hypotheses([0, 0.9, 0.1], [0, 0.9, 0.1])

    def test_too_short(self):
        with pytest.raises(ValueError):
            verify_series_hypotheses([0], [0])


class TestLemma12:
    @given(admissible_series())
    @settings(max_examples=300, deadline=None)
    def test_bound_holds(self, series):
        xs, ys = series
        ell = len(xs) - 1
        i, val = lemma12_index(xs, ys)
        assert 0 <= i < ell
        assert val <= 1.0 - 1.0 / ell + 1e-9
        assert val == pytest.approx(xs[i] + ys[ell - i - 1])

    def test_all_zero(self):
        i, val = lemma12_index([0, 0, 0], [0, 0, 0])
        assert val == 0.0
        assert i == 1  # ties resolve to the highest index

    def test_tight_series(self):
        # x_i = i/l, y_i = i/l saturates every hypothesis with equality
        ell = 4
        xs = [i / ell for i in range(ell + 1)]
        ys = [i / ell for i in range(ell + 1)]
        _, val = lemma12_index(xs, ys)
        assert val <= 1.0 - 1.0 / ell + 1e-12

    def test_returns_minimizer(self):
        xs = [0, 0.2, 0.8]
        ys = [0, 0.1, 0.0]
        i, val = lemma12_index(xs, ys)
        candidates = [xs[j] + ys[2 - j - 1] for j in range(2)]
        assert val == min(candidates)


class TestLemma14:
    @given(admissible_series())
    @settings(max_examples=300, deadline=None)
    def test_bound_holds(self, series):
        xs, ys = series
        ell = len(xs) - 1
        i, val = lemma14_index(xs, ys)
        assert 0 <= i < ell
        assert val <= 1.0 + 1.0 / ell + 1e-9
        assert val == pytest.approx(xs[i + 1] + ys[ell - i])

    def test_all_zero(self):
        _, val = lemma14_index([0, 0], [0, 0])
        assert val == 0.0

    def test_tight_series(self):
        ell = 5
        xs = [i / ell for i in range(ell + 1)]
        ys = [i / ell for i in range(ell + 1)]
        _, val = lemma14_index(xs, ys)
        assert val <= 1.0 + 1.0 / ell + 1e-12


class TestRoutingShapes:
    """The exact shapes produced by the generalized schemes' radii."""

    @given(
        st.integers(2, 6),
        st.integers(1, 30),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_integer_radius_series(self, ell, delta, data):
        """Unweighted radii a_i, b_i are integers with a_i + b_{l-i} <= d-1;
        normalized as in the proofs of Theorems 13/15 they satisfy the
        hypotheses and hence the lemmas."""
        a = [0]
        for _ in range(ell):
            a.append(
                data.draw(st.integers(a[-1], max(a[-1], delta - 1)))
            )
        b = [0] * (ell + 1)
        for i in range(ell + 1):
            j = ell - i
            if j == 0:
                continue
            cap = max(0, delta - 1 - a[i])
            b[j] = data.draw(st.integers(0, cap))
        xs = [0.0] + [min(1.0, (a[i] + 1) / delta) for i in range(1, ell + 1)]
        ys = [bi / delta for bi in b]
        # the paper's normalization guarantees the hypotheses
        for i in range(ell + 1):
            if xs[i] + ys[ell - i] > 1:
                return  # draw produced an inadmissible corner; skip
        i12, v12 = lemma12_index(xs, ys)
        i14, v14 = lemma14_index(xs, ys)
        assert v12 <= 1 - 1 / ell + 1e-9
        assert v14 <= 1 + 1 / ell + 1e-9
