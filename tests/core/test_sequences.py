"""Waypoint-sequence construction (Lemmas 7 and 8 preprocessing)."""

import pytest

from repro.graph.generators import erdos_renyi, grid, with_random_weights
from repro.graph.metric import MetricView
from repro.structures.balls import BallFamily
from repro.structures.hitting_set import greedy_hitting_set
from repro.core.sequences import (
    build_lemma7_sequence,
    build_lemma8_sequence,
)


@pytest.fixture(scope="module")
def setup_unweighted():
    g = erdos_renyi(70, 0.07, seed=21)
    m = MetricView(g)
    fam = BallFamily(m, 8)
    hitting = greedy_hitting_set([fam.ball(u) for u in range(70)])
    return m, fam, hitting


@pytest.fixture(scope="module")
def setup_weighted():
    g = with_random_weights(erdos_renyi(60, 0.08, seed=22), seed=23)
    m = MetricView(g)
    fam = BallFamily(m, 8)
    return m, fam


class TestLemma7Sequence:
    def test_waypoints_on_shortest_path_until_hub(self, setup_unweighted):
        m, fam, hitting = setup_unweighted
        for u in range(0, 70, 6):
            for v in range(1, 70, 9):
                if u == v:
                    continue
                seq = build_lemma7_sequence(m, fam, hitting, u, v, b=4)
                body = (
                    seq.waypoints
                    if seq.hub is None
                    else seq.waypoints[:-1]
                    if seq.waypoints and seq.waypoints[-1] == seq.hub
                    else seq.waypoints
                )
                for x in body:
                    assert m.on_shortest_path(u, x, v), (u, v, seq)

    def test_length_bound(self, setup_unweighted):
        m, fam, hitting = setup_unweighted
        for b in (1, 2, 4, 8):
            for u in range(0, 70, 10):
                for v in range(1, 70, 11):
                    if u == v:
                        continue
                    seq = build_lemma7_sequence(m, fam, hitting, u, v, b=b)
                    assert len(seq.waypoints) <= 2 * b + 2

    def test_direct_sequences_end_at_target(self, setup_unweighted):
        m, fam, hitting = setup_unweighted
        for u in range(0, 70, 6):
            for v in range(1, 70, 9):
                if u == v:
                    continue
                seq = build_lemma7_sequence(m, fam, hitting, u, v, b=4)
                if seq.hub is None:
                    assert seq.waypoints[-1] == v

    def test_hub_is_in_hitting_set(self, setup_unweighted):
        m, fam, hitting = setup_unweighted
        hubs = 0
        for u in range(70):
            for v in range(70):
                if u == v:
                    continue
                seq = build_lemma7_sequence(m, fam, hitting, u, v, b=1)
                if seq.hub is not None:
                    hubs += 1
                    assert seq.hub in hitting
        assert hubs > 0  # b=1 forces hub endings on distant pairs

    def test_ball_local_target_is_single_waypoint(self, setup_unweighted):
        m, fam, hitting = setup_unweighted
        u = 0
        v = fam.ball(u)[1]
        seq = build_lemma7_sequence(m, fam, hitting, u, v, b=4)
        assert seq.waypoints == (v,)
        assert seq.hub is None

    def test_self_pair_rejected(self, setup_unweighted):
        m, fam, hitting = setup_unweighted
        with pytest.raises(ValueError):
            build_lemma7_sequence(m, fam, hitting, 3, 3, b=2)

    def test_invalid_b_rejected(self, setup_unweighted):
        m, fam, hitting = setup_unweighted
        with pytest.raises(ValueError):
            build_lemma7_sequence(m, fam, hitting, 0, 1, b=0)


class TestLemma8Sequence:
    def _relay_pool(self, fam, members):
        member_set = set(members)
        def pool(x):
            return next((y for y in fam.ball(x) if y in member_set), None)
        return pool

    def test_prefix_follows_shortest_path(self, setup_weighted):
        m, fam = setup_weighted
        pool = self._relay_pool(fam, range(m.n))  # everyone is a relay
        lam = m.tight_min_weight()
        for u in range(0, m.n, 5):
            for w in range(1, m.n, 7):
                if u == w:
                    continue
                seq = build_lemma8_sequence(m, fam, pool, u, w, b=4, lam=lam)
                body = seq.waypoints[:-1] if seq.to_relay else seq.waypoints
                for x in body:
                    assert m.on_shortest_path(u, x, w)

    def test_direct_sequences_end_at_target(self, setup_weighted):
        m, fam = setup_weighted
        pool = self._relay_pool(fam, range(m.n))
        lam = m.tight_min_weight()
        for u in range(0, m.n, 5):
            for w in range(1, m.n, 7):
                if u == w:
                    continue
                seq = build_lemma8_sequence(m, fam, pool, u, w, b=4, lam=lam)
                if not seq.to_relay:
                    assert seq.waypoints[-1] == w

    def test_relay_strictly_closer(self):
        """Claim 9: a relay ending is strictly closer to the target.

        Uses a grid (long shortest paths, small balls) and a sparse relay
        class, which forces the relay branch of the construction.
        """
        g = grid(9, 9)
        m = MetricView(g)
        fam = BallFamily(m, 8)
        relays = set(range(0, m.n, 3))
        # patch the relay class so every ball contains one (Lemma 6 would
        # guarantee this; here we enforce it by hand)
        for x in range(m.n):
            if not relays & set(fam.ball(x)):
                relays.add(fam.ball(x)[1])
        pool = self._relay_pool(fam, relays)
        found_relay = False
        for u in sorted(relays):
            for w in range(0, m.n, 5):
                if u == w or pool(u) is None:
                    continue
                seq = build_lemma8_sequence(m, fam, pool, u, w, b=2, lam=1.0)
                if seq.to_relay:
                    found_relay = True
                    relay = seq.waypoints[-1]
                    assert relay in relays or relay == u
                    assert m.d(relay, w) < m.d(u, w)
        assert found_relay

    def test_adjacent_target(self, setup_weighted):
        m, fam = setup_weighted
        pool = self._relay_pool(fam, range(m.n))
        lam = m.tight_min_weight()
        u = 0
        w = m.graph.neighbors(0)[0]
        seq = build_lemma8_sequence(m, fam, pool, u, w, b=3, lam=lam)
        assert not seq.to_relay

    def test_self_pair_rejected(self, setup_weighted):
        m, fam = setup_weighted
        with pytest.raises(ValueError):
            build_lemma8_sequence(m, fam, lambda x: 0, 2, 2, b=3, lam=1.0)

    def test_bad_lam_rejected(self, setup_weighted):
        m, fam = setup_weighted
        with pytest.raises(ValueError):
            build_lemma8_sequence(m, fam, lambda x: 0, 0, 1, b=3, lam=0.0)

    def test_grid_long_paths(self):
        """Grids force many subsequences (long shortest paths)."""
        g = grid(9, 9)
        m = MetricView(g)
        fam = BallFamily(m, 6)
        pool = self._relay_pool(fam, range(m.n))
        seq = build_lemma8_sequence(m, fam, pool, 0, 80, b=3, lam=1.0)
        assert seq.waypoints  # built without hitting the round cap
