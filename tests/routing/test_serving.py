"""Serving engine: local-knowledge routing on per-vertex shards.

The acceptance bar for the sharded deployment path, asserted for EVERY
registered scheme on a seeded n >= 200 graph:

* **identical decisions** — the :class:`LocalRouter` (step-only scheme
  over lazily loaded shards) makes byte-identical step decisions, hop
  sequences, lengths and header sizes as the monolithic in-memory
  scheme, checked hop by hop,
* **local knowledge** — a route executed against a store holding *only*
  the shards of the vertices that route actually visits reproduces the
  exact same trace; every other shard is deleted from disk first,
* serve statistics account exactly the shards a route touched, and the
  optional LRU bound keeps residency at the configured budget.
"""

import os
import shutil

import pytest

from repro.api import (
    RoutingSession,
    SubstrateCache,
    build,
    get_spec,
    load,
    scheme_names,
)
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.routing.model import Deliver, Forward
from repro.routing.serving import LocalRouter, ShardStore, write_shards

N = 220  # the local-knowledge invariant is asserted at n >= 200
PAIRS = 25


@pytest.fixture(scope="module")
def graphs():
    gu = erdos_renyi(N, 7.0 / (N - 1), seed=17)
    gw = with_random_weights(gu, seed=18, low=1.0, high=8.0)
    return {"unweighted": gu, "weighted": gw}


@pytest.fixture(scope="module")
def caches():
    return {"unweighted": SubstrateCache(), "weighted": SubstrateCache()}


@pytest.fixture(scope="module")
def shard_root(tmp_path_factory):
    return tmp_path_factory.mktemp("shards")


@pytest.fixture(scope="module")
def served(graphs, caches, shard_root):
    """session + shard dir per scheme, built once for the module."""
    out = {}
    for name in scheme_names():
        spec = get_spec(name)
        kind = "weighted" if spec.weighted_capable else "unweighted"
        session = build(name, graphs[kind], cache=caches[kind], seed=6)
        path = str(shard_root / name)
        session.save(path, shards=True)
        out[name] = (session, path)
    return out


def _dual_step_route(scheme, router, s, t, max_hops=None):
    """Drive both engines in lockstep, asserting every decision matches.

    Returns the common path.  This is stronger than comparing final
    routes: a pair of off-by-one errors that cancelled out would still
    fail here.
    """
    if max_hops is None:
        max_hops = 8 * scheme.graph.n + 64
    label = scheme.label_of(t)
    assert router.label_of(t) == label
    header = None
    u = s
    path = [s]
    for _ in range(max_hops + 1):
        a1 = scheme.step(u, header, label)
        a2 = router.step(u, header, label)
        assert type(a1) is type(a2), (u, a1, a2)
        if isinstance(a1, Deliver):
            assert u == t
            return path
        assert isinstance(a1, Forward)
        assert a1.port == a2.port, (u, a1, a2)
        assert a1.header == a2.header, (u, a1, a2)
        nxt = scheme.ports.neighbor(u, a1.port)
        assert router.local_edge(u, a1.port) == (
            nxt, scheme.graph.weight(u, nxt),
        )
        header = a1.header
        path.append(nxt)
        u = nxt
    raise AssertionError(f"route {s}->{t} not delivered")


@pytest.mark.parametrize("name", scheme_names())
def test_identical_step_decisions_hop_by_hop(name, served):
    session, path = served[name]
    router = LocalRouter(ShardStore(path))
    for s, t in sample_pairs(N, PAIRS, seed=77):
        _dual_step_route(session.scheme, router, s, t)


@pytest.mark.parametrize("name", scheme_names())
def test_local_knowledge_invariant(name, served, tmp_path):
    """Routes survive deletion of every shard the route does not visit.

    The paper's deployment claim made operational: the only state a
    route needs is the tables of the vertices it traverses (plus the
    destination label, and the destination is traversed).
    """
    session, path = served[name]
    full = load(path)
    for i, (s, t) in enumerate(sample_pairs(N, 8, seed=131)):
        reference = session.route(s, t)
        visited = set(reference.path) | {s, t}

        trimmed = tmp_path / f"{name}-{i}"
        store = ShardStore(str(path))
        os.makedirs(trimmed / "shards")
        shutil.copy(
            os.path.join(path, "manifest.json"),
            trimmed / "manifest.json",
        )
        for v in visited:
            src = store.shard_path(v)
            dst = trimmed / os.path.relpath(src, path)
            os.makedirs(dst.parent, exist_ok=True)
            shutil.copy(src, dst)

        lonely = load(str(trimmed))
        result = lonely.route(s, t)
        assert result.path == reference.path, (name, s, t)
        assert result.length == pytest.approx(reference.length)
        assert result.hops == reference.hops
        assert result.max_header_words == reference.max_header_words
        # and the full shard set was genuinely not consulted
        stats = lonely.serve_stats()
        assert stats["loads"] <= len(visited)

    # sanity: a route through a deleted vertex fails loudly, it does not
    # silently reroute
    ref = full.route(0, N - 1)
    if len(ref.path) > 2:
        middle = ref.path[len(ref.path) // 2]
        broken_dir = tmp_path / f"{name}-broken"
        shutil.copytree(path, broken_dir)
        victim = ShardStore(str(path)).shard_path(middle)
        os.remove(broken_dir / os.path.relpath(victim, path))
        broken = load(str(broken_dir))
        with pytest.raises(FileNotFoundError, match=str(middle)):
            broken.route(0, N - 1)


@pytest.mark.parametrize("name", ["thm11", "tz3"])
def test_routes_and_stats_match_via_session(name, served):
    session, path = served[name]
    restored = load(path)
    assert restored.loaded
    assert restored.spec_name == name
    assert restored.name == session.name
    for s, t in sample_pairs(N, 15, seed=5):
        r1 = session.route(s, t)
        r2 = restored.route(s, t)
        assert r1.path == r2.path
        assert r2.length == pytest.approx(r1.length)
        assert r1.max_header_words == r2.max_header_words
    st1, st2 = session.stats(), restored.stats()
    assert st2.total_table_words == st1.total_table_words
    assert st2.max_table_words == st1.max_table_words
    assert st2.max_label_words == st1.max_label_words
    assert st2.table_breakdown_max == st1.table_breakdown_max


def test_serve_stats_count_only_visited(served):
    _, path = served["tz2"]
    session = RoutingSession.from_shards(path)
    assert session.serve_stats()["loads"] == 0  # manifest only
    result = session.route(1, 100)
    stats = session.serve_stats()
    assert 0 < stats["loads"] <= len(set(result.path)) + 1
    assert stats["bytes_read"] > 0
    # warm repeat: no new loads
    session.route(1, 100)
    assert session.serve_stats()["loads"] == stats["loads"]
    assert session.serve_stats()["hits"] > stats["hits"]


def test_max_resident_bounds_memory(served):
    _, path = served["warmup3"]
    store = ShardStore(path, max_resident=4)
    router = LocalRouter(store)
    for s, t in sample_pairs(N, 10, seed=3):
        from repro.routing.simulator import route as sim_route

        sim_route(router, s, t)
        assert len(store._resident) <= 4


def test_measure_works_on_shard_session(served):
    session, path = served["warmup3"]
    restored = load(path)
    report = restored.measure(count=30, seed=8)
    alpha, beta = restored.stretch_bound()
    assert report.max_additive_over <= beta + 1e-9


def test_reshard_roundtrip(served, tmp_path):
    """A shard-backed session can re-export itself (rolling re-deploy)."""
    _, path = served["tz2"]
    restored = load(path)
    again = str(tmp_path / "re-export")
    write_shards(
        restored.scheme, again,
        spec_name=restored.spec_name, params=restored.params,
        seed=restored.seed,
    )
    twice = load(again)
    r1, r2 = restored.route(3, 50), twice.route(3, 50)
    assert r1.path == r2.path


class TestStoreValidation:
    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            ShardStore(str(tmp_path))

    def test_load_on_plain_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="without a shard manifest"):
            load(str(tmp_path))

    def test_foreign_manifest_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format": "other"}')
        with pytest.raises(ValueError, match="format"):
            ShardStore(str(tmp_path))

    def test_vertex_out_of_range(self, served):
        _, path = served["tz2"]
        store = ShardStore(path)
        with pytest.raises(ValueError, match="outside"):
            store.node(N)

    def test_wrong_spec_class_rejected(self, served, tmp_path):
        import json

        _, path = served["tz2"]
        target = tmp_path / "tampered"
        shutil.copytree(path, target)
        manifest = json.loads((target / "manifest.json").read_text())
        manifest["spec"] = "thm11"  # wrong family for the shard class
        (target / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="compiled by"):
            load(str(target))
