"""Serving engine: local-knowledge routing on per-vertex shards.

The acceptance bar for the sharded deployment path, asserted for EVERY
registered scheme on a seeded n >= 200 graph:

* **identical decisions** — the :class:`LocalRouter` (step-only scheme
  over lazily loaded shards) makes byte-identical step decisions, hop
  sequences, lengths and header sizes as the monolithic in-memory
  scheme, checked hop by hop,
* **local knowledge** — a route executed against a store holding *only*
  the shards of the vertices that route actually visits reproduces the
  exact same trace; every other shard is deleted from disk first,
* serve statistics account exactly the shards a route touched, and the
  optional LRU bound keeps residency at the configured budget,
* **packed equivalence** — the packed (layout v2) store serves the same
  workload with identical hop-by-hop decisions, identical serve
  counters and identical word accounting, and passes the same
  local-knowledge invariant with every non-visited *group* deleted.
"""

import os
import shutil

import pytest

from repro.api import (
    RoutingSession,
    SubstrateCache,
    build,
    get_spec,
    load,
    scheme_names,
)
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.routing.model import Deliver, Forward
from repro.routing.serving import (
    LocalRouter,
    PackedShardStore,
    ShardStore,
    open_store,
    write_shards,
)

N = 220  # the local-knowledge invariant is asserted at n >= 200
PAIRS = 25


@pytest.fixture(scope="module")
def graphs():
    gu = erdos_renyi(N, 7.0 / (N - 1), seed=17)
    gw = with_random_weights(gu, seed=18, low=1.0, high=8.0)
    return {"unweighted": gu, "weighted": gw}


@pytest.fixture(scope="module")
def caches():
    return {"unweighted": SubstrateCache(), "weighted": SubstrateCache()}


@pytest.fixture(scope="module")
def shard_root(tmp_path_factory):
    return tmp_path_factory.mktemp("shards")


#: packed-group size for the tests: small enough that n=220 spans many
#: groups, so group-level deletion (local knowledge) means something
GROUP_SIZE = 16


@pytest.fixture(scope="module")
def served(graphs, caches, shard_root):
    """session + shard dir per scheme, built once for the module."""
    out = {}
    for name in scheme_names():
        spec = get_spec(name)
        kind = "weighted" if spec.weighted_capable else "unweighted"
        session = build(name, graphs[kind], cache=caches[kind], seed=6)
        path = str(shard_root / name)
        session.save(path, shards=True)
        out[name] = (session, path)
    return out


@pytest.fixture(scope="module")
def served_packed(served, shard_root):
    """packed (layout v2) shard dir per scheme, from the same sessions."""
    out = {}
    for name, (session, _) in served.items():
        path = str(shard_root / f"{name}.packed")
        write_shards(
            session.scheme, path,
            spec_name=session.spec_name, params=session.params,
            seed=session.seed, packed=True, group_size=GROUP_SIZE,
        )
        out[name] = path
    return out


def _dual_step_route(scheme, router, s, t, max_hops=None):
    """Drive both engines in lockstep, asserting every decision matches.

    Returns the common path.  This is stronger than comparing final
    routes: a pair of off-by-one errors that cancelled out would still
    fail here.
    """
    if max_hops is None:
        max_hops = 8 * scheme.graph.n + 64
    label = scheme.label_of(t)
    assert router.label_of(t) == label
    header = None
    u = s
    path = [s]
    for _ in range(max_hops + 1):
        a1 = scheme.step(u, header, label)
        a2 = router.step(u, header, label)
        assert type(a1) is type(a2), (u, a1, a2)
        if isinstance(a1, Deliver):
            assert u == t
            return path
        assert isinstance(a1, Forward)
        assert a1.port == a2.port, (u, a1, a2)
        assert a1.header == a2.header, (u, a1, a2)
        # the serving engine's bool-free header contract, checked for
        # every hop of every registered scheme (see LocalRouter._wire_len)
        from repro.routing.serving import _contains_bool

        assert not _contains_bool(a1.header), (u, a1.header)
        nxt = scheme.ports.neighbor(u, a1.port)
        assert router.local_edge(u, a1.port) == (
            nxt, scheme.graph.weight(u, nxt),
        )
        header = a1.header
        path.append(nxt)
        u = nxt
    raise AssertionError(f"route {s}->{t} not delivered")


@pytest.mark.parametrize("name", scheme_names())
def test_identical_step_decisions_hop_by_hop(name, served):
    session, path = served[name]
    router = LocalRouter(ShardStore(path))
    for s, t in sample_pairs(N, PAIRS, seed=77):
        _dual_step_route(session.scheme, router, s, t)


@pytest.mark.parametrize("name", scheme_names())
def test_local_knowledge_invariant(name, served, tmp_path):
    """Routes survive deletion of every shard the route does not visit.

    The paper's deployment claim made operational: the only state a
    route needs is the tables of the vertices it traverses (plus the
    destination label, and the destination is traversed).
    """
    session, path = served[name]
    full = load(path)
    for i, (s, t) in enumerate(sample_pairs(N, 8, seed=131)):
        reference = session.route(s, t)
        visited = set(reference.path) | {s, t}

        trimmed = tmp_path / f"{name}-{i}"
        store = ShardStore(str(path))
        os.makedirs(trimmed / "shards")
        shutil.copy(
            os.path.join(path, "manifest.json"),
            trimmed / "manifest.json",
        )
        for v in visited:
            src = store.shard_path(v)
            dst = trimmed / os.path.relpath(src, path)
            os.makedirs(dst.parent, exist_ok=True)
            shutil.copy(src, dst)

        lonely = load(str(trimmed))
        result = lonely.route(s, t)
        assert result.path == reference.path, (name, s, t)
        assert result.length == pytest.approx(reference.length)
        assert result.hops == reference.hops
        assert result.max_header_words == reference.max_header_words
        # and the full shard set was genuinely not consulted
        stats = lonely.serve_stats()
        assert stats["loads"] <= len(visited)

    # sanity: a route through a deleted vertex fails loudly, it does not
    # silently reroute
    ref = full.route(0, N - 1)
    if len(ref.path) > 2:
        middle = ref.path[len(ref.path) // 2]
        broken_dir = tmp_path / f"{name}-broken"
        shutil.copytree(path, broken_dir)
        victim = ShardStore(str(path)).shard_path(middle)
        os.remove(broken_dir / os.path.relpath(victim, path))
        broken = load(str(broken_dir))
        with pytest.raises(FileNotFoundError, match=str(middle)):
            broken.route(0, N - 1)


@pytest.mark.parametrize("name", ["thm11", "tz3"])
def test_routes_and_stats_match_via_session(name, served):
    session, path = served[name]
    restored = load(path)
    assert restored.loaded
    assert restored.spec_name == name
    assert restored.name == session.name
    for s, t in sample_pairs(N, 15, seed=5):
        r1 = session.route(s, t)
        r2 = restored.route(s, t)
        assert r1.path == r2.path
        assert r2.length == pytest.approx(r1.length)
        assert r1.max_header_words == r2.max_header_words
    st1, st2 = session.stats(), restored.stats()
    assert st2.total_table_words == st1.total_table_words
    assert st2.max_table_words == st1.max_table_words
    assert st2.max_label_words == st1.max_label_words
    assert st2.table_breakdown_max == st1.table_breakdown_max


def test_serve_stats_count_only_visited(served):
    _, path = served["tz2"]
    session = RoutingSession.from_shards(path)
    assert session.serve_stats()["loads"] == 0  # manifest only
    result = session.route(1, 100)
    stats = session.serve_stats()
    assert 0 < stats["loads"] <= len(set(result.path)) + 1
    assert stats["bytes_read"] > 0
    # warm repeat: no new loads
    session.route(1, 100)
    assert session.serve_stats()["loads"] == stats["loads"]
    assert session.serve_stats()["hits"] > stats["hits"]


def test_max_resident_bounds_memory(served):
    _, path = served["warmup3"]
    store = ShardStore(path, max_resident=4)
    router = LocalRouter(store)
    for s, t in sample_pairs(N, 10, seed=3):
        from repro.routing.simulator import route as sim_route

        sim_route(router, s, t)
        assert len(store._resident) <= 4


def test_measure_works_on_shard_session(served):
    session, path = served["warmup3"]
    restored = load(path)
    report = restored.measure(count=30, seed=8)
    alpha, beta = restored.stretch_bound()
    assert report.max_additive_over <= beta + 1e-9


def test_reshard_roundtrip(served, tmp_path):
    """A shard-backed session can re-export itself (rolling re-deploy)."""
    _, path = served["tz2"]
    restored = load(path)
    again = str(tmp_path / "re-export")
    write_shards(
        restored.scheme, again,
        spec_name=restored.spec_name, params=restored.params,
        seed=restored.seed,
    )
    twice = load(again)
    r1, r2 = restored.route(3, 50), twice.route(3, 50)
    assert r1.path == r2.path


# ----------------------------------------------------------------------
# packed layout (v2): equivalence with the per-file store
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", scheme_names())
def test_packed_identical_step_decisions(name, served, served_packed):
    session, _ = served[name]
    router = LocalRouter(PackedShardStore(served_packed[name]))
    for s, t in sample_pairs(N, PAIRS, seed=77):
        _dual_step_route(session.scheme, router, s, t)


@pytest.mark.parametrize("name", scheme_names())
def test_packed_equals_per_file_serve_counters(name, served, served_packed):
    """Same workload, same counters: the layouts differ only in inodes."""
    _, v1_path = served[name]
    v1 = LocalRouter(ShardStore(v1_path))
    packed = LocalRouter(PackedShardStore(served_packed[name]))
    from repro.routing.simulator import route as sim_route

    for s, t in sample_pairs(N, 10, seed=41):
        r1 = sim_route(v1, s, t)
        r2 = sim_route(packed, s, t)
        assert r1.path == r2.path, (name, s, t)
        assert r2.length == pytest.approx(r1.length)
        assert r1.max_header_words == r2.max_header_words
    s1, s2 = v1.store.stats(), packed.store.stats()
    for key in ("n", "loads", "hits", "bytes_read", "resident"):
        assert s1[key] == s2[key], (name, key, s1, s2)
    assert v1.header_stats() == packed.header_stats()
    # manifests account identical payload bytes and words
    m1, m2 = v1.store.manifest, packed.store.manifest
    assert m1["bytes"] == m2["bytes"]
    assert m1["words"] == m2["words"]


@pytest.mark.parametrize("name", ["thm11", "tz3"])
def test_packed_word_accounting_matches(name, served, served_packed):
    session, _ = served[name]
    restored = load(served_packed[name])
    st1, st2 = session.stats(), restored.stats()
    assert st2.total_table_words == st1.total_table_words
    assert st2.max_table_words == st1.max_table_words
    assert st2.max_label_words == st1.max_label_words


@pytest.mark.parametrize("name", scheme_names())
def test_packed_local_knowledge_invariant(
    name, served, served_packed, tmp_path
):
    """Routes survive deletion of every *group* the route does not visit."""
    session, _ = served[name]
    path = served_packed[name]
    for i, (s, t) in enumerate(sample_pairs(N, 5, seed=131)):
        reference = session.route(s, t)
        visited = set(reference.path) | {s, t}
        store = PackedShardStore(path)
        groups = {store.group_of(v) for v in visited}

        trimmed = tmp_path / f"{name}-{i}"
        os.makedirs(trimmed / "groups")
        shutil.copy(
            os.path.join(path, "manifest.json"), trimmed / "manifest.json"
        )
        for g in groups:
            shutil.copy(
                store.group_path(g),
                trimmed / "groups" / os.path.basename(store.group_path(g)),
            )

        lonely = load(str(trimmed))
        result = lonely.route(s, t)
        assert result.path == reference.path, (name, s, t)
        assert result.length == pytest.approx(reference.length)
        assert result.max_header_words == reference.max_header_words
        stats = lonely.serve_stats()
        assert stats["loads"] <= len(visited)
        assert stats["groups_mapped"] <= len(groups)

    # a route through a deleted group fails loudly, never reroutes
    full = load(path)
    ref = full.route(0, N - 1)
    if len(ref.path) > 2:
        middle = ref.path[len(ref.path) // 2]
        store = PackedShardStore(path)
        broken_dir = tmp_path / f"{name}-broken"
        shutil.copytree(path, broken_dir)
        victim = os.path.basename(store.group_path(store.group_of(middle)))
        os.remove(broken_dir / "groups" / victim)
        broken = load(str(broken_dir))
        with pytest.raises(FileNotFoundError, match="group"):
            broken.route(0, N - 1)


def test_packed_session_autodetects_layout(served, served_packed):
    """`load` on a packed dir serves without being told the layout."""
    session, _ = served["thm11"]
    restored = load(served_packed["thm11"])
    assert restored.loaded
    assert restored.spec_name == "thm11"
    assert isinstance(restored.scheme.store, PackedShardStore)
    r1, r2 = session.route(3, 50), restored.route(3, 50)
    assert r1.path == r2.path


def test_open_store_dispatches_by_manifest(served, served_packed):
    _, v1_path = served["tz2"]
    assert isinstance(open_store(v1_path), ShardStore)
    assert isinstance(open_store(served_packed["tz2"]), PackedShardStore)


def test_packed_rejected_by_per_file_store(served_packed):
    with pytest.raises(ValueError, match="version"):
        ShardStore(served_packed["tz2"])


def test_per_file_rejected_by_packed_store(served):
    _, v1_path = served["tz2"]
    with pytest.raises(ValueError, match="version"):
        PackedShardStore(v1_path)


def test_packed_max_resident_bounds_memory(served_packed):
    store = PackedShardStore(served_packed["warmup3"], max_resident=4)
    router = LocalRouter(store)
    from repro.routing.simulator import route as sim_route

    for s, t in sample_pairs(N, 10, seed=3):
        sim_route(router, s, t)
        assert len(store._resident) <= 4


def test_serve_stats_report_header_bytes(served_packed):
    """The wire codec is on the serving path: serve_stats shows bytes."""
    session = RoutingSession.from_shards(served_packed["thm11"])
    stats = session.serve_stats()
    assert stats["headers_encoded"] == 0 and stats["header_bytes"] == 0
    routed = 0
    for s, t in sample_pairs(N, 10, seed=9):
        routed += session.route(s, t).hops
    stats = session.serve_stats()
    assert stats["headers_encoded"] == routed  # one header per hop
    assert stats["header_bytes"] > 0
    assert 0 < stats["max_header_bytes"] <= stats["header_bytes"]


def test_wire_cache_refuses_bool_header_leaves(served_packed):
    """True/1 hash-collide in the value-keyed wire cache, so headers
    must be bool-free: the miss path refuses bool leaves, and the
    dual-step harness asserts the contract for every scheme's every
    forwarded header (a per-lookup deep check would cost more than the
    encode the cache avoids)."""
    from repro.routing.serving import _contains_bool

    router = LocalRouter(PackedShardStore(served_packed["tz2"]))
    with pytest.raises(RuntimeError, match="bool leaf"):
        router._wire_len(("tree", True, (0, ())))
    assert router._wire_len(("tree", 1, (0, ()))) > 0
    assert _contains_bool(("t1", (0, (False,))))  # nested leaves found
    assert not _contains_bool(("t1", (0, 1), None, "tag"))


def test_packed_vertex_out_of_range(served_packed):
    store = PackedShardStore(served_packed["tz2"])
    with pytest.raises(ValueError, match="outside"):
        store.node(N)


def test_packed_close_releases_maps(served_packed):
    store = PackedShardStore(served_packed["tz2"])
    store.node(0)
    assert store.groups_mapped == 1
    store.close()
    assert store.groups_mapped == 0


def test_packed_verify_checks_every_group(served_packed):
    store = PackedShardStore(served_packed["tz2"])
    assert store.verify() == (N + GROUP_SIZE - 1) // GROUP_SIZE


def test_packed_corrupt_index_fails_loudly(served_packed, tmp_path):
    """A lying index surfaces check_pack's precise error, not garbage."""
    import struct

    from repro.routing.shard_codec import ShardCodecError

    target = tmp_path / "corrupt"
    shutil.copytree(served_packed["tz2"], target)
    group0 = target / "groups" / "0000.pack"
    buf = bytearray(group0.read_bytes())
    # first index entry (<IQI at byte 10): point its offset past the file
    struct.pack_into("<Q", buf, 14, 1 << 40)
    group0.write_bytes(bytes(buf))

    store = PackedShardStore(str(target))
    with pytest.raises(
        ShardCodecError, match="overlaps|past the payload|checksum"
    ):
        store.node(0)
    with pytest.raises(
        ShardCodecError, match="overlaps|past the payload|checksum"
    ):
        PackedShardStore(str(target)).verify()


def test_interrupted_reshard_leaves_no_stale_manifest(served, tmp_path):
    """A write that dies mid-stream must not leave the OLD manifest
    describing deleted shards — the directory reads as 'not a shard
    directory' until the new manifest lands atomically at the end."""
    from repro.routing.serving import write_shard_records

    session, path = served["tz2"]
    target = tmp_path / "reshard"
    shutil.copytree(path, target)
    assert load(str(target)).route(1, 50).path  # valid before

    def exploding_records():
        for i, record in enumerate(session.scheme.compile_tables()):
            if i == 5:
                raise RuntimeError("disk full")
            yield record

    with pytest.raises(RuntimeError, match="disk full"):
        write_shard_records(
            exploding_records(), str(target),
            identity={"spec": "tz2"}, packed=True,
        )
    assert not os.path.exists(target / "manifest.json")
    with pytest.raises((FileNotFoundError, ValueError)):
        load(str(target))


def test_interrupted_manifest_write_leaves_no_tmp(served, tmp_path,
                                                  monkeypatch):
    """A crash *inside the manifest dump itself* (shards fully written)
    must leave neither a manifest nor a half-written tmp file — the dir
    reads as not-a-shard-dir, and a re-run starts clean."""
    import json as json_module

    from repro.routing import serving
    from repro.routing.serving import write_shard_records

    session, _ = served["tz2"]
    target = tmp_path / "mcrash"

    def exploding_dump(*args, **kwargs):
        raise OSError("disk full during manifest dump")

    monkeypatch.setattr(serving.json, "dump", exploding_dump)
    with pytest.raises(OSError, match="manifest dump"):
        write_shard_records(
            session.scheme.compile_tables(), str(target),
            identity={"spec": "tz2"}, packed=True,
        )
    monkeypatch.undo()
    leftovers = [f for f in os.listdir(target) if "manifest" in f]
    assert leftovers == [], leftovers
    with pytest.raises((FileNotFoundError, ValueError)):
        load(str(target))


class TestManifestValidation:
    """_load_manifest rejects malformed manifests with precise errors."""

    def _write(self, tmp_path, manifest):
        import json

        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        return str(tmp_path)

    def _valid(self, version=2):
        base = {
            "format": "repro.routing.shards", "version": version,
            "layout": "packed" if version > 1 else "per-file",
            "n": 10, "codec": 1, "spec": "tz2", "scheme": "X",
        }
        if version == 1:
            base["fanout"] = 256
        else:
            base["group_size"] = 16
        if version == 3:
            base["checksums"] = True
            base["replicas"] = 2
        return base

    def test_not_json(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{nope")
        from repro.routing.serving import _load_manifest

        with pytest.raises(ValueError, match="not valid JSON"):
            _load_manifest(str(tmp_path))

    @pytest.mark.parametrize("field", ["n", "spec", "scheme", "version"])
    def test_missing_required_field(self, tmp_path, field):
        from repro.routing.serving import _load_manifest

        manifest = self._valid()
        del manifest[field]
        with pytest.raises(ValueError, match=f"missing required.*{field}"):
            _load_manifest(self._write(tmp_path, manifest))

    @pytest.mark.parametrize("field,value", [
        ("n", -1), ("n", "ten"), ("n", True),
        ("spec", ""), ("scheme", 7),
    ])
    def test_invalid_field_value(self, tmp_path, field, value):
        from repro.routing.serving import _load_manifest

        manifest = self._valid()
        manifest[field] = value
        with pytest.raises(ValueError, match=f"invalid {field}"):
            _load_manifest(self._write(tmp_path, manifest))

    def test_layout_params_checked_per_version(self, tmp_path):
        from repro.routing.serving import _load_manifest

        v2 = self._valid(2)
        v2["group_size"] = 0
        with pytest.raises(ValueError, match="invalid group_size"):
            _load_manifest(self._write(tmp_path, v2))
        v3 = self._valid(3)
        v3["replicas"] = "two"
        with pytest.raises(ValueError, match="invalid replicas"):
            _load_manifest(self._write(tmp_path, v3))

    def test_valid_manifests_pass(self, tmp_path):
        from repro.routing.serving import _load_manifest

        for version in (1, 2, 3):
            loaded = _load_manifest(
                self._write(tmp_path, self._valid(version))
            )
            assert loaded["version"] == version


def test_packed_inrange_index_miss_is_integrity_error(served_packed,
                                                      tmp_path):
    """An in-range vertex absent from a structurally sound index is an
    integrity failure, NOT FileNotFoundError: telling an operator the
    'file is missing' for a vertex the manifest covers misleads them
    into deleting a pack whose other entries are intact."""
    from repro.routing.serving import ShardIntegrityError
    from repro.routing.shard_codec import encode_pack, iter_pack_entries

    target = tmp_path / "holey"
    shutil.copytree(served_packed["tz2"], target)
    group0 = target / "groups" / "0000.pack"
    # re-encode group 0 WITHOUT vertex 0: a structurally sound,
    # checksum-valid pack that simply lacks a vertex the manifest covers
    # (a torn/incomplete write that finished cleanly)
    buf = group0.read_bytes()
    kept = [
        (v, bytes(memoryview(buf)[off:off + length]))
        for v, off, length in iter_pack_entries(buf)
        if v != 0
    ]
    group0.write_bytes(encode_pack(kept, checksums=True))

    store = PackedShardStore(str(target))
    with pytest.raises(ShardIntegrityError, match="no entry for vertex 0"):
        store.node(0)
    with pytest.raises(FileNotFoundError):
        # the FileNotFoundError contract still holds for what IS a
        # missing file: a deleted group
        os.remove(target / "groups" / "0001.pack")
        store.node(GROUP_SIZE)
    store.close()


def test_packed_tampered_version_rejected_at_map(served_packed, tmp_path):
    from repro.routing.shard_codec import ShardCodecError

    target = tmp_path / "future"
    shutil.copytree(served_packed["tz2"], target)
    group0 = target / "groups" / "0000.pack"
    buf = bytearray(group0.read_bytes())
    buf[4] = 99  # pack version byte
    group0.write_bytes(bytes(buf))
    store = PackedShardStore(str(target))
    with pytest.raises(ShardCodecError, match="version"):
        store.node(0)


class TestStoreValidation:
    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            ShardStore(str(tmp_path))

    def test_load_on_plain_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="without a shard manifest"):
            load(str(tmp_path))

    def test_foreign_manifest_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format": "other"}')
        with pytest.raises(ValueError, match="format"):
            ShardStore(str(tmp_path))

    def test_vertex_out_of_range(self, served):
        _, path = served["tz2"]
        store = ShardStore(path)
        with pytest.raises(ValueError, match="outside"):
            store.node(N)

    def test_wrong_spec_class_rejected(self, served, tmp_path):
        import json

        _, path = served["tz2"]
        target = tmp_path / "tampered"
        shutil.copytree(path, target)
        manifest = json.loads((target / "manifest.json").read_text())
        manifest["spec"] = "thm11"  # wrong family for the shard class
        (target / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="compiled by"):
            load(str(target))
