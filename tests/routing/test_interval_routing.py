"""Interval routing baseline vs heavy-path tree routing (Lemma 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import random_tree, star
from repro.graph.metric import MetricView
from repro.graph.trees import RootedTree
from repro.routing.interval_routing import IntervalTreeRouting
from repro.routing.model import words_of
from repro.routing.ports import PortAssignment
from repro.routing.tree_routing import TreeRouting


def _tree(g, root=0):
    return RootedTree(MetricView(g).spt_parents(root))


def _route(ir: IntervalTreeRouting, ports: PortAssignment, s: int, t: int):
    label = ir.label_of(t)
    cur, trail = s, [s]
    for _ in range(5000):
        port = IntervalTreeRouting.step(ir.record_of(cur), label)
        if port is None:
            return trail
        cur = ports.neighbor(cur, port)
        trail.append(cur)
    raise AssertionError("interval routing did not terminate")


class TestCorrectness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_exact_tree_paths(self, seed):
        g = random_tree(60, seed=seed)
        tree = _tree(g)
        ports = PortAssignment(g)
        ir = IntervalTreeRouting(tree, ports)
        for s in range(0, 60, 5):
            for t in range(0, 60, 7):
                assert _route(ir, ports, s, t) == tree.tree_path(s, t)

    @given(port_seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_port_independence(self, port_seed):
        g = random_tree(40, seed=9)
        tree = _tree(g)
        ports = PortAssignment(g, seed=port_seed)
        ir = IntervalTreeRouting(tree, ports)
        for s, t in [(0, 39), (20, 5), (7, 7)]:
            assert _route(ir, ports, s, t) == tree.tree_path(s, t)

    def test_outside_tree_raises_at_root(self):
        g = random_tree(10, seed=4)
        ir = IntervalTreeRouting(_tree(g), PortAssignment(g))
        with pytest.raises(ValueError):
            IntervalTreeRouting.step(ir.record_of(0), 10_000)


class TestStorageComparison:
    """The reason the schemes use Lemma 3: O(1) vs O(deg) per vertex."""

    def test_star_center_pays_degree(self):
        g = star(101)
        tree = _tree(g)
        ports = PortAssignment(g)
        interval = IntervalTreeRouting(tree, ports)
        heavy = TreeRouting(tree, ports)
        center_interval = words_of(interval.record_of(0))
        center_heavy = words_of(heavy.record_of(0))
        assert center_interval >= 3 * 100  # one triple per leaf
        assert center_heavy == 6          # constant
        # ...but interval labels are smaller:
        assert words_of(interval.label_of(55)) == 1
        assert words_of(heavy.label_of(55)) >= 1

    def test_same_routes_different_costs(self):
        g = random_tree(80, seed=6)
        tree = _tree(g)
        ports = PortAssignment(g)
        interval = IntervalTreeRouting(tree, ports)
        heavy = TreeRouting(tree, ports)
        # identical paths
        for s, t in [(0, 79), (40, 13), (7, 66)]:
            trail_i = _route(interval, ports, s, t)
            label = heavy.label_of(t)
            cur, trail_h = s, [s]
            while True:
                port = TreeRouting.step(heavy.record_of(cur), label)
                if port is None:
                    break
                cur = ports.neighbor(cur, port)
                trail_h.append(cur)
            assert trail_i == trail_h == tree.tree_path(s, t)
        # heavy-path records are uniformly constant; interval ones are not
        max_interval = max(
            words_of(interval.record_of(v)) for v in g.vertices()
        )
        assert all(
            words_of(heavy.record_of(v)) == 6 for v in g.vertices()
        )
        assert max_interval > 6
