"""Per-phase hop accounting: which routing phase moves the message.

The schemes' case analyses split routes into legs — ball routing to a
representative, a technique leg, a tree leg.  The simulator tags each hop
with the header's phase, giving an empirical view of that decomposition.
"""

import pytest

from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.simulator import route
from repro.schemes import Stretch5PlusScheme, Warmup3Scheme


@pytest.fixture(scope="module")
def world():
    g = with_random_weights(erdos_renyi(90, 0.06, seed=601), seed=602)
    return g, MetricView(g)


class TestPhaseHops:
    def test_hops_sum_matches(self, world):
        g, metric = world
        scheme = Warmup3Scheme(g, eps=0.5, metric=metric, seed=1)
        for s, t in [(0, 50), (3, 77), (20, 64)]:
            result = route(scheme, s, t)
            assert sum(result.phase_hops.values()) == result.hops

    def test_phases_are_known_tags(self, world):
        g, metric = world
        scheme = Warmup3Scheme(g, eps=0.5, metric=metric, seed=1)
        seen = set()
        for s in range(0, 90, 7):
            for t in range(1, 90, 11):
                if s == t:
                    continue
                seen |= set(route(scheme, s, t).phase_hops)
        assert seen <= {"ball", "torep", "t1"}
        assert "ball" in seen  # local traffic exists

    def test_far_pairs_use_technique_leg(self, world):
        g, metric = world
        scheme = Stretch5PlusScheme(g, eps=0.6, metric=metric, seed=2)
        technique_used = 0
        for s in range(0, 90, 5):
            for t in range(1, 90, 7):
                if s == t:
                    continue
                hops = route(scheme, s, t).phase_hops
                if "t2" in hops or "torep" in hops:
                    technique_used += 1
        assert technique_used > 0

    def test_self_route_has_no_phases(self, world):
        g, metric = world
        scheme = Warmup3Scheme(g, eps=0.5, metric=metric, seed=1)
        assert route(scheme, 5, 5).phase_hops == {}
