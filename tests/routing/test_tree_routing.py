"""Tree routing (Lemma 3): exactness, compactness, port independence."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import (
    caterpillar,
    erdos_renyi,
    path,
    random_tree,
    star,
    with_random_weights,
)
from repro.graph.metric import MetricView
from repro.graph.trees import RootedTree
from repro.routing.ports import PortAssignment
from repro.routing.tree_routing import TreeRouting, tree_step


def _route_in_tree(tr: TreeRouting, ports: PortAssignment, s: int, t: int):
    """Drive tree_step by hand; returns the traversed vertex path."""
    label = tr.label_of(t)
    cur = s
    trail = [cur]
    for _ in range(5000):
        port = tree_step(tr.record_of(cur), label)
        if port is None:
            return trail
        cur = ports.neighbor(cur, port)
        trail.append(cur)
    raise AssertionError("tree routing did not terminate")


def _tree_from_graph(g, root=0):
    m = MetricView(g)
    return RootedTree(m.spt_parents(root))


@pytest.mark.parametrize(
    "graph_factory",
    [
        lambda: random_tree(60, seed=3),
        lambda: path(40),
        lambda: star(30),
        lambda: caterpillar(8, 3),
    ],
)
def test_exact_tree_paths(graph_factory):
    g = graph_factory()
    tree = _tree_from_graph(g)
    ports = PortAssignment(g)
    tr = TreeRouting(tree, ports)
    for s in range(0, g.n, 5):
        for t in range(0, g.n, 7):
            trail = _route_in_tree(tr, ports, s, t)
            assert trail == tree.tree_path(s, t)


def test_exact_on_spt_of_dense_graph():
    g = with_random_weights(erdos_renyi(50, 0.15, seed=4), seed=5)
    tree = _tree_from_graph(g, root=10)
    ports = PortAssignment(g)
    tr = TreeRouting(tree, ports)
    for s in range(0, 50, 6):
        for t in range(1, 50, 7):
            assert _route_in_tree(tr, ports, s, t) == tree.tree_path(s, t)


@given(seed=st.integers(0, 50), port_seed=st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_port_numbering_independence(seed, port_seed):
    """The scheme must work for any (adversarial) port numbering."""
    g = random_tree(40, seed=seed)
    tree = _tree_from_graph(g)
    ports = PortAssignment(g, seed=port_seed)
    tr = TreeRouting(tree, ports)
    for s, t in [(0, 39), (17, 3), (5, 5), (39, 20)]:
        assert _route_in_tree(tr, ports, s, t) == tree.tree_path(s, t)


def test_record_is_constant_size():
    g = random_tree(200, seed=7)
    tr = TreeRouting(_tree_from_graph(g), PortAssignment(g))
    for v in g.vertices():
        assert len(tr.record_of(v)) == 6


def test_label_light_entries_logarithmic():
    g = random_tree(300, seed=8)
    tr = TreeRouting(_tree_from_graph(g), PortAssignment(g))
    bound = math.log2(300) + 1
    for v in g.vertices():
        _, stops = tr.label_of(v)
        assert len(stops) <= bound


def test_heavy_path_label_is_empty_on_path_graph():
    g = path(50)
    tr = TreeRouting(_tree_from_graph(g), PortAssignment(g))
    # A path is one heavy path: no light stops anywhere.
    for v in g.vertices():
        assert tr.label_of(v)[1] == ()


def test_subtree_restricted_tree():
    """Trees over vertex subsets (cluster trees) route correctly."""
    g = erdos_renyi(40, 0.15, seed=9)
    m = MetricView(g)
    members = m.ball(0, 15)
    parents = m.restricted_spt_parents(0, members)
    tree = RootedTree(parents)
    ports = PortAssignment(g)
    tr = TreeRouting(tree, ports)
    for s in members[::3]:
        for t in members[::4]:
            assert _route_in_tree(tr, ports, s, t) == tree.tree_path(s, t)


def test_members_listing():
    g = random_tree(20, seed=10)
    tree = _tree_from_graph(g)
    tr = TreeRouting(tree, PortAssignment(g))
    assert sorted(tr.members()) == list(range(20))


def test_target_outside_tree_raises_at_root():
    g = path(5)
    m = MetricView(g)
    members = [0, 1, 2]
    tree = RootedTree(m.restricted_spt_parents(0, members))
    tr = TreeRouting(tree, PortAssignment(g))
    fake_label = (999, ())
    with pytest.raises(ValueError):
        tree_step(tr.record_of(0), fake_label)
