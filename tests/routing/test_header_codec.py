"""Header codec: exact round trips and true header bit measurement."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.header_codec import decode, encode, encoded_bits
from repro.routing.model import Deliver, Forward
from repro.schemes import Stretch5PlusScheme, Warmup3Scheme

headers = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(2**40), 2**40)
    | st.text(max_size=8),
    lambda children: st.tuples(children, children)
    | st.tuples(children)
    | st.tuples(children, children, children),
    max_leaves=20,
)


class TestRoundTrip:
    @given(headers)
    @settings(max_examples=300, deadline=None)
    def test_encode_decode_identity(self, header):
        assert decode(encode(header)) == header

    def test_scheme_shaped_headers(self):
        shapes = [
            None,
            ("ball",),
            ("torep", 17),
            ("t1", ("seq", 2, (3, 4, 5), (7, ((1, 2), (3, 4))))),
            ("t2", (0, (9, 8, 7, 6))),
            ("tree", 12, (5, ())),
        ]
        for header in shapes:
            assert decode(encode(header)) == header

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            encode([1, 2])  # lists are not header material

    def test_truncated_rejected(self):
        data = encode(("t1", 1234567))
        with pytest.raises(ValueError):
            decode(data[:-1])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ValueError):
            decode(encode(5) + b"\x00")


class TestVarint:
    @given(st.integers(-(2**62), 2**62))
    @settings(max_examples=200, deadline=None)
    def test_integers_round_trip(self, value):
        assert decode(encode(value)) == value

    def test_small_ints_are_small(self):
        assert len(encode(0)) == 2  # tag + one varint byte
        assert len(encode(63)) == 2
        assert len(encode(10_000)) <= 4


class TestRealHeaderBits:
    """Measure true on-the-wire header bits of routed messages."""

    def _max_header_bits(self, scheme, pairs):
        worst = 0
        for s, t in pairs:
            header = None
            cur = s
            dest = scheme.label_of(t)
            for _ in range(2000):
                action = scheme.step(cur, header, dest)
                if isinstance(action, Deliver):
                    break
                assert isinstance(action, Forward)
                header = action.header
                worst = max(worst, encoded_bits(header))
                cur = scheme.ports.neighbor(cur, action.port)
            else:
                raise AssertionError("routing did not terminate")
        return worst

    def test_warmup_headers_logarithmic(self):
        g = with_random_weights(erdos_renyi(70, 0.08, seed=501), seed=502)
        scheme = Warmup3Scheme(g, eps=0.5, metric=MetricView(g), seed=1)
        pairs = [(u, (u * 7 + 3) % 70) for u in range(0, 70, 3)]
        bits = self._max_header_bits(scheme, [(u, v) for u, v in pairs if u != v])
        # O((1/eps) log n) bits: generous numeric cap for eps=0.5, n=70
        b = scheme.technique.b
        cap = 8 * (2 * b + 6) * math.ceil(math.log2(70)) + 256
        assert 0 < bits <= cap

    def test_thm11_headers_bounded(self):
        g = with_random_weights(erdos_renyi(70, 0.08, seed=503), seed=504)
        metric = MetricView(g)
        scheme = Stretch5PlusScheme(g, eps=0.6, metric=metric, seed=2)
        pairs = [(u, (u * 11 + 5) % 70) for u in range(0, 70, 3)]
        bits = self._max_header_bits(scheme, [(u, v) for u, v in pairs if u != v])
        b = scheme.technique.b
        log_nd = math.log2(max(2.0, 70 * metric.normalized_diameter()))
        cap = 8 * (2 * b * (log_nd + 2) + 16) * math.ceil(math.log2(70))
        assert 0 < bits <= cap
