"""Pack-group codec (layout v2): round-trips and loud rejection.

The packed store trusts the index after one :func:`check_pack` pass, so
that pass must catch everything a corrupt or foreign file could carry:
wrong magic, future versions, truncated headers/indexes, unsorted or
overlapping entries, payloads running past the file.  The zero-copy
decode path (``memoryview`` in, no intermediate ``bytes``) must agree
bit for bit with the plain ``bytes`` path.
"""

import struct

import pytest

from repro.routing.shard_codec import (
    PACK_VERSION,
    PACK_VERSION_CRC,
    ChecksumError,
    ShardCodecError,
    check_pack,
    decode_node_table,
    encode_node_table,
    encode_pack,
    find_in_pack,
    find_pack_entry,
    iter_pack_entries,
    verify_pack,
)
from repro.routing.tables import NodeTable

_PACK_HEADER = struct.Struct("<4sBBI")
_PACK_ENTRY = struct.Struct("<IQI")


def _record(v: int) -> NodeTable:
    return NodeTable(
        owner=v,
        neighbors=((v + 1, 1.5), (v + 2, 2.5)),
        label=(v, "label", (v, ((1, 2),))),
        categories={"ball": {v + 1: 0, v + 2: 1}, "seq": {7: (1, 2, 3)}},
    )


def _pack(vertices):
    return encode_pack(
        [(v, encode_node_table(_record(v))) for v in vertices]
    )


class TestRoundTrip:
    def test_find_and_decode_every_entry(self):
        vertices = [3, 9, 17, 42, 1000]
        buf = _pack(vertices)
        assert check_pack(buf) == len(vertices)
        for v in vertices:
            offset, length = find_in_pack(buf, v)
            record = decode_node_table(
                memoryview(buf)[offset:offset + length]
            )
            assert record == _record(v)

    def test_absent_vertex_returns_none(self):
        buf = _pack([3, 9, 17])
        assert find_in_pack(buf, 4) is None
        assert find_in_pack(buf, 0) is None
        assert find_in_pack(buf, 18) is None

    def test_entries_are_index_sorted_regardless_of_input_order(self):
        buf = _pack([42, 3, 17])
        assert [v for v, _, _ in iter_pack_entries(buf)] == [3, 17, 42]

    def test_memoryview_decode_matches_bytes_decode(self):
        blob = encode_node_table(_record(5))
        assert decode_node_table(memoryview(blob)) == decode_node_table(blob)

    def test_empty_pack(self):
        buf = encode_pack([])
        assert check_pack(buf) == 0
        assert find_in_pack(buf, 0) is None

    def test_duplicate_vertex_rejected_at_encode(self):
        blob = encode_node_table(_record(3))
        with pytest.raises(ShardCodecError, match="twice"):
            encode_pack([(3, blob), (3, blob)])


class TestRejection:
    def test_foreign_magic(self):
        buf = bytearray(_pack([1, 2]))
        buf[:4] = b"NOPE"
        with pytest.raises(ShardCodecError, match="magic"):
            check_pack(bytes(buf))

    def test_future_version(self):
        buf = bytearray(_pack([1, 2]))
        buf[4] = PACK_VERSION_CRC + 1
        with pytest.raises(ShardCodecError, match="version"):
            check_pack(bytes(buf))

    def test_truncated_header(self):
        with pytest.raises(ShardCodecError, match="truncated"):
            check_pack(_pack([1])[:6])

    def test_truncated_index(self):
        buf = bytearray(_pack([1, 2]))
        # claim more entries than the file holds
        struct.pack_into("<I", buf, 6, 1000)
        with pytest.raises(ShardCodecError, match="too short"):
            check_pack(bytes(buf))

    def _handcrafted(self, entries, payload):
        out = [_PACK_HEADER.pack(b"RTPK", PACK_VERSION, 0, len(entries))]
        out.extend(_PACK_ENTRY.pack(*e) for e in entries)
        out.append(payload)
        return b"".join(out)

    def test_unsorted_index(self):
        buf = self._handcrafted(
            [(9, 0, 4), (3, 4, 4)], b"\x00" * 8
        )
        with pytest.raises(ShardCodecError, match="sorted"):
            check_pack(buf)

    def test_overlapping_payloads(self):
        buf = self._handcrafted(
            [(3, 0, 6), (9, 4, 4)], b"\x00" * 8
        )
        with pytest.raises(ShardCodecError, match="overlap"):
            check_pack(buf)

    def test_payload_out_of_bounds(self):
        buf = self._handcrafted(
            [(3, 0, 4), (9, 4, 100)], b"\x00" * 8
        )
        with pytest.raises(ShardCodecError, match="past the payload"):
            check_pack(buf)

    def test_truncated_payload_slice_fails_in_decode(self):
        """A wrong length yields a slice the shard decoder rejects."""
        blob = encode_node_table(_record(3))
        with pytest.raises(ShardCodecError):
            decode_node_table(memoryview(blob)[: len(blob) - 2])


def _pack_crc(vertices):
    return encode_pack(
        [(v, encode_node_table(_record(v))) for v in vertices],
        checksums=True,
    )


class TestChecksummedPack:
    """Layout-v3 packs: CRC32 per entry plus one over header+index."""

    def test_round_trip_and_verify(self):
        vertices = [3, 9, 17, 42, 1000]
        buf = _pack_crc(vertices)
        assert buf[4] == PACK_VERSION_CRC
        assert check_pack(buf) == len(vertices)
        assert verify_pack(buf) == len(vertices)
        for v in vertices:
            offset, length, crc = find_pack_entry(buf, v)
            assert crc is not None
            record = decode_node_table(
                memoryview(buf)[offset:offset + length]
            )
            assert record == _record(v)

    def test_plain_pack_entries_carry_no_crc(self):
        buf = _pack([3, 9])
        offset, length, crc = find_pack_entry(buf, 3)
        assert crc is None

    def test_empty_checksummed_pack(self):
        buf = _pack_crc([])
        assert check_pack(buf) == 0
        assert verify_pack(buf) == 0

    def test_index_bit_flip_raises_checksum_error(self):
        buf = bytearray(_pack_crc([3, 9, 17]))
        buf[12] ^= 0x01  # inside the first index entry
        with pytest.raises(ChecksumError, match="index"):
            check_pack(bytes(buf))

    def test_payload_bit_flip_caught_by_verify(self):
        buf = bytearray(_pack_crc([3, 9, 17]))
        buf[-1] ^= 0x80  # last payload byte
        assert check_pack(bytes(buf)) == 3  # index is still sound
        with pytest.raises(ChecksumError, match="payload"):
            verify_pack(bytes(buf))

    def test_truncation_always_detected(self):
        buf = _pack_crc([3, 9, 17])
        for cut in (1, 2, 5, len(buf) // 2, len(buf) - 1):
            with pytest.raises(ShardCodecError):
                verify_pack(buf[:-cut])

    def test_plain_pack_still_verifies_by_decode(self):
        assert verify_pack(_pack([3, 9])) == 2
