"""Fixed-port model tests."""

import pytest

from repro.graph.generators import erdos_renyi, star
from repro.routing.ports import PortAssignment


class TestPortAssignment:
    def test_round_trip(self):
        g = erdos_renyi(30, 0.2, seed=1)
        ports = PortAssignment(g)
        for u in g.vertices():
            assert ports.degree(u) == g.degree(u)
            for p in range(ports.degree(u)):
                v = ports.neighbor(u, p)
                assert ports.port_to(u, v) == p
                assert g.has_edge(u, v)

    def test_shuffled_ports_cover_same_neighbours(self):
        g = erdos_renyi(30, 0.2, seed=2)
        plain = PortAssignment(g)
        shuffled = PortAssignment(g, seed=99)
        for u in g.vertices():
            plain_set = {plain.neighbor(u, p) for p in range(plain.degree(u))}
            shuf_set = {
                shuffled.neighbor(u, p) for p in range(shuffled.degree(u))
            }
            assert plain_set == shuf_set

    def test_shuffle_deterministic(self):
        g = erdos_renyi(30, 0.2, seed=3)
        a = PortAssignment(g, seed=5)
        b = PortAssignment(g, seed=5)
        for u in g.vertices():
            for p in range(a.degree(u)):
                assert a.neighbor(u, p) == b.neighbor(u, p)

    def test_invalid_port_rejected(self):
        g = star(5)
        ports = PortAssignment(g)
        with pytest.raises(ValueError):
            ports.neighbor(1, 1)  # leaf has a single port
        with pytest.raises(ValueError):
            ports.neighbor(0, -1)

    def test_non_neighbour_rejected(self):
        g = star(5)
        ports = PortAssignment(g)
        with pytest.raises(ValueError):
            ports.port_to(1, 2)  # two leaves are not adjacent
