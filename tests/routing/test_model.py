"""Space accounting and the scheme contract."""

import pytest

from repro.routing.model import SizedTable, words_of


class TestWordsOf:
    def test_scalars(self):
        assert words_of(5) == 1
        assert words_of(2.5) == 1
        assert words_of("tag") == 1

    def test_none_and_bool_free(self):
        assert words_of(None) == 0
        assert words_of(True) == 0

    def test_containers(self):
        assert words_of((1, 2, 3)) == 3
        assert words_of([1, (2, 3)]) == 3
        assert words_of({1: 2, 3: (4, 5)}) == 5
        assert words_of(()) == 0

    def test_nested_none_free(self):
        assert words_of((1, None, 2)) == 2

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            words_of(object())

    def test_custom_words_protocol(self):
        class Thing:
            def words(self):
                return 7

        assert words_of(Thing()) == 7


class TestSizedTable:
    def test_put_get_has(self):
        t = SizedTable(0)
        t.put("cat", 1, (10, 20))
        assert t.get("cat", 1) == (10, 20)
        assert t.has("cat", 1)
        assert not t.has("cat", 2)
        assert t.get("missing", 1) is None
        assert t.get("cat", 9, default="x") == "x"

    def test_overwrite(self):
        t = SizedTable(0)
        t.put("cat", 1, 5)
        t.put("cat", 1, 6)
        assert t.get("cat", 1) == 6
        assert t.total_words() == 2  # key + value

    def test_words_by_category(self):
        t = SizedTable(0)
        t.put("a", 1, (2, 3))       # 1 + 2 = 3 words
        t.put("b", "k", [1, 2, 3])  # 1 + 3 = 4 words
        by_cat = t.words_by_category()
        assert by_cat == {"a": 3, "b": 4}
        assert t.total_words() == 7

    def test_categories_listing(self):
        t = SizedTable(3)
        t.put("x", 0, 0)
        t.put("y", 0, 0)
        assert set(t.categories()) == {"x", "y"}
        assert t.owner == 3

    def test_category_raw_access(self):
        t = SizedTable(0)
        t.put("c", 5, 50)
        assert t.category("c") == {5: 50}
        assert t.category("nope") == {}
