"""Failure injection: corrupted headers and labels must fail loudly.

A routing scheme that silently delivers to the wrong vertex, or loops
forever, is worse than one that errors.  These tests tamper with labels
and headers and assert the failure mode is always an exception or a
correct delivery — never a silent misdelivery and never an unbounded
walk (the simulator's hop budget converts loops into errors).
"""

import pytest

from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.model import Deliver, Forward
from repro.routing.simulator import RoutingLoopError
from repro.schemes import Stretch5PlusScheme, Warmup3Scheme


@pytest.fixture(scope="module")
def scheme():
    g = with_random_weights(erdos_renyi(60, 0.09, seed=401), seed=402)
    metric = MetricView(g)
    return Warmup3Scheme(g, eps=0.5, metric=metric, seed=1)


def _drive(scheme, source, dest_label, max_hops=600):
    """Manually drive the scheme with a (possibly corrupted) label."""
    header = None
    cur = source
    for _ in range(max_hops):
        action = scheme.step(cur, header, dest_label)
        if isinstance(action, Deliver):
            return cur
        assert isinstance(action, Forward)
        cur = scheme.ports.neighbor(cur, action.port)
        header = action.header
    raise RoutingLoopError("hop budget exhausted")


class TestLabelTampering:
    def test_swapped_label_delivers_to_labeled_vertex(self, scheme):
        """Using w's label while 'meaning' v must reach w (the label is
        the ground truth), never some third vertex."""
        label_of_20 = scheme.label_of(20)
        arrived = _drive(scheme, 3, label_of_20)
        assert arrived == 20

    def test_wrong_color_in_label_fails_or_delivers(self, scheme):
        """A label with a corrupted color field either still delivers at
        the right vertex or raises — never misdelivers."""
        v = 25
        good = scheme.label_of(v)
        bad_color = (good[1] + 1) % scheme.q
        tampered = (v, bad_color)
        try:
            arrived = _drive(scheme, 2, tampered)
        except (RoutingLoopError, ValueError, RuntimeError, KeyError):
            return
        assert arrived == v

    def test_nonexistent_vertex_label_raises(self, scheme):
        tampered = (10_000, 0)
        with pytest.raises(Exception):
            _drive(scheme, 2, tampered)


class TestHeaderTampering:
    def test_corrupted_waypoints_raise(self, scheme):
        """A header pointing at a vertex outside every ball must raise
        when the waypoint is unreachable, not wander."""
        v = 40
        label = scheme.label_of(v)
        bogus_header = ("t1", ("seq", 0, (9_999,), None))
        with pytest.raises(Exception):
            cur = 2
            header = bogus_header
            for _ in range(100):
                action = scheme.step(cur, header, label)
                if isinstance(action, Deliver):
                    raise AssertionError("delivered under a bogus header")
                cur = scheme.ports.neighbor(cur, action.port)
                header = action.header

    def test_unknown_header_tag_raises(self, scheme):
        with pytest.raises(ValueError):
            scheme.step(2, ("no-such-phase", 1), scheme.label_of(9))


class TestTheorem11Tampering:
    @pytest.fixture(scope="class")
    def t11(self):
        g = with_random_weights(erdos_renyi(60, 0.09, seed=403), seed=404)
        return Stretch5PlusScheme(g, eps=0.6, metric=MetricView(g), seed=2)

    def test_swapped_label_delivers_to_labeled_vertex(self, t11):
        label = t11.label_of(33)
        arrived = _drive(t11, 5, label)
        assert arrived == 33

    def test_corrupt_pivot_fails_or_delivers(self, t11):
        v = 17
        vv, pivot, part, z = t11.label_of(v)
        # point the label at a different landmark's partition slot
        tampered = (vv, pivot, (part + 1) % t11.q, z)
        try:
            arrived = _drive(t11, 4, tampered)
        except (RoutingLoopError, ValueError, RuntimeError, KeyError):
            return
        assert arrived == v


class TestValidation:
    def test_validate_scheme_passes_on_healthy_scheme(self, scheme):
        from repro.eval.validation import validate_scheme

        result = validate_scheme(scheme, scheme.metric, sample=80, seed=3)
        assert result.ok, result.problems
        assert result.checked_pairs > 0
        assert result.max_label_words >= 1

    def test_validate_scheme_reports_bound_violations(self, scheme):
        """Validation must flag a scheme whose advertised bound is a lie."""
        from repro.eval.validation import validate_scheme

        original = scheme.stretch_bound
        scheme.stretch_bound = lambda: 1.0  # claim exactness
        try:
            result = validate_scheme(scheme, scheme.metric, sample=120, seed=4)
        finally:
            scheme.stretch_bound = original
        assert not result.ok
        assert any("exceeds" in p for p in result.problems)
