"""Routing-state serialization: exact round trips, deployable tables."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.model import SizedTable
from repro.routing.persistence import (
    decode_value,
    dumps,
    encode_value,
    export_table,
    import_table,
    loads,
)
from repro.routing.simulator import route
from repro.schemes import Stretch5PlusScheme, Warmup3Scheme

values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(2**50), 2**50)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=6),
    lambda children: st.tuples(children, children) | st.tuples(children),
    max_leaves=12,
)


class TestValueCodec:
    @given(values)
    @settings(max_examples=200, deadline=None)
    def test_round_trip_through_json(self, value):
        encoded = json.loads(json.dumps(encode_value(value)))
        assert decode_value(encoded) == value

    def test_dict_values_round_trip(self):
        # generalized-scheme labels carry per-level dicts
        value = {1: (3, 0, 4, None), 2: (5, 1, 2, 9)}
        encoded = json.loads(json.dumps(encode_value(value)))
        assert decode_value(encoded) == value

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            encode_value({1, 2})


class TestTableRoundTrip:
    def test_exact_words_preserved(self):
        table = SizedTable(7)
        table.put("ball", 3, 2)
        table.put("seq", 12, ((1, 2, 3), None))
        table.put("const", "hash_seed", 99)
        table.put("xsect", (1, 2), 5)
        rebuilt = import_table(json.loads(json.dumps(export_table(table))))
        assert rebuilt.owner == 7
        assert rebuilt.words_by_category() == table.words_by_category()
        assert rebuilt.get("seq", 12) == ((1, 2, 3), None)
        assert rebuilt.get("xsect", (1, 2)) == 5

    def test_empty_table(self):
        rebuilt = import_table(export_table(SizedTable(0)))
        assert rebuilt.total_words() == 0


class TestSchemeRoundTrip:
    @pytest.fixture(scope="class")
    def scheme(self):
        g = with_random_weights(erdos_renyi(60, 0.09, seed=701), seed=702)
        return Warmup3Scheme(g, eps=0.5, metric=MetricView(g), seed=3)

    def test_state_survives_json(self, scheme):
        state = loads(dumps(scheme))
        assert state["n"] == 60
        assert state["scheme"] == "Warmup3Scheme"
        for v in range(60):
            assert state["labels"][v] == scheme.label_of(v)
            assert (
                state["tables"][v].words_by_category()
                == scheme.table_of(v).words_by_category()
            )

    def test_deployed_tables_route_identically(self, scheme):
        """Swap the scheme's tables for deserialized ones; routes and
        lengths must be identical — the state is self-contained."""
        state = loads(dumps(scheme))
        reference = [route(scheme, s, t).path for s, t in [(0, 41), (5, 59)]]
        original = scheme._tables
        scheme._tables = state["tables"]
        try:
            replayed = [route(scheme, s, t).path for s, t in [(0, 41), (5, 59)]]
        finally:
            scheme._tables = original
        assert replayed == reference

    def test_thm11_state_round_trips(self):
        g = with_random_weights(erdos_renyi(50, 0.1, seed=703), seed=704)
        scheme = Stretch5PlusScheme(g, eps=0.6, metric=MetricView(g), seed=4)
        state = loads(dumps(scheme))
        total_original = sum(
            scheme.table_of(v).total_words() for v in range(50)
        )
        total_rebuilt = sum(t.total_words() for t in state["tables"])
        assert total_rebuilt == total_original
