"""The message-routing simulator: delivery, loop detection, measurement."""

import pytest

from repro.graph.core import Graph
from repro.graph.generators import cycle, grid
from repro.graph.metric import MetricView
from repro.routing.model import (
    CompactRoutingScheme,
    Deliver,
    Forward,
    SizedTable,
)
from repro.routing.ports import PortAssignment
from repro.routing.simulator import RoutingLoopError, measure_stretch, route


class _SpinScheme(CompactRoutingScheme):
    """Deliberately broken scheme that walks a cycle forever."""

    name = "spin"

    def __init__(self, graph, ports):
        super().__init__(graph, ports)
        self._tables = [SizedTable(u) for u in graph.vertices()]

    def label_of(self, v):
        return v

    def table_of(self, v):
        return self._tables[v]

    def step(self, u, header, dest_label):
        return Forward(0, None)


class _WrongDeliveryScheme(_SpinScheme):
    name = "wrong-delivery"

    def step(self, u, header, dest_label):
        return Deliver()  # claims delivery wherever it is


class _GreedyGridScheme(CompactRoutingScheme):
    """Correct-by-construction greedy routing on a grid (for metrics)."""

    name = "greedy-grid"

    def __init__(self, graph, ports, cols):
        super().__init__(graph, ports)
        self.cols = cols
        self._tables = [SizedTable(u) for u in graph.vertices()]

    def label_of(self, v):
        return v

    def table_of(self, v):
        return self._tables[v]

    def step(self, u, header, dest_label):
        if u == dest_label:
            return Deliver()
        r, c = divmod(u, self.cols)
        tr, tc = divmod(dest_label, self.cols)
        if r != tr:
            nxt = u + self.cols if tr > r else u - self.cols
        else:
            nxt = u + 1 if tc > c else u - 1
        return Forward(self.ports.port_to(u, nxt), header)


@pytest.fixture()
def grid_scheme():
    g = grid(6, 6)
    return _GreedyGridScheme(g, PortAssignment(g), 6), MetricView(g)


class TestRoute:
    def test_records_path_and_length(self, grid_scheme):
        scheme, metric = grid_scheme
        result = route(scheme, 0, 35)
        assert result.delivered
        assert result.path[0] == 0 and result.path[-1] == 35
        assert result.hops == len(result.path) - 1
        assert result.length == metric.d(0, 35)  # greedy is exact on grids

    def test_loop_detected(self):
        g = cycle(8)
        scheme = _SpinScheme(g, PortAssignment(g))
        with pytest.raises(RoutingLoopError):
            route(scheme, 0, 4)

    def test_loop_error_carries_partial_trace(self):
        """Fault diagnostics come off the exception, not a re-run."""
        g = cycle(8)
        scheme = _SpinScheme(g, PortAssignment(g))
        with pytest.raises(RoutingLoopError) as info:
            route(scheme, 0, 4, max_hops=10)
        exc = info.value
        assert len(exc.partial_path) == 11 + 1  # source + max_hops+1 moves
        assert exc.partial_path[0] == 0
        failed = exc.result
        assert failed is not None and failed.failed
        assert not failed.delivered
        assert failed.path == exc.partial_path
        assert failed.last_header == exc.last_header
        assert "not delivered" in failed.error

    def test_wrong_delivery_detected(self):
        g = cycle(8)
        scheme = _WrongDeliveryScheme(g, PortAssignment(g))
        with pytest.raises(RuntimeError):
            route(scheme, 0, 4)

    def test_wrong_delivery_carries_partial_trace(self):
        from repro.routing.simulator import MisdeliveryError

        g = cycle(8)
        scheme = _WrongDeliveryScheme(g, PortAssignment(g))
        with pytest.raises(MisdeliveryError) as info:
            route(scheme, 0, 4)
        exc = info.value
        assert exc.partial_path[0] == 0
        assert exc.result is not None and exc.result.failed
        # a failed result never counts as delivered, even if the walk
        # happens to end at the target
        assert not exc.result.delivered

    def test_self_route_zero_hops(self, grid_scheme):
        scheme, _ = grid_scheme
        result = route(scheme, 9, 9)
        assert result.hops == 0 and result.length == 0.0


class TestMeasureStretch:
    def test_exact_scheme_reports_stretch_one(self, grid_scheme):
        scheme, metric = grid_scheme
        pairs = [(u, v) for u in range(0, 36, 5) for v in range(1, 36, 7) if u != v]
        report = measure_stretch(scheme, metric, pairs)
        assert report.max_stretch == pytest.approx(1.0)
        assert report.avg_stretch == pytest.approx(1.0)
        assert report.pairs == len(pairs)

    def test_additive_over_accounting(self, grid_scheme):
        scheme, metric = grid_scheme
        report = measure_stretch(
            scheme, metric, [(0, 35)], multiplicative_slack=1.0
        )
        assert report.max_additive_over == pytest.approx(0.0)

    def test_worst_pair_recorded(self, grid_scheme):
        scheme, metric = grid_scheme
        report = measure_stretch(scheme, metric, [(0, 1), (0, 35)])
        (s, t), routed, exact = report.worst
        assert (s, t) in [(0, 1), (0, 35)]
        assert routed == pytest.approx(exact)  # exact scheme

    def test_zero_distance_pairs_skipped(self, grid_scheme):
        scheme, metric = grid_scheme
        report = measure_stretch(scheme, metric, [(3, 3), (0, 1)])
        assert report.pairs == 1

    def test_row_format(self, grid_scheme):
        scheme, metric = grid_scheme
        report = measure_stretch(scheme, metric, [(0, 1)])
        row = report.row("demo")
        assert "demo" in row and "stretch" in row
