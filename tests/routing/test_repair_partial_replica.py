"""Partially-written replica dirs surface typed, and repair() heals them.

The bugfix under test: a ``replica/<r>`` root whose ``groups/`` subdir
is missing (an interrupted ``write_shards`` or botched rsync) used to
surface as a raw ``FileNotFoundError``/``OSError`` from deep inside the
store.  It must instead surface as
:class:`~repro.routing.serving.ShardUnavailableError` *naming the
replica* — from ``repair()``'s per-copy causes, from serving-time
failover, and from cluster-worker startup (covered in
``tests/cluster``).
"""

import os
import shutil

import pytest

from repro.api import SubstrateCache, build
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.routing.serving import (
    ReplicaExhaustedError,
    ReplicatedShardStore,
    ShardUnavailableError,
    write_shards,
)

N = 120
GROUP_SIZE = 16


@pytest.fixture(scope="module")
def replicated_dir(tmp_path_factory):
    g = with_random_weights(
        erdos_renyi(N, 7.0 / (N - 1), seed=17), seed=18, low=1.0, high=8.0
    )
    session = build("tz2", g, cache=SubstrateCache(), seed=6)
    path = str(tmp_path_factory.mktemp("repair") / "shards")
    write_shards(
        session.scheme, path,
        spec_name=session.spec_name, params=session.params,
        seed=session.seed, packed=True, group_size=GROUP_SIZE,
        replicas=2,
    )
    return path


@pytest.fixture()
def broken_copy(replicated_dir, tmp_path):
    """A copy of the replicated layout to break per-test."""
    dst = str(tmp_path / "copy")
    shutil.copytree(replicated_dir, dst)
    return dst


def _groups_dir(root, r):
    return os.path.join(root, "replica", str(r), "groups")


def test_repair_rebuilds_partially_written_replica(broken_copy):
    shutil.rmtree(_groups_dir(broken_copy, 1))
    store = ReplicatedShardStore(broken_copy)
    try:
        counters = store.repair()
        assert counters["repaired"] == store.group_count()
        assert os.path.isdir(_groups_dir(broken_copy, 1))
        # the rebuilt replica is byte-for-byte servable
        assert store.verify() == store.group_count()
    finally:
        store.close()


def test_repair_names_the_partial_replica_when_no_copy_survives(
    broken_copy,
):
    shutil.rmtree(_groups_dir(broken_copy, 0))
    shutil.rmtree(_groups_dir(broken_copy, 1))
    store = ReplicatedShardStore(broken_copy)
    try:
        with pytest.raises(ReplicaExhaustedError) as err:
            store.repair()
        causes = err.value.causes
        assert set(causes) == {0, 1}
        for r, cause in causes.items():
            # the typed, replica-named translation — not a raw OSError
            assert isinstance(cause, ShardUnavailableError)
            assert f"replica {r}" in str(cause)
            assert "partially written" in str(cause)
            assert "groups/ directory is missing" in str(cause)
    finally:
        store.close()


def test_serving_reads_fail_over_past_partial_replica(broken_copy):
    shutil.rmtree(_groups_dir(broken_copy, 0))
    store = ReplicatedShardStore(broken_copy)
    try:
        # copy 0 is partially written; every read lands on copy 1
        table = store.node(0)
        assert table is not None
        assert store.stats()["failovers"] >= 1
    finally:
        store.close()
