"""Compile layer + shard codec: word-exact records, lossless bytes.

The contracts the serving stack rests on, asserted for EVERY registered
scheme:

* compiling a built scheme yields one :class:`NodeTable` per vertex whose
  word accounting reproduces the scheme's own ``SchemeStats`` exactly
  (per vertex and in total),
* the binary codec round-trips every record losslessly (categories,
  labels, neighbour lists and weights), with the versioned header
  rejecting foreign and future bytes,
* the per-scheme ``shard_categories`` manifest rejects drifting state —
  a category present in tables but unknown to the decision function
  refuses to compile.
"""

import pytest

from repro.api import SubstrateCache, build, get_spec, scheme_names
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.routing.model import words_of
from repro.routing.shard_codec import (
    CODEC_VERSION,
    ShardCodecError,
    decode_node_table,
    encode_node_table,
    encoded_size,
)
from repro.routing.tables import NodeTable, compile_tables

N = 64


@pytest.fixture(scope="module")
def graphs():
    gu = erdos_renyi(N, 8.0 / (N - 1), seed=51)
    gw = with_random_weights(gu, seed=52, low=1.0, high=8.0)
    return {"unweighted": gu, "weighted": gw}


@pytest.fixture(scope="module")
def caches():
    return {"unweighted": SubstrateCache(), "weighted": SubstrateCache()}


@pytest.fixture(scope="module")
def sessions(graphs, caches):
    out = {}
    for name in scheme_names():
        spec = get_spec(name)
        kind = "weighted" if spec.weighted_capable else "unweighted"
        out[name] = build(name, graphs[kind], cache=caches[kind], seed=9)
    return out


@pytest.mark.parametrize("name", scheme_names())
def test_word_accounting_reconciles(name, sessions):
    """Per-vertex and total words match SizedTable/SchemeStats exactly."""
    scheme = sessions[name].scheme
    records = scheme.compile_tables()
    assert len(records) == scheme.graph.n
    stats = scheme.stats()
    for record in records:
        table = scheme.table_of(record.owner)
        assert record.table_words() == table.total_words()
        assert record.label_words() == words_of(
            scheme.label_of(record.owner)
        )
        # the rebuilt SizedTable carries identical accounting, category
        # by category
        rebuilt = record.sized_table()
        assert rebuilt.owner == record.owner
        assert rebuilt.words_by_category() == table.words_by_category()
    assert (
        sum(r.table_words() for r in records) == stats.total_table_words
    )
    assert max(r.table_words() for r in records) == stats.max_table_words
    assert max(r.label_words() for r in records) == stats.max_label_words


@pytest.mark.parametrize("name", scheme_names())
def test_codec_roundtrip_lossless(name, sessions):
    scheme = sessions[name].scheme
    for record in scheme.compile_tables():
        blob = encode_node_table(record)
        assert encoded_size(record) == len(blob)
        back = decode_node_table(blob)
        assert back.owner == record.owner
        assert back.neighbors == record.neighbors
        assert back.label == record.label
        assert back.categories == record.categories
        # word accounting survives the byte round trip
        assert back.table_words() == record.table_words()


@pytest.mark.parametrize("name", scheme_names())
def test_neighbors_are_port_ordered(name, sessions):
    scheme = sessions[name].scheme
    record = scheme.compile_tables()[3]
    for port, (nb, w) in enumerate(record.neighbors):
        assert scheme.ports.neighbor(3, port) == nb
        assert scheme.graph.weight(3, nb) == w
        assert record.port_to(nb) == port
        assert record.neighbor(port) == nb
        assert record.edge(port) == (nb, w)
    with pytest.raises(ValueError, match="no port"):
        record.neighbor(record.degree())
    with pytest.raises(ValueError, match="not a neighbour"):
        record.port_to(3)  # self is never a neighbour


class TestCategoryManifest:
    def test_undeclared_category_refuses_to_compile(self, sessions):
        scheme = sessions["warmup3"].scheme
        scheme.table_of(0).put("rogue", 1, 2)
        try:
            with pytest.raises(ValueError, match="rogue"):
                scheme.compile_tables()
        finally:
            scheme.table_of(0)._data.pop("rogue", None)

    def test_manifest_covers_built_categories(self, sessions):
        for name, session in sessions.items():
            declared = session.scheme.shard_categories()
            assert declared is not None, name
            built = set()
            for v in session.graph.vertices():
                built.update(session.scheme.table_of(v).categories())
            assert built <= declared, (name, built - declared)


class TestCodecValidation:
    def _record(self):
        return NodeTable(
            owner=5,
            neighbors=((1, 1.0), (2, 2.5)),
            label=(5, 0, None, ("x", -3)),
            categories={"ball": {1: 0, (2, 3): [1.5, True]}},
        )

    def test_weighted_and_exotic_values_roundtrip(self):
        back = decode_node_table(encode_node_table(self._record()))
        assert back == self._record()

    def test_bad_magic_rejected(self):
        with pytest.raises(ShardCodecError, match="magic"):
            decode_node_table(b"XX\x01\x00junk")

    def test_future_version_rejected(self):
        blob = bytearray(encode_node_table(self._record()))
        blob[2] = CODEC_VERSION + 1
        with pytest.raises(ShardCodecError, match="version"):
            decode_node_table(bytes(blob))

    def test_trailing_bytes_rejected(self):
        blob = encode_node_table(self._record()) + b"\x00"
        with pytest.raises(ShardCodecError, match="trailing"):
            decode_node_table(blob)

    def test_truncation_rejected(self):
        blob = encode_node_table(self._record())
        with pytest.raises(ShardCodecError):
            decode_node_table(blob[: len(blob) // 2])

    def test_unencodable_value_rejected(self):
        record = self._record()
        record.categories["ball"][9] = object()
        with pytest.raises(ShardCodecError, match="cannot encode"):
            encode_node_table(record)


def test_compile_tables_standalone_matches_method(sessions):
    scheme = sessions["tz2"].scheme
    assert compile_tables(scheme) == scheme.compile_tables()
