"""Chaos suite: serving under injected disk faults.

The fault-tolerance acceptance gate (ISSUE 6): with ``replicas=2`` and a
seeded fault schedule injecting every fault kind on >= 1% of reads,

* every route completes with hop decisions **identical** to the
  fault-free run (the store fails over / retries under the router,
  invisibly to the routing layer),
* every injected corruption is **detected** — zero corrupted tables are
  silently decoded; each non-transient fault produces exactly one
  observable failover, so the counters reconcile with the schedule,
* ``serve_stats()`` / ``health()`` expose what happened, and
  ``repair()`` restores full redundancy from the healthy copies.

The injector is deterministic (seeded) and bounded (at most one fault
per group file), which is what turns "chaos" into exact assertions: see
:mod:`repro.routing.faults`.
"""

import os
import shutil

import pytest

from repro.api import build, load
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.routing.faults import FAULT_KINDS, FaultInjector, TransientIOError
from repro.routing.serving import (
    LocalRouter,
    ReplicaExhaustedError,
    ReplicatedShardStore,
    ShardIntegrityError,
    open_store,
    write_shards,
)
from repro.routing.simulator import route

N = 220
#: small groups: n=220 spans ~28 group files, so a per-file fault
#: schedule has real surface to hit
GROUP_SIZE = 8
PAIRS = 40
SCHEME = "tz2"


@pytest.fixture(scope="module")
def session():
    g = with_random_weights(erdos_renyi(N, 7.0 / (N - 1), seed=17), seed=18)
    return build(SCHEME, g, seed=6)


@pytest.fixture(scope="module")
def replicated(session, tmp_path_factory):
    """A replicas=2 checksummed shard dir, written once per module."""
    path = str(tmp_path_factory.mktemp("chaos") / "replicated")
    write_shards(
        session.scheme, path,
        spec_name="tz2", params={}, seed=6,
        packed=True, group_size=GROUP_SIZE, replicas=2,
    )
    return path


@pytest.fixture(scope="module")
def baseline(session):
    """Fault-free hop decisions for the chaos workload."""
    pairs = sample_pairs(N, PAIRS, seed=23)
    return {
        (s, t): route(session.scheme, s, t).path for s, t in pairs
    }


def _fresh_copy(replicated, tmp_path, name="copy"):
    target = tmp_path / name
    shutil.copytree(replicated, target)
    return str(target)


class TestFaultInjector:
    def test_deterministic_schedule(self, replicated):
        """Same seed + same access sequence => identical fault events."""
        def events(seed):
            inj = FaultInjector(seed=seed, rates={"bitflip": 0.5})
            store = ReplicatedShardStore(replicated, io=inj)
            for v in range(0, N, GROUP_SIZE):
                store.node(v)
            store.close()
            return [(e["kind"], e["path"]) for e in inj.events]

        assert events(3) == events(3)
        assert events(3) != events(4)  # and the seed actually matters

    def test_at_most_one_fault_per_group_file(self, replicated):
        inj = FaultInjector(seed=1, rates={"missing": 1.0})
        store = ReplicatedShardStore(replicated, io=inj)
        for v in range(0, N, GROUP_SIZE):
            store.node(v)
            store.node(v)  # second touch: resident, no IO at all
        store.close()
        basenames = [os.path.basename(e["path"]) for e in inj.events]
        assert len(basenames) == len(set(basenames))
        # rate 1.0: every group's first map faulted, failover served it
        assert len(basenames) == (N + GROUP_SIZE - 1) // GROUP_SIZE

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultInjector(rates={"gremlins": 0.5})

    def test_transient_raises_eio_once(self, replicated, tmp_path):
        import errno

        inj = FaultInjector(seed=2, rates={"transient": 1.0})
        path = os.path.join(replicated, "replica", "0", "groups",
                            "0000.pack")
        with pytest.raises(TransientIOError) as info:
            inj.map_group(path)
        assert info.value.errno == errno.EIO
        # retry (same basename, now protected) succeeds
        view = inj.map_group(path)
        assert len(view) > 0
        inj.close()


class TestChaosGate:
    """The acceptance gate: >= 1% faults, all kinds, exact reconciliation."""

    RATES = {kind: 0.05 for kind in FAULT_KINDS}

    def _chaos_run(self, replicated, seed):
        inj = FaultInjector(seed=seed, rates=self.RATES)
        store = ReplicatedShardStore(replicated, io=inj)
        return inj, store, LocalRouter(store)

    def test_routes_identical_under_faults(self, replicated, baseline):
        inj, store, router = self._chaos_run(replicated, seed=9)
        for (s, t), path in baseline.items():
            assert route(router, s, t).path == path, (s, t)
        counts = inj.fault_counts()
        assert sum(counts.values()) >= 3, counts  # the schedule fired
        store.close()

    def test_counters_reconcile_with_schedule(self, replicated, baseline):
        inj, store, router = self._chaos_run(replicated, seed=9)
        for (s, t), _ in baseline.items():
            route(router, s, t)
        counts = inj.fault_counts()
        corruptions = (
            counts["missing"] + counts["truncate"] + counts["bitflip"]
        )
        # every non-transient fault => exactly one failover (detection),
        # every transient => exactly one successful retry, and each
        # failover quarantined exactly one replica copy
        assert store.failovers == corruptions
        assert store.retries == counts["transient"]
        assert store.stats()["quarantined"] == corruptions
        assert store.repairs == 0
        health = store.health()
        if sum(counts.values()):
            assert health["status"] == "degraded"
        store.close()

    def test_every_fault_kind_fires_across_seeds(self, replicated, baseline):
        """The gate covers all four kinds (across a few seeds, since one
        seeded schedule need not draw every kind)."""
        seen = {kind: 0 for kind in FAULT_KINDS}
        for seed in (9, 10, 11, 12):
            inj, store, router = self._chaos_run(replicated, seed=seed)
            for (s, t), path in baseline.items():
                assert route(router, s, t).path == path, (seed, s, t)
            for kind, count in inj.fault_counts().items():
                seen[kind] += count
            store.close()
        assert all(count > 0 for count in seen.values()), seen

    def test_serve_stats_surface_fault_counters(self, replicated, baseline):
        inj, store, router = self._chaos_run(replicated, seed=9)
        for (s, t), _ in baseline.items():
            route(router, s, t)
        stats = store.stats()
        for key in ("retries", "checksum_failures", "failovers",
                    "repairs", "quarantined"):
            assert key in stats
        assert stats["failovers"] == store.failovers
        store.close()


class TestQuarantineRepair:
    def _corrupt(self, root, group, replica, flip=-3):
        path = os.path.join(
            root, "replica", str(replica), "groups", f"{group:04x}.pack"
        )
        with open(path, "rb") as fh:
            buf = bytearray(fh.read())
        buf[flip] ^= 0x20
        with open(path, "wb") as fh:
            fh.write(bytes(buf))
        return path

    def test_on_disk_corruption_fails_over_and_repairs(
        self, replicated, baseline, tmp_path
    ):
        root = _fresh_copy(replicated, tmp_path)
        # group 0 / replica 0: on the serving path => observed failover;
        # group 2 / replica 1: dormant (replica 0 serves it) => only the
        # verify/repair sweep can see it
        self._corrupt(root, 0, 0)
        self._corrupt(root, 2, 1)
        store = open_store(root)
        assert isinstance(store, ReplicatedShardStore)
        router = LocalRouter(store)
        for (s, t), path in baseline.items():
            assert route(router, s, t).path == path, (s, t)
        assert store.failovers == 1
        assert store.quarantined() == {0: (0,)}
        report = store.verify_report()
        bad = sorted(k for k, v in report.items() if v != "ok")
        assert bad == ["group 0000 replica 0", "group 0002 replica 1"]
        out = store.repair()
        assert out["repaired"] == 2
        assert store.quarantined() == {}
        # the rewritten copies verify end to end
        assert store.verify() == (N + GROUP_SIZE - 1) // GROUP_SIZE
        # and the store keeps serving correctly after repair
        for (s, t), path in list(baseline.items())[:5]:
            assert route(router, s, t).path == path
        store.close()

    def test_missing_replica_file_repaired(self, replicated, baseline,
                                           tmp_path):
        root = _fresh_copy(replicated, tmp_path)
        victim = os.path.join(root, "replica", "1", "groups", "0001.pack")
        os.remove(victim)
        store = open_store(root)
        with pytest.raises(Exception):
            store.verify()  # the sweep sees the hole
        assert store.repair()["repaired"] == 1
        assert os.path.exists(victim)
        assert store.verify() == (N + GROUP_SIZE - 1) // GROUP_SIZE
        store.close()

    def test_transient_quarantine_is_requalified(self, replicated,
                                                 baseline, tmp_path):
        """A replica quarantined for a *transient* reason (injected
        missing file — healthy on disk) is requalified, not rewritten."""
        root = _fresh_copy(replicated, tmp_path)
        inj = FaultInjector(seed=1, rates={"missing": 1.0})
        store = ReplicatedShardStore(root, io=inj)
        store.node(0)  # replica 0 of group 0 faults, replica 1 serves
        assert store.quarantined() == {0: (1,)} or store.quarantined() == {
            0: (0,)
        }
        out = store.repair()
        assert out == {"repaired": 0, "requalified": 1}
        assert store.quarantined() == {}
        store.close()

    def test_all_replicas_bad_raises_with_causes(self, replicated,
                                                 baseline, tmp_path):
        root = _fresh_copy(replicated, tmp_path)
        self._corrupt(root, 1, 0)
        self._corrupt(root, 1, 1)
        store = open_store(root)
        with pytest.raises(ReplicaExhaustedError) as info:
            store.node(GROUP_SIZE)  # first vertex of group 1
        assert set(info.value.causes) == {0, 1}
        with pytest.raises(ReplicaExhaustedError):
            store.repair()  # nothing healthy to repair group 1 from
        store.close()

    def test_routes_outside_damaged_group_unaffected(
        self, replicated, session, tmp_path
    ):
        root = _fresh_copy(replicated, tmp_path)
        self._corrupt(root, 3, 0)
        self._corrupt(root, 3, 1)
        store = open_store(root)
        router = LocalRouter(store)
        # a pair whose route never enters group 3 still serves
        for s, t in sample_pairs(N, 30, seed=29):
            expected = route(session.scheme, s, t).path
            if any(v // GROUP_SIZE == 3 for v in expected):
                continue
            try:
                assert route(router, s, t).path == expected
            except ReplicaExhaustedError:
                # legitimate: the scheme consulted a group-3 vertex's
                # table mid-route even though the path avoids it
                continue
        store.close()


class TestDegradedObservability:
    def test_session_health_and_degraded_status(self, replicated,
                                                baseline, tmp_path):
        root = _fresh_copy(replicated, tmp_path)
        served = load(root)
        assert served.health()["status"] == "ok"
        ((s, t), expected) = next(iter(baseline.items()))
        assert served.route(s, t).path == expected
        served.scheme.store.close()

        # corrupt a copy, reload: still serves, reports degraded
        path = os.path.join(root, "replica", "0", "groups", "0000.pack")
        with open(path, "rb") as fh:
            buf = bytearray(fh.read())
        buf[-1] ^= 0x01
        with open(path, "wb") as fh:
            fh.write(bytes(buf))
        served = load(root)
        for (s, t), expected in baseline.items():
            assert served.route(s, t).path == expected
        health = served.health()
        assert health["status"] == "degraded"
        assert health["failovers"] == 1
        assert health["quarantined"] == 1
        stats = served.serve_stats()
        assert stats["failovers"] == 1
        served.scheme.store.close()

    def test_in_memory_session_has_no_health(self, session):
        assert session.health() is None

    def test_integrity_error_is_typed_and_catchable(self, replicated,
                                                    tmp_path):
        """ShardIntegrityError keeps the legacy ShardCodecError contract
        while being a ServingError — both handler styles work."""
        from repro.routing.serving import ServingError
        from repro.routing.shard_codec import ShardCodecError

        assert issubclass(ShardIntegrityError, ServingError)
        assert issubclass(ShardIntegrityError, ShardCodecError)
