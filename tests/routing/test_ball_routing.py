"""Ball routing (Lemma 2): shortest paths inside vicinities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi, grid, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.ball_routing import BallRoutingScheme, BallRoutingTables
from repro.routing.model import SizedTable
from repro.routing.ports import PortAssignment
from repro.routing.simulator import route
from repro.structures.balls import BallFamily


def _scheme(g, ell, port_seed=None):
    m = MetricView(g)
    fam = BallFamily(m, ell)
    ports = PortAssignment(g, seed=port_seed)
    return BallRoutingScheme(m, fam, ports), m, fam


class TestShortestPathDelivery:
    @pytest.mark.parametrize("ell", [2, 6, 15])
    def test_unweighted(self, ell):
        g = erdos_renyi(50, 0.1, seed=1)
        scheme, m, fam = _scheme(g, ell)
        for u in range(0, 50, 4):
            for v in fam.ball(u):
                result = route(scheme, u, v)
                assert result.delivered
                assert result.length == pytest.approx(m.d(u, v))

    def test_weighted(self):
        g = with_random_weights(erdos_renyi(50, 0.1, seed=2), seed=3)
        scheme, m, fam = _scheme(g, 8)
        for u in range(0, 50, 4):
            for v in fam.ball(u):
                result = route(scheme, u, v)
                assert result.length == pytest.approx(m.d(u, v))

    def test_grid(self):
        g = grid(7, 7)
        scheme, m, fam = _scheme(g, 10)
        for u in range(0, 49, 5):
            for v in fam.ball(u):
                assert route(scheme, u, v).length == m.d(u, v)

    @given(port_seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_port_numbering_independence(self, port_seed):
        g = erdos_renyi(30, 0.15, seed=4)
        scheme, m, fam = _scheme(g, 7, port_seed=port_seed)
        for u in (0, 11, 29):
            for v in fam.ball(u):
                assert route(scheme, u, v).length == pytest.approx(m.d(u, v))


class TestBoundaries:
    def test_outside_ball_raises(self):
        g = grid(1, 10)  # path graph
        scheme, m, fam = _scheme(g, 3)
        far = 9
        assert not fam.contains(0, far)
        with pytest.raises(ValueError):
            route(scheme, 0, far)

    def test_self_delivery(self):
        g = grid(3, 3)
        scheme, _, _ = _scheme(g, 4)
        result = route(scheme, 4, 4)
        assert result.delivered and result.hops == 0

    def test_table_size_is_two_words_per_member(self):
        g = erdos_renyi(40, 0.15, seed=5)
        scheme, _, fam = _scheme(g, 9)
        for u in g.vertices():
            # ball includes u itself, which stores no port
            expected = 2 * (len(fam.ball(u)) - 1)
            assert scheme.table_of(u).total_words() == expected


class TestInstall:
    def test_install_into_external_table(self):
        g = erdos_renyi(30, 0.15, seed=6)
        m = MetricView(g)
        fam = BallFamily(m, 6)
        ports = PortAssignment(g)
        tables = BallRoutingTables(m, fam, ports)
        t = SizedTable(5)
        tables.install(t, category="myball")
        for v in fam.ball(5):
            if v != 5:
                port = t.get("myball", v)
                assert ports.neighbor(5, port) == m.next_hop(5, v)

    def test_port_for_outside_ball_is_none(self):
        g = grid(1, 10)
        m = MetricView(g)
        fam = BallFamily(m, 3)
        tables = BallRoutingTables(m, fam, PortAssignment(g))
        assert tables.port_for(0, 9) is None
        assert tables.port_for(0, 0) is None
