"""Fuzz: every bit flip and truncation of a checksummed pack is caught.

The v3 pack layout covers every byte with a CRC32: header + index under
the index checksum, each payload under its entry checksum.  So the
property is absolute, not probabilistic — ANY single-bit flip and ANY
truncation of an encoded pack must raise
:class:`~repro.routing.shard_codec.ShardCodecError` (usually its
:class:`~repro.routing.shard_codec.ChecksumError` subclass) from the
offline sweep, and must never decode into a structurally valid but
*wrong* :class:`NodeTable`.  The corpus is every registered scheme's
real compiled shards (shapes differ per scheme: different categories,
label tuples, sequence payloads), plus a seeded position sample large
enough to hit header, index and payload bytes of every pack.

The serving counterpart (the store refusing to hand corrupted bytes to
the decoder) is asserted here too: a flipped pack behind a
:class:`PackedShardStore` raises on the affected vertex — the table
either arrives intact or not at all.
"""

import random

import pytest

from repro.api import SubstrateCache, build, get_spec, scheme_names
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.routing.shard_codec import (
    ChecksumError,
    ShardCodecError,
    decode_node_table,
    encode_node_table,
    encode_pack,
    find_pack_entry,
    iter_pack_entries,
    verify_pack,
)

N = 60
FLIPS_PER_PACK = 120
TRUNCATIONS_PER_PACK = 40


@pytest.fixture(scope="module")
def packs():
    """One checksummed pack of real compiled shards per registered scheme."""
    gu = erdos_renyi(N, 0.12, seed=51)
    gw = with_random_weights(gu, seed=52)
    caches = {True: SubstrateCache(), False: SubstrateCache()}
    out = {}
    for name in scheme_names():
        spec = get_spec(name)
        weighted = spec.weighted_capable
        session = build(
            name, gw if weighted else gu,
            cache=caches[weighted], seed=5,
        )
        records = session.scheme.compile_tables()
        out[name] = encode_pack(
            [(r.owner, encode_node_table(r)) for r in records],
            checksums=True,
        )
    return out


def _flip(buf: bytes, byte: int, bit: int) -> bytes:
    out = bytearray(buf)
    out[byte] ^= 1 << bit
    return bytes(out)


class TestBitFlips:
    def test_every_scheme_every_flip_detected(self, packs):
        """Seeded single-bit flips across the whole pack always raise."""
        for name, pack in packs.items():
            rng = random.Random(hash(name) & 0xFFFF)
            positions = {
                (rng.randrange(len(pack)), rng.randrange(8))
                for _ in range(FLIPS_PER_PACK)
            }
            # make sure the sample covers all three regions
            positions |= {(0, 0), (4, 1), (7, 2), (len(pack) - 1, 7)}
            for byte, bit in positions:
                flipped = _flip(pack, byte, bit)
                with pytest.raises(ShardCodecError):
                    verify_pack(flipped)

    def test_no_silent_wrong_table(self, packs):
        """A flip that *decodes* must still be refused by the checksum:
        compare what the decoder would return against the truth — any
        structurally valid decode of flipped bytes is either identical
        (impossible for CRC32 on a single flip) or caught upstream."""
        pack = packs["tz2"]
        truth = {
            v: decode_node_table(memoryview(pack)[off:off + length])
            for v, off, length in iter_pack_entries(pack)
        }
        rng = random.Random(77)
        silent = []
        for _ in range(FLIPS_PER_PACK):
            byte, bit = rng.randrange(len(pack)), rng.randrange(8)
            flipped = _flip(pack, byte, bit)
            try:
                verify_pack(flipped)
            except ShardCodecError:
                continue  # detected — the required outcome
            # verify passed: every entry must decode to the exact truth
            for v, off, length in iter_pack_entries(flipped):
                record = decode_node_table(
                    memoryview(flipped)[off:off + length]
                )
                if record != truth[v]:
                    silent.append((byte, bit, v))
        assert silent == [], silent

    def test_index_flip_raises_checksum_error(self, packs):
        pack = packs["tz2"]
        with pytest.raises(ChecksumError):
            verify_pack(_flip(pack, 11, 3))  # inside the index region


class TestTruncations:
    def test_every_scheme_every_truncation_detected(self, packs):
        for name, pack in packs.items():
            rng = random.Random(hash(name) & 0xFFF)
            cuts = {rng.randrange(1, len(pack))
                    for _ in range(TRUNCATIONS_PER_PACK)}
            cuts |= {1, 2, len(pack) - 1, len(pack) // 2}
            for keep in sorted(cuts):
                with pytest.raises(ShardCodecError):
                    verify_pack(pack[:keep])

    def test_appended_garbage_detected(self, packs):
        """Extra trailing bytes shift nothing structurally — only the
        payload bounds check can see them."""
        pack = packs["tz2"]
        with pytest.raises(ShardCodecError):
            verify_pack(pack + b"\x00garbage")


class TestStoreRefusesCorruptBytes:
    """The serving-path half: a store over a flipped pack never hands
    corrupt bytes to the decoder."""

    def test_payload_flip_raises_on_affected_vertex(self, packs, tmp_path):
        import json
        import os

        from repro.routing.serving import (
            PackedShardStore, ServingError, ShardIntegrityError,
        )

        pack = bytearray(packs["tz2"])
        entries = list(iter_pack_entries(bytes(pack)))
        victim, off, length = entries[len(entries) // 2]
        pack[off + length // 2] ^= 0x10

        root = tmp_path / "store"
        os.makedirs(root / "groups")
        (root / "groups" / "0000.pack").write_bytes(bytes(pack))
        (root / "manifest.json").write_text(json.dumps({
            "format": "repro.routing.shards", "version": 3,
            "layout": "packed", "group_size": 4096, "checksums": True,
            "replicas": 1, "n": N, "codec": 1,
            "spec": "tz2", "scheme": "TZUniversalScheme",
            "name": "fuzz", "seed": 0, "params": {},
            "routing_params": {},
        }))
        store = PackedShardStore(str(root))
        with pytest.raises(ShardIntegrityError, match="CRC32"):
            store.node(victim)
        assert store.checksum_failures == 1
        # the typed error is also a ServingError for degraded-mode
        # handlers and a ShardCodecError for legacy ones
        assert issubclass(ShardIntegrityError, ServingError)
        # healthy vertices in the same group still serve after the
        # quarantined mapping is re-mapped
        other = entries[0][0]
        if other != victim:
            assert store.node(other).owner == other
        store.close()
