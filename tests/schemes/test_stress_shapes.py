"""Stress shapes: barbell graphs, deep binary trees, and one larger graph.

Barbells concentrate landmarks in the cliques and force every cross-bar
route through the schemes' far-case branches; complete binary trees push
heavy-path labels to their logarithmic worst case; the marked-slow test
checks a theorem bound at n=800 (the benchmark scale).
"""

import math

import pytest

from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.graph.generators import (
    barbell,
    complete_binary_tree,
    erdos_renyi,
    with_random_weights,
)
from repro.graph.metric import MetricView
from repro.graph.trees import RootedTree
from repro.routing.ports import PortAssignment
from repro.routing.simulator import measure_stretch
from repro.routing.tree_routing import TreeRouting
from repro.schemes import Stretch2Plus1Scheme, Stretch5PlusScheme, Warmup3Scheme


def _pairs(n, a=4, b=6):
    return [(u, v) for u in range(0, n, a) for v in range(1, n, b) if u != v]


def _check(scheme, metric, pairs):
    bound = scheme.stretch_bound()
    alpha, beta = bound if isinstance(bound, tuple) else (bound, 0.0)
    rep = measure_stretch(scheme, metric, pairs, multiplicative_slack=alpha)
    assert rep.max_additive_over <= beta + 1e-6, rep.worst
    return rep


class TestBarbell:
    @pytest.fixture(scope="class")
    def world(self):
        g = barbell(18, 30)  # 66 vertices, bar of 30
        return g, MetricView(g)

    def test_generator_shape(self, world):
        g, m = world
        assert g.n == 66
        # cross-bar distance = path + 2 clique hops
        assert m.d(0, g.n - 1) >= 30

    def test_thm10_across_the_bar(self, world):
        g, m = world
        s = Stretch2Plus1Scheme(g, eps=0.5, metric=m, seed=8)
        _check(s, m, _pairs(g.n, 3, 5))

    def test_warmup_across_the_bar(self, world):
        g, m = world
        _check(Warmup3Scheme(g, eps=0.5, metric=m, seed=8), m, _pairs(g.n, 3, 5))

    def test_tz_across_the_bar(self, world):
        g, m = world
        _check(ThorupZwickScheme(g, k=3, metric=m, seed=8), m, _pairs(g.n, 3, 5))


class TestCompleteBinaryTree:
    def test_tree_labels_hit_log_depth(self):
        g = complete_binary_tree(7)  # 255 vertices
        m = MetricView(g)
        tree = RootedTree(m.spt_parents(0))
        tr = TreeRouting(tree, PortAssignment(g))
        max_lights = max(len(tr.label_of(v)[1]) for v in g.vertices())
        # a complete binary tree needs close to log2(n) light stops...
        assert max_lights >= 4
        # ...but never more (Lemma 3's label bound)
        assert max_lights <= math.log2(g.n) + 1

    def test_scheme_on_tree_topology(self):
        g = complete_binary_tree(5)  # 63 vertices
        m = MetricView(g)
        _check(Warmup3Scheme(g, eps=0.5, metric=m, seed=9), m, _pairs(g.n, 3, 5))


@pytest.mark.slow
class TestBenchmarkScale:
    def test_thm11_at_n800(self):
        g = with_random_weights(erdos_renyi(800, 7.0 / 799, seed=1101), seed=1102)
        m = MetricView(g)
        s = Stretch5PlusScheme(g, eps=0.6, metric=m, seed=10)
        rep = _check(s, m, _pairs(g.n, 23, 31))
        # n^{1/3}-type tables: far below n words per vertex
        assert s.stats().avg_table_words < g.n
