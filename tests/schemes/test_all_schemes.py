"""Uniform contract tests over every routing scheme in the repository.

For each scheme: build on suitable graphs, route a dense pair sample
through the fixed-port simulator, and assert the theorem's (alpha, beta)
stretch bound pair by pair — the reproduction's core claim.
"""

import pytest

from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.graph.generators import (
    erdos_renyi,
    grid,
    ring_with_chords,
    with_random_weights,
)
from repro.graph.metric import MetricView
from repro.routing.ports import PortAssignment
from repro.routing.simulator import measure_stretch, route
from repro.schemes import (
    GeneralMinusScheme,
    GeneralPlusScheme,
    NameIndependent3Eps,
    Stretch2Plus1Scheme,
    Stretch4kMinus7Scheme,
    Stretch5PlusScheme,
    Warmup3Scheme,
)

N = 64


def _pairs(n, step_u=3, step_v=5):
    return [
        (u, v)
        for u in range(0, n, step_u)
        for v in range(1, n, step_v)
        if u != v
    ]


def _unweighted_graphs():
    return {
        "er": erdos_renyi(N, 0.09, seed=101),
        "grid": grid(8, 8),
        "ring": ring_with_chords(N, 20, seed=102),
    }


def _weighted_graphs():
    return {
        "er-w": with_random_weights(erdos_renyi(N, 0.09, seed=103), seed=104),
        "grid-w": with_random_weights(grid(8, 8), seed=105),
    }


# (factory, kwargs, weighted?) — every theorem of the paper + TZ baseline
SCHEMES = [
    pytest.param(Warmup3Scheme, {"eps": 0.5}, "both", id="warmup3"),
    pytest.param(
        Stretch2Plus1Scheme, {"eps": 0.5}, "unweighted", id="thm10"
    ),
    pytest.param(Stretch5PlusScheme, {"eps": 0.6}, "both", id="thm11"),
    pytest.param(
        GeneralMinusScheme, {"ell": 2, "eps": 1.0, "alpha": 0.6},
        "unweighted", id="thm13-l2",
    ),
    pytest.param(
        GeneralPlusScheme, {"ell": 2, "eps": 1.0, "alpha": 0.6},
        "unweighted", id="thm15-l2",
    ),
    pytest.param(
        Stretch4kMinus7Scheme, {"k": 3, "eps": 1.0}, "both", id="thm16-k3"
    ),
    pytest.param(NameIndependent3Eps, {"eps": 0.5}, "both", id="name-indep"),
    pytest.param(ThorupZwickScheme, {"k": 2}, "both", id="tz-k2"),
    pytest.param(ThorupZwickScheme, {"k": 3}, "both", id="tz-k3"),
]


def _bound_of(scheme):
    bound = scheme.stretch_bound()
    if isinstance(bound, tuple):
        return bound
    return (bound, 0.0)


@pytest.mark.parametrize("factory,kwargs,kind", SCHEMES)
class TestStretchBounds:
    def test_unweighted_graphs(self, factory, kwargs, kind):
        if kind == "weighted":
            pytest.skip("weighted-only scheme")
        for name, g in _unweighted_graphs().items():
            metric = MetricView(g)
            scheme = factory(g, metric=metric, seed=7, **kwargs)
            alpha, beta = _bound_of(scheme)
            report = measure_stretch(
                scheme, metric, _pairs(g.n), multiplicative_slack=alpha
            )
            assert report.max_additive_over <= beta + 1e-9, (
                f"{scheme.name} on {name}: worst {report.worst}"
            )

    def test_weighted_graphs(self, factory, kwargs, kind):
        if kind == "unweighted":
            pytest.skip("unweighted-only scheme")
        for name, g in _weighted_graphs().items():
            metric = MetricView(g)
            scheme = factory(g, metric=metric, seed=7, **kwargs)
            alpha, beta = _bound_of(scheme)
            report = measure_stretch(
                scheme, metric, _pairs(g.n), multiplicative_slack=alpha
            )
            assert report.max_additive_over <= beta + 1e-6, (
                f"{scheme.name} on {name}: worst {report.worst}"
            )


@pytest.mark.parametrize("factory,kwargs,kind", SCHEMES)
def test_shuffled_ports(factory, kwargs, kind):
    """No scheme may depend on a friendly port numbering."""
    g = (
        erdos_renyi(N, 0.09, seed=106)
        if kind != "weighted"
        else with_random_weights(erdos_renyi(N, 0.09, seed=106), seed=107)
    )
    metric = MetricView(g)
    ports = PortAssignment(g, seed=12345)
    scheme = factory(g, metric=metric, ports=ports, seed=7, **kwargs)
    alpha, beta = _bound_of(scheme)
    report = measure_stretch(
        scheme, metric, _pairs(g.n, 5, 7), multiplicative_slack=alpha
    )
    assert report.max_additive_over <= beta + 1e-9


@pytest.mark.parametrize("factory,kwargs,kind", SCHEMES)
def test_every_pair_delivered(factory, kwargs, kind):
    """All-pairs delivery on one small graph (no loops, right endpoint)."""
    g = erdos_renyi(40, 0.12, seed=108)
    metric = MetricView(g)
    scheme = factory(g, metric=metric, seed=3, **kwargs)
    for u in range(40):
        for v in range(40):
            result = route(scheme, u, v)
            assert result.delivered


@pytest.mark.parametrize("factory,kwargs,kind", SCHEMES)
def test_deterministic_construction(factory, kwargs, kind):
    """Same seed => identical tables and labels."""
    g = erdos_renyi(40, 0.12, seed=109)
    metric = MetricView(g)
    s1 = factory(g, metric=metric, seed=5, **kwargs)
    s2 = factory(g, metric=metric, seed=5, **kwargs)
    for v in range(40):
        assert s1.label_of(v) == s2.label_of(v)
        t1, t2 = s1.table_of(v), s2.table_of(v)
        assert t1.words_by_category() == t2.words_by_category()
