"""Per-theorem detail tests: labels, headers, table structure, edge cases."""

import math

import pytest

from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.simulator import measure_stretch, route
from repro.schemes import (
    GeneralMinusScheme,
    GeneralPlusScheme,
    NameIndependent3Eps,
    Stretch2Plus1Scheme,
    Stretch4kMinus7Scheme,
    Stretch5PlusScheme,
    Warmup3Scheme,
)


@pytest.fixture(scope="module")
def ug():
    return erdos_renyi(72, 0.08, seed=201)


@pytest.fixture(scope="module")
def ug_metric(ug):
    return MetricView(ug)


@pytest.fixture(scope="module")
def wg(ug):
    return with_random_weights(ug, seed=202)


@pytest.fixture(scope="module")
def wg_metric(wg):
    return MetricView(wg)


class TestWarmup3:
    def test_label_is_two_words(self, wg, wg_metric):
        s = Warmup3Scheme(wg, eps=0.5, metric=wg_metric, seed=1)
        for v in range(wg.n):
            assert len(s.label_of(v)) == 2
            assert s.label_of(v)[0] == v

    def test_ball_local_pairs_exact(self, wg, wg_metric):
        s = Warmup3Scheme(wg, eps=0.5, metric=wg_metric, seed=1)
        for u in range(0, wg.n, 7):
            for v in s.family.ball(u):
                if v != u:
                    assert route(s, u, v).length == pytest.approx(
                        wg_metric.d(u, v)
                    )

    def test_invalid_eps_rejected(self, wg, wg_metric):
        with pytest.raises(ValueError):
            Warmup3Scheme(wg, eps=0.0, metric=wg_metric)


class TestTheorem10:
    def test_requires_unweighted(self, wg, wg_metric):
        with pytest.raises(ValueError):
            Stretch2Plus1Scheme(wg, metric=wg_metric)

    def test_intersection_pairs_exact(self, ug, ug_metric):
        """Pairs with a stored intersection route on exact shortest paths."""
        s = Stretch2Plus1Scheme(ug, eps=0.5, metric=ug_metric, seed=2)
        checked = 0
        for u in range(ug.n):
            for v in range(ug.n):
                if u != v and s.table_of(u).has("xsect", v):
                    assert route(s, u, v).length == pytest.approx(
                        ug_metric.d(u, v)
                    )
                    checked += 1
        assert checked > 0

    def test_label_holds_pivot_data(self, ug, ug_metric):
        s = Stretch2Plus1Scheme(ug, eps=0.5, metric=ug_metric, seed=2)
        for v in range(0, ug.n, 5):
            vv, color, pivot, pdist, tlabel = s.label_of(v)
            assert vv == v
            assert pivot in s.landmarks
            assert pdist == int(round(ug_metric.d(v, pivot)))

    def test_cluster_bound_from_lemma4(self, ug, ug_metric):
        s = Stretch2Plus1Scheme(ug, eps=0.5, metric=ug_metric, seed=2)
        bound = 4 * ug.n / (ug.n / s.q)
        assert s.bunches.max_cluster_size() <= bound


class TestTheorem11:
    def test_own_cluster_pairs_exact(self, wg, wg_metric):
        s = Stretch5PlusScheme(wg, eps=0.6, metric=wg_metric, seed=3)
        checked = 0
        for u in range(wg.n):
            for v in s.bunches.cluster(u):
                if u != v:
                    assert route(s, u, v).length == pytest.approx(
                        wg_metric.d(u, v)
                    )
                    checked += 1
        assert checked > 0

    def test_label_is_four_words(self, wg, wg_metric):
        s = Stretch5PlusScheme(wg, eps=0.6, metric=wg_metric, seed=3)
        for v in range(wg.n):
            label = s.label_of(v)
            assert len(label) == 4
            assert label[0] == v

    def test_landmark_destinations(self, wg, wg_metric):
        """Destinations that are landmarks exercise the p_A(v)=v path."""
        s = Stretch5PlusScheme(wg, eps=0.6, metric=wg_metric, seed=3)
        for v in s.landmarks[:8]:
            for u in range(0, wg.n, 11):
                if u != v:
                    r = route(s, u, v)
                    assert r.delivered
                    assert r.length <= s.stretch_bound() * wg_metric.d(u, v) + 1e-9


class TestGeneralized:
    def test_requires_unweighted(self, wg, wg_metric):
        with pytest.raises(ValueError):
            GeneralMinusScheme(wg, metric=wg_metric)

    def test_requires_ell_at_least_two(self, ug, ug_metric):
        with pytest.raises(ValueError):
            GeneralMinusScheme(ug, ell=1, metric=ug_metric)

    def test_minus_beats_plus_on_stretch(self, ug, ug_metric):
        minus = GeneralMinusScheme(
            ug, ell=2, eps=1.0, alpha=0.6, metric=ug_metric, seed=4
        )
        plus = GeneralPlusScheme(
            ug, ell=2, eps=1.0, alpha=0.6, metric=ug_metric, seed=4
        )
        assert minus.stretch_bound()[0] < plus.stretch_bound()[0]
        # ... at the price of bigger tables
        assert (
            minus.stats().avg_table_words > plus.stats().avg_table_words
        )

    def test_nested_ball_families(self, ug, ug_metric):
        s = GeneralMinusScheme(
            ug, ell=2, eps=1.0, alpha=0.6, metric=ug_metric, seed=4
        )
        for i in range(len(s.families) - 1):
            assert s.families[i].ell <= s.families[i + 1].ell

    def test_landmark_sets_shrink_with_level(self, ug, ug_metric):
        s = GeneralMinusScheme(
            ug, ell=2, eps=1.0, alpha=0.6, metric=ug_metric, seed=4
        )
        # |L_i| = Õ(q^{2l-i-1}) decreases in i
        assert len(s.landmark_sets[0]) >= len(s.landmark_sets[2]) - 5


class TestTheorem16:
    def test_requires_k_at_least_three(self, wg, wg_metric):
        with pytest.raises(ValueError):
            Stretch4kMinus7Scheme(wg, k=2, metric=wg_metric)

    def test_beats_tz_bound_for_same_k(self, wg, wg_metric):
        from repro.baselines.thorup_zwick import ThorupZwickScheme

        k = 3
        tz = ThorupZwickScheme(wg, k=k, metric=wg_metric, seed=5)
        t16 = Stretch4kMinus7Scheme(
            wg, k=k, eps=1.0, metric=wg_metric, seed=5
        )
        assert t16.stretch_bound() < tz.stretch_bound()

    def test_label_carries_partition_index(self, wg, wg_metric):
        s = Stretch4kMinus7Scheme(wg, k=3, eps=1.0, metric=wg_metric, seed=5)
        for v in range(0, wg.n, 9):
            vv, entries, part = s.label_of(v)
            assert vv == v
            assert len(entries) == 3
            assert 0 <= part < s.q


class TestNameIndependent:
    def test_label_is_just_the_name(self, wg, wg_metric):
        s = NameIndependent3Eps(wg, eps=0.5, metric=wg_metric, seed=6)
        for v in range(wg.n):
            assert s.label_of(v) == v

    def test_colors_recomputable_from_name(self, wg, wg_metric):
        from repro.structures.coloring import hash_color

        s = NameIndependent3Eps(wg, eps=0.5, metric=wg_metric, seed=6)
        for v in range(wg.n):
            assert s.colors[v] == hash_color(v, s.q, s.hash_seed)


class TestHeaderSizes:
    def test_headers_logarithmic(self, wg, wg_metric):
        """Headers stay O(b + log) words — never grow with the path."""
        s = Stretch5PlusScheme(wg, eps=0.6, metric=wg_metric, seed=3)
        report = measure_stretch(
            s,
            wg_metric,
            [(u, v) for u in range(0, wg.n, 3) for v in range(1, wg.n, 4) if u != v],
            multiplicative_slack=s.stretch_bound(),
        )
        b = s.technique.b
        logd = math.log2(max(2.0, wg_metric.n * wg_metric.normalized_diameter()))
        cap = 2 * b * (logd + 2) + 16
        assert report.max_header_words <= cap
