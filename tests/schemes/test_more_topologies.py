"""Scheme bounds on additional topology families.

The uniform tests cover ER/grid/ring; these add the remaining generator
families — torus (vertex-transitive, no boundary), caterpillar (tree with
hair: unique paths, high eccentricity), preferential attachment (hubs),
and weighted geometric graphs — so every family the library ships is
exercised against at least two theorems.
"""

import pytest

from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.graph.generators import (
    caterpillar,
    preferential_attachment,
    random_geometric,
    torus,
    with_random_weights,
)
from repro.graph.metric import MetricView
from repro.routing.simulator import measure_stretch
from repro.schemes import (
    Stretch2Plus1Scheme,
    Stretch5PlusScheme,
    Warmup3Scheme,
)


def _check(scheme, metric, pairs):
    bound = scheme.stretch_bound()
    alpha, beta = bound if isinstance(bound, tuple) else (bound, 0.0)
    report = measure_stretch(
        scheme, metric, pairs, multiplicative_slack=alpha
    )
    assert report.max_additive_over <= beta + 1e-6, report.worst
    return report


def _pairs(n):
    return [
        (u, v)
        for u in range(0, n, 4)
        for v in range(1, n, 6)
        if u != v
    ]


class TestTorus:
    @pytest.fixture(scope="class")
    def world(self):
        g = torus(8, 8)
        return g, MetricView(g)

    def test_thm10(self, world):
        g, m = world
        _check(Stretch2Plus1Scheme(g, eps=0.5, metric=m, seed=1), m, _pairs(g.n))

    def test_thm11_unit_weights(self, world):
        g, m = world
        _check(Stretch5PlusScheme(g, eps=0.6, metric=m, seed=1), m, _pairs(g.n))

    def test_symmetry_of_tables(self, world):
        """On a vertex-transitive torus, table sizes concentrate."""
        g, m = world
        scheme = Warmup3Scheme(g, eps=0.5, metric=m, seed=1)
        words = [scheme.table_of(v).total_words() for v in g.vertices()]
        assert max(words) <= 2.5 * (sum(words) / len(words))


class TestCaterpillar:
    @pytest.fixture(scope="class")
    def world(self):
        g = caterpillar(16, 3)  # 64 vertices, unique shortest paths
        return g, MetricView(g)

    def test_warmup(self, world):
        g, m = world
        _check(Warmup3Scheme(g, eps=0.5, metric=m, seed=2), m, _pairs(g.n))

    def test_thm10(self, world):
        g, m = world
        _check(Stretch2Plus1Scheme(g, eps=0.5, metric=m, seed=2), m, _pairs(g.n))

    def test_tz(self, world):
        g, m = world
        _check(ThorupZwickScheme(g, k=2, metric=m, seed=2), m, _pairs(g.n))


class TestPreferentialAttachment:
    @pytest.fixture(scope="class")
    def world(self):
        g = preferential_attachment(70, 2, seed=3)
        return g, MetricView(g)

    def test_thm10_with_hubs(self, world):
        g, m = world
        _check(Stretch2Plus1Scheme(g, eps=0.5, metric=m, seed=3), m, _pairs(g.n))

    def test_thm11_weighted_hubs(self, world):
        g, _ = world
        gw = with_random_weights(g, seed=33)
        mw = MetricView(gw)
        _check(Stretch5PlusScheme(gw, eps=0.6, metric=mw, seed=3), mw, _pairs(gw.n))

    def test_hub_tables_not_pathological(self, world):
        """Fixed-port model: a hub's table must not scale with its degree
        beyond the ball/cluster terms (ports are ints, not edge lists)."""
        g, m = world
        scheme = Warmup3Scheme(g, eps=0.5, metric=m, seed=3)
        hub = max(g.vertices(), key=g.degree)
        leaf = min(g.vertices(), key=g.degree)
        hub_words = scheme.table_of(hub).total_words()
        leaf_words = scheme.table_of(leaf).total_words()
        assert hub_words <= 4 * leaf_words + 200


class TestGeometric:
    def test_thm11_euclidean_weights(self):
        g = random_geometric(70, 0.22, seed=4)
        m = MetricView(g)
        scheme = Stretch5PlusScheme(g, eps=0.6, metric=m, seed=4)
        _check(scheme, m, _pairs(g.n))

    def test_warmup_euclidean_weights(self):
        g = random_geometric(70, 0.22, seed=5)
        m = MetricView(g)
        _check(Warmup3Scheme(g, eps=0.5, metric=m, seed=5), m, _pairs(g.n))
