"""Wider parameter coverage: higher l and k values of the general schemes.

The uniform tests pin l=2 / k<=4; the theorems are stated for all l>1 and
k>=3, so the interesting next rungs get their own (slower) checks here.
"""

import pytest

from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.simulator import measure_stretch
from repro.schemes import (
    GeneralMinusScheme,
    GeneralPlusScheme,
    Stretch4kMinus7Scheme,
)


def _pairs(n):
    return [
        (u, v) for u in range(0, n, 4) for v in range(1, n, 6) if u != v
    ]


@pytest.fixture(scope="module")
def unweighted():
    g = erdos_renyi(90, 0.06, seed=1001)
    return g, MetricView(g)


@pytest.fixture(scope="module")
def weighted(unweighted):
    g, _ = unweighted
    gw = with_random_weights(g, seed=1002)
    return gw, MetricView(gw)


class TestGeneralizedHigherEll:
    @pytest.mark.parametrize("ell", [3, 4])
    def test_minus(self, unweighted, ell):
        g, m = unweighted
        s = GeneralMinusScheme(g, ell=ell, eps=1.0, alpha=0.5, metric=m, seed=5)
        alpha, beta = s.stretch_bound()
        rep = measure_stretch(s, m, _pairs(g.n), multiplicative_slack=alpha)
        assert rep.max_additive_over <= beta + 1e-9

    @pytest.mark.parametrize("ell", [3])
    def test_plus(self, unweighted, ell):
        g, m = unweighted
        s = GeneralPlusScheme(g, ell=ell, eps=1.0, alpha=0.5, metric=m, seed=5)
        alpha, beta = s.stretch_bound()
        rep = measure_stretch(s, m, _pairs(g.n), multiplicative_slack=alpha)
        assert rep.max_additive_over <= beta + 1e-9

    def test_minus_stretch_improves_with_ell(self, unweighted):
        """(3-2/l) tightens toward 3 as l grows: bound ordering."""
        g, m = unweighted
        bounds = [
            GeneralMinusScheme(
                g, ell=ell, eps=1.0, alpha=0.5, metric=m, seed=5
            ).stretch_bound()[0]
            for ell in (2, 3)
        ]
        assert bounds[0] < bounds[1]  # 2+eps < 2.33+eps


class TestTheorem16HigherK:
    @pytest.mark.parametrize("k", [5])
    def test_k5(self, weighted, k):
        g, m = weighted
        s = Stretch4kMinus7Scheme(g, k=k, eps=1.0, metric=m, seed=6)
        rep = measure_stretch(
            s, m, _pairs(g.n), multiplicative_slack=s.stretch_bound()
        )
        assert rep.max_additive_over <= 1e-6

    def test_always_two_better_than_tz(self, weighted):
        g, m = weighted
        for k in (3, 4, 5):
            t16 = Stretch4kMinus7Scheme(g, k=k, eps=1.0, metric=m, seed=7)
            tz = ThorupZwickScheme(g, k=k, metric=m, seed=7)
            assert t16.stretch_bound() == tz.stretch_bound() - 2 + 1.0
