"""Hypothesis property tests: theorem bounds over random graph draws.

Each property draws a random connected graph (topology seed, density,
weight seed) and checks the scheme's ``(alpha, beta)`` guarantee over a
pair sample.  This complements the fixed-graph tests with breadth: many
topologies, many constructions, shrinkable counterexamples.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.simulator import measure_stretch
from repro.schemes import (
    Stretch2Plus1Scheme,
    Stretch5PlusScheme,
    Warmup3Scheme,
)
from repro.baselines.thorup_zwick import ThorupZwickScheme

_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _sample(n, k=60):
    return [
        ((7 * i) % n, (11 * i + 3) % n)
        for i in range(k)
        if (7 * i) % n != (11 * i + 3) % n
    ]


@given(
    seed=st.integers(0, 10_000),
    density=st.sampled_from([0.08, 0.12, 0.2]),
)
@settings(**_SETTINGS)
def test_warmup3_random_weighted(seed, density):
    g = with_random_weights(
        erdos_renyi(36, density, seed=seed), seed=seed + 1
    )
    metric = MetricView(g)
    scheme = Warmup3Scheme(g, eps=0.5, metric=metric, seed=seed % 17)
    report = measure_stretch(
        scheme, metric, _sample(36), multiplicative_slack=3.5
    )
    assert report.max_additive_over <= 1e-9


@given(seed=st.integers(0, 10_000))
@settings(**_SETTINGS)
def test_thm10_random_unweighted(seed):
    g = erdos_renyi(36, 0.12, seed=seed)
    metric = MetricView(g)
    scheme = Stretch2Plus1Scheme(g, eps=0.5, metric=metric, seed=seed % 13)
    report = measure_stretch(
        scheme, metric, _sample(36), multiplicative_slack=2.5
    )
    assert report.max_additive_over <= 1.0 + 1e-9


@given(seed=st.integers(0, 10_000))
@settings(**_SETTINGS)
def test_thm11_random_weighted(seed):
    g = with_random_weights(
        erdos_renyi(36, 0.12, seed=seed), seed=seed + 2
    )
    metric = MetricView(g)
    scheme = Stretch5PlusScheme(g, eps=0.6, metric=metric, seed=seed % 11)
    report = measure_stretch(
        scheme, metric, _sample(36), multiplicative_slack=5.6
    )
    assert report.max_additive_over <= 1e-6


@given(seed=st.integers(0, 10_000), k=st.sampled_from([2, 3]))
@settings(**_SETTINGS)
def test_tz_random_weighted(seed, k):
    g = with_random_weights(
        erdos_renyi(36, 0.12, seed=seed), seed=seed + 3
    )
    metric = MetricView(g)
    scheme = ThorupZwickScheme(g, k=k, metric=metric, seed=seed % 7)
    report = measure_stretch(
        scheme, metric, _sample(36), multiplicative_slack=4 * k - 5
    )
    assert report.max_additive_over <= 1e-6
