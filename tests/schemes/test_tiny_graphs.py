"""Tiny and degenerate graphs: every scheme must either work or reject
its preconditions loudly.

On a 2-vertex path there is nothing to route compactly, but a production
library must not loop, misdeliver or crash obscurely on such inputs.
"""

import pytest

from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.graph.core import Graph
from repro.graph.generators import complete, cycle, path, star
from repro.graph.metric import MetricView
from repro.routing.simulator import route
from repro.schemes import (
    GeneralMinusScheme,
    GeneralPlusScheme,
    NameIndependent3Eps,
    Stretch2Plus1Scheme,
    Stretch4kMinus7Scheme,
    Stretch5PlusScheme,
    Warmup3Scheme,
)
from repro.structures.coloring import ColoringError

TINY_GRAPHS = [
    pytest.param(path(2), id="P2"),
    pytest.param(path(3), id="P3"),
    pytest.param(complete(3), id="K3"),
    pytest.param(star(5), id="star5"),
    pytest.param(cycle(5), id="C5"),
]

ALWAYS_WORK = [
    pytest.param(Warmup3Scheme, {}, id="warmup3"),
    pytest.param(Stretch2Plus1Scheme, {}, id="thm10"),
    pytest.param(Stretch5PlusScheme, {}, id="thm11"),
    pytest.param(NameIndependent3Eps, {}, id="name-indep"),
    pytest.param(ThorupZwickScheme, {"k": 2}, id="tz2"),
    pytest.param(Stretch4kMinus7Scheme, {"k": 3}, id="thm16"),
]


@pytest.mark.parametrize("graph", TINY_GRAPHS)
@pytest.mark.parametrize("factory,kwargs", ALWAYS_WORK)
def test_tiny_graph_all_pairs_exact_delivery(graph, factory, kwargs):
    metric = MetricView(graph)
    scheme = factory(graph, metric=metric, seed=1, **kwargs)
    for u in graph.vertices():
        for v in graph.vertices():
            result = route(scheme, u, v)
            assert result.delivered
            # tiny graphs collapse every structure into exact balls
            assert result.length <= 8 * metric.d(u, v) + 2 + 1e-9


@pytest.mark.parametrize("factory", [GeneralMinusScheme, GeneralPlusScheme])
def test_generalized_reject_too_small_graphs_loudly(factory):
    """P2's single-vertex balls cannot host a 2-coloring: the scheme must
    fail with the documented ColoringError, not misbehave."""
    g = path(2)
    with pytest.raises(ColoringError):
        factory(g, ell=2, metric=MetricView(g), seed=1)


@pytest.mark.parametrize("factory,kwargs", ALWAYS_WORK)
def test_single_vertex_graph(factory, kwargs):
    g = Graph(1)
    metric = MetricView(g)
    scheme = factory(g, metric=metric, seed=1, **kwargs)
    assert route(scheme, 0, 0).delivered


def test_empty_graph_rejected():
    with pytest.raises(ValueError):
        Warmup3Scheme(Graph(0))


def test_disconnected_graph_rejected():
    g = Graph.from_edges(4, [(0, 1), (2, 3)])
    with pytest.raises(ValueError):
        Warmup3Scheme(g)
