"""Shared fixtures: canonical small graphs with cached metrics.

Scheme constructions are quadratic-ish, so tests use small graphs; the
fixtures are session-scoped and cached because MetricView construction
dominates otherwise.
"""

from __future__ import annotations

import pytest

from repro.graph.core import Graph
from repro.graph.generators import (
    erdos_renyi,
    grid,
    path,
    random_geometric,
    ring_with_chords,
    with_random_weights,
)
from repro.graph.metric import MetricView
from repro.graph.shortest_paths import reset_kernel_choice


@pytest.fixture(autouse=True)
def _fresh_kernel_choice():
    """Re-resolve the once-per-process REPRO_KERNEL choice around each test.

    The dispatch caches the choice for the life of a process; tests that
    monkeypatch the environment variable call
    :func:`reset_kernel_choice` themselves, and this fixture guarantees
    no cached override leaks into the next test.
    """
    reset_kernel_choice()
    yield
    reset_kernel_choice()


@pytest.fixture(autouse=True)
def _fresh_parallel_choice():
    """Same discipline for the once-per-process REPRO_PARALLEL choice.

    Imported lazily: the parallel tier needs numpy, and the pure-python
    test environment must keep collecting without it.
    """
    try:
        from repro.graph.parallel import reset_parallel_choice
    except ImportError:
        yield
        return
    reset_parallel_choice()
    yield
    reset_parallel_choice()


@pytest.fixture(scope="session")
def er_unweighted():
    """Connected Erdős–Rényi graph, 80 vertices, unweighted."""
    return erdos_renyi(80, 0.07, seed=42)


@pytest.fixture(scope="session")
def er_weighted(er_unweighted):
    """The same topology with uniform random weights in [1, 10]."""
    return with_random_weights(er_unweighted, seed=43)


@pytest.fixture(scope="session")
def grid_graph():
    """9x9 grid: large diameter, slow ball growth."""
    return grid(9, 9)


@pytest.fixture(scope="session")
def geometric_graph():
    """Random geometric graph with Euclidean weights."""
    return random_geometric(80, 0.2, seed=7)


@pytest.fixture(scope="session")
def ring_graph():
    """Ring with chords: small-world-ish."""
    return ring_with_chords(70, 25, seed=5)


@pytest.fixture(scope="session")
def metric_er(er_unweighted):
    return MetricView(er_unweighted)


@pytest.fixture(scope="session")
def metric_er_weighted(er_weighted):
    return MetricView(er_weighted)


@pytest.fixture(scope="session")
def metric_grid(grid_graph):
    return MetricView(grid_graph)


@pytest.fixture(scope="session")
def metric_geometric(geometric_graph):
    return MetricView(geometric_graph)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running construction tests"
    )
