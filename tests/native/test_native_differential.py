"""Differential suite of the native C kernel tier.

The tier's contract is the same one the parallel tier carries:
``REPRO_KERNEL`` changes wall-clock, never a single byte of any result.
Every test here races the native engine against its differential
references (numpy, pure) on seeded inputs — graphs for the
delta-stepping batch engine, real and fuzzed shard payloads for the
pack scanner — and asserts bit/byte identity.  The fallback half
simulates a compiler-less host (``REPRO_NATIVE_CC=off`` + an empty
cache): ``auto`` must fall back to numpy with the reason recorded,
``native`` must raise the typed :class:`NativeUnavailableError`.
"""

import os

import numpy as np
import pytest

from repro import native
from repro.api import all_specs
from repro.graph import shortest_paths as sp
from repro.graph.csr import csr_graph
from repro.graph.generators import (
    erdos_renyi,
    grid,
    random_geometric,
    ring_with_chords,
    with_random_weights,
)
from repro.graph.metric import MetricView
from repro.graph.shortest_paths import all_balls, kernel_mode
from repro.routing.shard_codec import (
    ShardCodecError,
    decode_node_table,
    decode_node_table_fast,
    encode_node_table,
)
from repro.routing.tables import NodeTable


def _set_mode(monkeypatch, mode: str) -> None:
    monkeypatch.setenv("REPRO_KERNEL", mode)
    sp.reset_kernel_choice()


@pytest.fixture
def fresh_native(monkeypatch):
    """Re-resolve the native load outcome around env-twiddling tests."""
    native.reset_native()
    yield monkeypatch
    native.reset_native()
    sp.reset_kernel_choice()


def _require_native() -> None:
    if native.try_kernels() is None:
        pytest.skip(f"native tier unavailable: {native.fallback_reason()}")


# ----------------------------------------------------------------------
# dispatch resolution
# ----------------------------------------------------------------------
def test_kernel_mode_names(monkeypatch):
    for raw, want in (("pure", "pure"), ("py", "pure"), ("numpy", "numpy"),
                      ("np", "numpy"), ("kernel", "numpy")):
        _set_mode(monkeypatch, raw)
        assert kernel_mode() == want


def test_auto_prefers_native_when_available(monkeypatch):
    _require_native()
    _set_mode(monkeypatch, "auto")
    assert kernel_mode() == "native"
    _set_mode(monkeypatch, "native")
    assert kernel_mode() == "native"


def test_unknown_engine_is_a_typed_config_error(monkeypatch):
    _set_mode(monkeypatch, "fortran")
    with pytest.raises(sp.KernelConfigError):
        kernel_mode()


def test_masked_compiler_auto_falls_back_with_reason(
    fresh_native, tmp_path
):
    fresh_native.setenv("REPRO_NATIVE_CC", "off")
    fresh_native.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "empty"))
    native.reset_native()
    assert native.try_kernels() is None
    reason = native.fallback_reason()
    assert reason is not None and "compiler" in reason
    status = native.native_status()
    assert status["available"] is False
    assert status["compiler"] is None
    _set_mode(fresh_native, "auto")
    assert kernel_mode() == "numpy"


def test_masked_compiler_forced_native_raises_typed(fresh_native, tmp_path):
    fresh_native.setenv("REPRO_NATIVE_CC", "off")
    fresh_native.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "empty"))
    native.reset_native()
    _set_mode(fresh_native, "native")
    g = with_random_weights(erdos_renyi(60, 0.1, seed=3), seed=4)
    with pytest.raises(native.NativeUnavailableError):
        all_balls(g, 4)


def test_cold_cache_builds_content_hashed_library(fresh_native, tmp_path):
    if native.compiler() is None:
        pytest.skip("no C compiler on this host")
    cache = tmp_path / "cache"
    fresh_native.setenv("REPRO_NATIVE_CACHE", str(cache))
    native.reset_native()
    kernels = native.try_kernels()
    assert kernels is not None
    expected = cache / f"repro_kernels-{native.source_hash()}.so"
    assert kernels.path == str(expected)
    assert expected.exists()
    # no stranded compile tempdirs next to the published library
    assert [p.name for p in cache.iterdir()] == [expected.name]


# ----------------------------------------------------------------------
# delta-stepping engine: native vs numpy vs pure on seeded graphs
# ----------------------------------------------------------------------
_GRAPHS = {
    "er-weighted": lambda: with_random_weights(
        erdos_renyi(300, 0.02, seed=11), seed=12
    ),
    "grid": lambda: grid(14, 14),
    "geo-weighted": lambda: with_random_weights(
        random_geometric(220, 0.14, seed=21), seed=22
    ),
    "ring-chords": lambda: with_random_weights(
        ring_with_chords(260, 90, seed=31), seed=32, low=0.5, high=3.0
    ),
}


@pytest.mark.parametrize("name", sorted(_GRAPHS))
def test_all_balls_identical_across_engines(monkeypatch, name):
    _require_native()
    g = _GRAPHS[name]()
    results = {}
    for mode in ("pure", "numpy", "native"):
        _set_mode(monkeypatch, mode)
        results[mode] = all_balls(g, 14, with_radii=True)
    assert results["native"] == results["numpy"]
    assert results["native"] == results["pure"]


@pytest.mark.parametrize("name", sorted(_GRAPHS))
def test_bounded_rows_identical_native_vs_numpy(monkeypatch, name):
    _require_native()
    g = _GRAPHS[name]()
    limits = np.linspace(1.0, 22.0, g.n)

    def sweep():
        csr = csr_graph(g)
        return [
            (s, v.copy().tobytes(), d.copy().tobytes())
            for s, v, d in csr.bounded_rows(range(g.n), limits)
        ]

    _set_mode(monkeypatch, "native")
    nat = sweep()
    _set_mode(monkeypatch, "numpy")
    ref = sweep()
    assert nat == ref


def test_lazy_metric_counts_identical(monkeypatch):
    """The zero-stride broadcast regression: lazy MetricView bounded
    counts go through broadcast views of a scalar limit — the native
    kernel walks raw buffers, so these must stay bit-identical."""
    _require_native()
    g = _GRAPHS["er-weighted"]()
    counts = {}
    thresholds = np.linspace(2.0, 11.0, g.n)
    for mode in ("numpy", "native"):
        _set_mode(monkeypatch, mode)
        view = MetricView(g, mode="lazy")
        counts[mode] = view.count_rows_below(thresholds)
    assert np.array_equal(counts["native"], counts["numpy"])


# ----------------------------------------------------------------------
# registered schemes: byte-identical builds under the native engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
def test_registered_schemes_identical_under_native(monkeypatch, spec):
    _require_native()
    pytest.importorskip("scipy")
    n = 140
    gu = erdos_renyi(n, 0.055, seed=71)
    g = with_random_weights(gu, seed=72) if spec.prefers_weighted else gu

    def build():
        scheme = spec.factory(
            g, metric=MetricView(g, mode="lazy"), **spec.defaults()
        )
        blobs = [encode_node_table(r) for r in scheme.compile_tables()]
        labels = [scheme.label_of(v) for v in range(n)]
        return blobs, labels

    _set_mode(monkeypatch, "native")
    nat = build()
    _set_mode(monkeypatch, "numpy")
    ref = build()
    assert nat == ref


@pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
def test_scheme_payload_decode_parity(monkeypatch, spec):
    """Every registered scheme's real encoded tables decode identically
    through the native scanner and the pure decoder."""
    _require_native()
    pytest.importorskip("scipy")
    n = 120
    gu = erdos_renyi(n, 0.06, seed=81)
    g = with_random_weights(gu, seed=82) if spec.prefers_weighted else gu
    _set_mode(monkeypatch, "numpy")
    scheme = spec.factory(
        g, metric=MetricView(g, mode="lazy"), **spec.defaults()
    )
    payloads = [encode_node_table(r) for r in scheme.compile_tables()]
    pure = [decode_node_table(p) for p in payloads]
    _set_mode(monkeypatch, "native")
    fast = [decode_node_table_fast(p) for p in payloads]
    assert fast == pure


# ----------------------------------------------------------------------
# pack decode: fuzzed payloads, fallback values, error parity
# ----------------------------------------------------------------------
def _rand_key(rng):
    return rng.choice(
        [
            lambda: rng.randrange(-(2 ** 40), 2 ** 40),
            lambda: "k" + str(rng.randrange(1000)),
            lambda: (rng.randrange(100), rng.randrange(100)),
            lambda: rng.choice([True, False, None]),
        ]
    )()


def _rand_value(rng, depth=0):
    kinds = ["int", "float", "str", "none", "bool"]
    if depth < 3:
        kinds += ["tuple", "list", "dict"]
    kind = rng.choice(kinds)
    if kind == "int":
        # includes magnitudes past int64 — the C scanner must punt
        # those to the pure decoder, invisibly to the caller
        return rng.choice(
            [
                rng.randrange(-(2 ** 30), 2 ** 30),
                rng.randrange(2 ** 62, 2 ** 70),
                -rng.randrange(2 ** 62, 2 ** 70),
                -(2 ** 63),
                2 ** 63 - 1,
            ]
        )
    if kind == "float":
        return rng.choice([rng.random() * 1e6, -0.0, 1e-308, float("inf")])
    if kind == "str":
        return rng.choice(["", "plain", "naïve—ünïcode", "x" * 300])
    if kind == "none":
        return None
    if kind == "bool":
        return rng.choice([True, False])
    if kind == "tuple":
        return tuple(
            _rand_value(rng, depth + 1) for _ in range(rng.randrange(4))
        )
    if kind == "list":
        return [_rand_value(rng, depth + 1) for _ in range(rng.randrange(4))]
    return {
        _rand_key(rng): _rand_value(rng, depth + 1)
        for _ in range(rng.randrange(4))
    }


def _rand_table(rng, owner):
    deg = rng.randrange(0, 12)
    unit = rng.random() < 0.5
    neighbors = tuple(
        (rng.randrange(10 ** 6), 1.0 if unit else rng.random() * 50 + 0.01)
        for _ in range(deg)
    )
    categories = {
        f"cat{c}": {
            _rand_key(rng): _rand_value(rng) for _ in range(rng.randrange(5))
        }
        for c in range(rng.randrange(4))
    }
    return NodeTable(
        owner=owner,
        neighbors=neighbors,
        label=_rand_value(rng),
        categories=categories,
    )


def test_fuzzed_payload_decode_parity(monkeypatch):
    _require_native()
    import random

    rng = random.Random(20260808)
    tables = [_rand_table(rng, i) for i in range(250)]
    payloads = [encode_node_table(t) for t in tables]
    pure = [decode_node_table(p) for p in payloads]
    _set_mode(monkeypatch, "native")
    fast = [decode_node_table_fast(p) for p in payloads]
    assert fast == pure
    assert pure == tables


def test_decode_error_parity(monkeypatch):
    """Malformed payloads raise the same typed error through the fast
    path as through the pure decoder — the scanner never guesses."""
    _require_native()
    good = encode_node_table(
        NodeTable(
            owner=7,
            neighbors=((1, 2.5), (4, 0.5)),
            label=("L", 7),
            categories={"ball": {3: (1.0, 2)}},
        )
    )
    corrupt = [
        good[:3],                       # truncated header
        b"XX" + good[2:],               # bad magic
        good[:2] + b"\x63" + good[3:],  # future codec version
        good + b"\x00\x01",             # trailing bytes
        good[: len(good) - 2],          # truncated value stream
    ]
    _set_mode(monkeypatch, "native")
    for blob in corrupt:
        try:
            decode_node_table(blob)
            pure_exc = None
        except ShardCodecError as exc:
            pure_exc = str(exc)
        if pure_exc is None:
            assert decode_node_table_fast(blob) == decode_node_table(blob)
            continue
        with pytest.raises(ShardCodecError) as info:
            decode_node_table_fast(blob)
        assert str(info.value) == pure_exc


def test_fast_decode_outside_native_mode_is_pure(monkeypatch):
    """decode_node_table_fast is mode-gated: under numpy/pure it must
    not touch the scanner at all (serving code calls it unconditionally)."""
    payload = encode_node_table(
        NodeTable(owner=1, neighbors=((2, 1.0),), label=None, categories={})
    )
    for mode in ("pure", "numpy"):
        _set_mode(monkeypatch, mode)
        assert decode_node_table_fast(payload) == decode_node_table(payload)


# ----------------------------------------------------------------------
# composition with the parallel tier
# ----------------------------------------------------------------------
def test_native_composes_with_parallel(monkeypatch):
    _require_native()
    from repro.graph import parallel

    g = _GRAPHS["er-weighted"]()
    csr = csr_graph(g)
    monkeypatch.setattr(parallel, "_MIN_PARALLEL_N", 1, raising=False)

    def balls():
        return csr.all_balls(12, tol=0.0, with_radii=True, as_arrays=True)

    _set_mode(monkeypatch, "native")
    monkeypatch.setenv("REPRO_PARALLEL", "2")
    parallel.reset_parallel_choice()
    try:
        par = balls()
    finally:
        monkeypatch.setenv("REPRO_PARALLEL", "off")
        parallel.reset_parallel_choice()
    _set_mode(monkeypatch, "numpy")
    ser = balls()
    for a, b in zip(par, ser):
        assert np.array_equal(a, b)
