"""Smoke tests: the shipped examples must run end to end.

Each example's ``main()`` is executed in-process; assertions inside the
examples (bound checks) double as test assertions.  The heavier examples
are exercised with their default parameters — they are sized to finish in
seconds.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "max stretch" in out
    assert "routing tables" in out


def test_name_independent_dht_runs(capsys):
    _load("name_independent_dht").main()
    out = capsys.readouterr().out
    assert "name-independent" in out
    assert "1 word" in out


@pytest.mark.slow
def test_sensor_grid_runs(capsys):
    _load("sensor_grid").main()
    out = capsys.readouterr().out
    assert "Theorem 11" in out


@pytest.mark.slow
def test_isp_topology_runs(capsys):
    _load("isp_topology").main()
    out = capsys.readouterr().out
    assert "headline" in out


def test_compare_schemes_runs(capsys, monkeypatch):
    module = _load("compare_schemes")
    monkeypatch.setattr(
        sys, "argv", ["compare_schemes.py", "--n", "80", "--pairs", "60"]
    )
    module.main()
    out = capsys.readouterr().out
    assert "measured on family=er" in out
    assert "VIOLATION" not in out
