"""MetricView: exact distances, shortest-path structure, balls, radii."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.graph.core import Graph
from repro.graph.generators import erdos_renyi, grid, with_random_weights
from repro.graph.metric import MetricView


class TestDistances:
    @pytest.mark.parametrize("use_scipy", [True, False])
    def test_matches_networkx(self, use_scipy):
        g = with_random_weights(erdos_renyi(30, 0.15, seed=1), seed=2)
        m = MetricView(g, use_scipy=use_scipy)
        ref = dict(nx.all_pairs_dijkstra_path_length(g.to_networkx()))
        for u in g.vertices():
            for v in g.vertices():
                assert m.d(u, v) == pytest.approx(ref[u][v])

    def test_matrix_symmetric(self):
        g = with_random_weights(erdos_renyi(40, 0.1, seed=3), seed=4)
        m = MetricView(g)
        assert np.array_equal(m.matrix, m.matrix.T)

    def test_scipy_and_python_agree(self):
        g = with_random_weights(erdos_renyi(25, 0.2, seed=5), seed=6)
        m1 = MetricView(g, use_scipy=True)
        m2 = MetricView(g, use_scipy=False)
        assert np.allclose(m1.matrix, m2.matrix)

    def test_disconnected_detected(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        m = MetricView(g)
        assert not m.is_connected()
        assert m.d(0, 2) == math.inf


class TestLazyTolScale:
    """Satellite: the lazy tol scale is a running max over computed rows,
    always within a factor of two of the dense (true-diameter) scale."""

    @pytest.mark.parametrize("seed", [1, 5, 9, 13])
    def test_lazy_tol_within_2x_of_dense(self, seed):
        g = with_random_weights(
            erdos_renyi(60, 0.08, seed=seed), seed=seed + 100
        )
        dense = MetricView(g, mode="dense")
        lazy = MetricView(g, mode="lazy")
        # Any eccentricity is >= diam/2, so the seeded lazy scale sits in
        # [dense/2, dense] — never above, never more than 2x below.
        assert dense.tol / 2.0 <= lazy.tol <= dense.tol

    def test_lazy_tol_tracks_rows_then_freezes(self):
        g = with_random_weights(erdos_renyi(50, 0.1, seed=3), seed=4)
        dense = MetricView(g, mode="dense")
        # Rows computed before the first read feed the running maximum:
        # after a full sweep the scales coincide exactly.
        lazy = MetricView(g, mode="lazy")
        for u in range(g.n):
            lazy.row(u)
        assert lazy.tol == dense.tol
        # Once read, the tolerance is frozen — later rows cannot shift
        # strict-band decisions mid-build.
        fresh = MetricView(g, mode="lazy")
        first = fresh.tol
        for u in range(g.n):
            fresh.row(u)
        assert fresh.tol == first


class TestDiameter:
    def test_grid_diameter(self):
        m = MetricView(grid(4, 5))
        assert m.diameter() == 3 + 4

    def test_normalized_diameter_unweighted(self):
        m = MetricView(grid(4, 5))
        assert m.normalized_diameter() == 7.0

    def test_normalized_diameter_weighted(self):
        g = Graph.from_edges(3, [(0, 1, 2.0), (1, 2, 3.0)])
        m = MetricView(g)
        assert m.normalized_diameter() == pytest.approx(5.0 / 2.0)

    def test_single_vertex(self):
        m = MetricView(Graph(1))
        assert m.normalized_diameter() == 1.0


class TestShortestPathStructure:
    def test_next_hop_is_tight(self):
        g = with_random_weights(erdos_renyi(40, 0.1, seed=7), seed=8)
        m = MetricView(g)
        for u in range(0, 40, 5):
            for v in range(1, 40, 7):
                if u == v:
                    continue
                x = m.next_hop(u, v)
                assert g.has_edge(u, x)
                assert g.weight(u, x) + m.d(x, v) == pytest.approx(m.d(u, v))

    def test_next_hop_cache_matches_scan(self):
        g = with_random_weights(erdos_renyi(30, 0.15, seed=9), seed=10)
        m_cached = MetricView(g)
        m_scan = MetricView(g)
        m_scan._next_hop_auto_threshold = 0  # force the scalar scan
        for u in range(0, 30, 3):
            for v in range(1, 30, 4):
                if u != v:
                    assert m_cached.next_hop(u, v) == m_scan.next_hop(u, v)

    def test_shortest_path_is_shortest(self):
        g = with_random_weights(erdos_renyi(40, 0.1, seed=11), seed=12)
        m = MetricView(g)
        for u, v in [(0, 39), (5, 20), (13, 2)]:
            p = m.shortest_path(u, v)
            assert p[0] == u and p[-1] == v
            total = sum(g.weight(a, b) for a, b in zip(p, p[1:]))
            assert total == pytest.approx(m.d(u, v))

    def test_next_hop_self_raises(self):
        m = MetricView(grid(3, 3))
        with pytest.raises(ValueError):
            m.next_hop(2, 2)

    def test_on_shortest_path(self):
        m = MetricView(grid(1, 5))  # path graph 0-1-2-3-4
        assert m.on_shortest_path(0, 2, 4)
        assert not m.on_shortest_path(0, 4, 2)

    def test_tight_min_weight(self):
        g = Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 10.0)])
        m = MetricView(g)
        # the (0,2) edge of weight 10 is slack (d(0,2)=3), so it is ignored
        assert m.tight_min_weight() == 1.0


class TestSPTParents:
    def test_parents_consistent_with_distances(self):
        g = with_random_weights(erdos_renyi(40, 0.1, seed=13), seed=14)
        m = MetricView(g)
        parents = m.spt_parents(6)
        assert parents[6] == 6
        for v, p in parents.items():
            if v != 6:
                assert m.d(6, v) == pytest.approx(m.d(6, p) + g.weight(p, v))

    def test_restricted_rejects_non_closed(self):
        m = MetricView(grid(1, 5))  # path 0-1-2-3-4
        with pytest.raises(ValueError):
            m.restricted_spt_parents(0, [0, 4])  # 4's parent 3 missing


class TestBalls:
    def test_ball_order_and_prefix(self):
        g = erdos_renyi(40, 0.12, seed=15)
        m = MetricView(g)
        ball = m.ball(3, 12)
        assert ball[0] == 3
        keys = [(m.d(3, v), v) for v in ball]
        assert keys == sorted(keys)
        # prefix property
        assert m.ball(3, 7) == ball[:7]

    def test_ball_radius_unweighted(self):
        m = MetricView(grid(1, 7))  # path; vertex 3 is the middle
        ball = m.ball(3, 3)  # {3, 2, 4}
        assert set(ball) == {3, 2, 4}
        assert m.ball_radius(3, ball) == 1.0
        ball5 = m.ball(3, 4)  # {3,2,4,1} — distance-2 level only partial
        assert m.ball_radius(3, ball5) == 1.0

    def test_ball_radius_full_level(self):
        m = MetricView(grid(1, 7))
        ball = m.ball(3, 5)  # {3,2,4,1,5}: both distance-2 vertices present
        assert m.ball_radius(3, ball) == 2.0

    def test_whole_graph_ball(self):
        g = erdos_renyi(20, 0.2, seed=16)
        m = MetricView(g)
        assert len(m.ball(0, 100)) == 20
