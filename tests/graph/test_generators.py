"""Tests for the seeded graph generators."""

import pytest

from repro.graph.generators import (
    caterpillar,
    complete,
    connect_components,
    cycle,
    erdos_renyi,
    grid,
    path,
    preferential_attachment,
    random_geometric,
    random_tree,
    ring_with_chords,
    star,
    torus,
    with_random_weights,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: erdos_renyi(40, 0.1, seed=seed),
            lambda seed: preferential_attachment(40, 2, seed=seed),
            lambda seed: random_geometric(40, 0.3, seed=seed),
            lambda seed: random_tree(40, seed=seed),
            lambda seed: ring_with_chords(40, 10, seed=seed),
        ],
    )
    def test_same_seed_same_graph(self, factory):
        g1, g2 = factory(7), factory(7)
        assert sorted(g1.edges()) == sorted(g2.edges())

    def test_different_seed_usually_differs(self):
        g1 = erdos_renyi(40, 0.1, seed=1)
        g2 = erdos_renyi(40, 0.1, seed=2)
        assert sorted(g1.edges()) != sorted(g2.edges())


class TestConnectivity:
    @pytest.mark.parametrize("seed", range(5))
    def test_erdos_renyi_connected(self, seed):
        assert erdos_renyi(50, 0.03, seed=seed).is_connected()

    @pytest.mark.parametrize("seed", range(3))
    def test_random_geometric_connected(self, seed):
        assert random_geometric(50, 0.1, seed=seed).is_connected()

    def test_connect_components_minimal(self):
        from repro.graph.core import Graph

        g = Graph.from_edges(6, [(0, 1), (2, 3), (4, 5)])
        connect_components(g, seed=0)
        assert g.is_connected()
        assert g.m == 5  # 3 original + 2 patch edges


class TestShapes:
    def test_grid_structure(self):
        g = grid(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 4)

    def test_torus_regular(self):
        g = torus(4, 5)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_torus_too_small_rejected(self):
        with pytest.raises(ValueError):
            torus(2, 5)

    def test_path_cycle_complete_star(self):
        assert path(5).m == 4
        assert cycle(5).m == 5
        assert complete(5).m == 10
        assert star(5).degree(0) == 4

    def test_cycle_too_small_rejected(self):
        with pytest.raises(ValueError):
            cycle(2)

    def test_random_tree_is_tree(self):
        g = random_tree(30, seed=3)
        assert g.m == 29
        assert g.is_connected()

    def test_caterpillar(self):
        g = caterpillar(4, 2)
        assert g.n == 4 + 8
        assert g.m == 3 + 8
        assert g.is_connected()

    def test_preferential_attachment_size(self):
        g = preferential_attachment(50, 3, seed=1)
        assert g.n == 50
        assert g.is_connected()
        # hubs exist: max degree well above the attachment count
        assert max(g.degree(v) for v in g.vertices()) > 6

    def test_ring_with_chords_counts(self):
        g = ring_with_chords(30, 10, seed=2)
        assert g.n == 30
        assert g.m == 40


class TestWeights:
    def test_with_random_weights_range(self):
        g = with_random_weights(grid(4, 4), seed=1, low=2.0, high=3.0)
        assert all(2.0 <= w <= 3.0 for _, _, w in g.edges())

    def test_with_random_weights_preserves_topology(self):
        base = erdos_renyi(30, 0.1, seed=4)
        g = with_random_weights(base, seed=5)
        assert sorted((u, v) for u, v, _ in g.edges()) == sorted(
            (u, v) for u, v, _ in base.edges()
        )

    def test_invalid_weight_range_rejected(self):
        with pytest.raises(ValueError):
            with_random_weights(grid(2, 2), low=0.0, high=1.0)
        with pytest.raises(ValueError):
            with_random_weights(grid(2, 2), low=5.0, high=1.0)

    def test_geometric_weights_are_distances(self):
        g = random_geometric(40, 0.4, seed=6, connected=False)
        assert all(0 < w <= 0.4 + 1e-12 for _, _, w in g.edges())

    def test_erdos_renyi_bad_probability(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)
