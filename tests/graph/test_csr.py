"""Differential tests: CSR kernel vs pure Python vs scipy.

The CSR kernel must be a *drop-in* replacement for the pure-Python
shortest-path substrate: identical distances, identical ball memberships
and — crucially for the paper's Section 2 total order — identical
``(dist, id)`` ball *order*.  These tests pin that equivalence on random
weighted and unweighted graphs for every kernel path (flat Python loops,
the scipy-limit batch, and the unit-weight BFS sweep).

A note on the dense matrix: ``MetricView`` in dense+scipy mode symmetrizes
its matrix (``min(dist, dist.T)``), which can differ from any forward
single-source run by one ulp on weighted graphs.  Kernel results are
therefore compared against the *forward* pure reference (exact equality),
and against the dense metric only on unweighted graphs, where all paths
are exact.
"""

import math

import numpy as np
import pytest

from repro.graph.core import Graph
from repro.graph.csr import CSRGraph, cached_csr_graph, csr_graph
from repro.graph.generators import (
    erdos_renyi,
    grid,
    random_geometric,
    with_random_weights,
)
from repro.graph.metric import MetricView
from repro.graph.shortest_paths import (
    _ball_radius_py,
    all_balls,
    bounded_distance,
    bounded_distance_py,
    dijkstra,
    dijkstra_py,
    multi_source_distances,
    multi_source_distances_py,
    reset_kernel_choice,
    truncated_dijkstra,
    truncated_dijkstra_py,
    use_kernel,
)


def _graphs():
    """Random weighted and unweighted graphs of a few shapes."""
    gs = []
    for seed in (1, 5):
        g = erdos_renyi(50, 0.12, seed=seed)
        gs.append(("er-unweighted", g))
        gs.append(("er-weighted", with_random_weights(g, seed=seed + 50)))
    gs.append(("grid", grid(6, 7)))
    gs.append(("geometric-weighted", random_geometric(60, 0.25, seed=3)))
    gs.append(("sparse-disconnected", erdos_renyi(60, 0.03, seed=11)))
    return gs


GRAPHS = _graphs()


@pytest.fixture(params=GRAPHS, ids=[name for name, _ in GRAPHS])
def graph(request):
    return request.param[1]


class TestKernelAvailability:
    def test_kernel_active_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert use_kernel()

    def test_env_override_forces_pure(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "pure")
        reset_kernel_choice()
        assert not use_kernel()
        g = erdos_renyi(20, 0.2, seed=1)
        # dispatch still returns correct results on the pure path
        assert dijkstra(g, 0) == dijkstra_py(g, 0)

    def test_choice_cached_until_reset(self, monkeypatch):
        """A mid-run env mutation must NOT flip the resolved dispatch
        (satellite: no mixed kernel/pure results within one build)."""
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert use_kernel()
        monkeypatch.setenv("REPRO_KERNEL", "pure")
        assert use_kernel()  # still the cached kernel choice
        reset_kernel_choice()
        assert not use_kernel()  # the hook re-reads the environment

    def test_csr_cache_invalidated_by_mutation(self):
        g = erdos_renyi(20, 0.2, seed=2)
        k1 = csr_graph(g)
        assert csr_graph(g) is k1
        assert cached_csr_graph(g) is k1
        u, v = next((u, v) for u in range(20) for v in range(20)
                    if u != v and not g.has_edge(u, v))
        g.add_edge(u, v, 1.0)
        assert cached_csr_graph(g) is None
        k2 = csr_graph(g)
        assert k2 is not k1
        assert k2.m == k1.m + 1


class TestDijkstraAgreement:
    def test_distances_and_parents_identical(self, graph):
        kernel = csr_graph(graph)
        for source in range(0, graph.n, 7):
            dist_py, parent_py = dijkstra_py(graph, source)
            dist_k, parent_k = kernel.dijkstra(source)
            assert dist_k == dist_py  # bitwise, not approx
            assert parent_k == parent_py

    def test_dispatch_matches_pure(self, graph):
        dist, parent = dijkstra(graph, 0)
        dist_py, parent_py = dijkstra_py(graph, 0)
        assert dist == dist_py and parent == parent_py


class TestTruncatedAgreement:
    @pytest.mark.parametrize("ell", [1, 2, 7, 23, 1000])
    def test_ball_and_order_identical(self, graph, ell):
        kernel = csr_graph(graph)
        for source in range(0, graph.n, 9):
            ball_py, dist_py = truncated_dijkstra_py(graph, source, ell)
            ball_k, dist_k = kernel.truncated_dijkstra(source, ell)
            assert ball_k == ball_py  # same members in the same order
            assert dist_k == dist_py

    def test_dispatch_matches_pure(self, graph):
        assert truncated_dijkstra(graph, 0, 9) == truncated_dijkstra_py(
            graph, 0, 9
        )


class TestAllBallsAgreement:
    """Every all_balls path returns the pure reference exactly."""

    @pytest.mark.parametrize("ell", [1, 4, 13, 40])
    def test_all_paths_identical(self, graph, ell):
        tol = 1e-9
        ell_eff = min(ell, graph.n)
        ref_balls = []
        ref_radii = []
        for u in graph.vertices():
            ball, dist = truncated_dijkstra_py(graph, u, ell_eff)
            ref_balls.append(ball)
            ref_radii.append(_ball_radius_py(graph, ball, dist, tol))
        kernel = csr_graph(graph)
        flat_balls, flat_radii = kernel.all_balls(
            ell_eff, tol=tol, with_radii=True, prefer_scipy=False
        )
        assert flat_balls == ref_balls
        assert flat_radii == ref_radii
        scipy_balls, scipy_radii = kernel.all_balls(
            ell_eff, tol=tol, with_radii=True, prefer_scipy=True
        )
        assert scipy_balls == ref_balls
        assert scipy_radii == ref_radii
        disp_balls, _ = all_balls(graph, ell, tol=tol)
        assert disp_balls == ref_balls

    def test_zero_ell_same_on_every_path(self, graph, monkeypatch):
        n = graph.n
        expect = ([[] for _ in range(n)], [0.0] * n)
        assert all_balls(graph, 0, with_radii=True) == expect
        monkeypatch.setenv("REPRO_KERNEL", "pure")
        reset_kernel_choice()
        assert all_balls(graph, 0, with_radii=True) == expect
        monkeypatch.delenv("REPRO_KERNEL")
        reset_kernel_choice()
        m = MetricView(graph, mode="lazy")
        assert m.all_balls(0) == expect
        assert MetricView(graph, mode="dense").all_balls(0) == expect

    def test_scipy_limit_path_forced(self):
        # Large-ish sparse graph so 4*ell <= n actually takes the
        # scipy-limit branch (with redo safety net) rather than BFS.
        g = with_random_weights(erdos_renyi(300, 0.02, seed=8), seed=9)
        kernel = csr_graph(g)
        ell = 20
        ref = [truncated_dijkstra_py(g, u, ell)[0] for u in g.vertices()]
        got, _ = kernel.all_balls(ell, tol=1e-9, prefer_scipy=True)
        assert got == ref

    def test_bfs_path_forced(self):
        g = erdos_renyi(300, 0.02, seed=8)  # unit weights -> BFS sweep
        kernel = csr_graph(g)
        assert kernel.is_unweighted()
        ell = 20
        ref_balls = []
        ref_radii = []
        for u in g.vertices():
            ball, dist = truncated_dijkstra_py(g, u, ell)
            ref_balls.append(ball)
            ref_radii.append(_ball_radius_py(g, ball, dist, 1e-9))
        got, radii = kernel.all_balls(ell, tol=1e-9, with_radii=True)
        assert got == ref_balls
        assert radii == ref_radii


class TestMultiSourceAgreement:
    def test_identical(self, graph):
        kernel = csr_graph(graph)
        sources = [0, graph.n // 3, graph.n - 1]
        assert kernel.multi_source_distances(
            sources
        ) == multi_source_distances_py(graph, sources)

    def test_duplicate_sources(self, graph):
        """Deduplication: repeated sources change nothing (satellite)."""
        sources = [0, graph.n // 2, graph.n // 2, 0, 0]
        expect = multi_source_distances(graph, [0, graph.n // 2])
        assert multi_source_distances(graph, sources) == expect
        assert multi_source_distances_py(graph, sources) == expect


class TestBoundedDistanceAgreement:
    @pytest.mark.parametrize("limit", [0.5, 2.0, 7.5, float("inf")])
    def test_identical(self, graph, limit):
        kernel = csr_graph(graph)
        for s, t in [(0, graph.n - 1), (1, graph.n // 2), (3, 3)]:
            assert kernel.bounded_distance(
                s, t, limit
            ) == bounded_distance_py(graph, s, t, limit)

    def test_dispatch_uses_cached_kernel_only(self):
        g = erdos_renyi(30, 0.15, seed=4)
        assert cached_csr_graph(g) is None
        # no cached kernel -> pure path, still correct
        assert bounded_distance(g, 0, 5, 100.0) == bounded_distance_py(
            g, 0, 5, 100.0
        )
        csr_graph(g)
        assert bounded_distance(g, 0, 5, 100.0) == bounded_distance_py(
            g, 0, 5, 100.0
        )


class TestSubgraphDijkstra:
    def test_closed_set_matches_global_distances(self):
        g = with_random_weights(erdos_renyi(40, 0.15, seed=6), seed=7)
        kernel = csr_graph(g)
        dist_py, _ = dijkstra_py(g, 0)
        # A shortest-path-closed set toward 0: the 12 closest vertices.
        members, _ = truncated_dijkstra_py(g, 0, 12)
        dist, parent = kernel.subgraph_dijkstra(0, members)
        for v in members:
            assert dist[v] == dist_py[v]
            assert parent[v] in members

    def test_kernel_matches_pure_reference(self, graph):
        from repro.graph.shortest_paths import subgraph_dijkstra_py

        kernel = csr_graph(graph)
        members, _ = truncated_dijkstra_py(graph, 0, max(3, graph.n // 3))
        assert kernel.subgraph_dijkstra(0, members) == subgraph_dijkstra_py(
            graph, 0, members
        )

    def test_root_not_member_raises(self):
        from repro.graph.shortest_paths import subgraph_dijkstra_py

        g = grid(3, 3)
        with pytest.raises(ValueError):
            csr_graph(g).subgraph_dijkstra(0, [1, 2])
        with pytest.raises(ValueError):
            subgraph_dijkstra_py(g, 0, [1, 2])

    def test_distance_closed_set_accepted_on_both_paths(self, monkeypatch):
        """Diamond: 3's deterministic global SPT parent (1) is outside the
        member set, but {0,2,3} realizes all its shortest paths internally
        — both dispatch paths must accept it with the same tree."""
        g = Graph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        m = MetricView(g, mode="dense")
        expect = {0: 0, 2: 0, 3: 2}
        assert m.restricted_spt_parents(0, [0, 2, 3]) == expect
        monkeypatch.setenv("REPRO_KERNEL", "pure")
        reset_kernel_choice()
        assert m.restricted_spt_parents(0, [0, 2, 3]) == expect


class TestMetricModesAgree:
    """Dense and lazy MetricView agree on unweighted graphs (exact)."""

    @pytest.mark.parametrize("use_scipy", [True, False])
    def test_lazy_matches_dense_unweighted(self, use_scipy):
        g = erdos_renyi(40, 0.12, seed=13)
        dense = MetricView(g, use_scipy=use_scipy, mode="dense")
        lazy = MetricView(g, use_scipy=use_scipy, mode="lazy")
        assert dense.mode == "dense" and lazy.mode == "lazy"
        for u in range(g.n):
            assert np.array_equal(lazy.row(u), dense.row(u))
        for ell in (1, 6, 17):
            for u in range(0, g.n, 5):
                assert lazy.ball(u, ell) == dense.ball(u, ell)
        fam_d, rad_d = dense.all_balls(9)
        fam_l, rad_l = lazy.all_balls(9)
        assert fam_l == fam_d
        assert rad_l == rad_d

    def test_lazy_matches_dense_weighted_approx(self):
        g = with_random_weights(erdos_renyi(40, 0.12, seed=14), seed=15)
        dense = MetricView(g, mode="dense")
        lazy = MetricView(g, mode="lazy")
        for u in range(0, g.n, 3):
            assert np.allclose(lazy.row(u), dense.row(u))
        # random float weights make exact (dist, id) ties measure-zero,
        # so ball order agrees despite the dense matrix symmetrization
        for u in range(0, g.n, 7):
            assert lazy.ball(u, 11) == dense.ball(u, 11)

    def test_lazy_scalar_facts(self):
        g = erdos_renyi(35, 0.15, seed=16)
        dense = MetricView(g, mode="dense")
        lazy = MetricView(g, mode="lazy")
        assert lazy.is_connected() == dense.is_connected()
        assert lazy.diameter() == dense.diameter()
        assert lazy.min_pairwise_distance() == dense.min_pairwise_distance()
        assert lazy.normalized_diameter() == dense.normalized_diameter()

    def test_lazy_columns_and_counts(self):
        # Unweighted: integer distances are exact on every path, so the
        # strict < counts match bit-for-bit (weighted rows can differ by
        # one ulp from the symmetrized dense matrix at exact ties).
        g = erdos_renyi(30, 0.2, seed=17)
        dense = MetricView(g, mode="dense")
        lazy = MetricView(g, mode="lazy")
        members = [2, 11, 23]
        assert np.array_equal(lazy.columns(members), dense.columns(members))
        thr = dense.columns(members).min(axis=1)
        assert np.array_equal(
            lazy.count_rows_below(thr), dense.count_rows_below(thr)
        )

    def test_lazy_matrix_escape_hatch(self):
        g = erdos_renyi(25, 0.2, seed=19)
        dense = MetricView(g, mode="dense")
        lazy = MetricView(g, mode="lazy")
        assert np.array_equal(lazy.matrix, dense.matrix)

    def test_lazy_row_cache_evicts(self):
        g = erdos_renyi(30, 0.2, seed=20)
        lazy = MetricView(g, mode="lazy", cache_rows=4)
        for u in range(g.n):
            lazy.row(u)
        assert len(lazy._row_cache) <= 4

    def test_auto_mode_threshold(self):
        g = erdos_renyi(12, 0.4, seed=21)
        assert MetricView(g, dense_threshold=20).mode == "dense"
        assert MetricView(g, dense_threshold=5).mode == "lazy"


class TestLazyStructuresIntegration:
    """The rewired structures agree across metric modes (unweighted=exact)."""

    def test_bunch_structure_lazy_equals_dense(self):
        from repro.structures.bunches import BunchStructure

        g = erdos_renyi(40, 0.15, seed=23)
        landmarks = [3, 17, 31]
        dense = BunchStructure(MetricView(g, mode="dense"), landmarks)
        lazy = BunchStructure(MetricView(g, mode="lazy"), landmarks)
        for v in range(g.n):
            assert lazy.pivot(v) == dense.pivot(v)
            assert lazy.bunch(v) == dense.bunch(v)
            assert lazy.cluster(v) == dense.cluster(v)

    def test_hierarchy_and_oracle_lazy_equals_dense(self):
        from repro.baselines.hierarchy import SampledHierarchy
        from repro.baselines.tz_oracle import TZOracle

        g = erdos_renyi(45, 0.15, seed=24)
        md, ml = MetricView(g, mode="dense"), MetricView(g, mode="lazy")
        hd = SampledHierarchy(md, 2, seed=5)
        hl = SampledHierarchy(ml, 2, seed=5)
        assert hd.level(1) == hl.level(1)
        for v in range(g.n):
            assert hd.bunch(v) == hl.bunch(v)
            assert hd.pivot(1, v) == hl.pivot(1, v)
        hl.validate()
        od = TZOracle(g, k=2, seed=5, metric=md, hierarchy=hd)
        ol = TZOracle(g, k=2, seed=5, metric=ml, hierarchy=hl)
        for u in range(0, g.n, 3):
            for v in range(1, g.n, 5):
                assert od.query(u, v) == ol.query(u, v)

    def test_cluster_sampling_lazy_equals_dense(self):
        from repro.structures.sampling import (
            cluster_sizes,
            sample_cluster_bounded,
        )

        g = erdos_renyi(40, 0.15, seed=25)
        md, ml = MetricView(g, mode="dense"), MetricView(g, mode="lazy")
        members = [1, 8, 22, 39]
        assert np.array_equal(
            cluster_sizes(md, members), cluster_sizes(ml, members)
        )
        assert sample_cluster_bounded(md, 6.0, seed=3) == (
            sample_cluster_bounded(ml, 6.0, seed=3)
        )

    def test_restricted_spt_lazy_and_kernel(self):
        g = with_random_weights(erdos_renyi(40, 0.15, seed=26), seed=27)
        m = MetricView(g, mode="dense")
        members = m.ball(0, 12)  # (dist, id)-prefix => shortest-path closed
        parents = m.restricted_spt_parents(0, members)
        assert parents[0] == 0
        member_set = set(members)
        for v, p in parents.items():
            assert p in member_set
            if v != 0:
                assert m.d(0, v) == pytest.approx(m.d(0, p) + g.weight(p, v))

    def test_restricted_spt_rejects_non_closed(self):
        from repro.graph.generators import path as path_graph

        m = MetricView(path_graph(5), mode="dense")
        with pytest.raises(ValueError):
            m.restricted_spt_parents(0, [0, 4])


def _duplicate_weight_graph(n=50, p=0.12, seed=9, wseed=17):
    """Random graph whose weights repeat from a small inexact set.

    Duplicate inexact weights (0.1, 0.25, ...) manufacture exact real
    distance ties whose float sums depend on accumulation order — the
    regime where one-ulp divergence between dispatch paths would show.
    """
    import random as _random

    base = erdos_renyi(n, p, seed=seed)
    rng = _random.Random(wseed)
    g = Graph(n)
    for u, v, _ in base.edges():
        g.add_edge(u, v, rng.choice([0.1, 0.2, 0.25, 0.3, 0.7]))
    return g


DELTA_GRAPHS = GRAPHS + [("tie-heavy", _duplicate_weight_graph())]


class TestDeltaEngine:
    """The batched weighted delta-stepping engine vs every other path.

    Distances, ball membership, ball (dist, id) order and radii must be
    bitwise identical to the pure reference — including graphs with
    duplicate edge weights (exact ties) and disconnected graphs.
    """

    @pytest.mark.parametrize(
        "graph_case", DELTA_GRAPHS, ids=[name for name, _ in DELTA_GRAPHS]
    )
    @pytest.mark.parametrize("ell", [1, 5, 17, 1000])
    def test_balls_and_radii_match_pure(self, graph_case, ell):
        _, g = graph_case
        tol = 1e-9
        ell_eff = min(ell, g.n)
        ref_balls, ref_radii = [], []
        for u in g.vertices():
            ball, dist = truncated_dijkstra_py(g, u, ell_eff)
            ref_balls.append(ball)
            ref_radii.append(_ball_radius_py(g, ball, dist, tol))
        kernel = csr_graph(g)
        balls, radii = kernel.all_balls(
            ell_eff, tol=tol, with_radii=True, engine="delta"
        )
        assert balls == ref_balls
        assert radii == ref_radii

    def test_engines_agree_on_weighted_graph(self):
        g = with_random_weights(erdos_renyi(150, 0.05, seed=21), seed=22)
        kernel = csr_graph(g)
        ref = kernel.all_balls(25, tol=1e-9, with_radii=True, engine="flat")
        for engine in ("delta", "scipy"):
            assert (
                kernel.all_balls(
                    25, tol=1e-9, with_radii=True, engine=engine
                )
                == ref
            )

    def test_auto_picks_delta_for_weighted(self):
        g = with_random_weights(erdos_renyi(60, 0.1, seed=23), seed=24)
        kernel = csr_graph(g)
        assert kernel.all_balls(9) == kernel.all_balls(9, engine="delta")

    def test_unknown_engine_rejected(self):
        kernel = csr_graph(erdos_renyi(10, 0.3, seed=1))
        with pytest.raises(ValueError):
            kernel.all_balls(3, engine="warp")

    def test_bfs_engine_requires_unit_weights(self):
        g = with_random_weights(erdos_renyi(20, 0.2, seed=2), seed=3)
        with pytest.raises(ValueError):
            csr_graph(g).all_balls(3, engine="bfs")

    @pytest.mark.parametrize(
        "graph_case", DELTA_GRAPHS, ids=[name for name, _ in DELTA_GRAPHS]
    )
    def test_bounded_rows_match_reference(self, graph_case):
        import random as _random

        _, g = graph_case
        kernel = csr_graph(g)
        rng = _random.Random(5)
        scale = max((w for _, _, w in g.edges()), default=1.0)
        limits = np.array(
            [rng.uniform(0.5, 4.0) * scale for _ in range(g.n)]
        )
        for s, verts, dists in kernel.bounded_rows(range(g.n), limits):
            row = np.asarray(dijkstra_py(g, s)[0])
            ref_v = np.flatnonzero(row < limits[s])
            assert np.array_equal(verts, ref_v)
            assert np.array_equal(dists, row[ref_v])

    def test_bounded_rows_infinite_limit_sweeps_component(self):
        g = with_random_weights(
            erdos_renyi(40, 0.05, seed=25, connected=False), seed=26
        )
        kernel = csr_graph(g)
        for s, verts, dists in kernel.bounded_rows([0, g.n - 1], np.inf):
            row = np.asarray(dijkstra_py(g, s)[0])
            ref_v = np.flatnonzero(np.isfinite(row))
            assert np.array_equal(verts, ref_v)
            assert np.array_equal(dists, row[ref_v])


class TestTieHeavyModeAgreement:
    """The acceptance regression: lazy and dense MetricView distances are
    bit-identical at exact weighted ties, with kernel and pure dispatch
    agreeing (the canonical forward-row orientation)."""

    @pytest.fixture(scope="class")
    def tie_graph(self):
        return _duplicate_weight_graph(n=60, p=0.12, seed=9, wseed=23)

    def test_ties_are_real_and_orientation_sensitive(self, tie_graph):
        # The forward all-pairs matrix genuinely is ulp-asymmetric here;
        # without one canonical orientation the modes would diverge.
        m = MetricView(tie_graph, mode="dense")
        raw = np.vstack([m.row(u) for u in range(tie_graph.n)])
        assert (raw != raw.T).sum() > 0

    def test_lazy_equals_dense_bitwise(self, tie_graph):
        dense = MetricView(tie_graph, mode="dense")
        lazy = MetricView(tie_graph, mode="lazy")
        for u in range(tie_graph.n):
            assert np.array_equal(lazy.row(u), dense.row(u))
        fam_d, rad_d = dense.all_balls(11)
        fam_l, rad_l = lazy.all_balls(11)
        assert fam_l == fam_d
        assert rad_l == rad_d

    def test_kernel_equals_pure_bitwise(self, tie_graph, monkeypatch):
        kernel_rows = [
            MetricView(tie_graph, mode="lazy").row(u).copy()
            for u in range(tie_graph.n)
        ]
        kernel_balls, _ = MetricView(tie_graph, mode="lazy").all_balls(11)
        monkeypatch.setenv("REPRO_KERNEL", "pure")
        reset_kernel_choice()
        pure = MetricView(tie_graph, mode="lazy")
        for u in range(tie_graph.n):
            assert np.array_equal(pure.row(u), kernel_rows[u])
        pure_balls, _ = pure.all_balls(11)
        assert pure_balls == kernel_balls

    def test_matrix_escape_hatch_still_symmetric(self, tie_graph):
        dense = MetricView(tie_graph, mode="dense")
        lazy = MetricView(tie_graph, mode="lazy")
        assert np.array_equal(dense.matrix, dense.matrix.T)
        assert np.array_equal(lazy.matrix, dense.matrix)


class TestCSRStructure:
    def test_insertion_order_preserved(self):
        g = Graph(4)
        g.add_edge(2, 3)
        g.add_edge(2, 0)
        g.add_edge(2, 1)
        k = CSRGraph.from_graph(g)
        lo, hi = k.indptr[2], k.indptr[3]
        assert k.indices[lo:hi].tolist() == [3, 0, 1]

    def test_empty_graph(self):
        k = CSRGraph.from_graph(Graph(0))
        assert k.n == 0 and k.m == 0
        balls, radii = k.all_balls(3, with_radii=True)
        assert balls == [] and radii == []
