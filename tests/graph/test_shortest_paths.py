"""Shortest-path algorithms, differentially tested against networkx."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.core import Graph
from repro.graph.generators import erdos_renyi, grid, with_random_weights
from repro.graph.shortest_paths import (
    bfs_distances,
    dijkstra,
    multi_source_distances,
    path_length,
    shortest_path_tree,
    truncated_dijkstra,
)


def _nx_distances(g: Graph, source: int):
    return nx.single_source_dijkstra_path_length(g.to_networkx(), source)


class TestBFS:
    def test_matches_networkx_on_grid(self):
        g = grid(5, 6)
        ref = nx.single_source_shortest_path_length(g.to_networkx(), 0)
        got = bfs_distances(g, 0)
        for v in g.vertices():
            assert got[v] == ref[v]

    def test_unreachable_is_inf(self):
        g = Graph.from_edges(3, [(0, 1)])
        dist = bfs_distances(g, 0)
        assert dist[2] == math.inf


class TestDijkstra:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx_weighted(self, seed):
        g = with_random_weights(erdos_renyi(40, 0.12, seed=seed), seed=seed + 100)
        ref = _nx_distances(g, 0)
        dist, _ = dijkstra(g, 0)
        for v in g.vertices():
            assert dist[v] == pytest.approx(ref[v])

    def test_parents_form_shortest_paths(self):
        g = with_random_weights(erdos_renyi(40, 0.12, seed=9), seed=19)
        dist, parent = dijkstra(g, 0)
        for v in g.vertices():
            if v == 0:
                assert parent[v] is None
                continue
            p = parent[v]
            assert dist[v] == pytest.approx(dist[p] + g.weight(p, v))


class TestTruncatedDijkstra:
    def test_ball_is_dist_id_prefix(self):
        g = erdos_renyi(50, 0.1, seed=3)
        full, _ = dijkstra(g, 7)
        order = sorted(g.vertices(), key=lambda v: (full[v], v))
        for ell in (1, 5, 17, 50):
            ball, dist = truncated_dijkstra(g, 7, ell)
            assert ball == order[:ell]
            for v in ball:
                assert dist[v] == pytest.approx(full[v])

    def test_zero_ell(self):
        g = grid(3, 3)
        ball, dist = truncated_dijkstra(g, 0, 0)
        assert ball == [] and dist == {}

    def test_ell_beyond_n(self):
        g = grid(3, 3)
        ball, _ = truncated_dijkstra(g, 0, 100)
        assert len(ball) == 9

    @given(seed=st.integers(0, 30), ell=st.integers(1, 25))
    @settings(max_examples=25, deadline=None)
    def test_source_always_first(self, seed, ell):
        g = erdos_renyi(25, 0.15, seed=seed)
        ball, _ = truncated_dijkstra(g, 4, ell)
        assert ball[0] == 4


class TestShortestPathTree:
    def test_full_tree_distances(self):
        g = with_random_weights(erdos_renyi(35, 0.15, seed=2), seed=8)
        tree = shortest_path_tree(g, 0)
        dist, _ = dijkstra(g, 0)
        # walk each vertex to the root; the accumulated weight must match
        for v in g.vertices():
            total, cur = 0.0, v
            while cur != 0:
                p = tree[cur]
                total += g.weight(cur, p)
                cur = p
            assert total == pytest.approx(dist[v])

    def test_root_not_member_raises(self):
        g = grid(3, 3)
        with pytest.raises(ValueError):
            shortest_path_tree(g, 0, members=[1, 2])

    def test_unreachable_member_raises(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            shortest_path_tree(g, 0, members=[0, 2])


class TestMultiSource:
    def test_matches_min_over_sources(self):
        g = with_random_weights(erdos_renyi(40, 0.12, seed=4), seed=14)
        sources = [3, 17, 29]
        dist, nearest = multi_source_distances(g, sources)
        per_source = {s: dijkstra(g, s)[0] for s in sources}
        for v in g.vertices():
            expect = min((per_source[s][v], s) for s in sources)
            assert dist[v] == pytest.approx(expect[0])
            assert nearest[v] == expect[1]

    def test_tie_breaks_to_smaller_source(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        _, nearest = multi_source_distances(g, [0, 2])
        assert nearest[1] == 0  # equidistant; smaller id wins

    def test_duplicate_sources_equivalent(self):
        """Sources are deduplicated up front; repeats change nothing."""
        g = with_random_weights(erdos_renyi(30, 0.15, seed=6), seed=16)
        unique = [4, 11, 27]
        dup = [27, 4, 11, 4, 27, 27]
        assert multi_source_distances(g, dup) == multi_source_distances(
            g, unique
        )

    def test_single_duplicated_source(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        dist, nearest = multi_source_distances(g, [1, 1, 1])
        assert dist == [1.0, 0.0, 1.0]
        assert nearest == [1, 1, 1]


class TestPathLength:
    def test_sums_weights(self):
        g = Graph.from_edges(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert path_length(g, [0, 1, 2]) == 5.0

    def test_invalid_hop_raises(self):
        g = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(Exception):
            path_length(g, [0, 2])
