"""Differential and fault tests for the multiprocess preprocessing tier.

The contract of :mod:`repro.graph.parallel` is *bit-identity*: turning
``REPRO_PARALLEL`` on changes wall-clock, never a single byte of any
result.  Every test here therefore compares parallel output against the
serial path with exact equality — arrays with ``np.array_equal``,
scheme tables via their canonical shard encoding.

Worker crashes are simulated with real ``SIGKILL`` (exactly what the
OOM killer delivers): one dead worker must be retried transparently; a
pool that keeps dying must surface the typed
:class:`~repro.graph.parallel.ParallelWorkerError`; and no shared-memory
segment may outlive its engine either way.
"""

from __future__ import annotations

import gc
import glob
import os
import signal

import pytest

np = pytest.importorskip("numpy")

from repro.api import all_specs
from repro.graph import parallel
from repro.graph.csr import csr_graph
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.shard_codec import encode_node_table

pytestmark = pytest.mark.skipif(
    (os.cpu_count() or 1) < 1, reason="needs a scheduler"
)


def _weighted(n: int, p: float, seed: int):
    return with_random_weights(erdos_renyi(n, p, seed=seed), seed=seed + 1)


@pytest.fixture
def two_workers(monkeypatch):
    """Force the tier on with 2 workers and a floor of 1 source/tree."""
    monkeypatch.setenv("REPRO_PARALLEL", "2")
    monkeypatch.setattr(parallel, "_MIN_PARALLEL_SOURCES", 1)
    monkeypatch.setattr(parallel, "_MIN_PARALLEL_TREES", 1)
    parallel.reset_parallel_choice()
    yield
    parallel.reset_parallel_choice()


def _serial(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "off")
    parallel.reset_parallel_choice()


# ----------------------------------------------------------------------
# REPRO_PARALLEL resolution
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "raw,expected",
    [
        ("", 0),
        ("off", 0),
        ("no", 0),
        ("false", 0),
        ("0", 0),
        ("1", 0),  # one worker is just serial with IPC overhead
        ("2", 2),
        ("6", 6),
    ],
)
def test_choice_resolution(monkeypatch, raw, expected):
    monkeypatch.setenv("REPRO_PARALLEL", raw)
    parallel.reset_parallel_choice()
    assert parallel.parallel_workers() == expected


def test_choice_auto_matches_cores(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "auto")
    parallel.reset_parallel_choice()
    cores = os.cpu_count() or 1
    assert parallel.parallel_workers() == (cores if cores >= 2 else 0)


@pytest.mark.parametrize("raw", ["-2", "many", "2.5"])
def test_choice_rejects_garbage(monkeypatch, raw):
    monkeypatch.setenv("REPRO_PARALLEL", raw)
    parallel.reset_parallel_choice()
    with pytest.raises(parallel.ParallelError):
        parallel.parallel_workers()


def test_choice_is_cached_until_reset(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "4")
    parallel.reset_parallel_choice()
    assert parallel.parallel_workers() == 4
    monkeypatch.setenv("REPRO_PARALLEL", "off")
    assert parallel.parallel_workers() == 4  # cached
    parallel.reset_parallel_choice()
    assert parallel.parallel_workers() == 0


# ----------------------------------------------------------------------
# Engine differentials: parallel == serial, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["delta", "scipy", "flat"])
def test_all_balls_engines_bit_identical_weighted(
    monkeypatch, two_workers, engine
):
    if engine == "scipy":
        pytest.importorskip("scipy")
    csr = csr_graph(_weighted(2000, 0.003, seed=17))
    ell = 24
    pb, pv, pr = csr.all_balls(
        ell, tol=0.0, with_radii=True, engine=engine, as_arrays=True
    )
    sb, sv, sr = csr._ball_chunk_arrays(
        0, csr.n, ell, tol=0.0, with_radii=True, engine=engine
    )
    assert np.array_equal(pb, sb)
    assert np.array_equal(pv, sv)
    assert np.array_equal(pr, sr)


def test_all_balls_bfs_bit_identical_unweighted(monkeypatch, two_workers):
    csr = csr_graph(erdos_renyi(2000, 0.003, seed=17))
    pb, pv, pr = csr.all_balls(
        24, with_radii=True, engine="bfs", as_arrays=True
    )
    sb, sv, sr = csr._ball_chunk_arrays(
        0, csr.n, 24, tol=0.0, with_radii=True, engine="bfs"
    )
    assert np.array_equal(pb, sb)
    assert np.array_equal(pv, sv)
    assert np.array_equal(pr, sr)


def test_all_balls_lists_mode_bit_identical(monkeypatch, two_workers):
    csr = csr_graph(_weighted(600, 0.01, seed=3))
    balls_p, radii_p = csr.all_balls(16, with_radii=True)
    _serial(monkeypatch)
    balls_s, radii_s = csr.all_balls(16, with_radii=True)
    assert balls_p == balls_s
    assert radii_p == radii_s


def test_bounded_rows_bit_identical(monkeypatch, two_workers):
    csr = csr_graph(_weighted(700, 0.01, seed=9))
    par = [
        (s, v.copy(), d.copy())
        for s, v, d in csr.bounded_rows(range(csr.n), 9.0)
    ]
    _serial(monkeypatch)
    ser = list(csr.bounded_rows(range(csr.n), 9.0))
    assert len(par) == len(ser)
    for (s1, v1, d1), (s2, v2, d2) in zip(par, ser):
        assert s1 == s2
        assert np.array_equal(v1, v2)
        assert np.array_equal(d1, d2)


def test_spt_pred_rows_bit_identical(monkeypatch, two_workers):
    pytest.importorskip("scipy")
    csr = csr_graph(_weighted(700, 0.01, seed=21))
    roots = list(range(0, csr.n, 7))
    rows_p = csr.spt_pred_rows(roots)
    _serial(monkeypatch)
    rows_s = csr.spt_pred_rows(roots)
    assert np.array_equal(rows_p, rows_s)


def test_metric_prefetch_changes_no_tree(monkeypatch, two_workers):
    pytest.importorskip("scipy")
    g = _weighted(600, 0.01, seed=33)
    roots = list(range(0, 600, 29))
    warm = MetricView(g, mode="lazy")
    warm.prefetch_spt_parents(roots)
    cold = MetricView(g, mode="lazy")
    for r in roots:
        assert warm.spt_parents(r) == cold.spt_parents(r)
    assert not warm._pred_rows  # prefetched rows are consumed


# ----------------------------------------------------------------------
# Substrate / registered-scheme differentials
# ----------------------------------------------------------------------
def test_substrate_artifacts_bit_identical_at_2000(monkeypatch, two_workers):
    """Ball distances/radii, hitting sets and landmark samples at
    n=2000 — the lazy-metric substrate the schemes all share — do not
    change by a bit when the pool is on (above the real engagement
    floor: no patched thresholds here beyond the fixture's)."""
    pytest.importorskip("scipy")
    from repro.api import Substrate

    n, ell = 2000, 18

    def artifacts():
        g = _weighted(n, 0.003, seed=41)
        sub = Substrate(g, metric=MetricView(g, mode="lazy"))
        family = sub.ball_family(ell)
        return (
            family.balls(),
            [family.radius(u) for u in range(n)],
            sub.hitting_set(ell),
            sub.landmark_sample(n / 12, 5),
        )

    par = artifacts()
    _serial(monkeypatch)
    ser = artifacts()
    assert par == ser


@pytest.mark.parametrize(
    "spec", all_specs(), ids=lambda s: s.name
)
def test_registered_schemes_bit_identical(monkeypatch, two_workers, spec):
    """Every registered scheme builds byte-identical tables and labels
    with the pool on (floors forced to 1 so even this small build runs
    through the workers)."""
    pytest.importorskip("scipy")
    n = 160
    gu = erdos_renyi(n, 0.05, seed=61)
    g = with_random_weights(gu, seed=62) if spec.prefers_weighted else gu

    def build():
        scheme = spec.factory(
            g, metric=MetricView(g, mode="lazy"), **spec.defaults()
        )
        blobs = [encode_node_table(r) for r in scheme.compile_tables()]
        labels = [scheme.label_of(v) for v in range(n)]
        return blobs, labels

    par = build()
    _serial(monkeypatch)
    ser = build()
    assert par == ser


def test_packed_shard_write_byte_identical(monkeypatch, two_workers, tmp_path):
    pytest.importorskip("scipy")
    from repro.api import get_spec
    from repro.routing.serving import write_shards

    g = erdos_renyi(180, 0.05, seed=71)
    scheme = get_spec("thm10").factory(g, eps=0.5)

    def tree_bytes(root):
        out = {}
        for dirpath, _, names in os.walk(root):
            for name in names:
                p = os.path.join(dirpath, name)
                with open(p, "rb") as fh:
                    out[os.path.relpath(p, root)] = fh.read()
        return out

    write_shards(
        scheme, str(tmp_path / "par"), spec_name="thm10",
        packed=True, group_size=16, replicas=2,
    )
    _serial(monkeypatch)
    write_shards(
        scheme, str(tmp_path / "ser"), spec_name="thm10",
        packed=True, group_size=16, replicas=2,
    )
    assert tree_bytes(tmp_path / "par") == tree_bytes(tmp_path / "ser")


# ----------------------------------------------------------------------
# Crashes, staleness, leaks
# ----------------------------------------------------------------------
def test_killed_worker_is_retried_bit_identically(monkeypatch, two_workers):
    csr = csr_graph(_weighted(300, 0.03, seed=5))
    _serial(monkeypatch)
    sb, sv, sr = csr._ball_chunk_arrays(
        0, csr.n, 15, tol=0.0, with_radii=True, engine="delta"
    )
    monkeypatch.setenv("REPRO_PARALLEL", "2")
    parallel.reset_parallel_choice()
    pids = parallel.run_tasks(parallel._task_pid, [(), ()], 2)
    before = parallel.pool_respawns()
    os.kill(pids[0], signal.SIGKILL)
    pb, pv, pr = csr.all_balls(
        15, tol=0.0, with_radii=True, engine="delta", as_arrays=True
    )
    assert np.array_equal(pb, sb)
    assert np.array_equal(pv, sv)
    assert np.array_equal(pr, sr)
    assert parallel.pool_respawns() > before


def test_repeatedly_dying_pool_raises_typed_error(two_workers):
    with pytest.raises(parallel.ParallelWorkerError):
        parallel.run_tasks(parallel._task_kill_self, [()], 2)
    # and the tier recovers for the next caller
    assert parallel.run_tasks(parallel._task_pid, [()], 2)


def test_stale_descriptor_refused(two_workers):
    csr = csr_graph(_weighted(300, 0.03, seed=5))
    shared = parallel.SharedCSR.publish(csr)
    desc = shared.descriptor()
    shared.close()
    with pytest.raises(parallel.StaleSharedSegmentError):
        shared.descriptor()
    task = (desc, 0, 10, 5, 0.0, False, "delta", 1 << 22, 1 << 24)
    with pytest.raises(parallel.StaleSharedSegmentError):
        parallel.run_tasks(parallel._task_ball_chunk, [task], 2)


def test_no_shared_memory_leaks(two_workers):
    csr = csr_graph(_weighted(400, 0.02, seed=13))
    csr.all_balls(12, tol=0.0, as_arrays=True)
    assert csr._parallel is not None  # the engine engaged
    pattern = f"/dev/shm/*repro-{os.getpid()}-*"
    assert glob.glob(pattern)  # segments live while the engine does
    del csr
    gc.collect()
    assert glob.glob(pattern) == []
