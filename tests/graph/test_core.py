"""Unit tests for the Graph representation."""

import pytest

from repro.graph.core import Graph, GraphError


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.n == 0
        assert g.m == 0
        assert g.is_connected()

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_from_edges_unweighted(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.n == 4
        assert g.m == 3
        assert g.weight(0, 1) == 1.0

    def test_from_edges_weighted(self):
        g = Graph.from_edges(3, [(0, 1, 2.5), (1, 2, 0.5)])
        assert g.weight(0, 1) == 2.5
        assert g.weight(2, 1) == 0.5

    def test_from_networkx_roundtrip(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge(0, 1, weight=3.0)
        nxg.add_edge(1, 2)
        g = Graph.from_networkx(nxg)
        assert g.n == 3
        assert g.weight(0, 1) == 3.0
        assert g.weight(1, 2) == 1.0
        back = g.to_networkx()
        assert set(back.edges()) == {(0, 1), (1, 2)}

    def test_copy_is_independent(self):
        g = Graph.from_edges(3, [(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.m == 1
        assert h.m == 2

    def test_copy_preserves_neighbor_insertion_order(self):
        """Regression: copy() used to re-add edges in u < v scan order,
        silently permuting the port numbering of copied graphs."""
        g = Graph(4)
        g.add_edge(2, 3)
        g.add_edge(2, 0)
        g.add_edge(2, 1)
        g.add_edge(0, 1)
        h = g.copy()
        for u in g.vertices():
            assert h.neighbors(u) == g.neighbors(u)
        assert h.neighbors(2) == [3, 0, 1]  # insertion order, not [0, 1, 3]
        assert h.neighbor_items(2) == g.neighbor_items(2)

    def test_copy_preserves_ports(self):
        from repro.routing.ports import PortAssignment

        g = Graph(5)
        for u, v in [(3, 1), (3, 4), (3, 0), (1, 0), (4, 0), (2, 4)]:
            g.add_edge(u, v)
        h = g.copy()
        pg, ph = PortAssignment(g), PortAssignment(h)
        for u in g.vertices():
            assert pg.degree(u) == ph.degree(u)
            for p in range(pg.degree(u)):
                assert pg.neighbor(u, p) == ph.neighbor(u, p)


class TestMutation:
    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 0)

    def test_duplicate_edge_rejected(self):
        g = Graph(2)
        g.add_edge(0, 1)
        with pytest.raises(GraphError):
            g.add_edge(1, 0)

    def test_nonpositive_weight_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 0.0)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, -2.0)

    def test_out_of_range_vertex_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 2)
        with pytest.raises(GraphError):
            g.add_edge(-1, 1)

    def test_bool_vertex_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(True, 1)

    def test_add_or_update_edge(self):
        g = Graph(2)
        g.add_or_update_edge(0, 1, 2.0)
        g.add_or_update_edge(0, 1, 5.0)
        assert g.m == 1
        assert g.weight(0, 1) == 5.0
        assert g.weight(1, 0) == 5.0


class TestQueries:
    def test_edges_listed_once(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        edges = list(g.edges())
        assert len(edges) == 3
        assert all(u < v for u, v, _ in edges)

    def test_neighbors_deterministic_order(self):
        g = Graph(4)
        g.add_edge(0, 2)
        g.add_edge(0, 1)
        g.add_edge(0, 3)
        assert g.neighbors(0) == [2, 1, 3]  # insertion order

    def test_degree(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_missing_edge_weight_raises(self):
        g = Graph(3)
        with pytest.raises(GraphError):
            g.weight(0, 1)

    def test_is_unweighted(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.is_unweighted()
        g2 = Graph.from_edges(3, [(0, 1, 2.0)])
        assert not g2.is_unweighted()

    def test_min_max_weight(self):
        g = Graph.from_edges(3, [(0, 1, 2.0), (1, 2, 5.0)])
        assert g.min_weight() == 2.0
        assert g.max_weight() == 5.0

    def test_min_weight_on_edgeless_raises(self):
        with pytest.raises(GraphError):
            Graph(3).min_weight()


class TestConnectivity:
    def test_connected_components(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3)])
        comps = g.connected_components()
        assert comps == [[0, 1], [2, 3], [4]]

    def test_is_connected(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.is_connected()
        g2 = Graph.from_edges(3, [(0, 1)])
        assert not g2.is_connected()


class TestConversion:
    def test_to_csr_symmetric(self):
        g = Graph.from_edges(3, [(0, 1, 2.0), (1, 2, 3.0)])
        csr = g.to_csr()
        assert csr.shape == (3, 3)
        assert csr[0, 1] == 2.0
        assert csr[1, 0] == 2.0
        assert csr[0, 2] == 0.0

    def test_repr(self):
        g = Graph.from_edges(2, [(0, 1)])
        assert "n=2" in repr(g)
