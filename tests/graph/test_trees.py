"""RootedTree normalization and path queries."""

import pytest

from repro.graph.trees import RootedTree


def _sample_tree():
    #       0
    #      / \
    #     1   2
    #    /|    \
    #   3 4     5
    #   |
    #   6
    return RootedTree({0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 3})


class TestConstruction:
    def test_root_detection(self):
        t = _sample_tree()
        assert t.root == 0
        assert len(t) == 7

    def test_no_root_rejected(self):
        with pytest.raises(ValueError):
            RootedTree({0: 1, 1: 0})

    def test_two_roots_rejected(self):
        with pytest.raises(ValueError):
            RootedTree({0: 0, 1: 1})

    def test_foreign_parent_rejected(self):
        with pytest.raises(ValueError):
            RootedTree({0: 0, 1: 9})

    def test_children_sorted(self):
        t = RootedTree({0: 0, 5: 0, 2: 0, 9: 0})
        assert t.children[0] == [2, 5, 9]


class TestStructure:
    def test_subtree_sizes(self):
        t = _sample_tree()
        assert t.size[0] == 7
        assert t.size[1] == 4
        assert t.size[2] == 2
        assert t.size[6] == 1

    def test_depths(self):
        t = _sample_tree()
        assert t.depth[0] == 0
        assert t.depth[6] == 3

    def test_heavy_child(self):
        t = _sample_tree()
        assert t.heavy_child(0) == 1  # subtree of 4 beats 2's subtree of 2
        assert t.heavy_child(1) == 3
        assert t.heavy_child(6) is None

    def test_heavy_child_tie_smaller_id(self):
        t = RootedTree({0: 0, 1: 0, 2: 0})
        assert t.heavy_child(0) == 1

    def test_vertices_root_first(self):
        t = _sample_tree()
        order = t.vertices
        assert order[0] == 0
        pos = {v: i for i, v in enumerate(order)}
        for v, p in t.parent.items():
            if v != t.root:
                assert pos[p] < pos[v]


class TestPaths:
    def test_path_to_root(self):
        t = _sample_tree()
        assert t.path_to_root(6) == [6, 3, 1, 0]

    def test_tree_path(self):
        t = _sample_tree()
        assert t.tree_path(6, 5) == [6, 3, 1, 0, 2, 5]
        assert t.tree_path(3, 4) == [3, 1, 4]
        assert t.tree_path(2, 2) == [2]

    def test_tree_distance_unweighted(self):
        t = _sample_tree()
        assert t.tree_distance(6, 5) == 5.0

    def test_tree_distance_weighted(self):
        t = RootedTree(
            {0: 0, 1: 0, 2: 1}, weight={1: 2.0, 2: 3.0}
        )
        assert t.tree_distance(0, 2) == 5.0
        assert t.tree_distance(2, 0) == 5.0

    def test_contains(self):
        t = _sample_tree()
        assert 6 in t
        assert 99 not in t
