"""Cluster-bounded sampling (Lemma 4)."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.structures.sampling import cluster_sizes, sample_cluster_bounded


class TestClusterSizes:
    def test_empty_landmarks_gives_full_clusters(self, metric_er):
        sizes = cluster_sizes(metric_er, [])
        assert all(s == metric_er.n for s in sizes)

    def test_all_landmarks_gives_empty_clusters(self, metric_er):
        sizes = cluster_sizes(metric_er, list(range(metric_er.n)))
        assert all(s == 0 for s in sizes)

    def test_landmark_clusters_empty(self, metric_er):
        a = [0, 5, 9]
        sizes = cluster_sizes(metric_er, a)
        for w in a:
            assert sizes[w] == 0


class TestSampling:
    @pytest.mark.parametrize("s", [4.0, 8.0, 20.0])
    def test_postcondition_holds(self, metric_er, s):
        a = sample_cluster_bounded(metric_er, s, seed=1)
        sizes = cluster_sizes(metric_er, a)
        assert sizes.max() <= 4.0 * metric_er.n / s

    def test_postcondition_weighted(self, metric_er_weighted):
        a = sample_cluster_bounded(metric_er_weighted, 10.0, seed=2)
        sizes = cluster_sizes(metric_er_weighted, a)
        assert sizes.max() <= 4.0 * metric_er_weighted.n / 10.0

    def test_deterministic_for_seed(self, metric_er):
        assert sample_cluster_bounded(metric_er, 8.0, seed=5) == \
            sample_cluster_bounded(metric_er, 8.0, seed=5)

    def test_size_scales_with_s(self, metric_er):
        small = sample_cluster_bounded(metric_er, 4.0, seed=3)
        large = sample_cluster_bounded(metric_er, 30.0, seed=3)
        assert len(small) <= len(large) + 5  # generous slack for randomness

    def test_invalid_s_rejected(self, metric_er):
        with pytest.raises(ValueError):
            sample_cluster_bounded(metric_er, 0.0)

    def test_custom_bound_factor(self, metric_er):
        a = sample_cluster_bounded(metric_er, 8.0, seed=4, bound_factor=2.0)
        sizes = cluster_sizes(metric_er, a)
        assert sizes.max() <= 2.0 * metric_er.n / 8.0

    def test_huge_s_means_dense_sample(self, metric_er):
        n = metric_er.n
        a = sample_cluster_bounded(metric_er, float(n), seed=6)
        sizes = cluster_sizes(metric_er, a)
        assert sizes.max() <= 4


class TestCrossRoundCache:
    """The cluster-size cache must be invisible: identical samples,
    identical RNG stream, on every metric mode — only fewer row scans."""

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_cache_matches_rescan_reference(self, metric_er_weighted, seed):
        cached = sample_cluster_bounded(
            metric_er_weighted, 9.0, seed=seed, use_cache=True
        )
        rescan = sample_cluster_bounded(
            metric_er_weighted, 9.0, seed=seed, use_cache=False
        )
        assert cached == rescan

    def test_cache_matches_across_modes(self):
        g = with_random_weights(erdos_renyi(50, 0.12, seed=31), seed=32)
        md = MetricView(g, mode="dense")
        ml = MetricView(g, mode="lazy")
        for seed in (1, 7):
            assert sample_cluster_bounded(md, 7.0, seed=seed) == (
                sample_cluster_bounded(ml, 7.0, seed=seed)
            )

    def test_cache_matches_on_disconnected_graph(self):
        g = with_random_weights(
            erdos_renyi(60, 0.04, seed=33, connected=False), seed=34
        )
        m = MetricView(g, mode="lazy")
        assert sample_cluster_bounded(m, 6.0, seed=2) == (
            sample_cluster_bounded(m, 6.0, seed=2, use_cache=False)
        )

    def test_cache_skips_repeated_full_scans(self):
        g = with_random_weights(erdos_renyi(120, 0.06, seed=35), seed=36)
        rescan = MetricView(g, mode="lazy")
        sample_cluster_bounded(rescan, 11.0, seed=4, use_cache=False)
        cached = MetricView(g, mode="lazy")
        sample_cluster_bounded(cached, 11.0, seed=4, use_cache=True)
        swept_rescan = rescan.rows_computed + rescan.bounded_rows_computed
        swept_cached = cached.rows_computed + cached.bounded_rows_computed
        # The reference pays ~n bounded rows per round; the cache pays n
        # once (round two) plus the shrinking suspect sets.
        assert swept_cached < swept_rescan

    def test_count_rows_below_sources_subset(self, metric_er_weighted):
        m = metric_er_weighted
        thr = m.columns([3, 17]).min(axis=1)
        full = m.count_rows_below(thr)
        subset = m.count_rows_below(thr, sources=[5, 40, 71])
        assert np.array_equal(subset, full[[5, 40, 71]])
