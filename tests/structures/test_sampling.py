"""Cluster-bounded sampling (Lemma 4)."""

import pytest

from repro.structures.sampling import cluster_sizes, sample_cluster_bounded


class TestClusterSizes:
    def test_empty_landmarks_gives_full_clusters(self, metric_er):
        sizes = cluster_sizes(metric_er, [])
        assert all(s == metric_er.n for s in sizes)

    def test_all_landmarks_gives_empty_clusters(self, metric_er):
        sizes = cluster_sizes(metric_er, list(range(metric_er.n)))
        assert all(s == 0 for s in sizes)

    def test_landmark_clusters_empty(self, metric_er):
        a = [0, 5, 9]
        sizes = cluster_sizes(metric_er, a)
        for w in a:
            assert sizes[w] == 0


class TestSampling:
    @pytest.mark.parametrize("s", [4.0, 8.0, 20.0])
    def test_postcondition_holds(self, metric_er, s):
        a = sample_cluster_bounded(metric_er, s, seed=1)
        sizes = cluster_sizes(metric_er, a)
        assert sizes.max() <= 4.0 * metric_er.n / s

    def test_postcondition_weighted(self, metric_er_weighted):
        a = sample_cluster_bounded(metric_er_weighted, 10.0, seed=2)
        sizes = cluster_sizes(metric_er_weighted, a)
        assert sizes.max() <= 4.0 * metric_er_weighted.n / 10.0

    def test_deterministic_for_seed(self, metric_er):
        assert sample_cluster_bounded(metric_er, 8.0, seed=5) == \
            sample_cluster_bounded(metric_er, 8.0, seed=5)

    def test_size_scales_with_s(self, metric_er):
        small = sample_cluster_bounded(metric_er, 4.0, seed=3)
        large = sample_cluster_bounded(metric_er, 30.0, seed=3)
        assert len(small) <= len(large) + 5  # generous slack for randomness

    def test_invalid_s_rejected(self, metric_er):
        with pytest.raises(ValueError):
            sample_cluster_bounded(metric_er, 0.0)

    def test_custom_bound_factor(self, metric_er):
        a = sample_cluster_bounded(metric_er, 8.0, seed=4, bound_factor=2.0)
        sizes = cluster_sizes(metric_er, a)
        assert sizes.max() <= 2.0 * metric_er.n / 8.0

    def test_huge_s_means_dense_sample(self, metric_er):
        n = metric_er.n
        a = sample_cluster_bounded(metric_er, float(n), seed=6)
        sizes = cluster_sizes(metric_er, a)
        assert sizes.max() <= 4
