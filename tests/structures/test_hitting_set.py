"""Hitting sets (Lemma 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.hitting_set import (
    greedy_hitting_set,
    random_hitting_set,
    verify_hitting_set,
)


class TestGreedy:
    def test_hits_everything(self):
        sets = [[0, 1, 2], [2, 3, 4], [4, 5, 6], [0, 6]]
        h = greedy_hitting_set(sets)
        assert verify_hitting_set(set(h), sets)

    def test_picks_popular_element(self):
        sets = [[0, i] for i in range(1, 6)]
        assert greedy_hitting_set(sets) == [0]

    def test_deterministic(self):
        sets = [[0, 1], [1, 2], [2, 3], [3, 0]]
        assert greedy_hitting_set(sets) == greedy_hitting_set(sets)

    def test_empty_input(self):
        assert greedy_hitting_set([]) == []

    def test_skips_empty_sets(self):
        assert greedy_hitting_set([[], [1]]) == [1]

    def test_size_reasonable(self):
        # 20 disjoint sets need >= 20 hitters; overlapping ones far fewer.
        disjoint = [[i, 100 + i] for i in range(20)]
        assert len(greedy_hitting_set(disjoint)) == 20

    @given(
        st.lists(
            st.lists(st.integers(0, 30), min_size=1, max_size=8),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_always_valid(self, sets):
        h = greedy_hitting_set(sets)
        assert verify_hitting_set(set(h), sets)


class TestRandom:
    def test_hits_everything(self):
        sets = [list(range(i, i + 10)) for i in range(0, 50, 5)]
        h = random_hitting_set(sets, 60, seed=3)
        assert verify_hitting_set(set(h), sets)

    def test_deterministic_for_seed(self):
        sets = [list(range(i, i + 10)) for i in range(0, 50, 5)]
        assert random_hitting_set(sets, 60, seed=3) == random_hitting_set(
            sets, 60, seed=3
        )

    def test_empty_input(self):
        assert random_hitting_set([], 10) == []

    def test_ball_workload(self, metric_er):
        """Realistic use: hit every ball of a BallFamily."""
        from repro.structures.balls import BallFamily

        fam = BallFamily(metric_er, 10)
        balls = [fam.ball(u) for u in range(metric_er.n)]
        greedy = greedy_hitting_set(balls)
        assert verify_hitting_set(set(greedy), balls)
        # Õ(n/s) sanity: greedy needs far fewer hitters than vertices.
        assert len(greedy) < metric_er.n / 2
        sampled = random_hitting_set(balls, metric_er.n, seed=1)
        assert verify_hitting_set(set(sampled), balls)
        # The random variant carries the full ln(k) factor, which dominates
        # at n=80; only validity is asserted here.
        assert len(sampled) <= metric_er.n
