"""Vicinity balls: ordering, Property 1, radii, boundary edges."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi, grid, with_random_weights
from repro.graph.metric import MetricView
from repro.structures.balls import BallFamily, ball_size_parameter


class TestBallSizeParameter:
    def test_basic_growth(self):
        assert ball_size_parameter(1000, 10, 1.0) >= 10

    def test_clamped_to_n(self):
        assert ball_size_parameter(20, 100, 5.0) == 20

    def test_at_least_one(self):
        assert ball_size_parameter(100, 0.01, 0.01) == 1

    def test_zero_n(self):
        assert ball_size_parameter(0, 5, 1.0) == 0


class TestBallFamily:
    def test_orders_and_membership(self, metric_er):
        fam = BallFamily(metric_er, 9)
        for u in (0, 13, 55):
            ball = fam.ball(u)
            assert len(ball) == 9
            assert ball[0] == u
            keys = [(metric_er.d(u, v), v) for v in ball]
            assert keys == sorted(keys)
            assert fam.ball_set(u) == frozenset(ball)
            assert fam.contains(u, ball[-1])

    def test_invalid_size_rejected(self, metric_er):
        with pytest.raises(ValueError):
            BallFamily(metric_er, 0)

    def test_size_clamped(self, metric_er):
        fam = BallFamily(metric_er, 10_000)
        assert fam.ell == metric_er.n

    def test_radius_is_covered(self, metric_er):
        """Every vertex within r_u is inside the ball."""
        fam = BallFamily(metric_er, 12)
        for u in range(metric_er.n):
            r = fam.radius(u)
            for v in range(metric_er.n):
                if metric_er.d(u, v) <= r:
                    assert fam.contains(u, v), (u, v, r)


class TestProperty1:
    """Property 1: v in B(u,l) and w on a shortest u-v path => v in B(w,l)."""

    @given(seed=st.integers(0, 40), ell=st.integers(2, 20))
    @settings(max_examples=30, deadline=None)
    def test_unweighted(self, seed, ell):
        g = erdos_renyi(30, 0.12, seed=seed)
        m = MetricView(g)
        fam = BallFamily(m, ell)
        for u in range(0, 30, 5):
            for v in fam.ball(u):
                if u == v:
                    continue
                for w in m.shortest_path(u, v)[1:-1]:
                    assert fam.contains(w, v)

    @given(seed=st.integers(0, 25), ell=st.integers(2, 15))
    @settings(max_examples=20, deadline=None)
    def test_weighted(self, seed, ell):
        g = with_random_weights(erdos_renyi(25, 0.15, seed=seed), seed=seed + 7)
        m = MetricView(g)
        fam = BallFamily(m, ell)
        for u in range(0, 25, 4):
            for v in fam.ball(u):
                if u == v:
                    continue
                for w in m.shortest_path(u, v)[1:-1]:
                    assert fam.contains(w, v)


class TestBoundaryEdge:
    def test_boundary_edge_properties(self, metric_er):
        fam = BallFamily(metric_er, 8)
        for u in range(0, metric_er.n, 7):
            for v in range(metric_er.n):
                if fam.contains(u, v):
                    continue
                y, z = fam.boundary_edge(u, v)
                assert fam.contains(u, y)
                assert not fam.contains(u, z)
                assert metric_er.graph.has_edge(y, z)
                # both endpoints on a shortest u-v path
                assert metric_er.on_shortest_path(u, y, v)
                assert metric_er.on_shortest_path(u, z, v)

    def test_inside_ball_rejected(self, metric_er):
        fam = BallFamily(metric_er, 8)
        u = 0
        inside = fam.ball(u)[1]
        with pytest.raises(ValueError):
            fam.boundary_edge(u, inside)

    def test_target_adjacent_outside(self):
        m = MetricView(grid(1, 5))  # path 0-1-2-3-4
        fam = BallFamily(m, 2)  # B(0) = {0, 1}
        y, z = fam.boundary_edge(0, 4)
        assert (y, z) == (1, 2)
