"""Bunches, clusters, pivots and cluster trees."""

import pytest

from repro.structures.bunches import BunchStructure
from repro.structures.sampling import sample_cluster_bounded


@pytest.fixture(scope="module")
def bunches_er(metric_er):
    a = sample_cluster_bounded(metric_er, 10.0, seed=1)
    return BunchStructure(metric_er, a), a


class TestPivots:
    def test_pivot_is_nearest_landmark(self, metric_er, bunches_er):
        b, a = bunches_er
        for v in range(metric_er.n):
            p = b.pivot(v)
            assert p in a
            d = b.distance_to_landmarks(v)
            assert d == pytest.approx(min(metric_er.d(v, x) for x in a))
            assert metric_er.d(v, p) == pytest.approx(d)

    def test_pivot_tie_break_smallest_id(self, metric_grid):
        # path inside grid has symmetric landmarks; check lexicographic rule
        b = BunchStructure(metric_grid, [0, metric_grid.n - 1])
        for v in range(metric_grid.n):
            d0 = metric_grid.d(v, 0)
            d1 = metric_grid.d(v, metric_grid.n - 1)
            if d0 == d1:
                assert b.pivot(v) == 0

    def test_landmark_is_own_pivot(self, metric_er, bunches_er):
        b, a = bunches_er
        for x in a:
            assert b.pivot(x) == x
            assert b.distance_to_landmarks(x) == 0.0

    def test_empty_landmarks_rejected(self, metric_er):
        with pytest.raises(ValueError):
            BunchStructure(metric_er, [])


class TestBunchesClusters:
    def test_transposition(self, metric_er, bunches_er):
        b, _ = bunches_er
        for v in range(metric_er.n):
            for w in b.bunch(v):
                assert v in b.cluster(w)
        for w in range(metric_er.n):
            for v in b.cluster(w):
                assert w in b.bunch(v)

    def test_definition(self, metric_er, bunches_er):
        b, _ = bunches_er
        for w in range(metric_er.n):
            expect = [
                v
                for v in range(metric_er.n)
                if metric_er.d(w, v) < b.distance_to_landmarks(v)
            ]
            assert b.cluster(w) == expect

    def test_landmark_clusters_empty(self, metric_er, bunches_er):
        b, a = bunches_er
        for x in a:
            assert b.cluster(x) == []

    def test_nonlandmark_in_own_cluster(self, metric_er, bunches_er):
        b, a = bunches_er
        for w in range(metric_er.n):
            if w not in a:
                assert w in b.cluster(w)

    def test_in_cluster_matches_lists(self, metric_er, bunches_er):
        b, _ = bunches_er
        for w in range(0, metric_er.n, 9):
            members = set(b.cluster(w))
            for v in range(metric_er.n):
                assert b.in_cluster(w, v) == (v in members)


class TestClusterTrees:
    def test_tree_spans_cluster_with_exact_distances(
        self, metric_er, bunches_er
    ):
        b, a = bunches_er
        g = metric_er.graph
        for w in range(metric_er.n):
            members = b.cluster(w)
            if not members:
                continue
            tree = b.cluster_tree(w)
            assert set(tree.parent) == set(members)
            for v in members:
                # walk to the root accumulating weights = exact distance
                total, cur = 0.0, v
                while cur != w:
                    p = tree.parent[cur]
                    total += g.weight(cur, p)
                    cur = p
                assert total == pytest.approx(metric_er.d(w, v))

    def test_weighted_cluster_trees(self, metric_er_weighted):
        a = sample_cluster_bounded(metric_er_weighted, 10.0, seed=2)
        b = BunchStructure(metric_er_weighted, a)
        g = metric_er_weighted.graph
        for w in range(0, metric_er_weighted.n, 11):
            members = b.cluster(w)
            if not members:
                continue
            tree = b.cluster_tree(w)
            for v in members:
                total, cur = 0.0, v
                while cur != w:
                    p = tree.parent[cur]
                    total += g.weight(cur, p)
                    cur = p
                assert total == pytest.approx(metric_er_weighted.d(w, v))

    def test_empty_cluster_tree_rejected(self, metric_er, bunches_er):
        b, a = bunches_er
        with pytest.raises(ValueError):
            b.cluster_tree(a[0])

    def test_max_sizes_reported(self, metric_er, bunches_er):
        b, _ = bunches_er
        assert b.max_cluster_size() == max(
            len(b.cluster(w)) for w in range(metric_er.n)
        )
        assert b.max_bunch_size() == max(
            len(b.bunch(v)) for v in range(metric_er.n)
        )
