"""The Lemma 6 coloring and its name-independent hash variant."""

import pytest

from repro.structures.balls import BallFamily
from repro.structures.coloring import (
    ColoringError,
    color_classes,
    find_coloring,
    find_hash_coloring,
    hash_color,
    verify_coloring,
)


def _ball_sets(metric, ell):
    fam = BallFamily(metric, ell)
    return [fam.ball(u) for u in range(metric.n)]


class TestFindColoring:
    def test_requirements_on_balls(self, metric_er):
        q = 4
        sets = _ball_sets(metric_er, 16)
        colors = find_coloring(sets, metric_er.n, q, seed=1)
        # requirement 1: every ball has every color
        for s in sets:
            assert {colors[v] for v in s} == set(range(q))
        # requirement 2: balanced classes
        classes = color_classes(colors, q)
        assert max(len(c) for c in classes) <= 4 * metric_er.n / q

    def test_deterministic_for_seed(self, metric_er):
        sets = _ball_sets(metric_er, 16)
        assert find_coloring(sets, metric_er.n, 4, seed=9) == find_coloring(
            sets, metric_er.n, 4, seed=9
        )

    def test_single_color_trivial(self, metric_er):
        sets = _ball_sets(metric_er, 3)
        colors = find_coloring(sets, metric_er.n, 1, seed=0)
        assert set(colors) == {0}

    def test_too_small_sets_rejected(self):
        with pytest.raises(ColoringError):
            find_coloring([[0, 1]], 10, 5)

    def test_classes_partition_everything(self, metric_er):
        sets = _ball_sets(metric_er, 16)
        colors = find_coloring(sets, metric_er.n, 4, seed=2)
        classes = color_classes(colors, 4)
        assert sorted(v for cls in classes for v in cls) == list(
            range(metric_er.n)
        )


class TestVerifyColoring:
    def test_detects_missing_color(self):
        assert not verify_coloring([0, 0, 0], [[0, 1, 2]], 2)

    def test_detects_imbalance(self):
        colors = [0] * 9 + [1]
        assert not verify_coloring(
            colors, [[0, 9]], 2, max_class_size=4.0
        )

    def test_accepts_valid(self):
        assert verify_coloring([0, 1, 0, 1], [[0, 1], [2, 3]], 2)


class TestHashColoring:
    def test_stable_across_calls(self):
        assert hash_color(17, 8, 3) == hash_color(17, 8, 3)

    def test_in_range(self):
        for v in range(100):
            assert 0 <= hash_color(v, 7, 5) < 7

    def test_find_hash_coloring_valid(self, metric_er):
        sets = _ball_sets(metric_er, 20)
        seed, colors = find_hash_coloring(sets, metric_er.n, 3, seed=1)
        for s in sets:
            assert {colors[v] for v in s} == {0, 1, 2}
        # colors are recomputable from the name + seed alone
        for v in range(metric_er.n):
            assert colors[v] == hash_color(v, 3, seed)

    def test_hash_coloring_too_small_rejected(self):
        with pytest.raises(ColoringError):
            find_hash_coloring([[0]], 10, 3)
