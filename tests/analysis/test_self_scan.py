"""The gate applied to itself: HEAD is clean, and the CLI surfaces it."""

import json
import os

from repro.analysis import analyze_paths
from repro.analysis.__main__ import run as run_analysis
from repro.__main__ import main as repro_main

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


def test_whole_repo_has_zero_unsuppressed_findings():
    reports = analyze_paths([SRC_REPRO])
    findings = [f for r in reports for f in r.findings]
    assert findings == [], "\n".join(f.render() for f in findings)
    # the suppression budget is part of the contract: every noqa is a
    # deliberate, commented exception — if this number creeps up,
    # someone is silencing instead of fixing
    assert sum(r.suppressed for r in reports) <= 5


def test_cli_exits_zero_on_clean_tree(capsys):
    assert run_analysis([SRC_REPRO]) == 0
    out = capsys.readouterr().out
    assert out.strip().endswith("suppressed)") or "0 findings" in out


def test_cli_exits_one_on_findings_and_emits_json(tmp_path, capsys):
    bad = tmp_path / "repro" / "routing" / "faults.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("raise RuntimeError('boom')\n")
    assert run_analysis([str(bad), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    finding = payload[0]
    assert finding["rule"] == "ERR001"
    assert finding["file"] == "repro/routing/faults.py"
    assert finding["line"] == 1
    assert {"file", "line", "col", "rule", "message"} <= set(finding)


def test_cli_select_filters_rules(tmp_path, capsys):
    bad = tmp_path / "repro" / "routing" / "faults.py"
    bad.parent.mkdir(parents=True)
    # ERR001 (untyped raise) + RES001 (unowned open) in one file
    bad.write_text("fh = open('x', 'rb')\nraise RuntimeError('boom')\n")
    assert run_analysis([str(bad), "--select", "RES001", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload] == ["RES001"]


def test_cli_unknown_rule_exits_two(capsys):
    assert run_analysis(["--select", "NOPE", SRC_REPRO]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert run_analysis(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "LK001", "DET001", "ERR001", "RES001", "GEN001", "CODEC001",
    ):
        assert rule_id in out


def test_repro_check_subcommand_forwards(tmp_path, capsys):
    assert repro_main(["check", SRC_REPRO]) == 0
    capsys.readouterr()
    bad = tmp_path / "repro" / "routing" / "faults.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("raise RuntimeError('boom')\n")
    assert repro_main(["check", str(bad), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "ERR001"
    assert repro_main(["check", "--list-rules"]) == 0
    assert "CODEC001" in capsys.readouterr().out
