"""Framework mechanics: registry, scoping, suppressions, output."""

import json
import os
import textwrap

import pytest

from repro.analysis import (
    AnalysisError,
    all_rules,
    analyze_paths,
    analyze_source,
    format_findings,
    iter_python_files,
)
from repro.analysis.framework import Rule, suppressions_for


EXPECTED_RULES = {
    "LK001", "DET001", "ERR001", "RES001", "GEN001", "CODEC001",
}


def test_registry_holds_the_six_domain_rules():
    rules = all_rules()
    assert EXPECTED_RULES <= set(rules)
    for rule_id, instance in rules.items():
        assert instance.id == rule_id
        assert instance.title, f"{rule_id} must have a one-line title"


def test_applies_to_scoping():
    class Scoped(Rule):
        id = "X001"
        paths = ("repro/routing/", "eval/validation.py")

    r = Scoped()
    assert r.applies_to("repro/routing/serving.py")
    assert r.applies_to("repro/routing/deep/nested.py")
    assert r.applies_to("repro/eval/validation.py")
    assert not r.applies_to("repro/eval/harness.py")
    assert not r.applies_to("repro/schemes/warmup3.py")

    class Everywhere(Rule):
        id = "X002"

    assert Everywhere().applies_to("anything/at/all.py")


def test_suppression_parsing():
    source = textwrap.dedent(
        """\
        x = 1  # repro: noqa
        y = 2  # repro: noqa ERR001
        z = 3  # repro: noqa ERR001, DET001 — injected fault under test
        w = 4  # a normal comment
        """
    )
    table = suppressions_for(source)
    assert table[1] is None  # bare noqa: all rules
    assert table[2] == frozenset({"ERR001"})
    assert table[3] == frozenset({"ERR001", "DET001"})
    assert 4 not in table


def test_syntax_error_becomes_parse_finding():
    report = analyze_source("def broken(:\n", "repro/routing/x.py")
    assert len(report.findings) == 1
    assert report.findings[0].rule == "PARSE"


def test_unknown_rule_select_raises():
    with pytest.raises(AnalysisError, match="NOPE"):
        analyze_source("x = 1\n", "repro/x.py", select=["NOPE"])


def test_findings_sorted_and_rendered(tmp_path):
    bad = tmp_path / "repro" / "routing" / "faults.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "fh = open('x', 'rb')\n"
        "raise RuntimeError('boom')\n"
    )
    reports = analyze_paths([str(tmp_path)])
    findings = [f for r in reports for f in r.findings]
    assert [f.line for f in findings] == sorted(f.line for f in findings)
    rendered = format_findings(reports)
    assert "repro/routing/faults.py:1" in rendered
    assert rendered.rsplit("\n", 1)[-1].startswith("2 findings")
    payload = [f.to_dict() for f in findings]
    round_tripped = json.loads(json.dumps(payload))
    assert {"file", "line", "col", "rule", "message"} <= set(
        round_tripped[0]
    )


def test_iter_python_files_skips_caches_and_dotdirs(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.pyc").write_text("")
    (tmp_path / ".git").mkdir()
    (tmp_path / ".git" / "hook.py").write_text("x = 1\n")
    (tmp_path / "notes.txt").write_text("not python")
    found = [
        os.path.relpath(p, tmp_path)
        for p in iter_python_files([str(tmp_path)])
    ]
    assert found == [os.path.join("pkg", "a.py")]


def test_iter_python_files_missing_path_raises():
    with pytest.raises(AnalysisError, match="no such file"):
        list(iter_python_files(["/definitely/not/here"]))


def test_suppressed_findings_are_counted_not_dropped_silently():
    source = "raise RuntimeError('x')  # repro: noqa ERR001 — fixture\n"
    report = analyze_source(
        source, "repro/routing/serving.py", select=["ERR001"]
    )
    assert report.findings == []
    assert report.suppressed == 1
