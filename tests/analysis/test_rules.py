"""Per-rule fixtures: every bad snippet flags, every good snippet passes,
suppression comments are honored."""

import textwrap

import pytest

from repro.analysis import analyze_source


def check(source, relpath, rule_id):
    """Rule ids of the findings ``rule_id`` produces on ``source``."""
    report = analyze_source(
        textwrap.dedent(source), relpath, select=[rule_id]
    )
    return report


def rules_fired(source, relpath, rule_id):
    return [f.rule for f in check(source, relpath, rule_id).findings]


# ----------------------------------------------------------------------
# LK001 — local knowledge
# ----------------------------------------------------------------------
LK_BAD = """\
    class FakeScheme:
        def shard_categories(self):
            return ("ball", f"ctree{0}")

        def step(self, v, header, target):
            table = self.table_of(v)
            return table.get("radius", v)
    """

LK_GOOD = """\
    class FakeScheme:
        def shard_categories(self):
            return ("ball", f"ctree{0}")

        def step(self, v, header, target, lvl=0):
            table = self.table_of(v)
            if table.has("ball", target):
                return table.get("ball", target)
            return table.get(f"ctree{lvl}", target)

        def _helper(self, table, root):
            return table.get("ball", root)
    """


def test_lk001_flags_undeclared_category_read():
    fired = rules_fired(LK_BAD, "repro/schemes/fake.py", "LK001")
    assert fired == ["LK001"]
    finding = check(LK_BAD, "repro/schemes/fake.py", "LK001").findings[0]
    assert "radius" in finding.message


def test_lk001_passes_declared_literals_and_fstring_prefixes():
    assert rules_fired(LK_GOOD, "repro/schemes/fake.py", "LK001") == []


def test_lk001_ignores_build_time_and_out_of_scope_code():
    # __init__ may read anything (it runs at build time), and modules
    # outside schemes/baselines are not scoped.
    source = """\
        class FakeScheme:
            def __init__(self):
                table = self.table_of(0)
                table.get("scratch", 0)

            def shard_categories(self):
                return ("ball",)

            def step(self, v, header, target):
                table = self.table_of(v)
                return table.get("ball", target)
        """
    assert rules_fired(source, "repro/schemes/fake.py", "LK001") == []
    assert rules_fired(LK_BAD, "repro/eval/fake.py", "LK001") == []


def test_lk001_suppression():
    suppressed = LK_BAD.replace(
        'table.get("radius", v)',
        'table.get("radius", v)  # repro: noqa LK001 — fixture',
    )
    report = check(suppressed, "repro/schemes/fake.py", "LK001")
    assert report.findings == []
    assert report.suppressed == 1


# ----------------------------------------------------------------------
# DET001 — determinism
# ----------------------------------------------------------------------
def test_det001_flags_global_rng():
    source = """\
        import random
        x = random.randrange(10)
        """
    assert rules_fired(source, "repro/structures/fake.py", "DET001") == [
        "DET001"
    ]


def test_det001_flags_unseeded_random_instance():
    source = """\
        import random
        rng = random.Random()
        """
    assert rules_fired(source, "repro/structures/fake.py", "DET001") == [
        "DET001"
    ]


def test_det001_flags_wall_clock():
    source = """\
        import time
        stamp = time.time()
        """
    assert rules_fired(source, "repro/eval/fake.py", "DET001") == [
        "DET001"
    ]


def test_det001_flags_bare_set_iteration():
    source = """\
        def order(items):
            out = []
            for x in set(items):
                out.append(x)
            return out + [y for y in {1, 2}]
        """
    assert rules_fired(source, "repro/core/fake.py", "DET001") == [
        "DET001",
        "DET001",
    ]


def test_det001_good_patterns_pass():
    source = """\
        import random
        import time
        from numpy.random import default_rng

        def run(items, seed):
            rng = random.Random(seed)
            gen = default_rng(seed)
            t0 = time.perf_counter()
            ordered = [x for x in sorted(set(items))]
            return rng.randrange(10), time.perf_counter() - t0, ordered
        """
    assert rules_fired(source, "repro/core/fake.py", "DET001") == []


def test_det001_resolves_import_aliases():
    source = """\
        from random import randrange
        x = randrange(10)
        """
    assert rules_fired(source, "repro/core/fake.py", "DET001") == [
        "DET001"
    ]


# ----------------------------------------------------------------------
# ERR001 — error taxonomy
# ----------------------------------------------------------------------
def test_err001_flags_untyped_raise():
    source = "raise RuntimeError('boom')\n"
    assert rules_fired(source, "repro/routing/serving.py", "ERR001") == [
        "ERR001"
    ]


def test_err001_flags_swallowing_broad_except():
    source = """\
        try:
            work()
        except Exception:
            pass
        """
    assert rules_fired(source, "repro/routing/serving.py", "ERR001") == [
        "ERR001"
    ]


def test_err001_allows_typed_raises_and_reraising_excepts():
    source = """\
        class LocalTypedError(ValueError):
            pass

        def a():
            raise LocalTypedError("typed")

        def b():
            raise ValueError("api misuse stays legal")

        def c():
            try:
                work()
            except BaseException:
                cleanup()
                raise
        """
    assert rules_fired(source, "repro/routing/serving.py", "ERR001") == []


def test_err001_out_of_scope_module_is_ignored():
    source = "raise RuntimeError('boom')\n"
    assert rules_fired(source, "repro/schemes/fake.py", "ERR001") == []


def test_err001_suppression():
    source = (
        "raise FileNotFoundError('x')"
        "  # repro: noqa ERR001 — injected fault\n"
    )
    report = check(source, "repro/routing/faults.py", "ERR001")
    assert report.findings == []
    assert report.suppressed == 1


# every cluster module crosses the RPC boundary, so the whole package
# is in ERR001's scope — untyped raises there could never be re-raised
# typed client-side
ERR_CLUSTER_BAD = """\
    import socket

    def pump(sock):
        try:
            sock.sendall(b"x")
        except OSError:
            raise RuntimeError("worker gone")
    """

ERR_CLUSTER_GOOD = """\
    import socket

    class WorkerUnavailableError(ConnectionError):
        pass

    def pump(sock):
        try:
            sock.sendall(b"x")
        except OSError as exc:
            raise WorkerUnavailableError(f"worker gone: {exc}") from exc
    """


@pytest.mark.parametrize(
    "relpath",
    [
        "repro/cluster/wire.py",
        "repro/cluster/worker.py",
        "repro/cluster/router.py",
        "repro/cluster/driver.py",
        "repro/cluster/placement.py",
    ],
)
def test_err001_covers_every_cluster_module(relpath):
    assert rules_fired(ERR_CLUSTER_BAD, relpath, "ERR001") == ["ERR001"]
    assert rules_fired(ERR_CLUSTER_GOOD, relpath, "ERR001") == []


# ----------------------------------------------------------------------
# RES001 — resource hygiene
# ----------------------------------------------------------------------
def test_res001_flags_unowned_open():
    source = """\
        def peek(path):
            fh = open(path, "rb")
            return fh.read(2)
        """
    assert rules_fired(source, "repro/routing/fake.py", "RES001") == [
        "RES001"
    ]


def test_res001_flags_unowned_mmap():
    source = """\
        import mmap

        class NoClose:
            def load(self, fh):
                self.m = mmap.mmap(fh.fileno(), 0)
        """
    assert rules_fired(source, "repro/routing/fake.py", "RES001") == [
        "RES001"
    ]


def test_res001_allows_with_blocks_and_close_bearing_classes():
    source = """\
        import mmap

        def peek(path):
            with open(path, "rb") as fh:
                return fh.read(2)

        class OwnedIO:
            def load(self, path):
                with open(path, "rb") as fh:
                    self.m = mmap.mmap(fh.fileno(), 0)
                self.fh = open(path, "rb")

            def close(self):
                self.m.close()
                self.fh.close()
        """
    assert rules_fired(source, "repro/routing/fake.py", "RES001") == []


def test_res001_only_scopes_routing():
    source = "fh = open('x', 'rb')\n"
    assert rules_fired(source, "repro/eval/fake.py", "RES001") == []


def test_res001_flags_unowned_shared_memory():
    source = """\
        from multiprocessing import shared_memory

        def publish(nbytes):
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            return shm.name
        """
    assert rules_fired(source, "repro/graph/parallel.py", "RES001") == [
        "RES001"
    ]


def test_res001_flags_unowned_pool():
    source = """\
        from concurrent.futures import ProcessPoolExecutor

        def fan_out(tasks):
            ex = ProcessPoolExecutor(max_workers=4)
            return [f.result() for f in map(ex.submit, tasks)]
        """
    assert rules_fired(source, "repro/graph/parallel.py", "RES001") == [
        "RES001"
    ]


def test_res001_allows_owned_shared_memory_and_pools():
    source = """\
        from concurrent.futures import ProcessPoolExecutor
        from multiprocessing import shared_memory

        class SharedSegment:
            def __init__(self, nbytes):
                self.shm = shared_memory.SharedMemory(
                    create=True, size=nbytes
                )

            def close(self):
                self.shm.close()
                self.shm.unlink()

        def fan_out(tasks):
            with ProcessPoolExecutor(max_workers=4) as ex:
                return [f.result() for f in map(ex.submit, tasks)]
        """
    assert rules_fired(source, "repro/graph/parallel.py", "RES001") == []


def test_res001_scopes_graph_to_parallel_module_only():
    # graph/ outside parallel.py is out of scope (csr.py etc. hold no
    # OS resources); parallel.py is in scope per the extended rule.
    source = "shm = SharedMemory(create=True, size=64)\n"
    assert rules_fired(source, "repro/graph/csr.py", "RES001") == []
    assert rules_fired(source, "repro/graph/parallel.py", "RES001") == [
        "RES001"
    ]


# ----------------------------------------------------------------------
# GEN001 — stamp discipline
# ----------------------------------------------------------------------
def test_gen001_flags_lru_cache_on_method():
    source = """\
        import functools

        class Substrate:
            @functools.lru_cache(maxsize=None)
            def balls(self):
                return compute(self)
        """
    assert rules_fired(source, "repro/api/fake.py", "GEN001") == [
        "GEN001"
    ]


def test_gen001_flags_id_keyed_cache_without_stamp():
    source = """\
        def cached(cache, graph):
            hit = cache.get(id(graph))
            if hit is None:
                hit = build(graph)
                cache[id(graph)] = hit
            return hit
        """
    assert rules_fired(source, "repro/api/fake.py", "GEN001") == [
        "GEN001"
    ]


def test_gen001_allows_stamped_id_cache_and_module_level_lru():
    source = """\
        import functools

        @functools.lru_cache(maxsize=None)
        def pure(n):
            return n * n

        def cached(cache, graph):
            version = getattr(graph, "_version", 0)
            entry = cache.get(id(graph))
            if entry is not None and entry[0] == version:
                return entry[1]
            built = build(graph)
            cache[id(graph)] = (version, built)
            return built
        """
    assert rules_fired(source, "repro/api/fake.py", "GEN001") == []


# ----------------------------------------------------------------------
# CODEC001 — codec layout audit
# ----------------------------------------------------------------------
def test_codec001_flags_constant_drift():
    source = """\
        _TAG_NONE = 9
        _TAG_INT = 1
        _TAG_STR = 2
        _TAG_TUPLE = 3
        _TAG_BOOL_TRUE = 4
        _TAG_BOOL_FALSE = 5
        """
    report = check(source, "repro/routing/header_codec.py", "CODEC001")
    assert [f.rule for f in report.findings] == ["CODEC001"]
    assert "_TAG_NONE" in report.findings[0].message


def test_codec001_flags_missing_declared_constant():
    source = "_TAG_NONE = 0\n"
    report = check(source, "repro/routing/header_codec.py", "CODEC001")
    missing = {
        f.message.split()[3] for f in report.findings
    }  # "declared layout constant NAME has no ..."
    assert "_TAG_INT" in missing


def test_codec001_flags_undeclared_struct_format():
    source = """\
        import struct
        _TAG_NONE = 0
        _TAG_INT = 1
        _TAG_STR = 2
        _TAG_TUPLE = 3
        _TAG_BOOL_TRUE = 4
        _TAG_BOOL_FALSE = 5
        _ROGUE = struct.Struct("<QQ")
        """
    report = check(source, "repro/routing/header_codec.py", "CODEC001")
    assert any("<QQ" in f.message for f in report.findings)


def test_codec001_real_codecs_match_declared_layouts():
    import repro.routing.header_codec as header_codec
    import repro.routing.shard_codec as shard_codec

    for mod, relpath in (
        (shard_codec, "repro/routing/shard_codec.py"),
        (header_codec, "repro/routing/header_codec.py"),
    ):
        with open(mod.__file__, encoding="utf-8") as fh:
            source = fh.read()
        report = analyze_source(source, relpath, select=["CODEC001"])
        assert report.findings == [], [
            f.render() for f in report.findings
        ]


# ----------------------------------------------------------------------
# native tier coverage: ERR001 / RES001 scope, CODEC001 C mode
# ----------------------------------------------------------------------
def test_err001_covers_native_modules():
    bad = "raise RuntimeError('compiler exploded')\n"
    assert rules_fired(bad, "repro/native/__init__.py", "ERR001") == [
        "ERR001"
    ]
    good = """\
        class NativeBuildError(RuntimeError):
            pass

        def build():
            raise NativeBuildError("cc failed")
        """
    assert rules_fired(good, "repro/native/__init__.py", "ERR001") == []


def test_res001_flags_unowned_cdll_and_tempdirs():
    source = """\
        import ctypes
        import tempfile

        def load(path):
            lib = ctypes.CDLL(path)
            scratch = tempfile.mkdtemp()
            return lib, scratch
        """
    assert rules_fired(source, "repro/native/__init__.py", "RES001") == [
        "RES001",
        "RES001",
    ]


def test_res001_allows_owned_cdll_and_tempdirs():
    source = """\
        import ctypes
        import tempfile

        class Kernels:
            def __init__(self, path):
                self.lib = ctypes.CDLL(path)

            def close(self):
                self.lib = None

        def build(cc, target):
            with tempfile.TemporaryDirectory() as tmp:
                compile_into(cc, tmp, target)
        """
    assert rules_fired(source, "repro/native/__init__.py", "RES001") == []


CODEC_C_FIXTURE = """\
#define RT_MAGIC_0 0x52
#define RT_MAGIC_1 0x54
#define RT_CODEC_VERSION 1
#define RT_FLAG_UNIT_WEIGHTS 0x01
#define RT_T_NONE 0x00
#define RT_T_FALSE 0x01
#define RT_T_TRUE 0x02
#define RT_T_INT 0x03
#define RT_T_FLOAT 0x04
#define RT_T_STR 0x05
#define RT_T_TUPLE 0x06
#define RT_T_LIST 0x07
#define RT_T_DICT 0x08
#define RT_T_COUNT 0xF1
#define STR_OFFSET_BITS 40
"""


def test_codec001_c_mode_accepts_matching_defines():
    report = check(CODEC_C_FIXTURE, "repro/native/_kernels.c", "CODEC001")
    assert report.findings == []


def test_codec001_c_mode_flags_value_drift():
    drifted = CODEC_C_FIXTURE.replace(
        "#define RT_T_DICT 0x08", "#define RT_T_DICT 0x09"
    )
    report = check(drifted, "repro/native/_kernels.c", "CODEC001")
    assert [f.rule for f in report.findings] == ["CODEC001"]
    assert "RT_T_DICT" in report.findings[0].message


def test_codec001_c_mode_flags_missing_define():
    gone = CODEC_C_FIXTURE.replace("#define RT_T_COUNT 0xF1\n", "")
    report = check(gone, "repro/native/_kernels.c", "CODEC001")
    assert any("RT_T_COUNT" in f.message for f in report.findings)


def test_codec001_c_mode_honors_slash_noqa():
    drifted = CODEC_C_FIXTURE.replace(
        "#define RT_T_DICT 0x08",
        "#define RT_T_DICT 0x09 // repro: noqa CODEC001 - fixture",
    )
    report = check(drifted, "repro/native/_kernels.c", "CODEC001")
    assert report.findings == []
    assert report.suppressed == 1


def test_codec001_real_c_scanner_matches_declared_layout():
    import repro.native as native

    with open(native.source_path(), encoding="utf-8") as fh:
        source = fh.read()
    report = analyze_source(
        source, "repro/native/_kernels.c", select=["CODEC001"]
    )
    assert report.findings == [], [f.render() for f in report.findings]


def test_c_files_pass_through_pure_ast_rules():
    # DET001 scopes all of repro/ but is a pure-AST rule: the text-mode
    # dispatch must leave it inert on C sources instead of crashing.
    report = check("int x = 1;\n", "repro/native/_kernels.c", "DET001")
    assert report.findings == []
