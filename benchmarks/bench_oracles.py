"""Distance-oracle comparison: the rows the routing schemes are measured
against.

Reproduces the oracle side of the paper's comparisons:

* TZ (2k-1) for k = 1..4 — the classic stretch/space ladder,
* the PR-style (2,1) oracle — what Theorem 10 almost matches.

Expected shape: total space drops by roughly ``n^{1/k}``-factors down the
TZ ladder while worst-case stretch rises as ``2k-1``; the PR oracle sits
between k=1 and k=2 (stretch ≤ 2d+1 at ``Õ(n^{5/3})`` total space).
"""

import pytest

from repro.baselines.pr_oracle import PROracle
from repro.baselines.tz_oracle import TZOracle
from repro.eval.harness import evaluate_oracle
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi
from repro.graph.metric import MetricView

N = 400
SECTION = "Distance oracles: TZ ladder and the PR (2,1) oracle"


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(N, 0.016, seed=881)


@pytest.fixture(scope="module")
def metric(graph):
    return MetricView(graph)


@pytest.fixture(scope="module")
def pairs(graph):
    return sample_pairs(graph.n, 900, seed=882)


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_tz_oracle_ladder(benchmark, report, graph, metric, pairs, k):
    def build():
        return evaluate_oracle(
            graph, TZOracle, pairs, metric=metric, k=k, seed=81
        )

    ev = benchmark.pedantic(build, rounds=1, iterations=1)
    assert ev.within_bound
    report.section(SECTION)
    report.line("   " + ev.row())


def test_pr_oracle(benchmark, report, graph, metric, pairs):
    def build():
        return evaluate_oracle(
            graph, PROracle, pairs, metric=metric, seed=81
        )

    ev = benchmark.pedantic(build, rounds=1, iterations=1)
    assert ev.within_bound
    report.section(SECTION)
    report.line("   " + ev.row())


def test_oracle_space_ladder_shape(benchmark, report, graph, metric, pairs):
    """Total space decreases down the TZ ladder; PR sits between k=1 and
    k=2 in space as the paper's comparison implies."""

    def build():
        spaces = {}
        for k in (1, 2, 3):
            spaces[f"tz{k}"] = TZOracle(
                graph, k=k, metric=metric, seed=82
            ).space_words()["total"]
        spaces["pr"] = PROracle(graph, metric=metric, seed=82).space_words()[
            "total"
        ]
        return spaces

    spaces = benchmark.pedantic(build, rounds=1, iterations=1)
    assert spaces["tz1"] > spaces["tz2"] > spaces["tz3"]
    assert spaces["tz1"] > spaces["pr"] > spaces["tz3"]
    report.section(SECTION)
    report.line(
        "space ladder (total words): "
        + "  ".join(f"{k}={v}" for k, v in sorted(spaces.items()))
    )
