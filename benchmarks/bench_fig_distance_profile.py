"""Figure D (implicit): stretch by distance regime.

The schemes' case analyses treat nearby and distant targets differently:
ball hits are exact, cluster hits are exact, and only the far cases pay
the full stretch.  This bench stratifies pairs into distance quartiles and
prints per-quartile max/avg stretch for Theorem 11 and TZ k=3.  Expected
shape: every quartile stays under the bound, and the *farthest* quartile
has the mildest worst case — the detour through representatives and
landmarks is bounded by a multiple of the ball/cluster radii, which
amortizes over long distances, while short pairs just above the ball
radius pay the largest relative detours.
"""

import pytest

from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.eval.workloads import stratified_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.simulator import measure_stretch
from repro.schemes import Stretch5PlusScheme

N = 320
SECTION = "Fig D: stretch by distance quartile (weighted ER, n=320)"


@pytest.fixture(scope="module")
def world():
    g = with_random_weights(erdos_renyi(N, 0.02, seed=921), seed=922)
    m = MetricView(g)
    return g, m, stratified_pairs(m, per_bucket=120, buckets=4, seed=923)


@pytest.mark.parametrize(
    "factory,kwargs",
    [
        pytest.param(Stretch5PlusScheme, {"eps": 0.6}, id="thm11"),
        pytest.param(ThorupZwickScheme, {"k": 3}, id="tz3"),
    ],
)
def test_distance_profile(benchmark, report, world, factory, kwargs):
    g, metric, buckets = world

    def build_and_route():
        scheme = factory(g, metric=metric, seed=25, **kwargs)
        rows = []
        for name in sorted(buckets):
            rep = measure_stretch(scheme, metric, buckets[name])
            rows.append((name, rep))
        return scheme, rows

    scheme, rows = benchmark.pedantic(build_and_route, rounds=1, iterations=1)
    bound = scheme.stretch_bound()
    bound = bound[0] if isinstance(bound, tuple) else bound
    report.section(SECTION)
    report.line(f"{scheme.name} (bound {bound:.2f}):")
    for name, rep in rows:
        assert rep.max_stretch <= bound + 1e-6
        report.line(
            f"  {name}: pairs={rep.pairs:<5} max={rep.max_stretch:<7.3f} "
            f"avg={rep.avg_stretch:.3f}"
        )
    # Shape: worst-case stretch amortizes with distance — the farthest
    # quartile's max stretch does not exceed the nearest quartile's.
    nearest, farthest = rows[0][1], rows[-1][1]
    assert farthest.max_stretch <= nearest.max_stretch + 0.25
