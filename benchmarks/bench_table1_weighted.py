"""Table 1, weighted block: TZ k=2/k=3 baselines, Theorem 11, Theorem 16.

Regenerates the weighted rows of Table 1.  The paper's headline claim is
the Theorem 11 row: stretch ~5 with ``n^{1/3}``-type tables, i.e. *smaller
tables than the 3-stretch TZ scheme and better stretch than the 7-stretch
TZ scheme*.  The Chechik row is reference-only (DESIGN.md substitutions);
Theorem 16 (k=4) is measured against TZ k=4 (stretch 11), the scheme both
improve on.

Schemes resolve through the ``repro.api`` registry and every row builds
on one shared substrate, so the timed quantity is each scheme's marginal
construction cost on the warm substrate.
"""

import pytest

from repro.api import Substrate, get_spec
from repro.eval.harness import evaluate_scheme
from repro.eval.reporting import PAPER_TABLE1_REFERENCE, reference_row
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights

N = 360
SECTION = "Table 1 (weighted rows): measured vs paper"


@pytest.fixture(scope="module")
def graph():
    return with_random_weights(
        erdos_renyi(N, 0.018, seed=821), seed=822, low=1.0, high=8.0
    )


@pytest.fixture(scope="module")
def substrate(graph):
    return Substrate(graph).ensure_core()


@pytest.fixture(scope="module")
def pairs(graph):
    return sample_pairs(graph.n, 500, seed=823)


CASES = [
    pytest.param(
        "tz2", {},
        "TZ k=2  stretch 3   tables Õ(n^1/2)", id="tz-k2",
    ),
    pytest.param(
        "tz3", {},
        "TZ k=3  stretch 7   tables Õ(n^1/3)", id="tz-k3",
    ),
    pytest.param(
        "tz4", {},
        "TZ k=4  stretch 11  tables Õ(n^1/4)", id="tz-k4",
    ),
    pytest.param(
        "thm11", {"eps": 0.6},
        "Theorem 11  stretch 5+eps  tables Õ(n^1/3 logD /eps)", id="thm11",
    ),
    pytest.param(
        "thm16", {"k": 4, "eps": 1.0},
        "Theorem 16 k=4  stretch 9+eps  tables Õ(n^1/4 logD /eps)",
        id="thm16-k4",
    ),
]


@pytest.mark.parametrize("scheme_name,overrides,paper_claim", CASES)
def test_table1_weighted(
    benchmark, report, graph, substrate, pairs,
    scheme_name, overrides, paper_claim,
):
    spec = get_spec(scheme_name)
    params = spec.resolve_params(overrides)

    def build():
        return spec.factory(graph, substrate=substrate, seed=32, **params)

    scheme = benchmark.pedantic(build, rounds=1, iterations=1)
    ev = evaluate_scheme(
        graph, lambda g, metric: scheme, pairs, metric=substrate.metric
    )
    assert ev.within_bound, ev.row()
    report.section(SECTION)
    report.line(f"paper: {paper_claim}")
    report.line("   " + ev.row())


def test_headline_shape(benchmark, report, graph, substrate, pairs):
    """The paper's headline: Theorem 11 sits below the sqrt(n) barrier.

    Checks the *shape* claims: (a) Theorem 11's tables are well below the
    TZ k=2 (3-stretch) tables, (b) its measured stretch is no worse than
    the TZ k=3 (7-stretch) scheme's bound.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ev11 = evaluate_scheme(
        graph, "thm11", pairs, substrate=substrate, eps=0.6, seed=33
    )
    ev_tz2 = evaluate_scheme(
        graph, "tz2", pairs, substrate=substrate, seed=33
    )
    assert ev11.stats.avg_table_words < ev_tz2.stats.avg_table_words
    assert ev11.stretch.max_stretch <= 7.0
    report.section(SECTION)
    report.line(
        f"headline: Thm11 tables avg {ev11.stats.avg_table_words:.0f} words "
        f"< TZ(k=2) {ev_tz2.stats.avg_table_words:.0f} words; "
        f"Thm11 max stretch {ev11.stretch.max_stretch:.2f} <= 7 (TZ k=3 bound)"
    )


def test_table1_reference_rows(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report.section(SECTION)
    for entry in PAPER_TABLE1_REFERENCE:
        if entry[1] == "weighted":
            report.line(reference_row(entry))
