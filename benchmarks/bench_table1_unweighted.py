"""Table 1, unweighted block: Theorems 10, 13 (l=3) and 15 (l=2).

Regenerates the unweighted rows of the paper's Table 1 — measured maximum
and average stretch plus measured per-vertex table words — next to the
paper's asymptotic claims.  The Abraham–Gavoille row is reference-only (see
DESIGN.md substitutions); the (2,1) *oracle* bound it matches is measured
in bench_oracles.py.

Schemes resolve through the ``repro.api`` registry and all three build on
one shared substrate (metric + ports + balls), so the timed quantity is
each scheme's *marginal* construction cost — the substrate's one-off cost
is reported separately.
"""

import pytest

from repro.api import Substrate, get_spec
from repro.eval.harness import evaluate_scheme
from repro.eval.reporting import PAPER_TABLE1_REFERENCE, reference_row
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi

N = 360
SECTION = "Table 1 (unweighted rows): measured vs paper"


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(N, 0.018, seed=811)


@pytest.fixture(scope="module")
def substrate(graph):
    return Substrate(graph).ensure_core()


@pytest.fixture(scope="module")
def pairs(graph):
    return sample_pairs(graph.n, 500, seed=812)


CASES = [
    pytest.param(
        "thm10", {},
        "Theorem 10  (2+eps,1)  tables Õ(n^2/3 /eps)",
        id="thm10",
    ),
    pytest.param(
        "thm13", {"ell": 3},
        "Theorem 13 l=3  (2 1/3+eps,2)  tables Õ(n^3/5 /eps)",
        id="thm13-l3",
    ),
    pytest.param(
        "thm15", {"ell": 2},
        "Theorem 15 l=2  (4+eps,2)  tables Õ(n^2/5 /eps)",
        id="thm15-l2",
    ),
]


@pytest.mark.parametrize("scheme_name,overrides,paper_claim", CASES)
def test_table1_unweighted(
    benchmark, report, graph, substrate, pairs,
    scheme_name, overrides, paper_claim,
):
    spec = get_spec(scheme_name)
    params = spec.resolve_params(overrides)

    def build():
        return spec.factory(graph, substrate=substrate, seed=31, **params)

    scheme = benchmark.pedantic(build, rounds=1, iterations=1)
    ev = evaluate_scheme(
        graph, lambda g, metric: scheme, pairs, metric=substrate.metric
    )
    assert ev.within_bound, ev.row()
    report.section(SECTION)
    report.line(f"paper: {paper_claim}")
    report.line("   " + ev.row())


def test_table1_reference_rows(benchmark, report):
    """Prints the paper's own Table 1 rows for side-by-side comparison."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report.section(SECTION)
    for entry in PAPER_TABLE1_REFERENCE:
        if entry[1] == "unweighted":
            report.line(reference_row(entry))
