"""Preset calibration: record per-preset stretch/size frontiers.

The workload-aware presets (``SchemeSpec.presets``) were hand-tuned in
PR 4; the ROADMAP follow-up asks for calibration from data.  This bench
records, for the headline ball-based scheme (thm11), one alpha frontier
per graph family — feasibility, measured max/avg stretch, bound
compliance and average table words per swept ``alpha`` — and the
data-driven recommendation (:func:`repro.eval.frontier.calibrate_alpha`)
next to the registered hand-tuned preset value.

Full runs merge into ``BENCH_kernel.json`` under ``preset_frontier``;
``REPRO_BENCH_SMOKE=1`` shrinks n and skips the write.  Runs under
pytest or standalone (``python benchmarks/bench_presets.py``).
"""

from __future__ import annotations

import os

from repro.api import get_spec
from repro.eval.frontier import calibrate_alpha, preset_frontiers

from conftest import SMOKE, merge_bench_results, smoke_scale

SECTION = "Preset calibration: per-family alpha frontiers (thm11)"

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_kernel.json"
)

SCHEME = "thm11"
#: sweep far enough left that the Lemma 6 infeasibility edge — the
#: per-family signal calibration keys off — lands on the frontier
ALPHAS = (0.2, 0.35, 0.5, 0.75, 1.0, 1.25, 1.5)


def run_preset_frontier(n: int, *, pairs: int = 150) -> dict:
    spec = get_spec(SCHEME)
    frontiers = preset_frontiers(
        SCHEME, n=n, alphas=ALPHAS, pairs=pairs, seed=17
    )
    default_alpha = spec.param("alpha").default
    families = {}
    for family, points in frontiers.items():
        registered = spec.preset_params(family).get("alpha", default_alpha)
        families[family] = {
            "points": [p.to_json() for p in points],
            "calibrated_alpha": calibrate_alpha(points),
            "registered_alpha": registered,
        }
    return {
        "n": n,
        "scheme": SCHEME,
        "pairs": pairs,
        "alphas": list(ALPHAS),
        "families": families,
    }


def _report_lines(out: dict) -> list:
    lines = []
    for family, rec in out["families"].items():
        frontier = ", ".join(
            f"a={p['alpha']:g}:"
            + (
                f"{p['max_stretch']:.2f}x/{p['avg_table_words']:.0f}w"
                if p["feasible"] else "infeasible"
            )
            for p in rec["points"]
        )
        lines.append(
            f"{out['scheme']} {family:<5} calibrated "
            f"alpha={rec['calibrated_alpha']} "
            f"(registered {rec['registered_alpha']:g}) | {frontier}"
        )
    return lines


def test_preset_frontier(benchmark, report, bench_scale):
    n = bench_scale(300, 100)
    out = benchmark.pedantic(
        lambda: run_preset_frontier(n, pairs=smoke_scale(150, 40)),
        rounds=1, iterations=1,
    )
    report.section(SECTION)
    for line in _report_lines(out):
        report.line(line)
    # Every family must yield a calibratable frontier: at least one
    # feasible, bound-respecting point (this holds at smoke scale too).
    for family, rec in out["families"].items():
        assert rec["calibrated_alpha"] is not None, (family, rec)
    if not SMOKE:
        merge_bench_results(RESULT_PATH, {"preset_frontier": out})


def main() -> None:
    n = smoke_scale(300, 100)
    out = run_preset_frontier(n, pairs=smoke_scale(150, 40))
    for line in _report_lines(out):
        print(line)
    if not SMOKE:
        merge_bench_results(RESULT_PATH, {"preset_frontier": out})
        print(f"merged into {os.path.normpath(RESULT_PATH)}")


if __name__ == "__main__":
    main()
