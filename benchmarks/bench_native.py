"""Native kernel tier benchmark: C delta-stepping + C pack decode.

The tentpole claims of the native tier, measured as engine-vs-engine
races with bit-identical results:

1. **Weighted all-balls** — the full ``all_balls`` pipeline on the
   canonical weighted workload (``n ~ 2000``, ``m ~ 4n``,
   ``ell ~ sqrt(n log n)``) under ``REPRO_KERNEL=native`` (the whole
   delta-stepping batch engine in C) vs ``REPRO_KERNEL=numpy`` (the
   vectorised bucket pipeline).  Gate: >= 2x, identical balls and radii.
2. **Cold pack decode** — every payload of a *real* ``thm11`` packed
   shard deployment decoded through the native scanner
   (:func:`~repro.routing.shard_codec.decode_node_table_fast`) vs the
   pure decoder.  Gate: >= 1.5x, identical tables.

Results land in the ``native`` key of ``BENCH_kernel.json`` (full runs
only; ``REPRO_BENCH_SMOKE=1`` shrinks sizes and skips the write), along
with :func:`repro.native.native_status` — so the recorded numbers state
which compiler and library produced them.  When the native tier cannot
load (no compiler, no cached library), the benches skip with the
recorded reason instead of failing: the differential suite, not this
bench, owns fallback correctness.  Runs under pytest or standalone
(``python benchmarks/bench_native.py``).
"""

from __future__ import annotations

import math
import os
import shutil
import tempfile
import time
from contextlib import contextmanager

import pytest

from repro import native
from repro.api import build
from repro.graph import shortest_paths as sp
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.shortest_paths import all_balls
from repro.routing.shard_codec import (
    decode_node_table,
    decode_node_table_fast,
    iter_pack_entries,
)

from conftest import SMOKE, merge_bench_results, smoke_scale

SECTION = "Native kernel tier: C delta-stepping + C pack decode"

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_kernel.json"
)

SCHEME = "thm11"

_RESULTS: dict = {}


@contextmanager
def _kernel_mode(mode: str):
    """Force one resolved kernel mode, restoring the caller's afterwards."""
    prev = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = mode
    sp.reset_kernel_choice()
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = prev
        sp.reset_kernel_choice()


def _native_reason() -> str:
    """Skip reason when the native tier is unavailable ('' when loaded)."""
    if native.try_kernels() is not None:
        return ""
    return f"native tier unavailable: {native.fallback_reason()}"


def _best_of(fn, runs: int = 3) -> float:
    """Best wall time of ``runs`` calls (in-process engine races)."""
    best = None
    for _ in range(runs):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best


def run_delta(n: int) -> dict:
    """Weighted all-balls: native batch engine vs numpy bucket pipeline."""
    g = with_random_weights(erdos_renyi(n, 8.0 / (n - 1), seed=7), seed=99)
    ell = max(1, int(math.ceil(math.sqrt(n * math.log2(n)))))
    times, results = {}, {}
    for mode in ("numpy", "native"):
        with _kernel_mode(mode):
            # Warm outside the timed region: CSR mirrors, scratch
            # buffers and (native) the compiled-library load.
            all_balls(g, 1)
            results[mode] = all_balls(g, ell, with_radii=True)
            times[mode] = _best_of(
                lambda: all_balls(g, ell, with_radii=True)
            )
    balls_eq = results["native"][0] == results["numpy"][0]
    radii_eq = results["native"][1] == results["numpy"][1]
    assert balls_eq and radii_eq, (
        "native all_balls diverges from the numpy engine"
    )
    out = {
        "n": n,
        "m": g.m,
        "ell": ell,
        "numpy_s": round(times["numpy"], 4),
        "native_s": round(times["native"], 4),
        "speedup": (
            round(times["numpy"] / times["native"], 2)
            if times["native"] > 0
            else None
        ),
        "identical": bool(balls_eq and radii_eq),
    }
    _RESULTS.setdefault("native", {})["delta_all_balls"] = out
    return out


def _pack_payloads(shard_dir: str) -> list:
    """Every encoded payload of a packed deployment, as bytes."""
    payloads = []
    for root, _, files in os.walk(shard_dir):
        for fname in sorted(files):
            if not fname.endswith(".pack"):
                continue
            with open(os.path.join(root, fname), "rb") as fh:
                buf = fh.read()
            for _, off, length in iter_pack_entries(buf):
                payloads.append(buf[off : off + length])
    return payloads


def run_decode(n: int) -> dict:
    """Cold pack decode: native scanner vs pure decoder, real scheme."""
    g = with_random_weights(erdos_renyi(n, 7.0 / (n - 1), seed=71), seed=72)
    session = build(SCHEME, g, seed=7)
    workdir = tempfile.mkdtemp(prefix="repro-native-bench-")
    try:
        shard_dir = os.path.join(workdir, "shards")
        session.save(shard_dir, shards=True, packed=True)
        payloads = _pack_payloads(shard_dir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    assert payloads, "packed deployment produced no payloads"

    pure = [decode_node_table(p) for p in payloads]
    t_pure = _best_of(lambda: [decode_node_table(p) for p in payloads])
    with _kernel_mode("native"):
        fast = [decode_node_table_fast(p) for p in payloads]
        t_native = _best_of(
            lambda: [decode_node_table_fast(p) for p in payloads]
        )
    assert fast == pure, "native pack decode diverges from the pure decoder"
    out = {
        "scheme": SCHEME,
        "n": n,
        "payloads": len(payloads),
        "bytes": sum(len(p) for p in payloads),
        "pure_s": round(t_pure, 4),
        "native_s": round(t_native, 4),
        "speedup": (
            round(t_pure / t_native, 2) if t_native > 0 else None
        ),
        "identical": True,
    }
    _RESULTS.setdefault("native", {})["pack_decode"] = out
    return out


def _flush(smoke: bool) -> None:
    if smoke or not _RESULTS:
        return
    section = _RESULTS.setdefault("native", {})
    section["status"] = native.native_status()
    section["workload"] = (
        "delta: all_balls(with_radii) on erdos_renyi(n, 8/(n-1), seed=7) "
        "+ random weights, ell = ceil(sqrt(n log2 n)), REPRO_KERNEL="
        "native vs numpy, best of 3; decode: every payload of a packed "
        f"{SCHEME} deployment, decode_node_table_fast (native scanner) "
        "vs decode_node_table (pure), best of 3"
    )
    merge_bench_results(RESULT_PATH, {"native": section})


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_native_delta_speedup(report, bench_scale):
    reason = _native_reason()
    if reason:
        pytest.skip(reason)
    n = bench_scale(2000, 200)
    out = run_delta(n)
    report.section(SECTION)
    report.line(
        f"all_balls weighted n={out['n']} m={out['m']} ell={out['ell']}: "
        f"numpy {out['numpy_s']*1000:.0f} ms -> native "
        f"{out['native_s']*1000:.0f} ms ({out['speedup']}x, identical)"
    )
    if not SMOKE:
        assert out["speedup"] >= 2.0, out


def test_native_decode_speedup(report, bench_scale):
    reason = _native_reason()
    if reason:
        pytest.skip(reason)
    n = bench_scale(600, 120)
    out = run_decode(n)
    report.section(SECTION)
    report.line(
        f"pack decode {out['scheme']} n={out['n']} "
        f"({out['payloads']} payloads, {out['bytes']} bytes): pure "
        f"{out['pure_s']*1000:.0f} ms -> native "
        f"{out['native_s']*1000:.0f} ms ({out['speedup']}x, identical)"
    )
    if not SMOKE:
        assert out["speedup"] >= 1.5, out
    _flush(SMOKE)


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main() -> None:
    reason = _native_reason()
    if reason:
        # Named self-skip: a compiler-less host is a supported
        # configuration, not a benchmark failure.
        print(f"SKIP bench_native: {reason}")
        return
    delta = run_delta(smoke_scale(2000, 200))
    print(
        f"all_balls[weighted] n={delta['n']} ell={delta['ell']}: numpy "
        f"{delta['numpy_s']:.3f}s -> native {delta['native_s']:.3f}s "
        f"=> {delta['speedup']}x (identical)"
    )
    decode = run_decode(smoke_scale(600, 120))
    print(
        f"pack_decode[{decode['scheme']}] n={decode['n']} "
        f"payloads={decode['payloads']}: pure {decode['pure_s']:.3f}s -> "
        f"native {decode['native_s']:.3f}s => {decode['speedup']}x "
        f"(identical)"
    )
    _flush(SMOKE)
    if not SMOKE:
        assert delta["speedup"] >= 2.0, delta
        assert decode["speedup"] >= 1.5, decode


if __name__ == "__main__":
    main()
