"""Lemma 7 / Lemma 8 microbenchmarks: stretch and header cost vs b.

The techniques promise ``(1+eps)``-stretch with ``b = O(1/eps)`` waypoints
per stored sequence.  This bench routes intra-class (Lemma 7) and
class-to-targets (Lemma 8) traffic for several ``b`` on a grid — the
worst case for waypoint sequences (long shortest paths, slow ball growth)
— and prints measured stretch and sequence lengths.  Expected shape:
measured max stretch ≤ 1 + 2/b (Lemma 7) resp. 1 + 2/(b-1) (Lemma 8),
approaching 1 as b grows.
"""

import pytest

from repro.core.technique1 import Technique1
from repro.core.technique2 import Technique2
from repro.graph.generators import grid
from repro.graph.metric import MetricView
from repro.routing.ball_routing import BallRoutingTables
from repro.routing.model import SizedTable
from repro.routing.ports import PortAssignment
from repro.structures.balls import BallFamily
from repro.structures.coloring import color_classes, find_coloring

SECTION = "Lemma 7/8 microbench: stretch vs b on a 12x12 grid"

EPS_VALUES = [2.0, 1.0, 0.5]


@pytest.fixture(scope="module")
def setup():
    g = grid(12, 12)
    m = MetricView(g)
    fam = BallFamily(m, 12)
    ports = PortAssignment(g)
    colors = find_coloring(
        [fam.ball(u) for u in g.vertices()], g.n, 2, seed=71
    )
    classes = color_classes(colors, 2)
    return g, m, fam, ports, classes


def _fresh_tables(g, m, fam, ports):
    tables = [SizedTable(u) for u in g.vertices()]
    bt = BallRoutingTables(m, fam, ports)
    for t in tables:
        bt.install(t)
    return tables


def _drive(tech, tables, ports, m, u, v):
    header = tech.start(tables[u], u, v)
    cur, length = u, 0.0
    for _ in range(4000):
        port, header = tech.step(tables[cur], cur, header, v)
        if port is None:
            return length
        nxt = ports.neighbor(cur, port)
        length += m.graph.weight(cur, nxt)
        cur = nxt
    raise AssertionError("routing did not terminate")


@pytest.mark.parametrize("eps", EPS_VALUES)
def test_lemma7_stretch_vs_eps(benchmark, report, setup, eps):
    g, m, fam, ports, classes = setup

    def build_and_route():
        tables = _fresh_tables(g, m, fam, ports)
        tech = Technique1(m, fam, ports, classes, eps, seed=72)
        for t in tables:
            tech.install(t)
        worst = 1.0
        pairs = 0
        for cls in classes:
            for u in cls[::4]:
                for v in cls[::5]:
                    if u == v:
                        continue
                    length = _drive(tech, tables, ports, m, u, v)
                    worst = max(worst, length / m.d(u, v))
                    pairs += 1
        return tech.b, worst, pairs

    b, worst, pairs = benchmark.pedantic(build_and_route, rounds=1, iterations=1)
    assert worst <= 1 + eps + 1e-9
    report.section(SECTION)
    report.line(
        f"Lemma 7  eps={eps:<5} b={b:<3} pairs={pairs:<5} "
        f"max-stretch={worst:.4f} (bound {1+eps:.2f})"
    )


@pytest.mark.parametrize("eps", EPS_VALUES)
def test_lemma8_stretch_vs_eps(benchmark, report, setup, eps):
    g, m, fam, ports, classes = setup
    # disjoint target classes: a spread pool chunked in two
    pool = list(range(0, g.n, 5))
    targets = [pool[: len(pool) // 2], pool[len(pool) // 2 :]]

    def build_and_route():
        tables = _fresh_tables(g, m, fam, ports)
        tech = Technique2(
            m, fam, ports, classes, targets, eps, validate_hitting=True
        )
        for t in tables:
            tech.install(t)
        worst = 1.0
        max_seq = 0
        pairs = 0
        for i, cls in enumerate(classes):
            for u in cls[::5]:
                for w in targets[i]:
                    if u == w:
                        continue
                    length = _drive(tech, tables, ports, m, u, w)
                    worst = max(worst, length / m.d(u, w))
                    pairs += 1
            for u in cls:
                for w in targets[i]:
                    if u != w:
                        max_seq = max(
                            max_seq, len(tables[u].get(tech.cat_seq, w))
                        )
        return tech.b, worst, max_seq, pairs

    b, worst, max_seq, pairs = benchmark.pedantic(
        build_and_route, rounds=1, iterations=1
    )
    assert worst <= 1 + eps + 1e-9
    report.section(SECTION)
    report.line(
        f"Lemma 8  eps={eps:<5} b={b:<3} pairs={pairs:<5} "
        f"max-stretch={worst:.4f} (bound {1+eps:.2f}) "
        f"longest stored sequence={max_seq} words"
    )
