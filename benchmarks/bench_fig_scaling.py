"""Figure C (implicit): table-size scaling exponents.

The paper's Table 1 states per-vertex table sizes as ``Õ(n^e)`` for
exponents ``e ∈ {2/3, 1/2, 1/3}``.  This bench sweeps ``n``, measures the
average per-vertex table words of Theorem 10 (expect ~2/3), TZ k=2
(expect ~1/2), Theorem 11 and TZ k=3 (expect ~1/3), fits the growth
exponent (with one log factor divided out, matching the Õ) and prints the
series.  At reproduction scale the polylog terms are large, so the check
is an ordering check — Theorem 10 must grow visibly faster than the
``n^{1/3}``-class schemes — plus a loose window per exponent.
"""

import pytest

from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.eval.harness import evaluate_scheme
from repro.eval.metrics import polylog_normalized_exponent
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.schemes import Stretch2Plus1Scheme, Stretch5PlusScheme

SECTION = "Fig C: per-vertex table growth (fitted exponents, one log removed)"

SIZES = [180, 300, 440, 620]


def _avg_degree_p(n):
    return 7.0 / (n - 1)


@pytest.fixture(scope="module")
def worlds():
    out = []
    for i, n in enumerate(SIZES):
        g = erdos_renyi(n, _avg_degree_p(n), seed=851 + i)
        gw = with_random_weights(g, seed=861 + i)
        out.append(
            {
                "n": n,
                "g": g,
                "gw": gw,
                "m": MetricView(g),
                "mw": MetricView(gw),
                "pairs": sample_pairs(n, 200, seed=871 + i),
            }
        )
    return out


CASES = [
    pytest.param(
        Stretch2Plus1Scheme, {"eps": 0.5}, False, 2.0 / 3.0, id="thm10-n23"
    ),
    pytest.param(
        ThorupZwickScheme, {"k": 2}, True, 1.0 / 2.0, id="tz2-n12"
    ),
    pytest.param(
        Stretch5PlusScheme, {"eps": 0.6}, True, 1.0 / 3.0, id="thm11-n13"
    ),
    pytest.param(
        ThorupZwickScheme, {"k": 3}, True, 1.0 / 3.0, id="tz3-n13"
    ),
]


@pytest.mark.parametrize("factory,kwargs,weighted,expect_e", CASES)
def test_scaling(benchmark, report, worlds, factory, kwargs, weighted, expect_e):
    def sweep():
        # Randomized landmark sampling is noisy at these sizes; average the
        # table words over a few construction seeds per point.
        series = []
        for world in worlds:
            g = world["gw"] if weighted else world["g"]
            metric = world["mw"] if weighted else world["m"]
            words, name = [], ""
            for s in range(3):
                ev = evaluate_scheme(
                    g, factory, world["pairs"], metric=metric,
                    seed=61 + s, **kwargs
                )
                assert ev.within_bound, ev.row()
                words.append(ev.stats.avg_table_words)
                name = ev.name
            series.append((world["n"], sum(words) / len(words), name))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sizes = [n for n, _, _ in series]
    words = [w for _, w, _ in series]
    fitted = polylog_normalized_exponent(sizes, words)
    report.section(SECTION)
    name = series[0][2]
    points = "  ".join(f"n={n}:{w:.0f}w" for n, w, _ in series)
    report.line(
        f"{name:<28} paper n^{expect_e:.2f}  fitted n^{fitted:.2f}  [{points}]"
    )
    # Loose per-scheme window: polylog effects dominate at this scale, so
    # allow a generous band around the asymptotic exponent.
    assert expect_e - 0.45 <= fitted <= expect_e + 0.45, (
        f"{name}: fitted exponent {fitted:.2f} far from n^{expect_e:.2f}"
    )


def test_exponent_ordering(benchmark, report, worlds):
    """The ordering the paper's Table 1 implies: Theorem 10's tables grow
    strictly faster than Theorem 11's."""

    def sweep():
        fitted = {}
        for factory, kwargs, weighted, label in [
            (Stretch2Plus1Scheme, {"eps": 0.5}, False, "thm10"),
            (Stretch5PlusScheme, {"eps": 0.6}, True, "thm11"),
        ]:
            sizes, words = [], []
            for world in worlds:
                g = world["gw"] if weighted else world["g"]
                metric = world["mw"] if weighted else world["m"]
                ev = evaluate_scheme(
                    g, factory, world["pairs"][:100], metric=metric,
                    seed=62, **kwargs
                )
                sizes.append(world["n"])
                words.append(ev.stats.avg_table_words)
            fitted[label] = polylog_normalized_exponent(sizes, words)
        return fitted

    fitted = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.section(SECTION)
    report.line(
        f"ordering check: thm10 exponent {fitted['thm10']:.2f} > "
        f"thm11 exponent {fitted['thm11']:.2f}"
    )
    assert fitted["thm10"] > fitted["thm11"]
