"""CSR kernel benchmark: all-balls preprocessing time + lazy-metric memory.

The tentpole claims of the flat-array kernel PRs, measured:

1. **Speed** — batched ``all_balls(g, ell)`` (the dominant preprocessing
   step of every scheme) vs. the seed pure-Python path (a
   ``truncated_dijkstra_py`` loop over the list-of-dicts ``Graph``), on the
   canonical workload ``n ~ 2000``, ``m ~ 4n``, ``ell ~ sqrt(n log n)``.
   Gate: >= 3x on the unweighted workload.  The weighted workload
   additionally races the delta-stepping engine against the previous
   scipy ``limit=`` path (``engine="scipy"``) — gate: >= 3x.
2. **Lemma 4 sampling** — ``sample_cluster_bounded`` on a lazy metric
   with the cross-round cluster-size cache vs. the rescan-everything
   reference (``use_cache=False``).  Gate: identical samples with
   strictly fewer swept rows (the cache removes the per-round blockwise
   APSP).
3. **Memory** — peak traced allocation of ``MetricView(mode="lazy")`` +
   ``BallFamily`` across an n-sweep vs. the dense mode, with the scaling
   exponent ``log2(peak(2n)/peak(n))``.  Gate: sub-quadratic (< 2; dense
   is quadratic by construction).

Results land in ``BENCH_kernel.json`` at the repository root (full runs
only — ``REPRO_BENCH_SMOKE=1`` shrinks the sizes for CI and skips the
write so committed full-run numbers survive).  Runs under pytest
(``pytest benchmarks/bench_kernel.py``) or standalone
(``python benchmarks/bench_kernel.py``).
"""

from __future__ import annotations

import importlib.util
import math
import os
import resource
import time
import tracemalloc

from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.graph.shortest_paths import (
    all_balls,
    truncated_dijkstra_py,
    use_kernel,
)
from repro.structures.balls import BallFamily
from repro.structures.sampling import sample_cluster_bounded

from conftest import SMOKE, merge_bench_results, smoke_scale

SECTION = "CSR kernel: all-balls speedup and lazy-metric memory"

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_kernel.json"
)

_RESULTS: dict = {}


def _workload(n: int, *, weighted: bool = False, seed: int = 7):
    """ER graph with m ~ 4n and the paper-style ball size sqrt(n log n)."""
    g = erdos_renyi(n, 8.0 / (n - 1), seed=seed)
    if weighted:
        g = with_random_weights(g, seed=seed + 92)
    ell = max(1, int(math.ceil(math.sqrt(n * math.log2(n)))))
    return g, ell


def _time_all_balls(n: int, *, weighted: bool) -> dict:
    g, ell = _workload(n, weighted=weighted)
    t0 = time.perf_counter()
    pure = [truncated_dijkstra_py(g, u, ell)[0] for u in g.vertices()]
    t_pure = time.perf_counter() - t0
    # Build the shared CSR mirror and scratch buffers outside the timed
    # regions — they are per-graph one-offs, not per-engine work.  Kernel
    # engines are timed as the best of three runs: they race each other
    # in-process, so the minimum filters scheduler noise out of the
    # engine-vs-engine ratio (the pure seed path runs once; at ~1 s its
    # relative jitter is negligible).
    all_balls(g, 1)

    def _best_of(engine, runs=3):
        best, result = None, None
        for _ in range(runs):
            t0 = time.perf_counter()
            result, _ = all_balls(g, ell, engine=engine)
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        return best, result

    t_kernel, kernel = _best_of(None)
    assert kernel == pure, "kernel balls diverge from the pure reference"
    out = {
        "n": n,
        "m": g.m,
        "ell": ell,
        "weighted": weighted,
        "pure_s": round(t_pure, 4),
        "kernel_s": round(t_kernel, 4),
        "speedup": round(t_pure / t_kernel, 2) if t_kernel > 0 else None,
    }
    if (
        weighted
        and use_kernel()
        and importlib.util.find_spec("scipy") is not None
    ):
        # Race the delta-stepping engine against the pre-delta scipy
        # ``limit=`` path (what PR 1's dispatch used on this workload).
        # Skipped when scipy is absent or the kernel is disabled
        # (REPRO_KERNEL=pure) — then there is no distinct baseline to
        # race, and mislabeling another path as scipy would be worse
        # than no number.
        t_scipy, scipy_balls = _best_of("scipy")
        assert scipy_balls == pure, "scipy engine diverges from pure"
        out["scipy_s"] = round(t_scipy, 4)
        out["speedup_vs_scipy"] = (
            round(t_scipy / t_kernel, 2) if t_kernel > 0 else None
        )
    return out


def run_lemma4(n: int) -> dict:
    """Lemma 4 sampling on a lazy metric: cross-round cache vs rescan."""
    g, _ = _workload(n, weighted=True)
    s = math.sqrt(n)
    out = {"n": n, "m": g.m, "s": round(s, 2)}
    samples = {}
    for label, flag in (("rescan", False), ("cached", True)):
        metric = MetricView(g, mode="lazy")
        t0 = time.perf_counter()
        sample = sample_cluster_bounded(metric, s, seed=5, use_cache=flag)
        dt = time.perf_counter() - t0
        samples[label] = sample
        out[label] = {
            "time_s": round(dt, 4),
            "rows": metric.rows_computed,
            "bounded_rows": metric.bounded_rows_computed,
            "sample_size": len(sample),
        }
    assert samples["cached"] == samples["rescan"], (
        "cluster-size cache changed the sampled landmark set"
    )
    rescan_swept = out["rescan"]["rows"] + out["rescan"]["bounded_rows"]
    cached_swept = out["cached"]["rows"] + out["cached"]["bounded_rows"]
    out["swept_rows_rescan"] = rescan_swept
    out["swept_rows_cached"] = cached_swept
    cached_t = out["cached"]["time_s"]
    out["speedup"] = (
        round(out["rescan"]["time_s"] / cached_t, 2) if cached_t > 0 else None
    )
    _RESULTS["lemma4_sampling"] = out
    return out


def _peak_ball_family(n: int, mode: str) -> dict:
    """Peak traced allocation of metric + ball family construction."""
    g, ell = _workload(n)
    tracemalloc.start()
    metric = MetricView(g, mode=mode)
    family = BallFamily(metric, ell)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert family.n == n
    return {
        "n": n,
        "ell": ell,
        "mode": mode,
        "peak_bytes": int(peak),
        "peak_mb": round(peak / 2**20, 2),
    }


def run_speed(n: int) -> dict:
    out = {
        "unweighted": _time_all_balls(n, weighted=False),
        "weighted": _time_all_balls(n, weighted=True),
    }
    _RESULTS["all_balls"] = out
    return out


def run_memory(sizes) -> dict:
    lazy = [_peak_ball_family(n, "lazy") for n in sizes]
    dense = _peak_ball_family(sizes[-1], "dense")
    exponent = None
    if len(lazy) >= 2 and lazy[-2]["peak_bytes"] > 0:
        ratio = lazy[-1]["peak_bytes"] / lazy[-2]["peak_bytes"]
        step = lazy[-1]["n"] / lazy[-2]["n"]
        exponent = round(math.log(ratio, step), 3)
    out = {
        "lazy": lazy,
        "dense_at_largest_n": dense,
        "lazy_scaling_exponent": exponent,
        "dense_over_lazy_peak": (
            round(dense["peak_bytes"] / lazy[-1]["peak_bytes"], 2)
            if lazy[-1]["peak_bytes"]
            else None
        ),
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    _RESULTS["lazy_memory"] = out
    return out


def _flush(smoke: bool) -> None:
    if smoke or not _RESULTS:
        return
    _RESULTS["workload"] = (
        "erdos_renyi(n, 8/(n-1), seed=7); ell = ceil(sqrt(n log2 n)); "
        "pure path = truncated_dijkstra_py per source (seed "
        "implementation); scipy path = chunked csgraph.dijkstra with "
        "limit (PR 1 weighted engine); lemma4 = sample_cluster_bounded "
        "on MetricView(mode=lazy), s=sqrt(n), seed=5"
    )
    merge_bench_results(RESULT_PATH, _RESULTS)


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_all_balls_speedup(report, bench_scale):
    n = bench_scale(2000, 200)
    out = run_speed(n)
    report.section(SECTION)
    for kind in ("unweighted", "weighted"):
        r = out[kind]
        report.line(
            f"all_balls {kind} n={r['n']} m={r['m']} ell={r['ell']}: "
            f"pure {r['pure_s']*1000:.0f} ms -> kernel "
            f"{r['kernel_s']*1000:.0f} ms ({r['speedup']}x)"
        )
    r = out["weighted"]
    if "speedup_vs_scipy" in r:
        report.line(
            f"all_balls weighted delta vs scipy-limit path: "
            f"{r['scipy_s']*1000:.0f} ms -> {r['kernel_s']*1000:.0f} ms "
            f"({r['speedup_vs_scipy']}x)"
        )
    if not SMOKE:
        assert out["unweighted"]["speedup"] >= 3.0, out
        assert out["weighted"]["speedup"] >= 2.0, out
        if "speedup_vs_scipy" in r:
            assert r["speedup_vs_scipy"] >= 3.0, out


def test_lemma4_sampling_cache(report, bench_scale):
    n = bench_scale(2000, 200)
    out = run_lemma4(n)
    report.section(SECTION)
    report.line(
        f"lemma4 sampling n={out['n']} s={out['s']}: rescan "
        f"{out['rescan']['time_s']:.2f} s ({out['swept_rows_rescan']} "
        f"swept rows) -> cached {out['cached']['time_s']:.2f} s "
        f"({out['swept_rows_cached']} swept rows, {out['speedup']}x)"
    )
    # The cache must be invisible in the result and visible in the scan
    # count on every scale, smoke included (determinism, not timing).
    assert out["swept_rows_cached"] < out["swept_rows_rescan"], out


def test_lazy_metric_memory_subquadratic(report, bench_scale):
    sizes = bench_scale([500, 1000, 2000], [100, 200])
    out = run_memory(sizes)
    report.section(SECTION)
    for r in out["lazy"]:
        report.line(
            f"lazy metric + balls n={r['n']}: peak {r['peak_mb']} MB"
        )
    report.line(
        f"dense at n={out['dense_at_largest_n']['n']}: peak "
        f"{out['dense_at_largest_n']['peak_mb']} MB "
        f"({out['dense_over_lazy_peak']}x lazy); "
        f"lazy scaling exponent {out['lazy_scaling_exponent']}"
    )
    if not SMOKE:
        assert out["lazy_scaling_exponent"] < 1.9, out
        assert out["dense_over_lazy_peak"] > 1.0, out
    _flush(SMOKE)


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main() -> None:
    n = smoke_scale(2000, 200)
    sizes = smoke_scale([500, 1000, 2000], [100, 200])
    speed = run_speed(n)
    for kind, r in speed.items():
        print(
            f"all_balls[{kind}] n={r['n']} m={r['m']} ell={r['ell']}: "
            f"pure {r['pure_s']:.3f}s kernel {r['kernel_s']:.3f}s "
            f"=> {r['speedup']}x"
        )
    r = speed["weighted"]
    if "speedup_vs_scipy" in r:
        print(
            f"all_balls[weighted] delta vs scipy path: {r['scipy_s']:.3f}s "
            f"-> {r['kernel_s']:.3f}s => {r['speedup_vs_scipy']}x"
        )
    lem = run_lemma4(n)
    print(
        f"lemma4 sampling n={lem['n']}: rescan {lem['rescan']['time_s']:.2f}s "
        f"({lem['swept_rows_rescan']} rows) -> cached "
        f"{lem['cached']['time_s']:.2f}s ({lem['swept_rows_cached']} rows) "
        f"=> {lem['speedup']}x"
    )
    mem = run_memory(sizes)
    for r in mem["lazy"]:
        print(f"lazy peak n={r['n']}: {r['peak_mb']} MB")
    print(
        f"dense peak n={mem['dense_at_largest_n']['n']}: "
        f"{mem['dense_at_largest_n']['peak_mb']} MB "
        f"({mem['dense_over_lazy_peak']}x lazy), "
        f"lazy exponent {mem['lazy_scaling_exponent']}"
    )
    _flush(SMOKE)
    if not SMOKE:
        print(f"wrote {os.path.normpath(RESULT_PATH)}")


if __name__ == "__main__":
    main()
