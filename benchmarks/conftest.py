"""Shared benchmark infrastructure.

Every bench records its paper-style rows through the ``report`` fixture;
the rows are printed in the terminal summary (so ``pytest benchmarks/
--benchmark-only`` shows the regenerated tables next to pytest-benchmark's
timing table) and appended to ``benchmarks/results.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List

import pytest

from repro.eval.reporting import banner

_SECTIONS: "OrderedDict[str, List[str]]" = OrderedDict()


class Reporter:
    """Collects output lines per experiment section."""

    def section(self, title: str) -> None:
        _SECTIONS.setdefault(title, [])
        self._current = title

    def line(self, text: str, title: str | None = None) -> None:
        key = title if title is not None else self._current
        _SECTIONS.setdefault(key, []).append(text)


@pytest.fixture(scope="session")
def report() -> Reporter:
    return Reporter()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _SECTIONS:
        return
    terminalreporter.write_line("")
    lines_out = []
    for title, lines in _SECTIONS.items():
        header = banner(title)
        terminalreporter.write_line(header, bold=True)
        lines_out.append(header)
        for line in lines:
            terminalreporter.write_line(line)
            lines_out.append(line)
        terminalreporter.write_line("")
        lines_out.append("")
    out_path = os.path.join(os.path.dirname(__file__), "results.txt")
    with open(out_path, "w") as fh:
        fh.write("\n".join(lines_out) + "\n")
