"""Shared benchmark infrastructure.

Every bench records its paper-style rows through the ``report`` fixture;
the rows are printed in the terminal summary (so ``pytest benchmarks/
--benchmark-only`` shows the regenerated tables next to pytest-benchmark's
timing table) and appended to ``benchmarks/results.txt`` for EXPERIMENTS.md.

Smoke mode
----------
Setting ``REPRO_BENCH_SMOKE=1`` switches benches that opt in (via the
``bench_scale`` fixture or :func:`smoke_scale`) to toy problem sizes, so
``REPRO_BENCH_SMOKE=1 pytest benchmarks/bench_kernel.py`` completes in
seconds.  This keeps the benchmarks exercised (and un-bit-rotted) by
cheap CI runs without paying full experiment cost; full-size runs simply
omit the variable.  Smoke runs never overwrite committed full-run result
files (see ``bench_kernel.py``).
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from typing import Dict, List

import pytest

from repro.eval.reporting import banner

#: REPRO_BENCH_SMOKE in {1, true, yes, on} => benches shrink to smoke
#: sizes; anything else (including "off"/"no") keeps the full run, so an
#: unrecognized value never silently skips the full-size gates.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip().lower() in (
    "1",
    "true",
    "yes",
    "on",
)


def smoke_scale(full, smoke):
    """``smoke`` under REPRO_BENCH_SMOKE=1, ``full`` otherwise."""
    return smoke if SMOKE else full


def merge_bench_results(path: str, updates: dict) -> None:
    """Read-merge-write a shared JSON results file.

    Several benches own sibling keys in ``BENCH_kernel.json``
    (``bench_kernel`` the kernel/memory keys, ``bench_preprocessing``
    the ``substrate_sharing`` key); merging instead of overwriting keeps
    one bench's full-run numbers alive across the other's runs.  The
    write is atomic (tmp file + rename) so an interrupted run can never
    leave a truncated file, and a corrupt existing file raises instead
    of being silently reset — committed numbers must not vanish.
    """
    merged: dict = {}
    try:
        with open(path) as fh:
            merged = json.load(fh)
    except FileNotFoundError:
        merged = {}  # no file yet — first full run
    except ValueError as exc:
        raise RuntimeError(
            f"{path} holds invalid JSON; refusing to overwrite committed "
            f"bench results — repair or delete it first"
        ) from exc
    merged.update(updates)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


@pytest.fixture(scope="session")
def bench_scale():
    """Fixture form of :func:`smoke_scale` for bench test functions."""
    return smoke_scale


_SECTIONS: "OrderedDict[str, List[str]]" = OrderedDict()


class Reporter:
    """Collects output lines per experiment section."""

    def section(self, title: str) -> None:
        _SECTIONS.setdefault(title, [])
        self._current = title

    def line(self, text: str, title: str | None = None) -> None:
        key = title if title is not None else self._current
        _SECTIONS.setdefault(key, []).append(text)


@pytest.fixture(scope="session")
def report() -> Reporter:
    return Reporter()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _SECTIONS:
        return
    terminalreporter.write_line("")
    lines_out = []
    for title, lines in _SECTIONS.items():
        header = banner(title)
        terminalreporter.write_line(header, bold=True)
        lines_out.append(header)
        for line in lines:
            terminalreporter.write_line(line)
            lines_out.append(line)
        terminalreporter.write_line("")
        lines_out.append("")
    out_path = os.path.join(os.path.dirname(__file__), "results.txt")
    with open(out_path, "w") as fh:
        fh.write("\n".join(lines_out) + "\n")
