"""Fault-tolerance benchmark: what integrity and redundancy cost.

Two questions, answered with numbers in ``BENCH_kernel.json`` under
``serving_faults``:

1. **Checksum overhead** — warm decode throughput of the checksummed v3
   packed layout vs plain v2 at n = 10^4 synthetic records.  "Warm"
   means group maps are resident but decodes still run (the LRU is
   bounded far below n), so every lookup pays the per-payload CRC32 —
   the honest worst case for the hot path.  Gate: v3 within 2x of v2
   (in practice ``zlib.crc32`` over a ~1 KB payload is a small fraction
   of the decode itself).

2. **Throughput under faults** — routed hops/second through a
   ``replicas=2`` :class:`ReplicatedShardStore` behind a seeded
   :class:`FaultInjector` at increasing fault rates (0%, 1%, 5% across
   all four fault kinds).  Every route must still complete — the store
   fails over, retries transients and quarantines bad copies — so the
   scenario records how gracefully throughput degrades, plus the
   failover/retry counters that did the surviving.

``REPRO_BENCH_SMOKE=1`` shrinks n and skips the JSON write.  Runs under
pytest or standalone (``python benchmarks/bench_faults.py``).
"""

from __future__ import annotations

import os
import random
import shutil
import statistics
import tempfile
import time

from repro.api import build
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.routing.faults import FaultInjector
from repro.routing.serving import (
    LocalRouter,
    PackedShardStore,
    ReplicatedShardStore,
    write_shard_records,
)
from repro.routing.simulator import route

from bench_serving import _IDENTITY, _synthetic_records
from conftest import SMOKE, merge_bench_results, smoke_scale

SECTION = "Fault tolerance: checksum overhead, throughput under faults"

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_kernel.json"
)

SCHEME = "thm11"

#: injected-fault probability per fault kind, per scenario
FAULT_RATES = (0.0, 0.01, 0.05)


def _median_seconds(fn, reps: int) -> float:
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def run_checksum_overhead(n: int, *, probes: int = 2048, reps: int = 5) -> dict:
    """Warm decode throughput: checksummed v3 vs plain v2 packs."""
    workdir = tempfile.mkdtemp(prefix="repro-faults-codec-")
    try:
        v2_dir = os.path.join(workdir, "v2")
        v3_dir = os.path.join(workdir, "v3")
        write_shard_records(
            _synthetic_records(n), v2_dir, identity=_IDENTITY,
            packed=True, checksums=False,
        )
        write_shard_records(
            _synthetic_records(n), v3_dir, identity=_IDENTITY,
            packed=True, checksums=True,
        )
        rng = random.Random(41)
        probe = [rng.randrange(n) for _ in range(probes)]

        def warm_decodes(path):
            # max_resident far below n: maps stay warm, but (almost)
            # every probe is an LRU miss, so the decode — and on v3 the
            # payload CRC — runs each time.
            store = PackedShardStore(path, max_resident=32)
            for v in probe[:256]:
                store.node(v)  # warm the group maps

            def one_pass():
                for v in probe:
                    store.node(v)

            seconds = _median_seconds(one_pass, reps)
            store.close()
            return len(probe) / seconds

        v2_dps = warm_decodes(v2_dir)
        v3_dps = warm_decodes(v3_dir)
        return {
            "n": n,
            "probes": probes,
            "v2_decodes_per_sec": round(v2_dps, 0),
            "v3_decodes_per_sec": round(v3_dps, 0),
            "v3_overhead": round(v2_dps / v3_dps, 3),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def run_fault_rates(
    n: int, *, pairs: int = 150, group_size: int = 32
) -> dict:
    """Routed throughput through replicas=2 at increasing fault rates."""
    workdir = tempfile.mkdtemp(prefix="repro-faults-route-")
    try:
        g = with_random_weights(
            erdos_renyi(n, 7.0 / (n - 1), seed=71), seed=72
        )
        session = build(SCHEME, g, seed=7)
        path = os.path.join(workdir, "replicated")
        from repro.routing.serving import write_shards

        write_shards(
            session.scheme, path,
            spec_name=session.spec_name, params=session.params,
            seed=session.seed, packed=True,
            group_size=group_size, replicas=2,
        )
        sample = sample_pairs(n, pairs, seed=73)
        baseline = {
            (s, t): route(session.scheme, s, t).path for s, t in sample
        }

        scenarios = []
        for rate in FAULT_RATES:
            injector = FaultInjector(
                seed=int(rate * 1000) + 5,
                rates={kind: rate for kind in (
                    "missing", "truncate", "bitflip", "transient"
                )},
            )
            store = ReplicatedShardStore(path, io=injector)
            router = LocalRouter(store)
            t0 = time.perf_counter()
            hops = 0
            for s, t in sample:
                result = route(router, s, t)
                assert result.path == baseline[(s, t)], (
                    f"route {s}->{t} diverged under fault rate {rate}"
                )
                hops += result.hops
            seconds = time.perf_counter() - t0
            health = store.health()
            store.close()
            scenarios.append({
                "rate": rate,
                "hops_per_sec": round(hops / seconds, 0),
                "injected": injector.fault_counts(),
                "retries": health["retries"],
                "failovers": health["failovers"],
                "checksum_failures": health["checksum_failures"],
                "status": health["status"],
            })
        return {
            "n": n,
            "pairs": pairs,
            "group_size": group_size,
            "replicas": 2,
            "scheme": SCHEME,
            "scenarios": scenarios,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _report_lines(codec: dict, faults: dict) -> list:
    lines = [
        f"checksum overhead n={codec['n']}: v3 "
        f"{codec['v3_decodes_per_sec']:.0f} decodes/s vs v2 "
        f"{codec['v2_decodes_per_sec']:.0f} => "
        f"{codec['v3_overhead']:.2f}x overhead (gate < 2x)",
    ]
    for sc in faults["scenarios"]:
        injected = sum(sc["injected"].values())
        lines.append(
            f"fault rate {sc['rate'] * 100:.0f}% "
            f"(n={faults['n']}, replicas=2): "
            f"{sc['hops_per_sec']:.0f} hops/s, {injected} faults "
            f"injected, {sc['failovers']} failovers, "
            f"{sc['retries']} retries — every route identical to "
            f"fault-free"
        )
    return lines


def _assert_gates(codec: dict, faults: dict) -> None:
    # <2x warm-throughput overhead for checksummed v3 vs v2 (tentpole
    # acceptance gate)
    assert codec["v3_overhead"] < 2.0, codec
    # the zero-fault scenario must be clean, and the faulted ones must
    # have actually survived observed faults
    clean = faults["scenarios"][0]
    assert clean["failovers"] == 0 and clean["retries"] == 0, clean
    assert faults["scenarios"][-1]["status"] == "degraded", faults


def test_faults(benchmark, report, bench_scale):
    def run():
        return (
            run_checksum_overhead(
                bench_scale(10_000, 800),
                probes=smoke_scale(2048, 256),
                reps=smoke_scale(5, 2),
            ),
            run_fault_rates(
                bench_scale(1000, 150), pairs=smoke_scale(150, 40)
            ),
        )

    codec, faults = benchmark.pedantic(run, rounds=1, iterations=1)
    report.section(SECTION)
    for line in _report_lines(codec, faults):
        report.line(line)
    # Route-equality under faults is asserted inside run_fault_rates at
    # every scale; the throughput gate only means something full-size.
    if not SMOKE:
        _assert_gates(codec, faults)
        merge_bench_results(
            RESULT_PATH,
            {"serving_faults": {"checksums": codec, "fault_rates": faults}},
        )


def main() -> None:
    codec = run_checksum_overhead(
        smoke_scale(10_000, 800),
        probes=smoke_scale(2048, 256),
        reps=smoke_scale(5, 2),
    )
    faults = run_fault_rates(
        smoke_scale(1000, 150), pairs=smoke_scale(150, 40)
    )
    for line in _report_lines(codec, faults):
        print(line)
    if not SMOKE:
        _assert_gates(codec, faults)
        merge_bench_results(
            RESULT_PATH,
            {"serving_faults": {"checksums": codec, "fault_rates": faults}},
        )
        print(f"merged into {os.path.normpath(RESULT_PATH)}")


if __name__ == "__main__":
    main()
