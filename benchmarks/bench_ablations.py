"""Ablations of the design choices DESIGN.md calls out.

1. **Ball-size constant alpha** (q̃ = alpha*q*log n): the scale knob of
   the whole reproduction.  Sweeping alpha for Theorem 11 shows the
   tradeoff: bigger balls → more exact local deliveries and bigger tables.
2. **Hitting-set strategy** (Lemma 5): greedy ln-approximation vs random
   sampling inside Technique 1.  Greedy hubs are fewer (smaller htree
   category); stretch is identical because the bound never depended on
   which hub is picked.
3. **Own-cluster check in Theorem 11**: routing checks ``v ∈ C_A(u)``
   before falling back to the color representative.  Disabling it (the
   ablated scheme skips the check) shows the measured stretch cost of
   removing one exact-delivery case while tables stay the same.
"""

import pytest

from repro.core.technique1 import Technique1
from repro.eval.harness import evaluate_scheme
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.model import Forward
from repro.schemes import Stretch5PlusScheme, Warmup3Scheme

N = 300
SECTION = "Ablations: alpha, hitting-set strategy, own-cluster check"


@pytest.fixture(scope="module")
def graph():
    return with_random_weights(
        erdos_renyi(N, 0.022, seed=911), seed=912
    )


@pytest.fixture(scope="module")
def metric(graph):
    return MetricView(graph)


@pytest.fixture(scope="module")
def pairs(graph):
    return sample_pairs(graph.n, 400, seed=913)


def test_alpha_sweep(benchmark, report, graph, metric, pairs):
    def sweep():
        out = []
        for alpha in (0.5, 1.0, 2.0):
            ev = evaluate_scheme(
                graph, Stretch5PlusScheme, pairs, metric=metric,
                eps=0.6, alpha=alpha, seed=21,
            )
            assert ev.within_bound, ev.row()
            out.append((alpha, ev))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.section(SECTION)
    report.line("alpha sweep (Thm 11): ball constant vs stretch vs space")
    for alpha, ev in results:
        report.line(
            f"  alpha={alpha:<4} max={ev.stretch.max_stretch:.3f} "
            f"avg={ev.stretch.avg_stretch:.3f} "
            f"tbl-avg={ev.stats.avg_table_words:.0f}"
        )
    # bigger balls => more table words
    words = [ev.stats.avg_table_words for _, ev in results]
    assert words[0] < words[-1]


def test_hitting_strategy(benchmark, report, graph, metric, pairs):
    def build_both():
        out = {}
        for label, greedy in (("greedy", True), ("random", False)):
            scheme = Warmup3Scheme(graph, eps=0.5, metric=metric, seed=22)
            # rebuild technique with the chosen hitting strategy
            from repro.structures.coloring import color_classes

            classes = color_classes(scheme.colors, scheme.q)
            tech = Technique1(
                metric, scheme.family, scheme.ports, classes, 0.25,
                seed=23, use_greedy_hitting=greedy,
            )
            out[label] = len(tech.hitting)
        return out

    sizes = benchmark.pedantic(build_both, rounds=1, iterations=1)
    report.section(SECTION)
    report.line(
        f"hitting set (Lemma 5): greedy {sizes['greedy']} hubs vs "
        f"random {sizes['random']} hubs (stretch bound unaffected)"
    )
    assert sizes["greedy"] <= sizes["random"]


class _NoOwnClusterScheme(Stretch5PlusScheme):
    """Theorem 11 with the own-cluster exact-delivery case disabled."""

    name = "Thm 11 (no own-cluster check)"

    def step(self, u, header, dest_label):
        if header is None:
            v = dest_label[0]
            if u != v:
                table = self.table_of(u)
                ball_port = table.get("ball", v)
                if ball_port is not None:
                    return Forward(ball_port, ("ball",))
                v_part = dest_label[2]
                rep = table.get("colorrep", v_part)
                if rep == u:
                    return self._start_t2(
                        table, u, dest_label[1], v, dest_label[3]
                    )
                return Forward(table.get("ball", rep), ("torep", rep))
        return super().step(u, header, dest_label)


def test_own_cluster_check(benchmark, report, graph, metric, pairs):
    def build_both():
        full = evaluate_scheme(
            graph, Stretch5PlusScheme, pairs, metric=metric,
            eps=0.6, seed=24,
        )
        ablated = evaluate_scheme(
            graph, _NoOwnClusterScheme, pairs, metric=metric,
            eps=0.6, seed=24,
        )
        return full, ablated

    full, ablated = benchmark.pedantic(build_both, rounds=1, iterations=1)
    assert full.within_bound
    assert ablated.within_bound  # the 5+eps analysis never needed the check
    report.section(SECTION)
    report.line(
        f"own-cluster check (Thm 11): with  "
        f"max={full.stretch.max_stretch:.3f} avg={full.stretch.avg_stretch:.3f}"
    )
    report.line(
        f"                            without "
        f"max={ablated.stretch.max_stretch:.3f} "
        f"avg={ablated.stretch.avg_stretch:.3f}"
    )
    # removing an exact-delivery case can only hurt (weakly) on average
    assert (
        ablated.stretch.avg_stretch >= full.stretch.avg_stretch - 1e-9
    )
