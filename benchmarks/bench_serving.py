"""Serving-path benchmark: cold shard loads vs the JSON session blob.

The sharded deployment layout exists for exactly two numbers, measured
here on Theorem 11 at the canonical n=1000 workload:

1. **Cold start** — latency to serve the *first* request at one vertex:
   open the shard store (manifest) and load that vertex's binary shard,
   versus parsing the whole legacy JSON session blob.  Gate: >= 10x
   lower.  This is the number that decides whether a fleet of small
   nodes can cold-start lazily or must each swallow the full scheme.
2. **Routed throughput** — hops/second through the fixed-port simulator
   on the warm shard engine versus the monolithic in-memory scheme
   (both make identical step decisions; the serving tests assert it).
   The shard engine pays one dict hop per table access — this records
   how much.

The **packed** scenario (``serving_packed``, also standalone via
``python benchmarks/bench_serving.py --packed``) measures what layout
v2 buys at scale, in two halves:

* **storage layer at n = 10^5** — synthetic thm11-shaped records (a
  real build is an O(n^2) APSP away at this size; the store never looks
  past the codec, so record *shape* is all that matters here): on-disk
  file counts (gate: packed uses >= 100x fewer files) and cold
  random-vertex lookup latency, fresh store per round (gate: packed no
  slower than per-file),
* **routing layer at buildable scale** — a real thm11 session saved in
  both layouts: identical routes hop for hop, identical serve counters,
  and warm packed throughput within ~10% of in-memory routing (gate).

Results land in ``BENCH_kernel.json`` under ``serving`` and
``serving_packed`` (full runs only); ``REPRO_BENCH_SMOKE=1`` shrinks n
and skips the write.  Runs under pytest or standalone.
"""

from __future__ import annotations

import os
import random
import shutil
import statistics
import sys
import tempfile
import time

from repro.api import build, load
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.routing.serving import (
    LocalRouter,
    PackedShardStore,
    ShardStore,
    open_store,
    write_shard_records,
)
from repro.routing.simulator import route
from repro.routing.tables import NodeTable

from conftest import SMOKE, merge_bench_results, smoke_scale

SECTION = "Serving: cold shard loads vs JSON blob, routed throughput"

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_kernel.json"
)

SCHEME = "thm11"


def _median_seconds(fn, reps: int) -> float:
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def run_serving(n: int, *, pairs: int = 200, reps: int = 15) -> dict:
    g = with_random_weights(
        erdos_renyi(n, 7.0 / (n - 1), seed=71), seed=72
    )
    session = build(SCHEME, g, seed=7)
    workdir = tempfile.mkdtemp(prefix="repro-serving-")
    try:
        blob_path = os.path.join(workdir, "session.json")
        shard_path = os.path.join(workdir, "session.shards")
        session.save(blob_path)
        session.save(shard_path, shards=True)
        blob_bytes = os.path.getsize(blob_path)
        manifest = ShardStore(shard_path).manifest

        # --- cold start: one vertex served, nothing else parsed -------
        probe = [v % n for v in (0, n // 3, n // 2, 2 * n // 3, n - 1)]

        def cold_shard():
            store = ShardStore(shard_path)
            for v in probe:
                store.node(v)

        def cold_blob():
            load(blob_path)

        shard_s = _median_seconds(cold_shard, reps) / len(probe)
        blob_s = _median_seconds(cold_blob, max(3, reps // 3))

        # --- routed throughput: warm engines, identical decisions -----
        sample = sample_pairs(n, pairs, seed=73)
        router = LocalRouter(ShardStore(shard_path))

        def hops_per_sec(engine):
            for s, t in sample:  # warm pass: shard loads + caches
                route(engine, s, t)
            t0 = time.perf_counter()
            hops = 0
            for s, t in sample:
                hops += route(engine, s, t).hops
            return hops / (time.perf_counter() - t0)

        memory_hps = hops_per_sec(session.scheme)
        shard_hps = hops_per_sec(router)
        served = router.store.stats()

        return {
            "n": n,
            "scheme": SCHEME,
            "pairs": pairs,
            "blob_bytes": blob_bytes,
            "shard_bytes_total": manifest["bytes"]["total"],
            "shard_bytes_max": manifest["bytes"]["max_shard"],
            "cold_blob_load_ms": round(blob_s * 1e3, 3),
            "cold_shard_load_ms": round(shard_s * 1e3, 3),
            "cold_speedup": round(blob_s / shard_s, 1),
            "memory_hops_per_sec": round(memory_hps, 0),
            "shard_hops_per_sec": round(shard_hps, 0),
            "shard_loads_for_workload": served["loads"],
            "shard_bytes_for_workload": served["bytes_read"],
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _report_lines(out: dict) -> list:
    return [
        f"cold start n={out['n']} ({out['scheme']}): one shard "
        f"{out['cold_shard_load_ms']:.2f} ms vs JSON blob "
        f"{out['cold_blob_load_ms']:.1f} ms => {out['cold_speedup']}x "
        f"({out['shard_bytes_max']}B max shard vs "
        f"{out['blob_bytes']}B blob)",
        f"throughput: in-memory {out['memory_hops_per_sec']:.0f} hops/s, "
        f"shards {out['shard_hops_per_sec']:.0f} hops/s "
        f"({out['shard_loads_for_workload']} shards / "
        f"{out['shard_bytes_for_workload']}B touched by "
        f"{out['pairs']} routes)",
    ]


# ----------------------------------------------------------------------
# packed layout (v2): file counts, cold lookups, routed throughput
# ----------------------------------------------------------------------
def _synthetic_records(n: int, seed: int = 29):
    """Generate thm11-*shaped* records for the storage-layer half.

    Preprocessing a real scheme at n = 10^5 means an O(n^2) APSP — not a
    storage benchmark.  The store layer never interprets table contents
    (it decodes whatever the codec wrote), so synthetic records with
    thm11's categories and ~n^{1/3}-scaled entry counts measure exactly
    what serving at that size costs on disk.  The routing-layer half of
    the scenario uses a *real* scheme at buildable scale.
    """
    rng = random.Random(seed)
    q = max(2, round(n ** (1.0 / 3.0)))
    for v in range(n):
        degree = rng.randrange(4, 10)
        neighbors = tuple(
            (rng.randrange(n), round(rng.uniform(1.0, 8.0), 6))
            for _ in range(degree)
        )
        ball = {
            rng.randrange(n): rng.randrange(degree) for _ in range(q)
        }
        ctree = {
            rng.randrange(n): (
                rng.randrange(n), rng.randrange(n), rng.randrange(degree),
                -1, 0, 0,
            )
            for _ in range(6)
        }
        seqs = {
            rng.randrange(n): tuple(
                rng.randrange(n) for _ in range(rng.randrange(2, 6))
            )
            for _ in range(q // 2)
        }
        yield NodeTable(
            owner=v,
            neighbors=neighbors,
            label=(v, rng.randrange(n), rng.randrange(q), rng.randrange(n)),
            categories={"ball": ball, "ctree": ctree, "t2:seq": seqs},
        )


def _count_files(root: str) -> int:
    return sum(len(files) for _, _, files in os.walk(root))


def _tree_bytes(root: str) -> dict:
    out = {}
    for dirpath, _, names in os.walk(root):
        for name in names:
            p = os.path.join(dirpath, name)
            with open(p, "rb") as fh:
                out[os.path.relpath(p, root)] = fh.read()
    return out


def _packed_write_parallel(
    workdir: str, n_store: int, packed_dir: str, serial_s: float
):
    """Repeat the packed write with REPRO_PARALLEL pool group encoding.

    The PackEncoder contract (repro.graph.parallel) is byte-identity —
    asserted here against the serial output at storage-layer scale —
    so the only thing this measures is wall-clock.  Returns None when
    the parallel tier is unavailable (pure-python install).
    """
    try:
        from repro.graph.parallel import reset_parallel_choice
    except ImportError:
        return None
    par_dir = os.path.join(workdir, "packed-parallel")
    workers = min(8, max(2, os.cpu_count() or 1))
    old = os.environ.get("REPRO_PARALLEL")
    os.environ["REPRO_PARALLEL"] = str(workers)
    reset_parallel_choice()
    try:
        t0 = time.perf_counter()
        write_shard_records(
            _synthetic_records(n_store), par_dir,
            identity=_IDENTITY, packed=True,
        )
        parallel_s = time.perf_counter() - t0
    finally:
        if old is None:
            os.environ.pop("REPRO_PARALLEL", None)
        else:
            os.environ["REPRO_PARALLEL"] = old
        reset_parallel_choice()
    assert _tree_bytes(par_dir) == _tree_bytes(packed_dir), (
        "parallel pack encoding changed bytes"
    )
    return {
        "workers": workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        "byte_identical": True,
    }


_IDENTITY = {
    "spec": SCHEME, "scheme": "Stretch5PlusScheme",
    "name": "synthetic thm11-shaped", "seed": 0,
    "params": {}, "routing_params": {"eps": 0.6, "q": None},
}


def run_serving_packed(
    n_store: int, n_route: int, *, pairs: int = 200, reps: int = 5
) -> dict:
    workdir = tempfile.mkdtemp(prefix="repro-serving-packed-")
    try:
        # --- storage layer: synthetic records at n_store --------------
        v1_dir = os.path.join(workdir, "v1")
        packed_dir = os.path.join(workdir, "packed")
        t0 = time.perf_counter()
        write_shard_records(
            _synthetic_records(n_store), v1_dir, identity=_IDENTITY
        )
        v1_write_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        manifest = write_shard_records(
            _synthetic_records(n_store), packed_dir,
            identity=_IDENTITY, packed=True,
        )
        packed_write_s = time.perf_counter() - t0
        parallel_write = _packed_write_parallel(
            workdir, n_store, packed_dir, packed_write_s
        )

        v1_files = _count_files(v1_dir)
        packed_files = _count_files(packed_dir)

        rng = random.Random(31)
        # 128 cold-vertex probes: every probe is a first touch of that
        # vertex in a fresh store; the packed store amortizes its ~25
        # group mappings across them, which is exactly the layout's
        # serving pattern (one node serves many vertices per group).
        probes = [rng.randrange(n_store) for _ in range(128)]
        # equality spot-check: both layouts decode identical records
        cold_v1, cold_packed = ShardStore(v1_dir), PackedShardStore(packed_dir)
        for v in probes[:8]:
            assert cold_v1.node(v) == cold_packed.node(v), v

        def lookups(opener):
            store = opener()  # fresh store: nothing resident, cold maps
            for v in probes:
                store.node(v)

        v1_s = _median_seconds(
            lambda: lookups(lambda: ShardStore(v1_dir)), reps
        ) / len(probes)
        packed_s = _median_seconds(
            lambda: lookups(lambda: PackedShardStore(packed_dir)), reps
        ) / len(probes)

        # --- routing layer: real thm11 at n_route ---------------------
        g = with_random_weights(
            erdos_renyi(n_route, 7.0 / (n_route - 1), seed=71), seed=72
        )
        session = build(SCHEME, g, seed=7)
        route_v1 = os.path.join(workdir, "route.v1")
        route_packed = os.path.join(workdir, "route.packed")
        session.save(route_v1, shards=True)
        session.save(route_packed, shards=True, packed=True)
        sample = sample_pairs(n_route, pairs, seed=73)
        router_v1 = LocalRouter(open_store(route_v1))
        router_packed = LocalRouter(open_store(route_packed))

        def hops_per_sec(engine):
            t0 = time.perf_counter()
            hops = 0
            for s, t in sample:
                hops += route(engine, s, t).hops
            return hops / (time.perf_counter() - t0)

        for s, t in sample[:50]:  # identical decisions across layouts
            r1, r2 = route(router_v1, s, t), route(router_packed, s, t)
            assert r1.path == r2.path, (s, t)
        engines = {
            "memory": session.scheme,
            "v1": router_v1,
            "packed": router_packed,
        }
        best = {k: 0.0 for k in engines}
        for engine in engines.values():  # warm pass: shard loads+caches
            for s, t in sample:
                route(engine, s, t)
        # Interleaved best-of rounds: one measurement is ~10 ms of
        # routing, where scheduler jitter can swing 30%; the max over
        # alternating rounds compares the engines, not the noise.
        for _ in range(5):
            for k, engine in engines.items():
                best[k] = max(best[k], hops_per_sec(engine))
        memory_hps, v1_hps, packed_hps = (
            best["memory"], best["v1"], best["packed"]
        )
        # Wire-header cost of ONE workload pass: the counters above
        # accumulated over the equality check, the warm pass and every
        # measurement round, so snapshot a dedicated delta instead.
        header_before = router_packed.header_stats()["header_bytes"]
        for s, t in sample:
            route(router_packed, s, t)
        header_bytes_workload = (
            router_packed.header_stats()["header_bytes"] - header_before
        )
        s1, s2 = router_v1.store.stats(), router_packed.store.stats()
        assert (s1["loads"], s1["bytes_read"]) == (
            s2["loads"], s2["bytes_read"]
        ), "layouts served different bytes for the same workload"

        return {
            "n_store": n_store,
            "n_route": n_route,
            "scheme": SCHEME,
            "group_size": manifest["group_size"],
            "store_bytes_total": manifest["bytes"]["total"],
            "v1_files": v1_files,
            "packed_files": packed_files,
            "file_ratio": round(v1_files / packed_files, 1),
            "v1_write_s": round(v1_write_s, 3),
            "packed_write_s": round(packed_write_s, 3),
            "cold_lookup_v1_ms": round(v1_s * 1e3, 4),
            "cold_lookup_packed_ms": round(packed_s * 1e3, 4),
            "memory_hops_per_sec": round(memory_hps, 0),
            "v1_hops_per_sec": round(v1_hps, 0),
            "packed_hops_per_sec": round(packed_hps, 0),
            "groups_mapped_for_workload": s2["groups_mapped"],
            "header_bytes_for_workload": header_bytes_workload,
            "packed_write_parallel": parallel_write,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _packed_report_lines(out: dict) -> list:
    par = out.get("packed_write_parallel")
    par_line = (
        "parallel packed write: tier unavailable"
        if par is None
        else (
            f"parallel packed write ({par['workers']} workers): "
            f"{par['parallel_s']:.1f}s vs serial {par['serial_s']:.1f}s "
            f"({par['speedup']}x, byte-identical)"
        )
    )
    return [
        par_line,
        f"packed store n={out['n_store']}: {out['packed_files']} files vs "
        f"{out['v1_files']} per-file => {out['file_ratio']}x fewer "
        f"(write {out['packed_write_s']:.1f}s vs {out['v1_write_s']:.1f}s; "
        f"{out['store_bytes_total']}B payload)",
        f"cold random-vertex lookup: packed "
        f"{out['cold_lookup_packed_ms']:.3f} ms vs per-file "
        f"{out['cold_lookup_v1_ms']:.3f} ms",
        f"warm throughput n={out['n_route']}: in-memory "
        f"{out['memory_hops_per_sec']:.0f} hops/s, per-file "
        f"{out['v1_hops_per_sec']:.0f}, packed "
        f"{out['packed_hops_per_sec']:.0f} "
        f"({out['groups_mapped_for_workload']} groups mapped, "
        f"{out['header_bytes_for_workload']}B wire headers)",
    ]


def _assert_packed_gates(out: dict) -> None:
    # the three acceptance gates of the packed layout (full size only)
    assert out["file_ratio"] >= 100.0, out
    assert (
        out["cold_lookup_packed_ms"]
        <= out["cold_lookup_v1_ms"] * 1.05
    ), out
    assert (
        out["packed_hops_per_sec"] >= 0.9 * out["memory_hops_per_sec"]
    ), out


def test_serving(benchmark, report, bench_scale):
    n = bench_scale(1000, 150)
    out = benchmark.pedantic(
        lambda: run_serving(n, pairs=smoke_scale(200, 60)),
        rounds=1, iterations=1,
    )
    report.section(SECTION)
    for line in _report_lines(out):
        report.line(line)
    # The 10x cold-start gate is the acceptance bar of the sharded
    # layout; only meaningful at full size (at smoke scale the blob is
    # tiny and OS noise dominates).
    if not SMOKE:
        assert out["cold_speedup"] >= 10.0, out
        merge_bench_results(RESULT_PATH, {"serving": out})


def test_serving_packed(benchmark, report, bench_scale):
    out = benchmark.pedantic(
        lambda: run_serving_packed(
            bench_scale(100_000, 5000),
            bench_scale(1000, 150),
            pairs=smoke_scale(200, 60),
        ),
        rounds=1, iterations=1,
    )
    report.section(SECTION)
    for line in _packed_report_lines(out):
        report.line(line)
    # The route-equality and serve-counter checks run at every scale
    # inside run_serving_packed; the latency/throughput gates only mean
    # something at full size.
    if not SMOKE:
        _assert_packed_gates(out)
        merge_bench_results(RESULT_PATH, {"serving_packed": out})


def run_packed_main() -> None:
    out = run_serving_packed(
        smoke_scale(100_000, 5000),
        smoke_scale(1000, 150),
        pairs=smoke_scale(200, 60),
    )
    for line in _packed_report_lines(out):
        print(line)
    if not SMOKE:
        _assert_packed_gates(out)
        merge_bench_results(RESULT_PATH, {"serving_packed": out})
        print(f"merged into {os.path.normpath(RESULT_PATH)}")


def main() -> None:
    if "--packed" in sys.argv[1:]:
        run_packed_main()
        return
    n = smoke_scale(1000, 150)
    out = run_serving(n, pairs=smoke_scale(200, 60))
    for line in _report_lines(out):
        print(line)
    if not SMOKE:
        assert out["cold_speedup"] >= 10.0, out
        merge_bench_results(RESULT_PATH, {"serving": out})
        print(f"merged into {os.path.normpath(RESULT_PATH)}")
    run_packed_main()


if __name__ == "__main__":
    main()
