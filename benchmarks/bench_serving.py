"""Serving-path benchmark: cold shard loads vs the JSON session blob.

The sharded deployment layout exists for exactly two numbers, measured
here on Theorem 11 at the canonical n=1000 workload:

1. **Cold start** — latency to serve the *first* request at one vertex:
   open the shard store (manifest) and load that vertex's binary shard,
   versus parsing the whole legacy JSON session blob.  Gate: >= 10x
   lower.  This is the number that decides whether a fleet of small
   nodes can cold-start lazily or must each swallow the full scheme.
2. **Routed throughput** — hops/second through the fixed-port simulator
   on the warm shard engine versus the monolithic in-memory scheme
   (both make identical step decisions; the serving tests assert it).
   The shard engine pays one dict hop per table access — this records
   how much.

Results land in ``BENCH_kernel.json`` under ``serving`` (full runs
only); ``REPRO_BENCH_SMOKE=1`` shrinks n and skips the write.  Runs
under pytest or standalone (``python benchmarks/bench_serving.py``).
"""

from __future__ import annotations

import os
import shutil
import statistics
import tempfile
import time

from repro.api import build, load
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.routing.serving import LocalRouter, ShardStore
from repro.routing.simulator import route

from conftest import SMOKE, merge_bench_results, smoke_scale

SECTION = "Serving: cold shard loads vs JSON blob, routed throughput"

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_kernel.json"
)

SCHEME = "thm11"


def _median_seconds(fn, reps: int) -> float:
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def run_serving(n: int, *, pairs: int = 200, reps: int = 15) -> dict:
    g = with_random_weights(
        erdos_renyi(n, 7.0 / (n - 1), seed=71), seed=72
    )
    session = build(SCHEME, g, seed=7)
    workdir = tempfile.mkdtemp(prefix="repro-serving-")
    try:
        blob_path = os.path.join(workdir, "session.json")
        shard_path = os.path.join(workdir, "session.shards")
        session.save(blob_path)
        session.save(shard_path, shards=True)
        blob_bytes = os.path.getsize(blob_path)
        manifest = ShardStore(shard_path).manifest

        # --- cold start: one vertex served, nothing else parsed -------
        probe = [v % n for v in (0, n // 3, n // 2, 2 * n // 3, n - 1)]

        def cold_shard():
            store = ShardStore(shard_path)
            for v in probe:
                store.node(v)

        def cold_blob():
            load(blob_path)

        shard_s = _median_seconds(cold_shard, reps) / len(probe)
        blob_s = _median_seconds(cold_blob, max(3, reps // 3))

        # --- routed throughput: warm engines, identical decisions -----
        sample = sample_pairs(n, pairs, seed=73)
        router = LocalRouter(ShardStore(shard_path))

        def hops_per_sec(engine):
            for s, t in sample:  # warm pass: shard loads + caches
                route(engine, s, t)
            t0 = time.perf_counter()
            hops = 0
            for s, t in sample:
                hops += route(engine, s, t).hops
            return hops / (time.perf_counter() - t0)

        memory_hps = hops_per_sec(session.scheme)
        shard_hps = hops_per_sec(router)
        served = router.store.stats()

        return {
            "n": n,
            "scheme": SCHEME,
            "pairs": pairs,
            "blob_bytes": blob_bytes,
            "shard_bytes_total": manifest["bytes"]["total"],
            "shard_bytes_max": manifest["bytes"]["max_shard"],
            "cold_blob_load_ms": round(blob_s * 1e3, 3),
            "cold_shard_load_ms": round(shard_s * 1e3, 3),
            "cold_speedup": round(blob_s / shard_s, 1),
            "memory_hops_per_sec": round(memory_hps, 0),
            "shard_hops_per_sec": round(shard_hps, 0),
            "shard_loads_for_workload": served["loads"],
            "shard_bytes_for_workload": served["bytes_read"],
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _report_lines(out: dict) -> list:
    return [
        f"cold start n={out['n']} ({out['scheme']}): one shard "
        f"{out['cold_shard_load_ms']:.2f} ms vs JSON blob "
        f"{out['cold_blob_load_ms']:.1f} ms => {out['cold_speedup']}x "
        f"({out['shard_bytes_max']}B max shard vs "
        f"{out['blob_bytes']}B blob)",
        f"throughput: in-memory {out['memory_hops_per_sec']:.0f} hops/s, "
        f"shards {out['shard_hops_per_sec']:.0f} hops/s "
        f"({out['shard_loads_for_workload']} shards / "
        f"{out['shard_bytes_for_workload']}B touched by "
        f"{out['pairs']} routes)",
    ]


def test_serving(benchmark, report, bench_scale):
    n = bench_scale(1000, 150)
    out = benchmark.pedantic(
        lambda: run_serving(n, pairs=smoke_scale(200, 60)),
        rounds=1, iterations=1,
    )
    report.section(SECTION)
    for line in _report_lines(out):
        report.line(line)
    # The 10x cold-start gate is the acceptance bar of the sharded
    # layout; only meaningful at full size (at smoke scale the blob is
    # tiny and OS noise dominates).
    if not SMOKE:
        assert out["cold_speedup"] >= 10.0, out
        merge_bench_results(RESULT_PATH, {"serving": out})


def main() -> None:
    n = smoke_scale(1000, 150)
    out = run_serving(n, pairs=smoke_scale(200, 60))
    for line in _report_lines(out):
        print(line)
    if not SMOKE:
        assert out["cold_speedup"] >= 10.0, out
        merge_bench_results(RESULT_PATH, {"serving": out})
        print(f"merged into {os.path.normpath(RESULT_PATH)}")


if __name__ == "__main__":
    main()
