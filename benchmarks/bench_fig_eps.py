"""Figure B (implicit): eps sensitivity of the new techniques.

The techniques pay ``b = O(1/eps)`` words per stored waypoint sequence for
a ``(1+eps)`` guarantee.  This bench sweeps eps for the warm-up scheme on
a weighted grid (long shortest paths — the regime where the waypoint
budget is actually consumed) and reports the measured stretch plus the
words spent on the Lemma 7 sequence category.  Expected shape: sequence
words grow and average stretch falls as eps shrinks, saturating once
``2b+2`` exceeds the grid's path lengths.  The per-eps *worst-case*
response of the raw techniques is measured in bench_techniques.py.

Scale note (DESIGN.md §4): ``q`` and ``alpha`` are pinned below the
defaults because at n=256 the asymptotic ``q̃ = sqrt(n) log n`` ball would
cover half the graph and collapse every sequence to one ball hop.
"""

import pytest

from repro.eval.harness import evaluate_scheme
from repro.eval.workloads import sample_pairs
from repro.graph.generators import grid, with_random_weights
from repro.graph.metric import MetricView
from repro.schemes import Warmup3Scheme

SECTION = "Fig B: eps sensitivity (1/eps cost of Technique 1)"

EPS_VALUES = [2.0, 1.0, 0.5, 0.25]


@pytest.fixture(scope="module")
def graph():
    return with_random_weights(grid(16, 16), seed=842, low=1.0, high=3.0)


@pytest.fixture(scope="module")
def metric(graph):
    return MetricView(graph)


@pytest.fixture(scope="module")
def pairs(graph):
    return sample_pairs(graph.n, 350, seed=843)


def test_eps_sweep(benchmark, report, graph, metric, pairs):
    def sweep():
        out = []
        for eps in EPS_VALUES:
            ev = evaluate_scheme(
                graph, Warmup3Scheme, pairs, metric=metric,
                eps=eps, q=8, alpha=0.5, seed=51,
            )
            assert ev.within_bound, ev.row()
            seq_words = ev.stats.table_breakdown_max.get("t1:seq", 0)
            out.append((eps, ev, seq_words))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.section(SECTION)
    report.line(
        f"  {'eps':<6} {'bound':<8} {'max-stretch':<12} {'avg-stretch':<12} "
        f"{'seq-words(max)':<15} hdr-max"
    )
    for eps, ev, seq_words in results:
        report.line(
            f"  {eps:<6} {ev.bound[0]:<8.2f} {ev.stretch.max_stretch:<12.3f} "
            f"{ev.stretch.avg_stretch:<12.3f} {seq_words:<15} "
            f"{ev.stretch.max_header_words}"
        )

    # Shape: smaller eps => (weakly) more sequence words, (weakly) better
    # average stretch.
    seq = [s for _, _, s in results]
    avg = [ev.stretch.avg_stretch for _, ev, _ in results]
    assert seq[-1] >= seq[0]
    assert avg[-1] <= avg[0] + 1e-9
