"""Cluster-serving benchmark: multi-worker fleets vs the single-process
serving stack.

The ``repro.cluster`` subsystem exists for exactly two promises,
measured here on tz2 at the canonical n=1000 workload:

1. **Aggregate routed throughput** — hops/second through a 1-worker and
   a 4-worker fleet (replica-aware placement, batched FORWARD frames,
   per-worker drive sets) versus the warm single-process
   ``LocalRouter`` loop over the same packed shard directory.  Every
   cluster route is asserted hop-identical (same path, same float
   length) to the single-process result at every scale, so the
   throughput numbers compare *identical* work.

   Gate (full runs): **per-worker efficiency at 4 workers >= 0.5** —
   the 4-worker aggregate keeps at least half the 1-worker fleet's
   throughput — asserted when the host grants the fleet at least
   ``workers`` CPU cores.  On smaller hosts real parallelism is
   physically impossible (this box may expose a single core), so the
   gate degrades to the serialized floor ``>= 0.2`` — the whole fleet
   timesharing one core must not pay more than a 5x distribution tax —
   and the skipped gate is reported rather than silently passed.

2. **Routes survive a worker kill** — a fresh 4-worker / 2-replica
   fleet is SIGKILLed mid-batch; every route must still complete
   hop-identical to the fault-free reference via replica failover, and
   the client's per-worker RPC ledger must reconcile exactly against
   the surviving workers' own request counters.  This is asserted at
   every scale (it is determinism, not speed).

Results land in ``BENCH_kernel.json`` under ``cluster`` (full runs
only); ``REPRO_BENCH_SMOKE=1`` shrinks n and skips the write.  Runs
under pytest or standalone (``python benchmarks/bench_cluster.py``).
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
import time

from repro.api import build
from repro.cluster import start_cluster
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.routing.serving import LocalRouter, open_store, write_shards
from repro.routing.simulator import route as sim_route

from conftest import SMOKE, merge_bench_results, smoke_scale

SECTION = "Cluster serving: worker fleets vs single-process"

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_kernel.json"
)

SCHEME = "tz2"
WORKERS = 4
GROUP_SIZE = 16
REPS = 3


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _best_hps(route_all, hops: int) -> float:
    """Best-of-``REPS`` aggregate hops/second for one warm engine."""
    best = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        route_all()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return hops / best


def _assert_identical(got, reference) -> None:
    assert len(got) == len(reference)
    for res, ref in zip(got, reference):
        assert res.path == ref.path, (res.path, ref.path)
        assert res.length == ref.length  # bit-identical float replay
        assert res.delivered


def run_cluster(n: int, *, pairs: int = 400) -> dict:
    g = with_random_weights(
        erdos_renyi(n, 7.0 / (n - 1), seed=71), seed=72
    )
    session = build(SCHEME, g, seed=7)
    workload = sample_pairs(n, pairs, seed=73)
    workdir = tempfile.mkdtemp(prefix="repro-cluster-")
    try:
        # one replicated dir for the multi-worker fleets, one plain dir
        # for the 1-worker leg (replicas=2 needs >= 2 distinct workers)
        shard_r2 = os.path.join(workdir, "r2")
        shard_r1 = os.path.join(workdir, "r1")
        for path, replicas in ((shard_r2, 2), (shard_r1, 1)):
            write_shards(
                session.scheme, path,
                spec_name=session.spec_name, params=session.params,
                seed=session.seed, packed=True, group_size=GROUP_SIZE,
                replicas=replicas,
            )

        # --- single-process baseline: warm LocalRouter --------------
        store = open_store(shard_r2)
        single = LocalRouter(store)
        reference = [sim_route(single, s, t) for s, t in workload]
        hops = sum(r.hops for r in reference)
        single_hps = _best_hps(
            lambda: [sim_route(single, s, t) for s, t in workload], hops
        )
        store.close()

        # --- cluster legs: identical routes, aggregate hops/s -------
        fleet_hps = {}
        wire = {}
        for shard_dir, workers in ((shard_r1, 1), (shard_r2, WORKERS)):
            with start_cluster(shard_dir, workers=workers) as handle:
                with handle.router() as router:
                    batch = lambda: router.route_batch(  # noqa: E731
                        list(workload), batch_size=pairs
                    )
                    _assert_identical(batch(), reference)  # warm + check
                    fleet_hps[workers] = _best_hps(batch, hops)
                    stats = router.cluster_stats()
                    assert stats["failovers"] == 0
                    wire[workers] = {
                        "rpcs": stats["rpcs"],
                        "payload_bytes_sent": (
                            stats["wire"]["payload_bytes_sent"]
                        ),
                        "payload_bytes_received": (
                            stats["wire"]["payload_bytes_received"]
                        ),
                    }

        # --- chaos: SIGKILL one worker mid-batch --------------------
        survived, ledger_ok, failovers = _run_kill_scenario(
            shard_r2, workload, reference
        )

        cores = _available_cores()
        return {
            "n": n,
            "scheme": SCHEME,
            "pairs": pairs,
            "hops": hops,
            "workers": WORKERS,
            "group_size": GROUP_SIZE,
            "cores": cores,
            "single_hops_per_sec": round(single_hps, 0),
            "cluster_1w_hops_per_sec": round(fleet_hps[1], 0),
            "cluster_4w_hops_per_sec": round(fleet_hps[WORKERS], 0),
            "per_worker_efficiency": round(
                fleet_hps[WORKERS] / fleet_hps[1], 3
            ),
            "efficiency_vs_single": round(
                fleet_hps[WORKERS] / single_hps, 3
            ),
            "rpcs_1w": wire[1]["rpcs"],
            "rpcs_4w": wire[WORKERS]["rpcs"],
            "wire_bytes_4w": (
                wire[WORKERS]["payload_bytes_sent"]
                + wire[WORKERS]["payload_bytes_received"]
            ),
            "routes_survive_worker_kill": survived,
            "ledger_reconciled_after_kill": ledger_ok,
            "failovers_after_kill": failovers,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _run_kill_scenario(shard_dir, workload, reference):
    """SIGKILL worker 1 mid-batch; routes must complete identically and
    the client/worker RPC ledgers must reconcile for survivors."""
    victim = 1
    with start_cluster(shard_dir, workers=WORKERS) as handle:
        with handle.router() as router:
            killed = []

            def chaos(index, result):
                if not killed and index >= len(workload) // 4:
                    handle.kill_worker(victim)
                    killed.append(victim)

            got = router.route_batch(
                list(workload), on_route_done=chaos, batch_size=8
            )
            _assert_identical(got, reference)
            stats = router.cluster_stats()
            ledger_ok = all(
                status is None
                or sum(status["requests"].values())
                == router.rpcs_by_worker.get(w, 0)
                for w, status in stats["per_worker"].items()
            )
            return (
                victim in router.dead_workers and len(got) == len(
                    reference
                ),
                ledger_ok,
                stats["failovers"],
            )


def _report_lines(out: dict) -> list:
    eff_note = (
        "gate: >= 0.5"
        if out["cores"] >= out["workers"]
        else f"serialized floor 0.2 — only {out['cores']} core(s)"
    )
    return [
        f"throughput n={out['n']} ({out['scheme']}, {out['pairs']} "
        f"routes, {out['hops']} hops): single-process "
        f"{out['single_hops_per_sec']:.0f} hops/s, 1-worker fleet "
        f"{out['cluster_1w_hops_per_sec']:.0f}, {out['workers']}-worker "
        f"fleet {out['cluster_4w_hops_per_sec']:.0f} "
        f"({out['rpcs_4w']} RPCs, {out['wire_bytes_4w']}B payload)",
        f"per-worker efficiency at {out['workers']} workers: "
        f"{out['per_worker_efficiency']:.2f} ({eff_note}); "
        f"vs single-process: {out['efficiency_vs_single']:.2f}",
        f"worker kill mid-batch: routes survived="
        f"{out['routes_survive_worker_kill']}, ledgers reconciled="
        f"{out['ledger_reconciled_after_kill']}, "
        f"{out['failovers_after_kill']} failovers",
    ]


def _assert_gates(out: dict) -> None:
    # determinism gates — these hold at any scale and any host
    assert out["routes_survive_worker_kill"] is True, out
    assert out["ledger_reconciled_after_kill"] is True, out
    assert out["failovers_after_kill"] >= 1, out
    # throughput gate — only meaningful when the fleet can actually
    # run in parallel; on smaller hosts the serialized floor applies
    if out["cores"] >= out["workers"]:
        assert out["per_worker_efficiency"] >= 0.5, out
    else:
        assert out["per_worker_efficiency"] >= 0.2, out


def test_cluster(benchmark, report, bench_scale):
    out = benchmark.pedantic(
        lambda: run_cluster(
            bench_scale(1000, 150), pairs=bench_scale(400, 40)
        ),
        rounds=1, iterations=1,
    )
    report.section(SECTION)
    for line in _report_lines(out):
        report.line(line)
    # the kill/ledger gates are structural and hold at smoke scale too;
    # the throughput gate and the JSON write are full-run only
    assert out["routes_survive_worker_kill"] is True, out
    assert out["ledger_reconciled_after_kill"] is True, out
    if not SMOKE:
        _assert_gates(out)
        merge_bench_results(RESULT_PATH, {"cluster": out})


def main() -> None:
    out = run_cluster(
        smoke_scale(1000, 150), pairs=smoke_scale(400, 40)
    )
    for line in _report_lines(out):
        print(line)
    if not SMOKE:
        _assert_gates(out)
        merge_bench_results(RESULT_PATH, {"cluster": out})
        print(f"merged into {os.path.normpath(RESULT_PATH)}")


if __name__ == "__main__":
    sys.exit(main())
