"""Preprocessing (construction) cost of the main schemes.

The paper only bounds table *sizes*; a practical release also reports the
centralized preprocessing cost.  This bench times construction of the two
headline schemes and the TZ baseline over an n-sweep, plus routing
throughput (routed messages per second through the fixed-port simulator).

It also measures the ``repro.api`` substrate-sharing claim: building all
five Table-1 schemes on one graph through the facade with a shared
:class:`~repro.api.SubstrateCache` versus five cold builds (each with its
own metric, ports and ball structures).  Full runs merge the result into
``BENCH_kernel.json`` under ``substrate_sharing``; smoke runs
(``REPRO_BENCH_SMOKE=1``) shrink the size and skip the write.  Runs under
pytest or standalone (``python benchmarks/bench_preprocessing.py``).
"""

import os
import time

import pytest

from repro.api import SubstrateCache, TABLE1_SCHEMES, build
from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.simulator import route
from repro.schemes import Stretch2Plus1Scheme, Stretch5PlusScheme

from conftest import SMOKE, merge_bench_results, smoke_scale

SECTION = "Preprocessing cost and routing throughput"

SIZES = [150, 300, 450]

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_kernel.json"
)


@pytest.fixture(scope="module")
def worlds():
    out = {}
    for i, n in enumerate(SIZES):
        g = erdos_renyi(n, 7.0 / (n - 1), seed=891 + i)
        gw = with_random_weights(g, seed=901 + i)
        out[n] = {
            "g": g,
            "gw": gw,
            "m": MetricView(g),
            "mw": MetricView(gw),
        }
    return out


@pytest.mark.parametrize("n", SIZES)
def test_build_thm10(benchmark, report, worlds, n):
    world = worlds[n]

    def build():
        return Stretch2Plus1Scheme(
            world["g"], eps=0.5, metric=world["m"], seed=91
        )

    benchmark.pedantic(build, rounds=1, iterations=1)
    report.section(SECTION)
    report.line(
        f"Thm 10 build n={n}: {benchmark.stats['mean']*1000:.0f} ms"
    )


@pytest.mark.parametrize("n", SIZES)
def test_build_thm11(benchmark, report, worlds, n):
    world = worlds[n]

    def build():
        return Stretch5PlusScheme(
            world["gw"], eps=0.6, metric=world["mw"], seed=91
        )

    benchmark.pedantic(build, rounds=1, iterations=1)
    report.section(SECTION)
    report.line(
        f"Thm 11 build n={n}: {benchmark.stats['mean']*1000:.0f} ms"
    )


@pytest.mark.parametrize("n", SIZES)
def test_build_tz3(benchmark, report, worlds, n):
    world = worlds[n]

    def build():
        return ThorupZwickScheme(
            world["gw"], k=3, metric=world["mw"], seed=91
        )

    benchmark.pedantic(build, rounds=1, iterations=1)
    report.section(SECTION)
    report.line(
        f"TZ k=3 build n={n}: {benchmark.stats['mean']*1000:.0f} ms"
    )


def run_substrate_sharing(n: int) -> dict:
    """Five Table-1 schemes: shared substrate vs five cold builds.

    Both legs produce bit-identical schemes (every shared artifact is a
    deterministic function of graph + seed), which the word-count check
    asserts; only the wall time differs.
    """
    g = erdos_renyi(n, 7.0 / (n - 1), seed=941)
    g.to_csr()  # warm the CSR mirror once so neither leg pays for it

    t0 = time.perf_counter()
    cold_words = {}
    cold_per_scheme = {}
    for name in TABLE1_SCHEMES:
        t1 = time.perf_counter()
        session = build(name, g, seed=94)  # fresh substrate per build
        cold_per_scheme[name] = round(time.perf_counter() - t1, 4)
        cold_words[name] = session.stats().total_table_words
    cold_s = time.perf_counter() - t0

    cache = SubstrateCache()
    t0 = time.perf_counter()
    shared_words = {}
    shared_per_scheme = {}
    stamps = set()
    for name in TABLE1_SCHEMES:
        t1 = time.perf_counter()
        session = build(name, g, cache=cache, seed=94)
        shared_per_scheme[name] = round(time.perf_counter() - t1, 4)
        shared_words[name] = session.stats().total_table_words
        stamps.add(session.scheme.metric.substrate_stamp)
        stamps.add(session.scheme.ports.substrate_stamp)
    shared_s = time.perf_counter() - t0

    assert len(stamps) == 1, (
        f"shared build used {len(stamps)} substrate generations: {stamps}"
    )
    assert shared_words == cold_words, (
        "substrate sharing changed the built tables"
    )
    return {
        "n": n,
        "m": g.m,
        "schemes": list(TABLE1_SCHEMES),
        "cold_s": round(cold_s, 4),
        "shared_s": round(shared_s, 4),
        "speedup": round(cold_s / shared_s, 2) if shared_s > 0 else None,
        "cold_per_scheme_s": cold_per_scheme,
        "shared_per_scheme_s": shared_per_scheme,
        "substrate_stats": cache.substrate(g).stats(),
    }


def _merge_result(out: dict) -> None:
    """Merge the scenario into BENCH_kernel.json (full runs only)."""
    merge_bench_results(RESULT_PATH, {"substrate_sharing": out})


def run_tree_memo(n: int) -> dict:
    """TreeRouting memoization: thm10's marginal builds on a warm handle.

    ROADMAP follow-up (a): ``TreeRouting`` instances were rebuilt per
    scheme.  ``Substrate.tree_routing`` memoizes them by (root, member
    set); three legs measure what that buys:

    * *cold* — thm10 on a fresh substrate (its own metric, balls, trees),
    * *after-thm11* — thm10 on a handle warmed by thm11, which shares
      the landmark sample, bunches and every *cluster* tree (the ~n
      small trees; thm10's 100-odd full-graph landmark trees and its
      Lemma 7 state remain scheme-specific),
    * *resweep* — a second thm10 build at a different ``eps`` on the
      same handle, the parameter-sweep pattern: every tree (cluster
      *and* global landmark/hub) hits, and so do the Lemma 6 coloring
      and the greedy hitting set (both eps-independent, memoized on the
      substrate since PR 5); only the eps-dependent Technique 1
      sequences and intersection tables are rebuilt.

    Identical tables between the cold and after-thm11 legs are asserted
    — memoization must never change what gets built.
    """
    g = erdos_renyi(n, 7.0 / (n - 1), seed=953)
    g.to_csr()

    t0 = time.perf_counter()
    cold = build("thm10", g, seed=95)
    cold_s = time.perf_counter() - t0

    cache = SubstrateCache()
    build("thm11", g, cache=cache, seed=95)  # warms balls/bunches/trees
    t0 = time.perf_counter()
    warm = build("thm10", g, cache=cache, seed=95)
    after_thm11_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    build("thm10", g, cache=cache, seed=95, eps=0.8)
    resweep_s = time.perf_counter() - t0

    cold_stats, warm_stats = cold.stats(), warm.stats()
    assert (
        cold_stats.total_table_words == warm_stats.total_table_words
        and cold_stats.table_breakdown_max == warm_stats.table_breakdown_max
    ), "tree memoization changed the built tables"
    sub_stats = cache.substrate(g).stats()
    tree_stats = sub_stats.get("trees", {})
    return {
        "n": n,
        "m": g.m,
        "thm10_cold_s": round(cold_s, 4),
        "thm10_after_thm11_s": round(after_thm11_s, 4),
        "thm10_resweep_s": round(resweep_s, 4),
        "resweep_speedup": (
            round(cold_s / resweep_s, 2) if resweep_s > 0 else None
        ),
        "tree_hits": tree_stats.get("hits", 0),
        "tree_misses": tree_stats.get("misses", 0),
        "tree_build_seconds": tree_stats.get("build_seconds", 0.0),
        "coloring_hits": sub_stats.get("coloring", {}).get("hits", 0),
        "hitting_hits": sub_stats.get("hitting", {}).get("hits", 0),
    }


def test_tree_memoization(benchmark, report, bench_scale):
    """Substrate-memoized TreeRouting: thm10 marginal build cost."""
    n = bench_scale(1000, 150)
    out = benchmark.pedantic(
        lambda: run_tree_memo(n), rounds=1, iterations=1
    )
    report.section(SECTION)
    report.line(
        f"tree memoization n={out['n']}: thm10 cold "
        f"{out['thm10_cold_s']:.2f} s -> after-thm11 "
        f"{out['thm10_after_thm11_s']:.2f} s -> eps-resweep "
        f"{out['thm10_resweep_s']:.2f} s ({out['resweep_speedup']}x; "
        f"{out['tree_hits']} tree hits / {out['tree_misses']} builds)"
    )
    # identical-tables gate runs at every scale inside run_tree_memo;
    # wall-clock only means something at full size
    if not SMOKE:
        assert out["thm10_resweep_s"] < out["thm10_cold_s"], out
        merge_bench_results(RESULT_PATH, {"tree_memo": out})


def test_substrate_sharing(benchmark, report, bench_scale):
    """repro.api facade: one substrate across the five Table-1 schemes."""
    n = bench_scale(1000, 150)
    out = benchmark.pedantic(
        lambda: run_substrate_sharing(n), rounds=1, iterations=1
    )
    report.section(SECTION)
    report.line(
        f"substrate sharing n={out['n']}: five cold builds "
        f"{out['cold_s']:.2f} s -> shared substrate {out['shared_s']:.2f} s "
        f"({out['speedup']}x, identical tables)"
    )
    # The determinism gates (identical tables, single substrate
    # generation) run on every scale inside run_substrate_sharing; the
    # wall-clock comparison is only meaningful at full size — at smoke
    # scale (n=150) the substrate costs milliseconds and jitter can
    # flip an ~8% margin.
    if not SMOKE:
        assert out["shared_s"] < out["cold_s"], out
        _merge_result(out)


def test_routing_throughput(benchmark, report, worlds):
    """Messages routed per second through the simulator (Theorem 11)."""
    world = worlds[SIZES[-1]]
    scheme = Stretch5PlusScheme(
        world["gw"], eps=0.6, metric=world["mw"], seed=92
    )
    pairs = sample_pairs(SIZES[-1], 300, seed=93)

    def run():
        for s, t in pairs:
            route(scheme, s, t)

    benchmark.pedantic(run, rounds=3, iterations=1)
    per_msg_us = benchmark.stats["mean"] / len(pairs) * 1e6
    report.section(SECTION)
    report.line(
        f"Thm 11 routing throughput (n={SIZES[-1]}): "
        f"{per_msg_us:.0f} us/message"
    )


# ----------------------------------------------------------------------
# standalone entry point (substrate-sharing scenario only)
# ----------------------------------------------------------------------
def main() -> None:
    n = smoke_scale(1000, 150)
    out = run_substrate_sharing(n)
    print(
        f"substrate sharing n={out['n']} m={out['m']}: cold "
        f"{out['cold_s']:.2f}s -> shared {out['shared_s']:.2f}s "
        f"=> {out['speedup']}x (identical tables)"
    )
    for name in out["schemes"]:
        print(
            f"  {name:<8} cold {out['cold_per_scheme_s'][name]:.2f}s -> "
            f"shared {out['shared_per_scheme_s'][name]:.2f}s"
        )
    memo = run_tree_memo(n)
    print(
        f"tree memoization n={memo['n']}: thm10 cold "
        f"{memo['thm10_cold_s']:.2f}s -> after-thm11 "
        f"{memo['thm10_after_thm11_s']:.2f}s -> eps-resweep "
        f"{memo['thm10_resweep_s']:.2f}s => {memo['resweep_speedup']}x "
        f"({memo['tree_hits']} tree hits / {memo['tree_misses']} builds)"
    )
    if not SMOKE:
        _merge_result(out)
        merge_bench_results(RESULT_PATH, {"tree_memo": memo})
        print(f"merged into {os.path.normpath(RESULT_PATH)}")


if __name__ == "__main__":
    main()
