"""Preprocessing (construction) cost of the main schemes.

The paper only bounds table *sizes*; a practical release also reports the
centralized preprocessing cost.  This bench times construction of the two
headline schemes and the TZ baseline over an n-sweep, plus routing
throughput (routed messages per second through the fixed-port simulator).
"""

import pytest

from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.simulator import route
from repro.schemes import Stretch2Plus1Scheme, Stretch5PlusScheme

SECTION = "Preprocessing cost and routing throughput"

SIZES = [150, 300, 450]


@pytest.fixture(scope="module")
def worlds():
    out = {}
    for i, n in enumerate(SIZES):
        g = erdos_renyi(n, 7.0 / (n - 1), seed=891 + i)
        gw = with_random_weights(g, seed=901 + i)
        out[n] = {
            "g": g,
            "gw": gw,
            "m": MetricView(g),
            "mw": MetricView(gw),
        }
    return out


@pytest.mark.parametrize("n", SIZES)
def test_build_thm10(benchmark, report, worlds, n):
    world = worlds[n]

    def build():
        return Stretch2Plus1Scheme(
            world["g"], eps=0.5, metric=world["m"], seed=91
        )

    benchmark.pedantic(build, rounds=1, iterations=1)
    report.section(SECTION)
    report.line(
        f"Thm 10 build n={n}: {benchmark.stats['mean']*1000:.0f} ms"
    )


@pytest.mark.parametrize("n", SIZES)
def test_build_thm11(benchmark, report, worlds, n):
    world = worlds[n]

    def build():
        return Stretch5PlusScheme(
            world["gw"], eps=0.6, metric=world["mw"], seed=91
        )

    benchmark.pedantic(build, rounds=1, iterations=1)
    report.section(SECTION)
    report.line(
        f"Thm 11 build n={n}: {benchmark.stats['mean']*1000:.0f} ms"
    )


@pytest.mark.parametrize("n", SIZES)
def test_build_tz3(benchmark, report, worlds, n):
    world = worlds[n]

    def build():
        return ThorupZwickScheme(
            world["gw"], k=3, metric=world["mw"], seed=91
        )

    benchmark.pedantic(build, rounds=1, iterations=1)
    report.section(SECTION)
    report.line(
        f"TZ k=3 build n={n}: {benchmark.stats['mean']*1000:.0f} ms"
    )


def test_routing_throughput(benchmark, report, worlds):
    """Messages routed per second through the simulator (Theorem 11)."""
    world = worlds[SIZES[-1]]
    scheme = Stretch5PlusScheme(
        world["gw"], eps=0.6, metric=world["mw"], seed=92
    )
    pairs = sample_pairs(SIZES[-1], 300, seed=93)

    def run():
        for s, t in pairs:
            route(scheme, s, t)

    benchmark.pedantic(run, rounds=3, iterations=1)
    per_msg_us = benchmark.stats["mean"] / len(pairs) * 1e6
    report.section(SECTION)
    report.line(
        f"Thm 11 routing throughput (n={SIZES[-1]}): "
        f"{per_msg_us:.0f} us/message"
    )
