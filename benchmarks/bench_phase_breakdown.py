"""Figure F (implicit): where routed messages spend their hops.

Each theorem's stretch proof decomposes a route into legs — ball routing
to a representative, a technique leg, a tree delivery.  The simulator tags
every hop with its header phase; this bench aggregates the tags over a
workload for Theorem 11 and the warm-up scheme.  Expected shape: hop mass
splits between the ball phase (local + to-representative) and the
technique/tree phases, with the technique leg carrying most of the
long-haul hops.
"""

import pytest

from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.simulator import route
from repro.schemes import Stretch5PlusScheme, Warmup3Scheme

N = 280
SECTION = "Fig F: hops per routing phase (weighted ER, n=280)"


@pytest.fixture(scope="module")
def world():
    g = with_random_weights(erdos_renyi(N, 0.024, seed=951), seed=952)
    return g, MetricView(g), sample_pairs(N, 400, seed=953)


@pytest.mark.parametrize(
    "factory,kwargs",
    [
        pytest.param(Warmup3Scheme, {"eps": 0.5}, id="warmup3"),
        pytest.param(Stretch5PlusScheme, {"eps": 0.6}, id="thm11"),
    ],
)
def test_phase_breakdown(benchmark, report, world, factory, kwargs):
    g, metric, pairs = world

    def run():
        scheme = factory(g, metric=metric, seed=27, **kwargs)
        totals: dict = {}
        hops = 0
        for s, t in pairs:
            result = route(scheme, s, t)
            hops += result.hops
            for phase, count in result.phase_hops.items():
                totals[phase] = totals.get(phase, 0) + count
        return scheme, totals, hops

    scheme, totals, hops = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sum(totals.values()) == hops
    report.section(SECTION)
    parts = "  ".join(
        f"{phase}={count} ({100.0 * count / max(hops, 1):.0f}%)"
        for phase, count in sorted(totals.items(), key=lambda kv: -kv[1])
    )
    report.line(f"{scheme.name:<26} total hops={hops}: {parts}")
    # Every observed phase must be one the scheme defines.
    known = {"ball", "torep", "t1", "t2", "atz", "ctree", "tox", "atree", "tree"}
    assert set(totals) <= known
