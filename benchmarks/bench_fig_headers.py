"""Figure E (implicit): true on-the-wire header bits.

The theorems bound *header bits*: ``Õ(1/eps)`` for Theorem 10,
``Õ((1/eps) log D)`` for Theorem 11, ``o(log^2 n)`` for tree-routing
labels.  The simulator's word counts approximate this; here every header
a message ever carries is serialized through the varint codec
(:mod:`repro.routing.header_codec`) and the maximum wire size is
reported, per scheme, next to the routed workload.  Expected shape:
tens of bytes, growing with 1/eps (waypoint count), never with n beyond
``log n`` id widths or with route length.
"""

import pytest

from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.routing.header_codec import encoded_bits
from repro.routing.model import Deliver, Forward
from repro.schemes import (
    Stretch2Plus1Scheme,
    Stretch5PlusScheme,
    Warmup3Scheme,
)

N = 260
SECTION = "Fig E: true header bits on the wire (varint codec)"


@pytest.fixture(scope="module")
def worlds():
    g = erdos_renyi(N, 0.025, seed=941)
    gw = with_random_weights(g, seed=942)
    return {
        "g": g,
        "gw": gw,
        "m": MetricView(g),
        "mw": MetricView(gw),
        "pairs": sample_pairs(N, 250, seed=943),
    }


def _max_header_bits(scheme, pairs):
    worst = 0
    for s, t in pairs:
        header = None
        cur = s
        dest = scheme.label_of(t)
        for _ in range(4000):
            action = scheme.step(cur, header, dest)
            if isinstance(action, Deliver):
                break
            assert isinstance(action, Forward)
            header = action.header
            worst = max(worst, encoded_bits(header))
            cur = scheme.ports.neighbor(cur, action.port)
        else:
            raise AssertionError("routing did not terminate")
    return worst


CASES = [
    pytest.param(
        Stretch2Plus1Scheme, {"eps": 0.5}, False,
        "Thm 10: Õ(1/eps)-bit headers", id="thm10",
    ),
    pytest.param(
        Stretch5PlusScheme, {"eps": 0.6}, True,
        "Thm 11: Õ((1/eps) logD)-bit headers", id="thm11",
    ),
    pytest.param(
        Warmup3Scheme, {"eps": 0.25}, True,
        "warm-up, eps=0.25 (bigger 1/eps)", id="warmup-eps4",
    ),
    pytest.param(
        ThorupZwickScheme, {"k": 3}, True,
        "TZ k=3: o(log^2 n)-bit headers", id="tz3",
    ),
]


@pytest.mark.parametrize("factory,kwargs,weighted,claim", CASES)
def test_header_bits(benchmark, report, worlds, factory, kwargs, weighted, claim):
    def run():
        g = worlds["gw"] if weighted else worlds["g"]
        metric = worlds["mw"] if weighted else worlds["m"]
        scheme = factory(g, metric=metric, seed=71, **kwargs)
        return _max_header_bits(scheme, worlds["pairs"])

    bits = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0 < bits < 4096  # sanity: headers are tens of bytes, not KBs
    report.section(SECTION)
    report.line(f"{claim:<42} max {bits} bits ({bits // 8} bytes)")
