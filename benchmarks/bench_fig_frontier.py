"""Figure A (implicit): the space/stretch frontier.

The paper's thesis is that its routing schemes almost match the distance
oracle frontier.  This bench places every implemented scheme and both
oracles on one graph and prints the measured frontier (max stretch vs
average per-vertex words), sorted by stretch.  Expected shape: stretch
decreases monotonically as table size grows, and each theorem sits near
its matching oracle row.
"""

import pytest

from repro.baselines.pr_oracle import PROracle
from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.baselines.tz_oracle import TZOracle
from repro.eval.harness import evaluate_oracle, evaluate_scheme
from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi
from repro.graph.metric import MetricView
from repro.schemes import (
    GeneralMinusScheme,
    GeneralPlusScheme,
    NameIndependent3Eps,
    Stretch2Plus1Scheme,
    Stretch5PlusScheme,
    Warmup3Scheme,
)

N = 300
SECTION = "Fig A: space/stretch frontier (unweighted ER, n=300)"


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(N, 0.022, seed=831)


@pytest.fixture(scope="module")
def metric(graph):
    return MetricView(graph)


@pytest.fixture(scope="module")
def pairs(graph):
    return sample_pairs(graph.n, 400, seed=832)


def test_frontier(benchmark, report, graph, metric, pairs):
    def build_all():
        rows = []
        scheme_cases = [
            (Stretch2Plus1Scheme, {"eps": 0.5}),
            (GeneralMinusScheme, {"ell": 2, "eps": 1.0, "alpha": 0.5}),
            (GeneralMinusScheme, {"ell": 3, "eps": 1.0, "alpha": 0.5}),
            (Warmup3Scheme, {"eps": 0.5}),
            (NameIndependent3Eps, {"eps": 0.5}),
            (GeneralPlusScheme, {"ell": 2, "eps": 1.0, "alpha": 0.5}),
            (Stretch5PlusScheme, {"eps": 0.6}),
            (ThorupZwickScheme, {"k": 2}),
            (ThorupZwickScheme, {"k": 3}),
        ]
        for factory, kwargs in scheme_cases:
            ev = evaluate_scheme(
                graph, factory, pairs, metric=metric, seed=41, **kwargs
            )
            assert ev.within_bound, ev.row()
            rows.append(
                (ev.stretch.max_stretch, ev.stats.avg_table_words,
                 ev.name, "routing")
            )
        for factory, kwargs in [
            (PROracle, {}),
            (TZOracle, {"k": 2}),
            (TZOracle, {"k": 3}),
        ]:
            ev = evaluate_oracle(
                graph, factory, pairs, metric=metric, seed=41, **kwargs
            )
            assert ev.within_bound
            rows.append(
                (ev.max_stretch, ev.total_words / graph.n, ev.name, "oracle")
            )
        return rows

    rows = benchmark.pedantic(build_all, rounds=1, iterations=1)
    report.section(SECTION)
    report.line(f"{'scheme':<30} {'kind':<8} {'max-stretch':<12} avg words/vertex")
    for stretch, words, name, kind in sorted(rows):
        report.line(f"{name:<30} {kind:<8} {stretch:<12.3f} {words:.0f}")

    # Frontier shape: the best-stretch routing scheme (Thm 10 class) uses
    # the most space among routing rows; the cheapest rows have the worst
    # guaranteed stretch.
    routing = [(s, w, n) for s, w, n, k in rows if k == "routing"]
    best_stretch = min(routing)
    assert best_stretch[2].startswith("Thm 10") or best_stretch[1] >= (
        sorted(w for _, w, _ in routing)[len(routing) // 2]
    )
