"""Parallel preprocessing benchmark: multiprocess all-balls scaling.

The tentpole claim of the shared-memory parallel tier
(:mod:`repro.graph.parallel`), measured:

* **Scaling curve** — weighted ``all_balls`` (the dominant
  preprocessing step) serial vs ``REPRO_PARALLEL`` workers at
  ``n = 2000 -> 10^5`` on ``random_sparse(n, 4n)`` graphs, with the
  parallel result asserted **bit-identical** to serial at every point
  (the tier's contract: wall-clock changes, bytes never do).
* **Gate** — at the largest size the parallel run is ``>= 1.7x`` faster
  with ``>= 2`` workers.  On hardware without ``>= 2`` cores real
  parallelism is physically impossible, so the gate auto-relaxes to a
  parity floor (the two workers timesharing one core must stay within
  3x of serial — the shm/IPC tax, not a speedup) and ``cores`` is
  recorded so readers can tell the two regimes apart.
* **10^6 smoke** — behind ``REPRO_BENCH_HUGE=1`` (tens of minutes of
  wall-clock and tens of GB of RAM): the ROADMAP's combined target end
  to end — the all-balls probe, then a **full Table-1 scheme build**
  (``thm11`` through :func:`repro.api.build`) and a packed shard write
  at ``n = 10^6``, under the resolved kernel (native preferred) and the
  parallel worker pool.  Phase times, table-space stats and shard bytes
  are recorded; no serial baseline (it would double a run this size)
  and hence no gate.

The ball size is ``ell = min(64, ceil(sqrt(n log2 n)))`` — the cap
keeps the spliced result arrays (``n * ell`` vertex ids) bounded so the
curve measures search work, not result pickling; the cap is recorded in
the JSON rather than silently applied.

Results land in ``BENCH_kernel.json`` under ``parallel`` (full runs
only; ``REPRO_BENCH_SMOKE=1`` shrinks sizes and skips the write).  Runs
under pytest (``pytest benchmarks/bench_parallel.py``) or standalone
(``python benchmarks/bench_parallel.py``).
"""

from __future__ import annotations

import math
import os
import time

import numpy as np

from repro.graph import parallel
from repro.graph.csr import csr_graph
from repro.graph.generators import random_sparse, with_random_weights

from conftest import SMOKE, merge_bench_results, smoke_scale

SECTION = "Parallel preprocessing: multiprocess all-balls scaling"

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_kernel.json"
)

HUGE = os.environ.get("REPRO_BENCH_HUGE", "").strip().lower() in (
    "1", "true", "yes", "on",
)

SIZES_FULL = [2000, 20000, 100_000]
SIZES_SMOKE = [300, 600]
ELL_CAP = 64


def _workers() -> int:
    """>= 2 always (the tier's contract is bit-identity, so racing two
    workers on one core is valid — just not faster), capped at 8."""
    cores = os.cpu_count() or 1
    return min(8, max(2, cores))


def _ell(n: int) -> int:
    return min(ELL_CAP, max(8, int(math.ceil(math.sqrt(n * math.log2(n))))))


def _set_parallel(value: str) -> None:
    os.environ["REPRO_PARALLEL"] = value
    parallel.reset_parallel_choice()


def _build_csr(n: int, seed: int = 97):
    g = with_random_weights(random_sparse(n, 4 * n, seed=seed), seed=seed + 1)
    return csr_graph(g)


def run_point(n: int, workers: int) -> dict:
    csr = _build_csr(n)
    ell = _ell(n)

    _set_parallel("off")
    t0 = time.perf_counter()
    sb, sv, sr = csr.all_balls(ell, tol=0.0, with_radii=True, as_arrays=True)
    serial_s = time.perf_counter() - t0

    _set_parallel(str(workers))
    t0 = time.perf_counter()
    pb, pv, pr = csr.all_balls(ell, tol=0.0, with_radii=True, as_arrays=True)
    parallel_s = time.perf_counter() - t0
    _set_parallel("off")

    assert np.array_equal(pb, sb), f"bounds diverge at n={n}"
    assert np.array_equal(pv, sv), f"ball vertices diverge at n={n}"
    assert np.array_equal(pr, sr), f"radii diverge at n={n}"
    return {
        "n": n,
        "m": csr.m,
        "ell": ell,
        "workers": workers,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": (
            round(serial_s / parallel_s, 2) if parallel_s > 0 else None
        ),
        "bit_identical": True,
    }


HUGE_SCHEME = "thm11"


def run_huge(workers: int, n: int = 1_000_000) -> dict:
    """Full Table-1 build + shard write at n = 10^6 (REPRO_BENCH_HUGE=1).

    The ROADMAP's combined target, end to end on one machine: the
    all-balls probe (the historical huge smoke, kept as a comparable
    phase timing), then a complete ``thm11`` scheme build through
    :func:`repro.api.build` and a packed shard write — all under the
    session's resolved kernel (native preferred) and ``workers``
    parallel workers.  Build-phase times, table-space stats and shard
    bytes are recorded; no serial baseline (it would double a run this
    size) and hence no gate.
    """
    import shutil
    import tempfile

    from repro.api import build
    from repro.graph import shortest_paths as sp

    g = with_random_weights(random_sparse(n, 4 * n, seed=97), seed=98)
    csr = csr_graph(g)
    ell = 16  # build-time probe, not the curve's workload
    _set_parallel(str(workers))
    t0 = time.perf_counter()
    bounds, verts, _ = csr.all_balls(ell, tol=0.0, as_arrays=True)
    probe_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    session = build(HUGE_SCHEME, g, seed=7)
    build_s = time.perf_counter() - t0

    workdir = tempfile.mkdtemp(prefix="repro-huge-bench-")
    try:
        shard_dir = os.path.join(workdir, "shards")
        t0 = time.perf_counter()
        session.save(shard_dir, shards=True, packed=True)
        shard_s = time.perf_counter() - t0
        shard_bytes = sum(
            os.path.getsize(os.path.join(root, f))
            for root, _, files in os.walk(shard_dir)
            for f in files
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    _set_parallel("off")

    stats = session.stats()
    return {
        "n": n,
        "m": csr.m,
        "scheme": HUGE_SCHEME,
        "workers": workers,
        "kernel": sp.kernel_mode(),
        "probe_ell": ell,
        "probe_s": round(probe_s, 2),
        "probe_ball_entries": int(verts.size),
        "build_s": round(build_s, 2),
        "substrate_s": round(session.substrate_seconds, 2),
        "shard_write_s": round(shard_s, 2),
        "shard_bytes": shard_bytes,
        "avg_table_words": round(stats.avg_table_words, 1),
        "max_table_words": stats.max_table_words,
        "note": (
            "full Table-1 build + packed shard write; parallel-only, "
            "no serial baseline, no gate"
        ),
    }


def run_curve(sizes) -> dict:
    workers = _workers()
    cores = os.cpu_count() or 1
    curve = []
    for n in sizes:
        curve.append(run_point(n, workers))
    out = {
        "cores": cores,
        "workers": workers,
        "gate": (
            ">= 1.7x at largest n"
            if cores >= 2
            else "parity floor (single core: parallel_s <= 3x serial_s)"
        ),
        "ell_cap": ELL_CAP,
        "curve": curve,
        "workload": (
            "random_sparse(n, 4n, seed=97) with uniform [1,10] weights; "
            "weighted all_balls(ell, tol=0, with_radii=True), "
            "delta engine; ell = min(64, ceil(sqrt(n log2 n)))"
        ),
    }
    if HUGE:
        out["huge"] = run_huge(workers)
    return out


def _assert_gate(out: dict) -> None:
    largest = out["curve"][-1]
    assert largest["bit_identical"], largest
    if out["cores"] >= 2:
        assert largest["speedup"] >= 1.7, largest
    else:
        # One core: no speedup is possible; bound the distribution tax.
        assert largest["parallel_s"] <= 3.0 * largest["serial_s"], largest


def _report_lines(out: dict) -> list:
    lines = [
        f"{out['workers']} workers on {out['cores']} core(s); "
        f"gate: {out['gate']}"
    ]
    for r in out["curve"]:
        lines.append(
            f"all_balls weighted n={r['n']} m={r['m']} ell={r['ell']}: "
            f"serial {r['serial_s']:.2f}s -> parallel "
            f"{r['parallel_s']:.2f}s ({r['speedup']}x, bit-identical)"
        )
    if "huge" in out:
        h = out["huge"]
        lines.append(
            f"huge {h['scheme']} n={h['n']} m={h['m']} "
            f"[kernel={h['kernel']}, {h['workers']} workers]: ball probe "
            f"{h['probe_s']:.1f}s, build {h['build_s']:.1f}s "
            f"(substrate {h['substrate_s']:.1f}s), shard write "
            f"{h['shard_write_s']:.1f}s ({h['shard_bytes']} bytes, "
            f"avg {h['avg_table_words']:.1f} table words)"
        )
    return lines


# ----------------------------------------------------------------------
# pytest / standalone entry points
# ----------------------------------------------------------------------
def test_parallel_scaling(report):
    out = run_curve(smoke_scale(SIZES_FULL, SIZES_SMOKE))
    report.section(SECTION)
    for line in _report_lines(out):
        report.line(line)
    # bit-identity holds at every scale (it is determinism, not speed);
    # the speedup gate and the JSON write are full-run only
    assert all(r["bit_identical"] for r in out["curve"]), out
    if not SMOKE:
        _assert_gate(out)
        merge_bench_results(RESULT_PATH, {"parallel": out})


def main() -> None:
    out = run_curve(smoke_scale(SIZES_FULL, SIZES_SMOKE))
    for line in _report_lines(out):
        print(line)
    if not SMOKE:
        _assert_gate(out)
        merge_bench_results(RESULT_PATH, {"parallel": out})
        print(f"merged into {os.path.normpath(RESULT_PATH)}")


if __name__ == "__main__":
    main()
