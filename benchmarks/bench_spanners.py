"""Spanner size/stretch tradeoff (the paper's Section 1 framing).

The paper motivates its routing tradeoffs by the spanner tradeoff:
``(2k-1)``-stretch with ``O(n^{1+1/k})`` edges, tight under the girth
conjecture.  This bench builds the greedy and Baswana–Sen spanners for
k = 1..3 and prints measured edge counts against the ``n^{1+1/k}``
reference.  Expected shape: sizes drop with k and sit near (well under,
for sparse inputs) the bound.
"""

import pytest

from repro.baselines.spanners import (
    baswana_sen_spanner,
    greedy_spanner,
    spanner_stretch_ok,
)
from repro.graph.generators import erdos_renyi, with_random_weights

N = 220
SECTION = "Spanners (Sec. 1 framing): size vs (2k-1) stretch"


@pytest.fixture(scope="module")
def graph():
    return with_random_weights(
        erdos_renyi(N, 0.12, seed=931), seed=932
    )


@pytest.mark.parametrize("k", [1, 2, 3])
def test_greedy_spanner(benchmark, report, graph, k):
    spanner = benchmark.pedantic(
        lambda: greedy_spanner(graph, k), rounds=1, iterations=1
    )
    assert spanner_stretch_ok(graph, spanner, 2 * k - 1)
    bound = N ** (1 + 1 / k)
    report.section(SECTION)
    report.line(
        f"greedy      k={k} stretch<={2*k-1}: {spanner.m} edges "
        f"(input {graph.m}; n^(1+1/k) = {bound:.0f})"
    )


@pytest.mark.parametrize("k", [2, 3])
def test_baswana_sen_spanner(benchmark, report, graph, k):
    spanner = benchmark.pedantic(
        lambda: baswana_sen_spanner(graph, k, seed=933),
        rounds=1, iterations=1,
    )
    assert spanner_stretch_ok(graph, spanner, 2 * k - 1)
    report.section(SECTION)
    report.line(
        f"baswana-sen k={k} stretch<={2*k-1}: {spanner.m} edges "
        f"(input {graph.m})"
    )


def test_size_ordering(benchmark, report, graph):
    def build():
        return [greedy_spanner(graph, k).m for k in (1, 2, 3)]

    sizes = benchmark.pedantic(build, rounds=1, iterations=1)
    assert sizes[0] >= sizes[1] >= sizes[2]
    report.section(SECTION)
    report.line(f"greedy size ladder k=1..3: {sizes}")
