"""Quickstart: build the paper's (5+eps)-stretch scheme and route messages.

Run:  python examples/quickstart.py
"""

from repro.eval.workloads import sample_pairs
from repro.graph.generators import random_geometric
from repro.graph.metric import MetricView
from repro.routing import measure_stretch, route
from repro.schemes import Stretch5PlusScheme


def main() -> None:
    # A weighted network: 300 sensors on the unit square, edges between
    # nearby pairs, Euclidean edge weights.
    graph = random_geometric(300, 0.1, seed=7)
    print(f"graph: {graph}")

    # Preprocessing (centralized): Theorem 11's (5+eps)-stretch scheme.
    scheme = Stretch5PlusScheme(graph, eps=0.5, seed=1)
    stats = scheme.stats()
    print(f"built {scheme.name}")
    print(
        f"  routing tables: avg {stats.avg_table_words:.0f} words/vertex, "
        f"max {stats.max_table_words} (n = {graph.n})"
    )
    print(f"  labels: at most {stats.max_label_words} words")

    # Route one message and show its path.
    result = route(scheme, 0, 250)
    metric = scheme.metric
    print(
        f"\nmessage 0 -> 250: {result.hops} hops, length "
        f"{result.length:.3f} vs optimal {metric.d(0, 250):.3f} "
        f"(stretch {result.length / metric.d(0, 250):.3f})"
    )
    print(f"  path: {' -> '.join(map(str, result.path[:12]))}"
          + (" ..." if len(result.path) > 12 else ""))

    # Stretch over a random workload, checked against the theorem's bound.
    pairs = sample_pairs(graph.n, 1000, seed=2)
    report = measure_stretch(scheme, metric, pairs)
    print(
        f"\n1000 random messages: max stretch {report.max_stretch:.3f}, "
        f"avg {report.avg_stretch:.3f} "
        f"(guarantee: {scheme.stretch_bound():.2f})"
    )
    assert report.max_stretch <= scheme.stretch_bound() + 1e-9


if __name__ == "__main__":
    main()
