"""Name-independent routing: reaching nodes nobody handed you a label for.

Labeled schemes assume the sender got the destination's preprocessing-
assigned label out of band.  In peer-to-peer/DHT settings that assumption
fails — a node only knows the *name* (id) it wants to reach.  The paper
notes its first technique yields a name-independent (3+eps) scheme with
``Õ(sqrt n)`` tables: the color of a name is a seeded hash every node can
evaluate locally, and all routing state for a name lives on its color
class.

This script builds that scheme on a random overlay and routes lookups by
raw id, comparing against the labeled warm-up scheme to show the (mild)
price of name independence.

Run:  python examples/name_independent_dht.py
"""

from repro.eval.workloads import sample_pairs
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.graph.metric import MetricView
from repro.routing import measure_stretch, words_of
from repro.schemes import NameIndependent3Eps, Warmup3Scheme


def main() -> None:
    overlay = with_random_weights(
        erdos_renyi(350, 0.02, seed=41), seed=42, low=1.0, high=5.0
    )
    metric = MetricView(overlay)
    print(f"P2P overlay: {overlay}")

    labeled = Warmup3Scheme(overlay, eps=0.5, metric=metric, seed=2)
    unlabeled = NameIndependent3Eps(overlay, eps=0.5, metric=metric, seed=2)

    pairs = sample_pairs(overlay.n, 1200, seed=3)
    for scheme in (labeled, unlabeled):
        report = measure_stretch(scheme, metric, pairs)
        assert report.max_stretch <= scheme.stretch_bound() + 1e-9
        label_words = max(
            words_of(scheme.label_of(v)) for v in overlay.vertices()
        )
        stats = scheme.stats()
        print(
            f"\n{scheme.name}:"
            f"\n  label the sender must know: {label_words} word(s)"
            f"\n  tables: avg {stats.avg_table_words:.0f} words/node"
            f"\n  stretch: max {report.max_stretch:.3f}, "
            f"avg {report.avg_stretch:.3f} "
            f"(guarantee {scheme.stretch_bound():.2f})"
        )

    print(
        "\nreading: the name-independent scheme routes lookups given only"
        "\nthe raw node id — the 'label' is literally one word — at the"
        "\nsame asymptotic table size and stretch guarantee."
    )


if __name__ == "__main__":
    main()
