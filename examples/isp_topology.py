"""Compact routing on an AS-like topology (weighted, heavy-tailed degrees).

Internet-like graphs are the classic motivation for compact routing:
routing tables at backbone routers grow with the network, and compact
schemes bound that growth at a small constant stretch.  This script builds
a preferential-attachment network with latency-like weights, then compares
the paper's Theorem 11 and Theorem 16 against the Thorup–Zwick ladder —
including the paper's headline: *stretch ~5 below the sqrt(n) table
barrier*.

Run:  python examples/isp_topology.py
"""

from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.eval.harness import evaluate_scheme
from repro.eval.reporting import table
from repro.eval.workloads import sample_pairs
from repro.graph.generators import preferential_attachment, with_random_weights
from repro.graph.metric import MetricView
from repro.schemes import Stretch4kMinus7Scheme, Stretch5PlusScheme


def main() -> None:
    # 400 routers, preferential attachment (hubs!), latency weights 1-20ms.
    topo = preferential_attachment(400, 2, seed=11)
    g = with_random_weights(topo, seed=12, low=1.0, high=20.0)
    metric = MetricView(g)
    hubs = sorted(g.vertices(), key=g.degree, reverse=True)[:3]
    print(f"AS-like topology: {g}")
    print(
        "top hubs:",
        ", ".join(f"router {h} (degree {g.degree(h)})" for h in hubs),
    )

    pairs = sample_pairs(g.n, 1000, seed=13)
    cases = [
        ("TZ k=2 (stretch 3, n^1/2 tables)", ThorupZwickScheme, {"k": 2}),
        ("Theorem 11 (5+eps, n^1/3 tables)", Stretch5PlusScheme, {"eps": 0.5}),
        ("TZ k=3 (stretch 7, n^1/3 tables)", ThorupZwickScheme, {"k": 3}),
        (
            "Theorem 16 k=4 (9+eps, n^1/4 tables)",
            Stretch4kMinus7Scheme,
            {"k": 4, "eps": 1.0},
        ),
        ("TZ k=4 (stretch 11, n^1/4 tables)", ThorupZwickScheme, {"k": 4}),
    ]
    rows = []
    evals = {}
    for name, factory, kwargs in cases:
        ev = evaluate_scheme(g, factory, pairs, metric=metric, seed=7, **kwargs)
        assert ev.within_bound, f"{name} exceeded its guarantee!"
        evals[name] = ev
        rows.append(
            [
                name,
                f"{ev.stretch.max_stretch:.3f}",
                f"{ev.stretch.avg_stretch:.3f}",
                f"{ev.stats.avg_table_words:.0f}",
                f"{ev.build_seconds:.2f}s",
            ]
        )
    print()
    print(
        table(
            ["scheme", "max stretch", "avg stretch", "avg words/router",
             "preprocess"],
            rows,
        )
    )

    t11 = evals["Theorem 11 (5+eps, n^1/3 tables)"]
    tz2 = evals["TZ k=2 (stretch 3, n^1/2 tables)"]
    tz3 = evals["TZ k=3 (stretch 7, n^1/3 tables)"]
    print(
        f"\npaper's headline on this topology: Theorem 11 stores "
        f"{t11.stats.avg_table_words:.0f} words/router "
        f"({t11.stats.avg_table_words / tz2.stats.avg_table_words:.0%} of the "
        f"3-stretch TZ tables) while guaranteeing stretch "
        f"{t11.bound[0]:.1f} instead of TZ k=3's 7 "
        f"(measured: {t11.stretch.max_stretch:.2f} vs "
        f"{tz3.stretch.max_stretch:.2f})."
    )


if __name__ == "__main__":
    main()
