"""Regenerate the paper's Table 1 on a graph of your choice.

Usage:
    python examples/compare_schemes.py [--n 300] [--family er|grid|ba|geo]
                                       [--seed 0] [--pairs 600]

Builds every implemented scheme (both Table 1 blocks) on one topology and
prints measured stretch and table sizes next to the paper's asymptotic
claims.
"""

import argparse

from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.eval.harness import evaluate_scheme
from repro.eval.reporting import PAPER_TABLE1_REFERENCE, reference_row, table
from repro.eval.workloads import sample_pairs
from repro.graph.generators import (
    erdos_renyi,
    grid,
    preferential_attachment,
    random_geometric,
    with_random_weights,
)
from repro.graph.metric import MetricView
from repro.schemes import (
    GeneralMinusScheme,
    GeneralPlusScheme,
    Stretch2Plus1Scheme,
    Stretch4kMinus7Scheme,
    Stretch5PlusScheme,
)


def build_graphs(family: str, n: int, seed: int):
    if family == "er":
        g = erdos_renyi(n, 7.0 / (n - 1), seed=seed)
    elif family == "grid":
        side = max(2, int(round(n ** 0.5)))
        g = grid(side, side)
    elif family == "ba":
        g = preferential_attachment(n, 2, seed=seed)
    elif family == "geo":
        g = random_geometric(n, 1.3 * (1.0 / n) ** 0.5 * 2, seed=seed)
    else:
        raise SystemExit(f"unknown family {family!r}")
    gw = (
        g
        if family == "geo"  # geometric graphs are already weighted
        else with_random_weights(g, seed=seed + 1, low=1.0, high=8.0)
    )
    unweighted = g if g.is_unweighted() else None
    return unweighted, gw


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=300)
    parser.add_argument(
        "--family", choices=["er", "grid", "ba", "geo"], default="er"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pairs", type=int, default=600)
    args = parser.parse_args()

    g_unweighted, g_weighted = build_graphs(args.family, args.n, args.seed)

    print("paper reference (Table 1):")
    for entry in PAPER_TABLE1_REFERENCE:
        print(reference_row(entry))
    print()

    rows = []
    if g_unweighted is not None:
        metric = MetricView(g_unweighted)
        pairs = sample_pairs(g_unweighted.n, args.pairs, seed=args.seed + 2)
        for factory, kwargs in [
            (Stretch2Plus1Scheme, {"eps": 0.5}),
            (GeneralMinusScheme, {"ell": 3, "eps": 1.0, "alpha": 0.5}),
            (GeneralPlusScheme, {"ell": 2, "eps": 1.0, "alpha": 0.5}),
        ]:
            ev = evaluate_scheme(
                g_unweighted, factory, pairs, metric=metric,
                seed=args.seed, **kwargs
            )
            status = "ok" if ev.within_bound else "VIOLATION"
            rows.append(
                [ev.name, "unweighted", f"{ev.stretch.max_stretch:.3f}",
                 f"{ev.stretch.avg_stretch:.3f}",
                 f"{ev.stats.avg_table_words:.0f}", status]
            )

    metric_w = MetricView(g_weighted)
    pairs_w = sample_pairs(g_weighted.n, args.pairs, seed=args.seed + 3)
    for factory, kwargs in [
        (ThorupZwickScheme, {"k": 2}),
        (ThorupZwickScheme, {"k": 3}),
        (Stretch5PlusScheme, {"eps": 0.6}),
        (Stretch4kMinus7Scheme, {"k": 4, "eps": 1.0}),
    ]:
        ev = evaluate_scheme(
            g_weighted, factory, pairs_w, metric=metric_w,
            seed=args.seed, **kwargs
        )
        status = "ok" if ev.within_bound else "VIOLATION"
        rows.append(
            [ev.name, "weighted", f"{ev.stretch.max_stretch:.3f}",
             f"{ev.stretch.avg_stretch:.3f}",
             f"{ev.stats.avg_table_words:.0f}", status]
        )

    print(f"measured on family={args.family}, n={args.n}:")
    print(
        table(
            ["scheme", "graph", "max stretch", "avg stretch",
             "avg words/vertex", "bound"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
