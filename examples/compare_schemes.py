"""Regenerate the paper's Table 1 on a graph of your choice.

Usage:
    python examples/compare_schemes.py [--n 300] [--family er|grid|ba|geo]
                                       [--seed 0] [--pairs 600]

Builds every implemented scheme (both Table 1 blocks) on one topology and
prints measured stretch and table sizes next to the paper's asymptotic
claims.  Scheme names resolve through the ``repro.api`` registry and each
block shares one substrate (exact metric, port numbering, ball
structures) across its schemes — the per-scheme build times printed at
the bottom are marginal costs on the warm substrate.
"""

import argparse

from repro.api import SubstrateCache, get_spec
from repro.eval.harness import evaluate_scheme
from repro.eval.reporting import PAPER_TABLE1_REFERENCE, reference_row, table
from repro.eval.workloads import sample_pairs
from repro.graph.generators import (
    erdos_renyi,
    grid,
    preferential_attachment,
    random_geometric,
    with_random_weights,
)

#: Table 1 blocks by registered scheme name
UNWEIGHTED_BLOCK = ["thm10", "thm13", "thm15"]
WEIGHTED_BLOCK = ["tz2", "tz3", "thm11", "thm16"]


def build_graphs(family: str, n: int, seed: int):
    if family == "er":
        g = erdos_renyi(n, 7.0 / (n - 1), seed=seed)
    elif family == "grid":
        side = max(2, int(round(n ** 0.5)))
        g = grid(side, side)
    elif family == "ba":
        g = preferential_attachment(n, 2, seed=seed)
    elif family == "geo":
        g = random_geometric(n, 1.3 * (1.0 / n) ** 0.5 * 2, seed=seed)
    else:
        raise SystemExit(f"unknown family {family!r}")
    gw = (
        g
        if family == "geo"  # geometric graphs are already weighted
        else with_random_weights(g, seed=seed + 1, low=1.0, high=8.0)
    )
    unweighted = g if g.is_unweighted() else None
    return unweighted, gw


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=300)
    parser.add_argument(
        "--family", choices=["er", "grid", "ba", "geo"], default="er"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pairs", type=int, default=600)
    args = parser.parse_args()

    g_unweighted, g_weighted = build_graphs(args.family, args.n, args.seed)

    print("paper reference (Table 1):")
    for entry in PAPER_TABLE1_REFERENCE:
        print(reference_row(entry))
    print()

    cache = SubstrateCache()
    rows = []
    timings = []

    def run_block(g, names, kind):
        substrate = cache.substrate(g)
        pairs = sample_pairs(
            g.n, args.pairs,
            seed=args.seed + (2 if kind == "unweighted" else 3),
        )
        for name in names:
            ev = evaluate_scheme(
                g, name, pairs, substrate=substrate, seed=args.seed
            )
            status = "ok" if ev.within_bound else "VIOLATION"
            rows.append(
                [ev.name, kind, f"{ev.stretch.max_stretch:.3f}",
                 f"{ev.stretch.avg_stretch:.3f}",
                 f"{ev.stats.avg_table_words:.0f}", status]
            )
            timings.append(
                f"{get_spec(name).name}: substrate "
                f"{ev.substrate_seconds:.2f}s + scheme "
                f"{ev.build_seconds:.2f}s"
            )

    if g_unweighted is not None:
        run_block(g_unweighted, UNWEIGHTED_BLOCK, "unweighted")
    run_block(g_weighted, WEIGHTED_BLOCK, "weighted")

    print(f"measured on family={args.family}, n={args.n}:")
    print(
        table(
            ["scheme", "graph", "max stretch", "avg stretch",
             "avg words/vertex", "bound"],
            rows,
        )
    )
    print("\nbuild times (substrate is shared per block):")
    for line in timings:
        print("  " + line)


if __name__ == "__main__":
    main()
