"""Memory-constrained sensor grid: how small can routing tables be?

Scenario: a 20x20 grid of sensors with a few random long-range links
(radio shortcuts).  Each sensor has a few KB of table memory, so the
question is the paper's: how much stretch buys how much table space?

The script builds four schemes on the same network, routes the same
traffic through each, and prints a table-words-per-node vs stretch
comparison — the practical rendering of the paper's Table 1.

Run:  python examples/sensor_grid.py
"""

from repro.baselines.thorup_zwick import ThorupZwickScheme
from repro.eval.harness import evaluate_scheme
from repro.eval.reporting import table
from repro.eval.workloads import sample_pairs
from repro.graph.generators import grid
from repro.graph.metric import MetricView
from repro.schemes import (
    Stretch2Plus1Scheme,
    Stretch5PlusScheme,
    Warmup3Scheme,
)

import random


def build_network(rows: int = 20, cols: int = 20, shortcuts: int = 30):
    g = grid(rows, cols)
    rng = random.Random(99)
    added = 0
    while added < shortcuts:
        u, v = rng.randrange(g.n), rng.randrange(g.n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
            added += 1
    return g


def main() -> None:
    g = build_network()
    metric = MetricView(g)
    pairs = sample_pairs(g.n, 800, seed=5)
    print(f"sensor network: {g} (grid + 30 radio shortcuts)")
    print("routing 800 random messages through each scheme...\n")

    cases = [
        ("Theorem 10 (2+eps,1)", Stretch2Plus1Scheme, {"eps": 0.5}),
        ("warm-up 3+eps", Warmup3Scheme, {"eps": 0.5}),
        ("Theorem 11 (5+eps)", Stretch5PlusScheme, {"eps": 0.5}),
        ("Thorup-Zwick k=3 (stretch 7)", ThorupZwickScheme, {"k": 3}),
    ]
    rows = []
    for name, factory, kwargs in cases:
        ev = evaluate_scheme(
            g, factory, pairs, metric=metric, seed=3, **kwargs
        )
        assert ev.within_bound, f"{name} exceeded its guarantee!"
        rows.append(
            [
                name,
                f"{ev.bound[0]:.2f}"
                + (f"+{ev.bound[1]:.0f}" if ev.bound[1] else ""),
                f"{ev.stretch.max_stretch:.3f}",
                f"{ev.stretch.avg_stretch:.3f}",
                f"{ev.stats.avg_table_words:.0f}",
                f"{ev.stats.max_table_words}",
            ]
        )
    print(
        table(
            [
                "scheme",
                "guarantee",
                "max stretch",
                "avg stretch",
                "avg words/node",
                "max words/node",
            ],
            rows,
        )
    )
    print(
        "\nreading: a node with ~4KB of table memory (≈500 words) can run"
        "\nTheorem 11 but not Theorem 10 — and pays a factor ~2 in"
        "\nworst-case detour for it. That tradeoff is the paper's subject."
    )


if __name__ == "__main__":
    main()
