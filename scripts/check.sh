#!/usr/bin/env bash
# The standard gate: ruff -> mypy (strict allowlist) -> invariant linter
# -> tier-1 pytest.  Every leg runs even when an earlier one fails, so
# one invocation reports everything; the exit status is non-zero if any
# leg failed.  ruff/mypy are optional dev dependencies (`pip install
# -e .[dev]`) — when absent the leg is reported as skipped, and the
# always-available legs (the repro.analysis linter + pytest) still gate.
set -uo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

fail=0

# -- ruff: style, import order, blanket excepts ------------------------
if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests || fail=1
elif python -c "import ruff" >/dev/null 2>&1; then
    echo "== ruff (module) =="
    python -m ruff check src tests || fail=1
else
    echo "== ruff: skipped (not installed; pip install -e .[dev]) =="
fi

# -- mypy: strict over the serving/kernel core allowlist ---------------
# (the per-module strictness lives in pyproject.toml [tool.mypy])
if python -c "import mypy" >/dev/null 2>&1; then
    echo "== mypy (strict allowlist) =="
    python -m mypy \
        src/repro/routing/shard_codec.py \
        src/repro/routing/serving.py \
        src/repro/routing/faults.py \
        src/repro/graph/csr.py \
        src/repro/api/registry.py || fail=1
else
    echo "== mypy: skipped (not installed; pip install -e .[dev]) =="
fi

# -- the invariant linter (always available: stdlib only) --------------
echo "== repro.analysis =="
python -m repro.analysis src/repro || fail=1

# -- tier-1 tests ------------------------------------------------------
echo "== pytest =="
python -m pytest -x -q || fail=1

# -- cluster smoke: fleet vs single-process, kill-a-worker -------------
echo "== bench_cluster (smoke) =="
REPRO_BENCH_SMOKE=1 python benchmarks/bench_cluster.py || fail=1

# -- parallel smoke: pool on, bit-identity asserted at every point -----
echo "== bench_parallel (smoke, REPRO_PARALLEL=2) =="
REPRO_PARALLEL=2 REPRO_BENCH_SMOKE=1 python benchmarks/bench_parallel.py \
    || fail=1

# -- native gate: C tier forced on, bit-identity asserted ---------------
# bench_native self-skips with a named reason when no C compiler is
# present, so this leg is a no-op on compiler-less hosts.
echo "== bench_native (smoke, REPRO_KERNEL=native) =="
REPRO_KERNEL=native REPRO_BENCH_SMOKE=1 python benchmarks/bench_native.py \
    || fail=1

exit "$fail"
