"""Setup shim for environments without the `wheel` package (legacy editable installs)."""
from setuptools import find_packages, setup

setup(
    name="repro-routing",
    description="Reproduction of compact routing schemes (Roditty-Tov, PODC'15)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    extras_require={
        # the static gate (scripts/check.sh) degrades gracefully when
        # these are absent — install them to run the full recipe
        "dev": [
            "mypy>=1.8",
            "ruff>=0.4",
            "pytest>=7",
        ],
    },
)
