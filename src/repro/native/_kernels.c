/* Native kernels for the two measured hot loops of the reproduction:
 *
 *  1. repro_delta_batch — the bucketed delta-stepping engine of
 *     CSRGraph._delta_batch over the flattened (source, vertex) space.
 *     One call runs the whole batch: the bucket queue, the apply/relax
 *     fixpoint per open bucket, the scatter-min into the flattened
 *     float64 tentative buffer, sealing, per-source ball-fill / bounded
 *     finish bookkeeping, and the per-source cap shrinking.  Python
 *     keeps setup (cap/start computation) and output assembly; the
 *     contract is the least float64 fixpoint with per-bucket settled
 *     sets identical to the numpy wave engine (see the membership
 *     argument in csr._delta_batch).
 *
 *  2. repro_scan_table — a validating scanner for the v1 NodeTable
 *     shard payload (magic "RT"): header, owner/degree/neighbour
 *     uvarints, little-endian doubles, and the tagged value tree
 *     flattened into a preorder (tag, aux) token stream the Python side
 *     assembles into the NodeTable.  Any structural anomaly (or an int
 *     outside int64) returns nonzero and the caller re-runs the pure
 *     Python decoder, which raises the canonical ShardCodecError — the
 *     scanner never guesses at malformed input.
 *
 * Plain C99 + stdlib only: compiled on demand by repro.native with the
 * system compiler into a content-hash-named shared library and loaded
 * via ctypes with zero-copy pointers into the existing numpy arrays.
 *
 * Wire constants below mirror repro/routing/shard_codec.py and are
 * cross-checked against repro/analysis/layouts.py by CODEC001.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define DS_INF ((double)INFINITY)

/* ------------------------------------------------------------------ */
/* shard codec layout (must match repro/routing/shard_codec.py)        */
/* ------------------------------------------------------------------ */
#define RT_MAGIC_0 0x52            /* 'R' */
#define RT_MAGIC_1 0x54            /* 'T' */
#define RT_CODEC_VERSION 1
#define RT_FLAG_UNIT_WEIGHTS 0x01

#define RT_T_NONE 0x00
#define RT_T_FALSE 0x01
#define RT_T_TRUE 0x02
#define RT_T_INT 0x03
#define RT_T_FLOAT 0x04
#define RT_T_STR 0x05
#define RT_T_TUPLE 0x06
#define RT_T_LIST 0x07
#define RT_T_DICT 0x08
/* pseudo-tag in the token stream for the untagged category/entry
 * counts of the record body (never appears in shard bytes) */
#define RT_T_COUNT 0xF1

/* scanner outcome: 0 = ok, anything else = re-run the pure decoder */
#define SCAN_OK 0
#define SCAN_FALLBACK 1

#define MAX_VALUE_DEPTH 200
/* string offsets/lengths share one int64 aux: offset | (length << 40) */
#define STR_OFFSET_BITS 40

/* ------------------------------------------------------------------ */
/* kernel 1: delta-stepping bucket relaxation                          */
/* ------------------------------------------------------------------ */

/* One flattened (source, vertex) slot of the engine's scratch: the
 * tentative distance, the value the vertex last expanded at, and a
 * generation stamp making both lazily resettable — stamp < 2*gen means
 * "untouched this batch" (dist reads as +inf), 2*gen means "written,
 * not yet expanded", 2*gen + 1 means "expanded at .exp".  One struct =
 * one cache line touch where three parallel arrays would take three.
 * The caller allocates this as a zeroed 3 * nb * n int64 numpy array
 * (gen starts at 1, so zeros are never valid) and only ever hands the
 * pointer back — Python never reads it. */
typedef struct {
    double dist;
    double exp;
    int64_t stamp;
} vtx_t;

/* Candidate queue chunk: flattened target, source row (carried so the
 * hot loop never divides by n), tentative distance. */
typedef struct {
    int32_t *t;
    int32_t *s;
    double *d;
    int64_t len;
    int64_t cap;
} tsd_buf;

static int tsd_push(tsd_buf *b, int32_t t, int32_t s, double d)
{
    if (b->len == b->cap) {
        int64_t cap = b->cap ? b->cap * 2 : 256;
        int32_t *nt = (int32_t *)realloc(b->t, (size_t)cap * sizeof(int32_t));
        if (nt == NULL)
            return -1;
        b->t = nt;
        int32_t *ns = (int32_t *)realloc(b->s, (size_t)cap * sizeof(int32_t));
        if (ns == NULL)
            return -1;
        b->s = ns;
        double *nd = (double *)realloc(b->d, (size_t)cap * sizeof(double));
        if (nd == NULL)
            return -1;
        b->d = nd;
        b->cap = cap;
    }
    b->t[b->len] = t;
    b->s[b->len] = s;
    b->d[b->len] = d;
    b->len++;
    return 0;
}

/* Settled output: flattened id + final distance, chunked per bucket. */
typedef struct {
    int32_t *t;
    double *d;
    int64_t len;
    int64_t cap;
} out_buf;

static int out_push(out_buf *b, int32_t t)
{
    if (b->len == b->cap) {
        int64_t cap = b->cap ? b->cap * 2 : 256;
        int32_t *nt = (int32_t *)realloc(b->t, (size_t)cap * sizeof(int32_t));
        if (nt == NULL)
            return -1;
        b->t = nt;
        double *nd = (double *)realloc(b->d, (size_t)cap * sizeof(double));
        if (nd == NULL)
            return -1;
        b->d = nd;
        b->cap = cap;
    }
    b->t[b->len++] = t;
    return 0;
}

/* Seal-sort element: (final distance, flattened id), the engine's
 * canonical per-chunk order — identical to the numpy engine's
 * _argsort_with_id_ties over np.unique'd chunks. */
typedef struct {
    double d;
    int32_t t;
} pair_dt;

static inline int dt_less(pair_dt a, pair_dt b)
{
    if (a.d != b.d)
        return a.d < b.d;
    return a.t < b.t;
}

/* Ascending (d, id) sort of a seal chunk.  Keys are distinct (ids are
 * unique within a chunk), so every comparison sort produces the same —
 * the numpy engine's exact — order; this quicksort + insertion-sort
 * hybrid exists because libc qsort's indirect comparator call per
 * compare dominates the seal phase at large ell. */
static void sort_dt(pair_dt *a, int64_t lo, int64_t hi)
{
    pair_dt tmp;
    int64_t i, j;
    while (hi - lo > 16) {
        int64_t mid = lo + ((hi - lo) >> 1);
        /* median-of-three pivot: a[lo] <= a[mid] <= a[hi-1] afterwards,
         * so the Hoare scans below cannot run off either end. */
        if (dt_less(a[mid], a[lo])) {
            tmp = a[lo]; a[lo] = a[mid]; a[mid] = tmp;
        }
        if (dt_less(a[hi - 1], a[mid])) {
            tmp = a[mid]; a[mid] = a[hi - 1]; a[hi - 1] = tmp;
            if (dt_less(a[mid], a[lo])) {
                tmp = a[lo]; a[lo] = a[mid]; a[mid] = tmp;
            }
        }
        pair_dt pivot = a[mid];
        i = lo;
        j = hi - 1;
        for (;;) {
            while (dt_less(a[i], pivot))
                i++;
            while (dt_less(pivot, a[j]))
                j--;
            if (i >= j)
                break;
            tmp = a[i]; a[i] = a[j]; a[j] = tmp;
            i++;
            j--;
        }
        /* Recurse into the smaller half, loop on the larger: stack
         * depth stays O(log chunk). */
        if (j + 1 - lo < hi - (j + 1)) {
            sort_dt(a, lo, j + 1);
            lo = j + 1;
        } else {
            sort_dt(a, j + 1, hi);
            hi = j + 1;
        }
    }
    for (i = lo + 1; i < hi; i++) {
        pair_dt key = a[i];
        for (j = i - 1; j >= lo && dt_less(key, a[j]); j--)
            a[j + 1] = a[j];
        a[j + 1] = key;
    }
}

void repro_release(void *p)
{
    free(p);
}

/* Run one whole delta-stepping batch to completion.
 *
 * Inputs mirror the numpy engine exactly: int32 CSR mirrors, nb
 * flattened start ids, the per-source cap array (mutated in place,
 * like the numpy engine), `lim` for bounded mode (NULL in ball mode,
 * where ell >= 0), and the caller-owned zeroed vtx scratch of nb*n
 * entries (gen starts at 1, so a zero stamp is never current).
 *
 * The bucket queue is a ring of `ring` slots of (t, s, d) candidate
 * chunks: a candidate generated in bucket b has nd < (b+1)*delta +
 * wmax, so its key lands within wmax/delta (+ rounding slop) buckets
 * ahead — the caller sizes the ring from the max edge weight.  Keys
 * replicate the numpy engine's corrective-compare computation bit for
 * bit (trunc(nd/delta) pinned to k*delta <= nd); a key at or below the
 * open bucket — possible only through float rounding — requeues one
 * bucket ahead, exactly like the numpy engine's clip + spill-forward
 * path.  Candidates carry their source row so the hot loop never
 * divides by n.
 *
 * Per open bucket: apply + relax to the fixpoint (a candidate is live
 * iff d is still its target's best tentative value and inside its
 * source cap; the stamped per-vertex expansion record replaces the
 * numpy wave dedupe — re-expansion happens exactly when a strictly
 * better in-bucket value arrives), then seal: the chunk of
 * first-settled ids gets its final distances read out of vtx and, in
 * ball mode, is sorted by (dist, id) — the numpy engine's exact
 * per-chunk assembly order (np.unique + stable distance sort).
 * Bounded chunks stay in settle order; the caller's global id argsort
 * matches numpy's sorted-chunk concat because flattened ids are
 * distinct.  Then the per-source fill/finish bookkeeping: ball mode
 * (ell >= 0) marks a source filled at >= ell settled and shrinks its
 * cap to fill_t + tol, both modes kill finished sources via cap = -inf
 * (ell < 0 selects bounded mode via lim).
 *
 * Outputs (malloc'd; caller copies and frees via repro_release):
 *   settled    — per-bucket settled flattened ids, concatenated
 *   settled_d  — matching final distances
 *
 * Returns 0 on success, -1 on allocation failure, -2 on a ring
 * overflow (cannot happen for a correctly sized ring); on failure the
 * outputs are unset and the vtx scratch is garbage for this gen — the
 * caller must raise, not fall back.
 */
int repro_delta_batch(
    const int32_t *indptr,
    const int32_t *indices,
    const double *weights,
    int64_t n,
    int64_t nb,
    const int32_t *start,
    void *vtx_mem,
    double *cap,
    const double *lim,
    double delta,
    int64_t ring,
    int64_t ell,
    double tol,
    int64_t gen,
    int32_t **settled_out,
    double **settled_d_out,
    int64_t *settled_n)
{
    int rc = -1;
    double inv_delta = 1.0 / delta;
    vtx_t *vtx = (vtx_t *)vtx_mem;
    int64_t gen2 = 2 * gen;
    tsd_buf *buckets = NULL;
    tsd_buf work = {NULL, NULL, NULL, 0, 0};
    out_buf settled = {NULL, NULL, 0, 0};
    pair_dt *pairs = NULL;
    int64_t pairs_cap = 0;
    int64_t *counts = NULL;
    double *fill_t = NULL;
    uint8_t *done = NULL;
    int64_t i, s;

    *settled_out = NULL;
    *settled_d_out = NULL;
    *settled_n = 0;

    buckets = (tsd_buf *)calloc((size_t)ring, sizeof(tsd_buf));
    counts = (int64_t *)calloc((size_t)nb, sizeof(int64_t));
    fill_t = (double *)malloc((size_t)nb * sizeof(double));
    done = (uint8_t *)calloc((size_t)nb, 1);
    if (buckets == NULL || counts == NULL || fill_t == NULL || done == NULL)
        goto out;
    for (s = 0; s < nb; s++)
        fill_t[s] = DS_INF;
    for (i = 0; i < nb; i++) {
        int32_t t = start[i];
        vtx[t].dist = 0.0;
        vtx[t].stamp = gen2;
        if (tsd_push(&buckets[0], t, (int32_t)i, 0.0) != 0)
            goto out;
    }

    int64_t open_total = nb;
    int64_t b = 0;
    while (open_total > 0) {
        tsd_buf *open = &buckets[b % ring];
        if (open->len == 0) {
            b++;
            continue;
        }
        double t_high = (double)(b + 1) * delta;
        int64_t chunk_start = settled.len;
        int64_t next = 0;
        work.len = 0;
        for (;;) {
            int32_t t, src;
            double d;
            if (work.len > 0) {
                work.len--;
                t = work.t[work.len];
                src = work.s[work.len];
                d = work.d[work.len];
            } else if (next < open->len) {
                t = open->t[next];
                src = open->s[next];
                d = open->d[next];
                next++;
            } else {
                break;
            }
            vtx_t *vt = &vtx[t];
            /* A queued candidate's own scatter stamped its slot, so
             * stamp >= gen2 always holds here; keep the inf fallback
             * anyway so a stale stamp reads as "no better value". */
            if (vt->stamp >= gen2 && d > vt->dist)
                continue;
            double cap_s = cap[src];
            if (d >= cap_s)
                continue;
            if (vt->stamp == gen2 + 1) {
                if (vt->exp <= d)
                    continue;
            } else {
                vt->stamp = gen2 + 1;
                if (out_push(&settled, t) != 0)
                    goto out;
            }
            vt->exp = d;
            int32_t base = (int32_t)(src * (int32_t)n);
            int32_t v = t - base;
            int32_t e_hi = indptr[v + 1];
            for (int32_t e = indptr[v]; e < e_hi; e++) {
                double nd = d + weights[e];
                if (nd >= cap_s)
                    continue;
                int32_t tgt = base + indices[e];
                vtx_t *vg = &vtx[tgt];
                double cur = (vg->stamp >= gen2) ? vg->dist : DS_INF;
                if (nd < cur) {
                    vg->dist = nd;
                    if (vg->stamp < gen2)
                        vg->stamp = gen2;
                    if (nd < t_high) {
                        if (tsd_push(&work, tgt, src, nd) != 0)
                            goto out;
                    } else {
                        int64_t k = (int64_t)(nd * inv_delta);
                        if (nd < (double)k * delta)
                            k--;
                        if (k <= b)
                            k = b + 1;
                        if (k - b >= ring) {
                            rc = -2;
                            goto out;
                        }
                        if (tsd_push(&buckets[k % ring], tgt, src, nd) != 0)
                            goto out;
                        open_total++;
                    }
                }
            }
        }
        open_total -= open->len;
        open->len = 0;
        int64_t chunk_len = settled.len - chunk_start;
        if (chunk_len > 0) {
            if (chunk_len > pairs_cap) {
                int64_t want = pairs_cap ? pairs_cap : 1024;
                while (want < chunk_len)
                    want *= 2;
                pair_dt *grown =
                    (pair_dt *)realloc(pairs, (size_t)want * sizeof(pair_dt));
                if (grown == NULL)
                    goto out;
                pairs = grown;
                pairs_cap = want;
            }
            for (i = chunk_start; i < settled.len; i++) {
                int32_t t = settled.t[i];
                pairs[i - chunk_start].d = vtx[t].dist;
                pairs[i - chunk_start].t = t;
                counts[(int64_t)t / n]++;
            }
            if (ell >= 0)
                sort_dt(pairs, 0, chunk_len);
            for (i = 0; i < chunk_len; i++) {
                settled.t[chunk_start + i] = pairs[i].t;
                settled.d[chunk_start + i] = pairs[i].d;
            }
        }
        if (ell >= 0) {
            for (s = 0; s < nb; s++) {
                if (done[s])
                    continue;
                if (fill_t[s] == DS_INF && counts[s] >= ell) {
                    fill_t[s] = t_high;
                    double shrunk = t_high + tol;
                    if (shrunk < cap[s])
                        cap[s] = shrunk;
                }
                if (t_high >= fill_t[s] + tol) {
                    done[s] = 1;
                    cap[s] = -DS_INF;
                }
            }
        } else {
            for (s = 0; s < nb; s++) {
                if (done[s])
                    continue;
                if (t_high >= lim[s]) {
                    done[s] = 1;
                    cap[s] = -DS_INF;
                }
            }
        }
        b++;
    }

    *settled_out = settled.t;
    *settled_d_out = settled.d;
    *settled_n = settled.len;
    settled.t = NULL;
    settled.d = NULL;
    rc = 0;

out:
    if (buckets != NULL) {
        for (i = 0; i < ring; i++) {
            free(buckets[i].t);
            free(buckets[i].s);
            free(buckets[i].d);
        }
        free(buckets);
    }
    free(work.t);
    free(work.s);
    free(work.d);
    free(settled.t);
    free(settled.d);
    free(pairs);
    free(counts);
    free(fill_t);
    free(done);
    return rc;
}

/* ------------------------------------------------------------------ */
/* kernel 2: NodeTable shard payload scan                              */
/* ------------------------------------------------------------------ */

typedef struct {
    const uint8_t *data;
    int64_t len;
    int64_t pos;
    uint8_t *tags;
    int64_t *aux;
    int64_t ntok;
} scan_ctx;

/* 7-bit-continuation uvarint; mirrors _read_uvarint (shift limit 70,
 * i.e. <= 11 bytes / 77 payload bits). */
static int read_uvarint(scan_ctx *c, unsigned __int128 *out)
{
    unsigned __int128 result = 0;
    int shift = 0;
    for (;;) {
        if (c->pos >= c->len)
            return SCAN_FALLBACK; /* truncated varint */
        uint8_t byte = c->data[c->pos++];
        result |= (unsigned __int128)(byte & 0x7F) << shift;
        if (!(byte & 0x80)) {
            *out = result;
            return SCAN_OK;
        }
        shift += 7;
        if (shift > 70)
            return SCAN_FALLBACK; /* varint too long */
    }
}

/* uvarint that must fit a non-negative int64 (ids, counts, lengths) */
static int read_uvarint64(scan_ctx *c, int64_t *out)
{
    unsigned __int128 raw;
    if (read_uvarint(c, &raw) != SCAN_OK)
        return SCAN_FALLBACK;
    if (raw > (unsigned __int128)INT64_MAX)
        return SCAN_FALLBACK; /* beyond int64: pure decoder handles it */
    *out = (int64_t)raw;
    return SCAN_OK;
}

static int emit(scan_ctx *c, uint8_t tag, int64_t aux)
{
    /* every token consumes >= 1 payload byte, so ntok < len always
     * holds for well-formed input; the guard keeps a scanner bug from
     * ever writing past the caller's len-sized buffers */
    if (c->ntok >= c->len)
        return SCAN_FALLBACK;
    c->tags[c->ntok] = tag;
    c->aux[c->ntok] = aux;
    c->ntok++;
    return SCAN_OK;
}

/* One tagged value, preorder, recursively (depth-capped). */
static int scan_value(scan_ctx *c, int depth)
{
    if (depth > MAX_VALUE_DEPTH)
        return SCAN_FALLBACK;
    if (c->pos >= c->len)
        return SCAN_FALLBACK; /* truncated value */
    uint8_t tag = c->data[c->pos++];
    switch (tag) {
    case RT_T_NONE:
    case RT_T_TRUE:
    case RT_T_FALSE:
        return emit(c, tag, 0);
    case RT_T_INT: {
        unsigned __int128 raw;
        if (read_uvarint(c, &raw) != SCAN_OK)
            return SCAN_FALLBACK;
        /* zigzag: even -> raw >> 1, odd -> -((raw + 1) >> 1) */
        if (!(raw & 1)) {
            if ((raw >> 1) > (unsigned __int128)INT64_MAX)
                return SCAN_FALLBACK;
            return emit(c, tag, (int64_t)(raw >> 1));
        }
        unsigned __int128 mag = (raw + 1) >> 1;
        if (mag > (unsigned __int128)INT64_MAX + 1)
            return SCAN_FALLBACK;
        return emit(c, tag, (int64_t)(0 - (uint64_t)mag));
    }
    case RT_T_FLOAT: {
        if (c->pos + 8 > c->len)
            return SCAN_FALLBACK; /* truncated float */
        int64_t bits;
        memcpy(&bits, c->data + c->pos, 8);
        c->pos += 8;
        return emit(c, tag, bits);
    }
    case RT_T_STR: {
        int64_t length;
        if (read_uvarint64(c, &length) != SCAN_OK)
            return SCAN_FALLBACK;
        if (length > c->len - c->pos)
            return SCAN_FALLBACK; /* truncated string */
        if (length >= ((int64_t)1 << (63 - STR_OFFSET_BITS)))
            return SCAN_FALLBACK;
        int64_t aux = c->pos | (length << STR_OFFSET_BITS);
        c->pos += length;
        return emit(c, tag, aux);
    }
    case RT_T_TUPLE:
    case RT_T_LIST: {
        int64_t count;
        if (read_uvarint64(c, &count) != SCAN_OK)
            return SCAN_FALLBACK;
        if (emit(c, tag, count) != SCAN_OK)
            return SCAN_FALLBACK;
        for (int64_t i = 0; i < count; i++)
            if (scan_value(c, depth + 1) != SCAN_OK)
                return SCAN_FALLBACK;
        return SCAN_OK;
    }
    case RT_T_DICT: {
        int64_t count;
        if (read_uvarint64(c, &count) != SCAN_OK)
            return SCAN_FALLBACK;
        if (emit(c, tag, count) != SCAN_OK)
            return SCAN_FALLBACK;
        for (int64_t i = 0; i < count; i++) {
            if (scan_value(c, depth + 1) != SCAN_OK)
                return SCAN_FALLBACK;
            if (scan_value(c, depth + 1) != SCAN_OK)
                return SCAN_FALLBACK;
        }
        return SCAN_OK;
    }
    default:
        return SCAN_FALLBACK; /* unknown value tag */
    }
}

/* Scan one v1 shard payload.
 *
 * On success: meta = {owner, degree, unit_flag, ntok}; ids[0..degree)
 * hold the neighbour ids, wts[0..degree) the weights (untouched when
 * unit_flag is set), and tags/aux[0..ntok) the preorder token stream of
 * label + COUNT(cat_count) + per category (str value, COUNT(entries),
 * entries * (key, value)).  All caller buffers must hold >= len
 * entries.  Nonzero means "re-run the pure Python decoder".
 */
int repro_scan_table(
    const uint8_t *data,
    int64_t len,
    int64_t *ids,
    double *wts,
    uint8_t *tags,
    int64_t *aux,
    int64_t *meta)
{
    if (len < 4 || len >= ((int64_t)1 << STR_OFFSET_BITS))
        return SCAN_FALLBACK;
    if (data[0] != RT_MAGIC_0 || data[1] != RT_MAGIC_1)
        return SCAN_FALLBACK; /* bad magic */
    if (data[2] != RT_CODEC_VERSION)
        return SCAN_FALLBACK; /* foreign version */
    int unit = data[3] & RT_FLAG_UNIT_WEIGHTS;

    scan_ctx c = {data, len, 4, tags, aux, 0};
    int64_t owner, degree;
    if (read_uvarint64(&c, &owner) != SCAN_OK)
        return SCAN_FALLBACK;
    if (read_uvarint64(&c, &degree) != SCAN_OK)
        return SCAN_FALLBACK;
    if (degree > len)
        return SCAN_FALLBACK; /* cannot fit: must be truncated */
    for (int64_t i = 0; i < degree; i++)
        if (read_uvarint64(&c, &ids[i]) != SCAN_OK)
            return SCAN_FALLBACK;
    if (!unit) {
        if (8 * degree > c.len - c.pos)
            return SCAN_FALLBACK; /* truncated weights */
        memcpy(wts, c.data + c.pos, (size_t)(8 * degree));
        c.pos += 8 * degree;
    }
    if (scan_value(&c, 0) != SCAN_OK) /* label */
        return SCAN_FALLBACK;
    int64_t cat_count;
    if (read_uvarint64(&c, &cat_count) != SCAN_OK)
        return SCAN_FALLBACK;
    if (emit(&c, RT_T_COUNT, cat_count) != SCAN_OK)
        return SCAN_FALLBACK;
    for (int64_t i = 0; i < cat_count; i++) {
        int64_t cat_tok = c.ntok;
        if (scan_value(&c, 0) != SCAN_OK)
            return SCAN_FALLBACK;
        if (c.tags[cat_tok] != RT_T_STR)
            return SCAN_FALLBACK; /* category name is not a string */
        int64_t entry_count;
        if (read_uvarint64(&c, &entry_count) != SCAN_OK)
            return SCAN_FALLBACK;
        if (emit(&c, RT_T_COUNT, entry_count) != SCAN_OK)
            return SCAN_FALLBACK;
        for (int64_t j = 0; j < entry_count; j++) {
            if (scan_value(&c, 0) != SCAN_OK)
                return SCAN_FALLBACK;
            if (scan_value(&c, 0) != SCAN_OK)
                return SCAN_FALLBACK;
        }
    }
    if (c.pos != len)
        return SCAN_FALLBACK; /* trailing bytes */
    meta[0] = owner;
    meta[1] = degree;
    meta[2] = unit ? 1 : 0;
    meta[3] = c.ntok;
    return SCAN_OK;
}
