"""The native C kernel tier: compile-on-demand ctypes kernels.

The compiled half of the 10^6-preprocessing goal (the multiprocess half
is :mod:`repro.graph.parallel`): a small hand-rolled C source file
(``_kernels.c``) is compiled on first use with the *system* compiler —
``cc``/``gcc``/``clang``, no new Python dependencies — into a
content-hash-named shared library under a cache directory, and loaded
via ``ctypes`` with zero-copy pointers into the existing CSR numpy
arrays.  Two kernels ride in it:

* the delta-stepping relax/scatter-min inner loop over the flattened
  ``(source, vertex)`` space (:meth:`repro.graph.csr.CSRGraph._delta_batch`
  calls it per open bucket), and
* the zigzag-varint ``NodeTable`` payload scanner behind
  :func:`repro.routing.shard_codec.decode_node_table_fast` (the
  ``PackedShardStore`` cold-lookup path).

Dispatch
--------
The tier hangs off the existing ``REPRO_KERNEL`` switch (resolved once
per process by :func:`repro.graph.shortest_paths.kernel_mode`):

* ``native`` *forces* the tier — a missing compiler with no cached
  library raises the typed :class:`NativeUnavailableError` instead of
  silently running numpy;
* ``auto`` (or unset) *prefers* native when it loads, and otherwise
  falls back to the numpy kernel recording why
  (:func:`fallback_reason` / :func:`native_status`);
* ``numpy`` pins the numpy kernel, ``pure`` the pure-Python one — both
  stay differential references with bit-identical outputs.

``REPRO_NATIVE_CC`` overrides the compiler (a path/name), and the
values ``off``/``none``/``0`` mask it entirely — with an empty
``REPRO_NATIVE_CACHE`` that is exactly the "compiler-less host" the
fallback tests simulate.  Builds are process-safe: each builder
compiles into a private temporary directory and publishes the library
with an atomic ``os.replace``, so concurrent spawn workers (the
``REPRO_PARALLEL`` tier resolves native independently per worker) race
benignly toward the same content-addressed file.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "NativeError",
    "NativeUnavailableError",
    "NativeBuildError",
    "NativeExecutionError",
    "NativeKernels",
    "compiler",
    "cache_dir",
    "source_path",
    "source_hash",
    "kernel_library_path",
    "load_kernels",
    "try_kernels",
    "fallback_reason",
    "native_status",
    "reset_native",
]

#: compilers probed (in order) when REPRO_NATIVE_CC does not pick one
_CC_CANDIDATES = ("cc", "gcc", "clang")
#: REPRO_NATIVE_CC values that mask the compiler entirely
_CC_OFF = ("off", "none", "0")
#: flags are part of the build, not of the cache key — the key is the
#: source content, so a host without a compiler still finds a library
#: another process (or an earlier run) built from identical source
_CC_FLAGS = ("-O3", "-std=c99", "-shared", "-fPIC")


class NativeError(RuntimeError):
    """Base of the native tier's typed error hierarchy."""


class NativeUnavailableError(NativeError):
    """No compiler on the host and no cached kernel library."""


class NativeBuildError(NativeError):
    """The compiler was found but failed to build the kernels."""


class NativeExecutionError(NativeError):
    """A loaded kernel reported a runtime failure (allocation)."""


def compiler() -> Optional[str]:
    """The C compiler to use, or ``None`` when masked/absent.

    ``REPRO_NATIVE_CC`` picks an explicit compiler (resolved on PATH);
    ``off``/``none``/``0`` mask compilation entirely (the forced-
    fallback tests use this to simulate a compiler-less host).
    """
    override = os.environ.get("REPRO_NATIVE_CC", "").strip()
    if override:
        if override.lower() in _CC_OFF:
            return None
        return shutil.which(override)
    for name in _CC_CANDIDATES:
        found = shutil.which(name)
        if found is not None:
            return found
    return None


def cache_dir() -> str:
    """Directory holding built kernel libraries.

    ``REPRO_NATIVE_CACHE`` overrides; the default is
    ``$XDG_CACHE_HOME/repro-native`` (``~/.cache/repro-native``).
    """
    override = os.environ.get("REPRO_NATIVE_CACHE", "").strip()
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME", "").strip() or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-native")


def source_path() -> str:
    """The bundled ``_kernels.c`` source file."""
    return os.path.join(os.path.dirname(__file__), "_kernels.c")


def source_hash() -> str:
    """Content hash naming the built library (source bytes only)."""
    with open(source_path(), "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()[:16]


def kernel_library_path() -> str:
    """Where the built library for the current source content lives."""
    return os.path.join(cache_dir(), f"repro_kernels-{source_hash()}.so")


def _build_library(cc: str, target: str) -> None:
    """Compile ``_kernels.c`` and publish it at ``target`` atomically.

    The compile runs inside a private temporary directory under the
    cache dir and the finished library moves into place with
    ``os.replace`` — concurrent builders (parallel-tier spawn workers
    resolving native at the same moment) each publish a byte-equivalent
    file and the last rename wins without ever exposing a torn write.
    """
    directory = os.path.dirname(target)
    try:
        os.makedirs(directory, exist_ok=True)
    except OSError as exc:
        raise NativeUnavailableError(
            f"native kernel cache dir {directory!r} is not writable: {exc}"
        ) from exc
    with tempfile.TemporaryDirectory(dir=directory) as tmp:
        tmp_so = os.path.join(tmp, "repro_kernels.so")
        cmd = [cc, *_CC_FLAGS, "-o", tmp_so, source_path()]
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120
            )
        except (OSError, subprocess.SubprocessError) as exc:
            raise NativeBuildError(
                f"failed to run the C compiler {cc!r}: {exc}"
            ) from exc
        if proc.returncode != 0:
            raise NativeBuildError(
                f"C compiler {cc!r} failed (exit {proc.returncode}):\n"
                f"{proc.stderr.strip() or proc.stdout.strip()}"
            )
        os.replace(tmp_so, target)


def _ptr(arr: np.ndarray) -> int:
    return arr.ctypes.data


_I64 = ctypes.c_longlong
_I32_P = ctypes.POINTER(ctypes.c_int32)
_I64_P = ctypes.POINTER(ctypes.c_longlong)
_F64_P = ctypes.POINTER(ctypes.c_double)


class NativeKernels:
    """Owner of the loaded kernel library and its call surface.

    Holds the ``ctypes.CDLL`` handle for its whole lifetime (``close()``
    drops it; the OS unmaps the library when the last reference dies)
    and exposes numpy-facing wrappers around the two C entry points.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            lib = ctypes.CDLL(path)
        except OSError as exc:
            raise NativeUnavailableError(
                f"cached kernel library {path!r} failed to load: {exc}"
            ) from exc
        c_i64 = _I64
        c_ptr = ctypes.c_void_p
        lib.repro_delta_batch.restype = ctypes.c_int
        lib.repro_delta_batch.argtypes = [
            c_ptr, c_ptr, c_ptr,                 # indptr, indices, weights
            c_i64, c_i64,                        # n, nb
            c_ptr,                               # start
            c_ptr, c_ptr, c_ptr,                 # vtx, cap, lim (or NULL)
            ctypes.c_double,                     # delta
            c_i64, c_i64, ctypes.c_double,       # ring, ell, tol
            c_i64,                               # gen
            ctypes.POINTER(_I32_P), ctypes.POINTER(_F64_P),
            ctypes.POINTER(c_i64),
        ]
        lib.repro_scan_table.restype = ctypes.c_int
        lib.repro_scan_table.argtypes = [
            c_ptr, c_i64,                        # data, len
            c_ptr, c_ptr, c_ptr, c_ptr, c_ptr,   # ids, wts, tags, aux, meta
        ]
        lib.repro_release.restype = None
        lib.repro_release.argtypes = [c_ptr]
        self._lib: Optional[ctypes.CDLL] = lib

    def close(self) -> None:
        """Drop the library handle (test hook; idempotent)."""
        self._lib = None

    # -- kernel 1: delta-stepping batch engine --------------------------
    def delta_batch(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        n: int,
        nb: int,
        start: np.ndarray,
        vtx: np.ndarray,
        cap: np.ndarray,
        lim: Optional[np.ndarray],
        delta: float,
        ring: int,
        ell: Optional[int],
        tol: float,
        gen: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run one whole delta-stepping batch in C.

        Returns ``(settled, settled_d)``: settled flattened ids in
        bucket order (ball mode: each bucket chunk sorted by
        ``(distance, id)``; bounded mode: settle order) with their final
        distances.  ``cap`` is mutated in place, exactly like the numpy
        engine; ``vtx`` is the caller-owned generation-stamped scratch.
        """
        lib = self._lib
        if lib is None:
            raise NativeExecutionError("kernel library handle is closed")
        settled_p = _I32_P()
        settled_d_p = _F64_P()
        settled_n = _I64()
        rc = lib.repro_delta_batch(
            _ptr(indptr), _ptr(indices), _ptr(weights),
            int(n), int(nb),
            _ptr(start),
            _ptr(vtx), _ptr(cap),
            _ptr(lim) if lim is not None else None,
            float(delta),
            int(ring), -1 if ell is None else int(ell), float(tol),
            int(gen),
            ctypes.byref(settled_p), ctypes.byref(settled_d_p),
            ctypes.byref(settled_n),
        )
        if rc != 0:
            # Allocation failure (or an impossible ring overflow): cap
            # is partially mutated, so a silent numpy retry would be
            # wrong — surface the typed error.
            raise NativeExecutionError(
                f"delta_batch: native kernel failed (rc={rc})"
            )
        settled = self._take(settled_p, settled_n.value, np.int32)
        settled_d = self._take(settled_d_p, settled_n.value, np.float64)
        return settled, settled_d

    def _take(self, ptr: Any, count: int, dtype: Any) -> np.ndarray:
        """Copy a C-allocated result array out and free it."""
        lib = self._lib
        assert lib is not None
        if not ptr or count <= 0:
            if ptr:
                lib.repro_release(ptr)
            return np.empty(0, dtype=dtype)
        out = np.empty(count, dtype=dtype)
        ctypes.memmove(out.ctypes.data, ptr, count * out.itemsize)
        lib.repro_release(ptr)
        return out

    # -- kernel 2: shard payload scan -----------------------------------
    def scan_table(
        self,
        data: np.ndarray,
        ids: np.ndarray,
        wts: np.ndarray,
        tags: np.ndarray,
        aux: np.ndarray,
        meta: np.ndarray,
    ) -> bool:
        """Scan one shard payload; ``False`` means "use the pure decoder".

        ``data`` is the payload as a uint8 array (zero-copy over the
        caller's bytes/memoryview); the other arrays are caller scratch
        of at least ``data.size`` entries (``meta``: 4).  On ``True``,
        ``meta`` holds ``(owner, degree, unit_flag, ntok)`` and the
        ids/wts/tags/aux prefixes are filled (see ``_kernels.c``).
        """
        lib = self._lib
        if lib is None:
            raise NativeExecutionError("kernel library handle is closed")
        rc = lib.repro_scan_table(
            _ptr(data), int(data.size),
            _ptr(ids), _ptr(wts), _ptr(tags), _ptr(aux), _ptr(meta),
        )
        return rc == 0


#: once-per-process load outcome: (tried, handle, error)
_TRIED = False
_HANDLE: Optional[NativeKernels] = None
_ERROR: Optional[NativeError] = None


def _load() -> NativeKernels:
    target = kernel_library_path()
    if os.path.exists(target):
        return NativeKernels(target)
    cc = compiler()
    if cc is None:
        raise NativeUnavailableError(
            f"no C compiler on PATH (tried REPRO_NATIVE_CC, "
            f"{', '.join(_CC_CANDIDATES)}) and no cached kernel library "
            f"at {target!r} — set REPRO_KERNEL=numpy (or auto) to run "
            f"without the native tier"
        )
    _build_library(cc, target)
    return NativeKernels(target)


def try_kernels() -> Optional[NativeKernels]:
    """The loaded kernels, or ``None`` with the reason recorded.

    Resolved once per process (spawn workers resolve their own copy);
    :func:`reset_native` drops the cached outcome for tests.
    """
    global _TRIED, _HANDLE, _ERROR
    if not _TRIED:
        _TRIED = True
        try:
            _HANDLE = _load()
        except NativeError as exc:
            _ERROR = exc
            _HANDLE = None
    return _HANDLE


def load_kernels() -> NativeKernels:
    """The loaded kernels; raises the typed load error when unavailable.

    ``REPRO_KERNEL=native`` resolves through this — a compiler-less
    host with a cold cache gets :class:`NativeUnavailableError`, a
    broken toolchain :class:`NativeBuildError`, never a silent numpy
    fallback.
    """
    handle = try_kernels()
    if handle is None:
        assert _ERROR is not None
        raise _ERROR
    return handle


def fallback_reason() -> Optional[str]:
    """Why native is off (after a resolve), or ``None`` when loaded."""
    return str(_ERROR) if _ERROR is not None else None


def native_status() -> Dict[str, Any]:
    """One-look status: availability, library path, fallback reason."""
    handle = try_kernels()
    return {
        "available": handle is not None,
        "library": handle.path if handle is not None else None,
        "compiler": compiler(),
        "reason": fallback_reason(),
    }


def reset_native() -> None:
    """Drop the cached load outcome (test hook).

    The next :func:`try_kernels` re-reads ``REPRO_NATIVE_CC`` /
    ``REPRO_NATIVE_CACHE`` and re-resolves; a previously loaded handle
    is closed.
    """
    global _TRIED, _HANDLE, _ERROR
    if _HANDLE is not None:
        _HANDLE.close()
    _TRIED = False
    _HANDLE = None
    _ERROR = None
