"""Reproduction of Roditty & Tov, "New Routing Techniques and their
Applications" (PODC 2015): compact routing schemes whose space/stretch
tradeoffs almost match the corresponding distance oracles.

Quickstart::

    from repro.graph.generators import random_geometric
    from repro.schemes import Stretch5PlusScheme
    from repro.routing import route

    g = random_geometric(300, 0.1, seed=1)
    scheme = Stretch5PlusScheme(g, eps=0.5)
    result = route(scheme, 0, 42)
    print(result.path, result.length)
"""

__version__ = "1.0.0"

from .graph import Graph, GraphError, MetricView, RootedTree
from .routing import (
    CompactRoutingScheme,
    PortAssignment,
    RouteResult,
    StretchReport,
    measure_stretch,
    route,
)

__all__ = [
    "Graph",
    "GraphError",
    "MetricView",
    "RootedTree",
    "CompactRoutingScheme",
    "PortAssignment",
    "RouteResult",
    "StretchReport",
    "measure_stretch",
    "route",
    "__version__",
]
