"""Shared plumbing for the paper's routing schemes.

Every scheme in this package follows the same life cycle:

1. build the shared substrates (exact metric, fixed ports, vicinity balls,
   ball first-edge ports),
2. build its specific structures (colorings, landmark sets, cluster trees,
   technique instances) and *install* everything into one
   :class:`SizedTable` per vertex,
3. expose labels and the local ``step`` decision function.

:class:`SchemeBase` implements the shared parts.  The ``alpha`` knob is the
paper's "large enough constant" in ``q̃ = alpha * q * log n``; see
DESIGN.md §4 for how it is calibrated at reproduction scale.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..graph.core import Graph
from ..graph.metric import MetricView
from ..routing.ball_routing import BallRoutingTables
from ..routing.model import CompactRoutingScheme, SizedTable
from ..routing.ports import PortAssignment
from ..structures.balls import BallFamily, ball_size_parameter

__all__ = ["SchemeBase"]


class SchemeBase(CompactRoutingScheme):
    """Common substrate construction for all schemes."""

    def __init__(
        self,
        graph: Graph,
        *,
        ports: Optional[PortAssignment] = None,
        metric: Optional[MetricView] = None,
    ) -> None:
        if graph.n == 0:
            raise ValueError("routing schemes need a nonempty graph")
        ports = ports if ports is not None else PortAssignment(graph)
        super().__init__(graph, ports)
        # mode="auto": the eager dense matrix up to the threshold size,
        # the lazy per-row oracle (CSR-kernel backed) beyond it — see
        # repro.graph.metric for the dispatch.
        self.metric = (
            metric if metric is not None else MetricView(graph, mode="auto")
        )
        if not self.metric.is_connected():
            raise ValueError("routing schemes require a connected graph")
        self._tables: List[SizedTable] = [
            SizedTable(u) for u in graph.vertices()
        ]
        self._labels: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    def _build_balls(self, q: float, alpha: float) -> BallFamily:
        """Build the ball family ``B(u, q̃)`` with ``q̃ = alpha*q*log n``."""
        ell = ball_size_parameter(self.graph.n, q, alpha)
        return BallFamily(self.metric, ell)

    def _install_ball_ports(self, family: BallFamily) -> BallRoutingTables:
        """Install Lemma 2 first-edge ports (category ``"ball"``)."""
        tables = BallRoutingTables(self.metric, family, self.ports)
        for table in self._tables:
            tables.install(table)
        return tables

    # ------------------------------------------------------------------
    def table_of(self, v: int) -> SizedTable:
        return self._tables[v]

    def label_of(self, v: int) -> Any:
        return self._labels[v]
