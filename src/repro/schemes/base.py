"""Shared plumbing for the paper's routing schemes.

Every scheme in this package follows the same life cycle:

1. build the shared substrates (exact metric, fixed ports, vicinity balls,
   ball first-edge ports),
2. build its specific structures (colorings, landmark sets, cluster trees,
   technique instances) and *install* everything into one
   :class:`SizedTable` per vertex,
3. expose labels and the local ``step`` decision function.

:class:`SchemeBase` implements the shared parts.  The ``alpha`` knob is the
paper's "large enough constant" in ``q̃ = alpha * q * log n``; see
DESIGN.md §4 for how it is calibrated at reproduction scale.

Substrate injection
-------------------
Comparative runs (Table 1, the CLI, the benchmarks) build several schemes
on the *same* graph.  Passing a :class:`repro.api.Substrate` handle makes
every substrate request — metric, ports, ball families, ball-routing
ports, Lemma 4 landmark samples, bunch structures, TZ hierarchies — go
through the handle's memoized builders, so identical artifacts are
computed once per graph instead of once per scheme.  Without a handle
each helper falls back to a cold local build; results are bit-identical
either way (every shared artifact is a deterministic function of the
graph and the seed).

Restore (persistence)
---------------------
A built scheme's routing state is tables + labels (see
:mod:`repro.routing.persistence`); the decision function is code plus a
few scalars.  :meth:`SchemeBase.restore` reconstructs a scheme around
persisted tables without re-running preprocessing: subclasses report the
scalars via :meth:`routing_params` and rebuild their step-time helpers
(technique steppers) in :meth:`_restore_routing`.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
)

from ..graph.core import Graph
from ..graph.metric import MetricView
from ..routing.ball_routing import BallRoutingTables
from ..routing.model import CompactRoutingScheme, SizedTable
from ..routing.ports import PortAssignment
from ..routing.tables import NodeTable, compile_tables
from ..routing.tree_routing import TreeRouting
from ..structures.balls import BallFamily, ball_size_parameter

__all__ = ["SchemeBase"]


class SchemeBase(CompactRoutingScheme):
    """Common substrate construction for all schemes."""

    def __init__(
        self,
        graph: Graph,
        *,
        ports: Optional[PortAssignment] = None,
        metric: Optional[MetricView] = None,
        substrate: Optional[Any] = None,
    ) -> None:
        if graph.n == 0:
            raise ValueError("routing schemes need a nonempty graph")
        if substrate is not None and substrate.graph is not graph:
            raise ValueError(
                "substrate was built for a different graph object"
            )
        self._substrate = substrate
        if substrate is not None:
            # Prefer the already-built artifacts: the facade's
            # ensure_core() does the hit/miss accounting, so adopting
            # here must not count the same request twice.
            if ports is None:
                ports = substrate.built_ports
                if ports is None:
                    ports = substrate.ports
            if metric is None:
                metric = substrate.built_metric
                if metric is None:
                    metric = substrate.metric
        ports = ports if ports is not None else PortAssignment(graph)
        super().__init__(graph, ports)
        # mode="auto": the eager dense matrix up to the threshold size,
        # the lazy per-row oracle (CSR-kernel backed) beyond it — see
        # repro.graph.metric for the dispatch.
        self.metric = (
            metric if metric is not None else MetricView(graph, mode="auto")
        )
        if not self.metric.is_connected():
            raise ValueError("routing schemes require a connected graph")
        self._tables: List[SizedTable] = [
            SizedTable(u) for u in graph.vertices()
        ]
        self._labels: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    def _substrate_applies(self) -> bool:
        """Substrate memoization is only sound against its own artifacts.

        Peeks at the handle's built artifacts — a scheme constructed with
        its *own* metric or ports must fall back to cold builds without
        tricking the handle into materializing artifacts nobody uses.
        """
        return (
            self._substrate is not None
            and self.metric is self._substrate.built_metric
            and self.ports is self._substrate.built_ports
        )

    def _build_balls(self, q: float, alpha: float) -> BallFamily:
        """Build the ball family ``B(u, q̃)`` with ``q̃ = alpha*q*log n``."""
        return self._ball_family_of_size(
            ball_size_parameter(self.graph.n, q, alpha)
        )

    def _ball_family_of_size(self, ell: int) -> BallFamily:
        """The family for an explicit ball size (memoized on a substrate)."""
        if self._substrate_applies():
            return self._substrate.ball_family(ell)
        return BallFamily(self.metric, ell)

    def _install_ball_ports(self, family: BallFamily) -> BallRoutingTables:
        """Install Lemma 2 first-edge ports (category ``"ball"``)."""
        if self._substrate_applies() and self._substrate.owns_family(family):
            tables = self._substrate.ball_tables(family.ell)
        else:
            tables = BallRoutingTables(self.metric, family, self.ports)
        for table in self._tables:
            tables.install(table)
        return tables

    def _find_coloring(
        self, family: BallFamily, q: int, seed: int
    ) -> List[int]:
        """Lemma 6 coloring over ``family``'s balls (memoized per graph)."""
        if self._substrate_applies() and self._substrate.owns_family(family):
            return self._substrate.coloring(family.ell, q, seed)
        from ..structures.coloring import find_coloring

        return find_coloring(family.balls(), self.graph.n, q, seed=seed)

    def _find_hash_coloring(
        self, family: BallFamily, q: int, seed: int
    ):
        """Name-independent hash coloring (memoized per graph)."""
        if self._substrate_applies() and self._substrate.owns_family(family):
            return self._substrate.hash_coloring(family.ell, q, seed)
        from ..structures.coloring import find_hash_coloring

        return find_hash_coloring(family.balls(), self.graph.n, q, seed=seed)

    def _ball_hitting_set(self, family: BallFamily) -> List[int]:
        """Greedy hitting set of ``family``'s balls (memoized per graph).

        Part of Technique 1's eps-independent state: the hitting set
        depends only on the balls, so parameter sweeps reuse it.
        """
        if self._substrate_applies() and self._substrate.owns_family(family):
            return self._substrate.hitting_set(family.ell)
        from ..structures.hitting_set import greedy_hitting_set

        return greedy_hitting_set(family.balls())

    def _global_tree_routing(self, root: int) -> TreeRouting:
        """Heavy-path routing over the full-graph SPT at ``root``.

        Memoized on the substrate under ``(root, None)`` — the same key
        landmark trees use, so Technique 1 hub trees, thm10's global
        landmark trees and parameter resweeps all share one build.
        ``_global_tree`` keeps the explicit disconnected-graph
        diagnostic even though ``__init__`` already rejects such graphs.
        """
        from ..core.technique1 import _global_tree

        return self._tree_routing(
            root, None, lambda: _global_tree(self.metric, root)
        )

    def _prefetch_global_trees(self, roots: Sequence[int]) -> None:
        """Stage full-graph SPT predecessor rows for many roots at once.

        Feeds :meth:`MetricView.prefetch_spt_parents` so the landmark /
        hub trees built in the following loop come out of one batched
        (and, under ``REPRO_PARALLEL``, multiprocess) Dijkstra sweep
        instead of one scipy call per root.  Roots whose ``(root, None)``
        tree the substrate already memoizes are skipped — their parent
        maps are never recomputed.  Purely a throughput hint: the staged
        rows produce bit-identical trees (see
        :func:`repro.graph.trees.parents_from_pred_row`).
        """
        prefetch = getattr(self.metric, "prefetch_spt_parents", None)
        if prefetch is None:
            return
        if self._substrate_applies():
            roots = [r for r in roots if not self._substrate.has_tree(r)]
        if roots:
            prefetch(roots)

    def _sample_landmarks(self, s: float, seed: int) -> List[int]:
        """Lemma 4 cluster-bounded landmark sample (memoized per graph)."""
        if self._substrate_applies():
            return self._substrate.landmark_sample(s, seed)
        from ..structures.sampling import sample_cluster_bounded

        return sample_cluster_bounded(self.metric, s, seed=seed)

    def _bunch_structure(self, landmarks: Sequence[int]):
        """Pivots/bunches/clusters for one landmark set (memoized)."""
        if self._substrate_applies():
            return self._substrate.bunch_structure(landmarks)
        from ..structures.bunches import BunchStructure

        return BunchStructure(self.metric, landmarks)

    def _sampled_hierarchy(self, k: int, seed: int):
        """TZ ``k``-level landmark hierarchy (memoized per graph)."""
        if self._substrate_applies():
            return self._substrate.hierarchy(k, seed)
        from ..baselines.hierarchy import SampledHierarchy

        return SampledHierarchy(self.metric, k, seed=seed)

    def _tree_routing(
        self,
        root: int,
        members: Optional[Iterable[int]],
        build_tree: Callable[[], Any],
    ) -> TreeRouting:
        """A :class:`TreeRouting` for the tree ``build_tree`` produces.

        Memoized on the substrate by ``(root, member set)`` —
        ``members=None`` means the full-graph SPT rooted at ``root``.
        Every caller's tree is a deterministic function of that key (a
        shortest-path tree restricted to the member set, with the shared
        metric's tie-breaking), so two schemes on one substrate that
        route over the same cluster or landmark tree build its heavy-path
        intervals once.  Cold builds without a substrate are unchanged.
        """
        if self._substrate_applies():
            return self._substrate.tree_routing(root, members, build_tree)
        return TreeRouting(build_tree(), self.ports)

    # ------------------------------------------------------------------
    def table_of(self, v: int) -> SizedTable:
        return self._tables[v]

    def label_of(self, v: int) -> Any:
        return self._labels[v]

    # ------------------------------------------------------------------
    # Persistence hooks
    # ------------------------------------------------------------------
    def routing_params(self) -> Dict[str, Any]:
        """JSON-able scalars the ``step`` function needs besides tables.

        Subclasses extend this with whatever :meth:`_restore_routing` reads
        back (``eps``, ``k``, ``ell`` ...).  Everything else a deployment
        needs already lives in the persisted tables and labels.
        """
        return {}

    def _restore_routing(self, params: Dict[str, Any]) -> None:
        """Rebuild step-time helpers from :meth:`routing_params` output."""

    @classmethod
    def restore(
        cls,
        graph: Graph,
        *,
        ports: PortAssignment,
        tables: Sequence[SizedTable],
        labels: Sequence[Any],
        params: Optional[Dict[str, Any]] = None,
        name: Optional[str] = None,
    ) -> "SchemeBase":
        """Reconstruct a scheme around persisted routing state.

        No preprocessing runs: the returned scheme routes (``step``,
        ``label_of``, ``stats``) but carries no metric — exact-distance
        comparisons stay the caller's job, as they are for a deployed
        scheme.
        """
        if len(tables) != graph.n or len(labels) != graph.n:
            raise ValueError(
                f"state covers {len(tables)} tables / {len(labels)} labels, "
                f"graph has {graph.n} vertices"
            )
        scheme = object.__new__(cls)
        CompactRoutingScheme.__init__(scheme, graph, ports)
        scheme._substrate = None
        scheme.metric = None
        scheme._tables = list(tables)
        scheme._labels = dict(enumerate(labels))
        if name is not None:
            scheme.name = name
        scheme._restore_routing(dict(params or {}))
        return scheme

    # ------------------------------------------------------------------
    # Compile + serving hooks (sharded deployment)
    # ------------------------------------------------------------------
    def shard_categories(self) -> Optional[FrozenSet[str]]:
        """Table categories this scheme's ``step`` function may read.

        Each scheme declares its step-time manifest; compilation
        (:meth:`compile_tables`) rejects built tables holding categories
        outside it, catching preprocessing/decision-function drift before
        a shard ships.  ``None`` disables the check (no declaration).
        """
        return None

    def compile_tables(self) -> List[NodeTable]:
        """Compile this built scheme into per-vertex :class:`NodeTable`\\ s.

        The deployment shape: one record per vertex holding its table,
        label and port-ordered incident links — everything that vertex
        needs to execute ``step`` and move a message, and nothing else.
        Word accounting is preserved exactly (see
        :mod:`repro.routing.tables`).
        """
        return compile_tables(
            self, allowed_categories=self.shard_categories()
        )

    @classmethod
    def restore_serving(
        cls,
        *,
        ports: Any,
        tables: Any,
        labels: Any,
        params: Optional[Dict[str, Any]] = None,
        name: Optional[str] = None,
    ) -> "SchemeBase":
        """Reconstruct a *step-only* scheme over externally stored state.

        Unlike :meth:`restore`, no graph and no full table list exist:
        ``tables``/``labels`` are indexable views (``obj[v]``) and
        ``ports`` needs only ``port_to(u, v)`` — exactly the surface the
        step functions and technique steppers touch.  The serving engine
        (:class:`repro.routing.serving.LocalRouter`) passes views that
        resolve each access from vertex ``u``'s shard alone, which is
        what makes the local-knowledge invariant testable: the scheme
        object physically has nothing but the current shard to read.
        """
        scheme = object.__new__(cls)
        scheme.graph = None
        scheme.ports = ports
        scheme._substrate = None
        scheme.metric = None
        scheme._tables = tables
        scheme._labels = labels
        if name is not None:
            scheme.name = name
        scheme._restore_routing(dict(params or {}))
        return scheme
