"""Name-independent (3+eps)-stretch routing (Section 4 remark).

The paper notes that Technique 1 plus the hash-based coloring of Abraham et
al. yields a *name-independent* scheme: the sender knows only the
destination's name ``v`` (no preprocessing-assigned label).  Everything the
warm-up scheme read from the label is recomputed locally:

* the color ``c(v) = hash(v; seed) mod q`` is a seeded hash of the name —
  every vertex stores the (single-word) seed and evaluates it locally,
* the Lemma 7 sequence and any tree label for ``v`` are stored at the
  *routing-side* vertices (the color class of ``v``), never at the sender.

Tables stay ``Õ(sqrt(n)/eps)``; the label is literally the vertex name.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from ..core.technique1 import Technique1
from ..graph.core import Graph
from ..graph.metric import MetricView
from ..routing.model import Deliver, Forward, RouteAction
from ..routing.ports import PortAssignment
from ..structures.coloring import color_classes, hash_color
from .base import SchemeBase

__all__ = ["NameIndependent3Eps"]


class NameIndependent3Eps(SchemeBase):
    """Name-independent (3+eps)-stretch scheme with ``Õ(sqrt n/eps)`` tables."""

    name = "name-independent 3+eps"

    def stretch_bound(self) -> float:
        return 3.0 + self.eps

    def __init__(
        self,
        graph: Graph,
        eps: float = 0.5,
        *,
        alpha: float = 1.0,
        q: Optional[int] = None,
        seed: int = 0,
        ports: Optional[PortAssignment] = None,
        metric: Optional[MetricView] = None,
        substrate: Optional[Any] = None,
    ) -> None:
        super().__init__(
            graph, ports=ports, metric=metric, substrate=substrate
        )
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.eps = eps
        n = graph.n
        self.q = q if q is not None else max(1, round(math.sqrt(n)))

        self.family = self._build_balls(self.q, alpha)
        self._install_ball_ports(self.family)

        self.hash_seed, self.colors = self._find_hash_coloring(
            self.family, self.q, seed
        )
        classes = color_classes(self.colors, self.q)

        self.technique = Technique1(
            self.metric, self.family, self.ports, classes, eps / 2.0,
            hitting=self._ball_hitting_set(self.family),
            tree_factory=self._global_tree_routing,
            tree_prefetch=self._prefetch_global_trees,
            seed=seed,
        )
        for table in self._tables:
            self.technique.install(table)
            # The hash seed and color count are O(1) global constants each
            # vertex carries so it can evaluate c(name) locally.
            table.put("const", "hash_seed", self.hash_seed)
            table.put("const", "q", self.q)

        for u in graph.vertices():
            table = self._tables[u]
            needed = set(range(self.q))
            for w in self.family.ball(u):
                c = self.colors[w]
                if c in needed:
                    table.put("colorrep", c, w)
                    needed.discard(c)
            if needed:
                raise RuntimeError(
                    f"B({u}) misses colors {sorted(needed)} despite Lemma 6"
                )

        for v in graph.vertices():
            self._labels[v] = v  # the name itself — nothing else

    # ------------------------------------------------------------------
    def shard_categories(self) -> frozenset:
        """As the warm-up, plus the ``const`` hash-seed words."""
        return frozenset(
            {"ball", "colorrep", "const",
             self.technique.cat_seq, self.technique.cat_htree}
        )

    def routing_params(self) -> dict:
        return {"eps": self.eps, "q": self.q}

    def _restore_routing(self, params: dict) -> None:
        self.eps = params["eps"]
        self.q = params.get("q")
        # The hash seed and color count travel inside the tables (category
        # "const"), exactly as a deployed node would carry them.
        self.technique = Technique1.stepper(self.ports)

    # ------------------------------------------------------------------
    def step(self, u: int, header: Any, dest_label: Any) -> RouteAction:
        v = dest_label
        if u == v:
            return Deliver()
        table = self.table_of(u)
        if header is None:
            ball_port = table.get("ball", v)
            if ball_port is not None:
                return Forward(ball_port, ("ball",))
            v_color = hash_color(
                v, table.get("const", "q"), table.get("const", "hash_seed")
            )
            rep = table.get("colorrep", v_color)
            if rep == u:
                t1h = self.technique.start(table, u, v)
                port, t1h = self.technique.step(table, u, t1h, v)
                return Forward(port, ("t1", t1h))
            return Forward(table.get("ball", rep), ("torep", rep))
        tag = header[0]
        if tag == "ball":
            return Forward(table.get("ball", v), header)
        if tag == "torep":
            rep = header[1]
            if u == rep:
                t1h = self.technique.start(table, u, v)
                port, t1h = self.technique.step(table, u, t1h, v)
                return Forward(port, ("t1", t1h))
            return Forward(table.get("ball", rep), header)
        if tag == "t1":
            port, t1h = self.technique.step(table, u, header[1], v)
            if port is None:
                return Deliver()
            return Forward(port, ("t1", t1h))
        raise ValueError(f"unknown header tag {tag!r}")
