"""Theorem 10: (2+eps, 1)-stretch routing for unweighted graphs.

Space ``Õ(n^{2/3}/eps)`` per vertex — almost matching the Pătraşcu–Roditty
``(2,1)`` distance oracle with ``Õ(n^{5/3})`` *total* space.

Construction (``q = n^{1/3}``):

* balls ``B(u, q̃)`` with first-edge ports,
* Lemma 4 landmark set ``A`` (size ``Õ(n^{2/3})``, clusters ``O(n^{1/3})``),
* per-cluster shortest-path trees ``T_{C_A(w)}`` — members keep a tree
  record, the owner ``w`` keeps each member's tree label,
* global shortest-path trees ``T(w)`` for every landmark ``w ∈ A`` — every
  vertex keeps a record for each,
* an intersection table at ``u``: for each ``v`` with
  ``B(u, q̃) ∩ B_A(v) ≠ ∅``, the best common vertex
  ``w = argmin d(u,w') + d(w',v)``,
* a Lemma 6 coloring with ``q`` colors and Technique 1 over its classes
  (sizes ``Õ(n^{2/3})``), plus a per-color ball representative with its
  distance.

Routing ``u -> v`` (paper's case analysis):

1. intersection stored for ``v``: ball-route to ``w``, finish on the
   cluster tree ``T_{C_A(w)}`` (exact shortest path — the paper proves
   ``w`` lies on one),
2. otherwise compare ``d(v, p_A(v))`` (from ``v``'s label) with
   ``d(u, w)`` to the color representative ``w``:
   ``d(v,p_A(v)) <= d(u,w)`` → ride the global tree ``T(p_A(v))``
   (length ``<= 2d+1``); else hop to ``w`` and use Lemma 7 inside the
   color class (length ``<= (2+eps) d``).

The label of ``v`` is ``(v, c(v), p_A(v), d(v, p_A(v)), tree-label)``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.technique1 import Technique1
from ..graph.core import Graph
from ..graph.metric import MetricView
from ..routing.model import Deliver, Forward, RouteAction
from ..routing.ports import PortAssignment
from ..routing.tree_routing import TreeRouting, tree_step
from ..structures.coloring import color_classes
from .base import SchemeBase

__all__ = ["Stretch2Plus1Scheme"]


class Stretch2Plus1Scheme(SchemeBase):
    """Theorem 10: labeled (2+eps, 1)-stretch, ``Õ(n^{2/3}/eps)`` tables."""

    name = "Thm 10 (2+eps,1)"

    def stretch_bound(self) -> tuple[float, float]:
        """``(alpha, beta)`` of the guaranteed ``alpha*d + beta`` bound."""
        return (2.0 + self.eps, 1.0)

    def __init__(
        self,
        graph: Graph,
        eps: float = 0.5,
        *,
        alpha: float = 1.0,
        q: Optional[int] = None,
        seed: int = 0,
        ports: Optional[PortAssignment] = None,
        metric: Optional[MetricView] = None,
        substrate: Optional[Any] = None,
    ) -> None:
        super().__init__(
            graph, ports=ports, metric=metric, substrate=substrate
        )
        if not graph.is_unweighted():
            raise ValueError("Theorem 10 is stated for unweighted graphs")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.eps = eps
        n = graph.n
        self.q = q if q is not None else max(1, round(n ** (1.0 / 3.0)))

        self.family = self._build_balls(self.q, alpha)
        self._install_ball_ports(self.family)

        # Lemma 4: |C_A(w)| <= 4 n / s with s = n/q  ->  clusters O(q^1·...)
        self.landmarks = self._sample_landmarks(n / self.q, seed)
        if not self.landmarks:
            self.landmarks = [0]
        self.bunches = self._bunch_structure(self.landmarks)

        # Cluster trees: records at members, member labels at the owner.
        for w in graph.vertices():
            members = self.bunches.cluster(w)
            if not members:
                continue
            tree = self._tree_routing(
                w, members, lambda w=w: self.bunches.cluster_tree(w)
            )
            for v in members:
                self._tables[v].put("ctree", w, tree.record_of(v))
                self._tables[w].put("clabel", v, tree.label_of(v))

        # Global landmark trees: every vertex stores a record per landmark.
        # One batched predecessor sweep stages all the landmark SPTs up
        # front (bit-identical trees; multiprocess under REPRO_PARALLEL).
        self._prefetch_global_trees(self.landmarks)
        self._landmark_trees: Dict[int, TreeRouting] = {}
        for w in self.landmarks:
            tree = self._global_tree_routing(w)
            self._landmark_trees[w] = tree
            for v in graph.vertices():
                self._tables[v].put("atree", w, tree.record_of(v))

        # Intersection table: best common vertex of B(u, q̃) and B_A(v).
        for u in graph.vertices():
            best: Dict[int, tuple[float, int]] = {}
            for w in self.family.ball(u):
                through = self.metric.d(u, w)
                for v in self.bunches.cluster(w):
                    cand = (through + self.metric.d(w, v), w)
                    if v not in best or cand < best[v]:
                        best[v] = cand
            table = self._tables[u]
            for v, (_, w) in best.items():
                table.put("xsect", v, w)

        # Coloring and Technique 1 over the color classes.  The coloring,
        # the hitting set and the global hub trees are eps-independent,
        # memoized on the substrate.
        self.colors = self._find_coloring(self.family, self.q, seed)
        classes = color_classes(self.colors, self.q)
        self.technique = Technique1(
            self.metric, self.family, self.ports, classes, eps / 2.0,
            hitting=self._ball_hitting_set(self.family),
            tree_factory=self._global_tree_routing,
            tree_prefetch=self._prefetch_global_trees,
            seed=seed,
        )
        for table in self._tables:
            self.technique.install(table)

        # Per-color ball representative with its distance.
        for u in graph.vertices():
            table = self._tables[u]
            needed = set(range(self.q))
            for w in self.family.ball(u):
                c = self.colors[w]
                if c in needed:
                    table.put(
                        "colorrep", c, (w, int(round(self.metric.d(u, w))))
                    )
                    needed.discard(c)
            if needed:
                raise RuntimeError(
                    f"B({u}) misses colors {sorted(needed)} despite Lemma 6"
                )

        for v in graph.vertices():
            p = self.bunches.pivot(v)
            self._labels[v] = (
                v,
                self.colors[v],
                p,
                int(round(self.bunches.distance_to_landmarks(v))),
                self._landmark_trees[p].label_of(v),
            )

    # ------------------------------------------------------------------
    def shard_categories(self) -> frozenset:
        """Ball ports, intersections, both tree families, Lemma 7 state."""
        return frozenset(
            {"ball", "xsect", "ctree", "clabel", "atree", "colorrep",
             self.technique.cat_seq, self.technique.cat_htree}
        )

    def routing_params(self) -> dict:
        return {"eps": self.eps, "q": self.q}

    def _restore_routing(self, params: dict) -> None:
        self.eps = params["eps"]
        self.q = params.get("q")
        self.technique = Technique1.stepper(self.ports)

    # ------------------------------------------------------------------
    def step(self, u: int, header: Any, dest_label: Any) -> RouteAction:
        v, v_color, v_pivot, v_pivot_dist, v_pivot_tlabel = dest_label
        if u == v:
            return Deliver()
        table = self.table_of(u)

        if header is None:
            ball_port = table.get("ball", v)
            if ball_port is not None:
                return Forward(ball_port, ("ball",))
            w = table.get("xsect", v)
            if w is not None:
                if w == u:
                    return self._enter_cluster_tree(table, u, w, v)
                return Forward(table.get("ball", w), ("tox", w))
            rep, rep_dist = table.get("colorrep", v_color)
            if v_pivot_dist <= rep_dist:
                header = ("atree", v_pivot, v_pivot_tlabel)
                return self._tree_forward(table, "atree", u, header, v)
            if rep == u:
                t1h = self.technique.start(table, u, v)
                port, t1h = self.technique.step(table, u, t1h, v)
                return Forward(port, ("t1", t1h))
            return Forward(table.get("ball", rep), ("torep", rep))

        tag = header[0]
        if tag == "ball":
            return Forward(table.get("ball", v), header)
        if tag == "tox":
            w = header[1]
            if u == w:
                return self._enter_cluster_tree(table, u, w, v)
            return Forward(table.get("ball", w), header)
        if tag == "ctree":
            return self._tree_forward(table, "ctree", u, header, v)
        if tag == "atree":
            return self._tree_forward(table, "atree", u, header, v)
        if tag == "torep":
            rep = header[1]
            if u == rep:
                t1h = self.technique.start(table, u, v)
                port, t1h = self.technique.step(table, u, t1h, v)
                return Forward(port, ("t1", t1h))
            return Forward(table.get("ball", rep), header)
        if tag == "t1":
            port, t1h = self.technique.step(table, u, header[1], v)
            if port is None:
                return Deliver()
            return Forward(port, ("t1", t1h))
        raise ValueError(f"unknown header tag {tag!r}")

    # ------------------------------------------------------------------
    def _enter_cluster_tree(self, table, u: int, w: int, v: int) -> RouteAction:
        """At the intersection vertex ``w``: fetch ``v``'s cluster-tree label."""
        tlabel = table.get("clabel", v)
        if tlabel is None:
            raise RuntimeError(
                f"{u} stores no cluster label for {v}; intersection broken"
            )
        header = ("ctree", w, tlabel)
        return self._tree_forward(table, "ctree", u, header, v)

    def _tree_forward(self, table, category: str, u: int, header, v: int) -> RouteAction:
        root, tlabel = header[1], header[2]
        record = table.get(category, root)
        if record is None:
            raise RuntimeError(f"{u} lacks a {category} record for {root}")
        port = tree_step(record, tlabel)
        if port is None:
            if u != v:
                raise RuntimeError(f"tree delivery at {u} but target is {v}")
            return Deliver()
        return Forward(port, header)
