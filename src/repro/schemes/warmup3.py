"""The (3+eps)-stretch warm-up scheme (Section 4, first application).

Construction (``q = sqrt(n)``):

* every vertex stores its ball ``B(u, q̃)`` (first-edge ports),
* a Lemma 6 coloring with ``q`` colors over the balls induces the balanced
  partition ``U`` of color classes, each of size ``Õ(sqrt n)``,
* Technique 1 (Lemma 7) is built over ``U`` with ``eps/2``,
* every vertex remembers, per color, one ball member of that color.

Routing ``u -> v``: deliver from the ball when ``v ∈ B(u, q̃)``; otherwise
hop to the ball-local representative ``w`` with ``c(w) = c(v)`` (at most
``d(u, v)``away, since ``v`` is outside the ball) and route ``w -> v``
inside the color class via Lemma 7.  Total:
``d(u,w) + (1+eps/2) d(w,v) <= (3+eps) d(u,v)``.

The label of ``v`` is ``(v, c(v))`` — 2 words.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from ..core.technique1 import Technique1
from ..graph.core import Graph
from ..graph.metric import MetricView
from ..routing.model import Deliver, Forward, RouteAction
from ..routing.ports import PortAssignment
from ..structures.coloring import color_classes
from .base import SchemeBase

__all__ = ["Warmup3Scheme"]


class Warmup3Scheme(SchemeBase):
    """Labeled (3+eps)-stretch scheme with ``Õ(sqrt(n)/eps)`` tables."""

    name = "warm-up 3+eps (Sec. 4)"
    #: multiplicative stretch guarantee (additive 0)
    def stretch_bound(self) -> float:
        return 3.0 + self.eps

    def __init__(
        self,
        graph: Graph,
        eps: float = 0.5,
        *,
        alpha: float = 1.0,
        q: Optional[int] = None,
        seed: int = 0,
        ports: Optional[PortAssignment] = None,
        metric: Optional[MetricView] = None,
        substrate: Optional[Any] = None,
    ) -> None:
        super().__init__(
            graph, ports=ports, metric=metric, substrate=substrate
        )
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.eps = eps
        n = graph.n
        self.q = q if q is not None else max(1, round(math.sqrt(n)))

        self.family = self._build_balls(self.q, alpha)
        self._install_ball_ports(self.family)

        self.colors = self._find_coloring(self.family, self.q, seed)
        classes = color_classes(self.colors, self.q)

        self.technique = Technique1(
            self.metric,
            self.family,
            self.ports,
            classes,
            eps / 2.0,
            hitting=self._ball_hitting_set(self.family),
            tree_factory=self._global_tree_routing,
            tree_prefetch=self._prefetch_global_trees,
            seed=seed,
        )
        for table in self._tables:
            self.technique.install(table)

        # Per-color ball representative (Lemma 6 guarantees existence).
        for u in graph.vertices():
            table = self._tables[u]
            needed = set(range(self.q))
            for w in self.family.ball(u):
                c = self.colors[w]
                if c in needed:
                    table.put("colorrep", c, w)
                    needed.discard(c)
            if needed:
                raise RuntimeError(
                    f"B({u}) misses colors {sorted(needed)} despite Lemma 6"
                )

        for v in graph.vertices():
            self._labels[v] = (v, self.colors[v])

    # ------------------------------------------------------------------
    def shard_categories(self) -> frozenset:
        """Categories ``step`` reads: ball ports, color reps, Lemma 7."""
        return frozenset(
            {"ball", "colorrep",
             self.technique.cat_seq, self.technique.cat_htree}
        )

    def routing_params(self) -> dict:
        return {"eps": self.eps, "q": self.q}

    def _restore_routing(self, params: dict) -> None:
        self.eps = params["eps"]
        self.q = params.get("q")
        self.technique = Technique1.stepper(self.ports)

    # ------------------------------------------------------------------
    def step(self, u: int, header: Any, dest_label: Any) -> RouteAction:
        v, v_color = dest_label
        if u == v:
            return Deliver()
        table = self.table_of(u)
        if header is None:
            ball_port = table.get("ball", v)
            if ball_port is not None:
                return Forward(ball_port, ("ball",))
            rep = table.get("colorrep", v_color)
            if rep == u:
                t1h = self.technique.start(table, u, v)
                port, t1h = self.technique.step(table, u, t1h, v)
                return Forward(port, ("t1", t1h))
            return Forward(table.get("ball", rep), ("torep", rep))
        tag = header[0]
        if tag == "ball":
            return Forward(table.get("ball", v), header)
        if tag == "torep":
            rep = header[1]
            if u == rep:
                t1h = self.technique.start(table, u, v)
                port, t1h = self.technique.step(table, u, t1h, v)
                return Forward(port, ("t1", t1h))
            return Forward(table.get("ball", rep), header)
        if tag == "t1":
            port, t1h = self.technique.step(table, u, header[1], v)
            if port is None:
                return Deliver()
            return Forward(port, ("t1", t1h))
        raise ValueError(f"unknown header tag {tag!r}")
