"""Theorems 13 and 15: the generalized (3 ∓ 2/l + eps, 2)-stretch schemes.

These interpolate between the paper's small-stretch results and the
Pătraşcu–Thorup–Roditty distance oracles.  For an integer ``l > 1``:

* **Theorem 13** (minus): stretch ``(3 - 2/l + eps, 2)`` with
  ``Õ(l n^{l/(2l-1)}/eps)`` tables (``l=2`` → ``(2+eps,2)``@``n^{2/3}``,
  ``l=3`` → ``(2 1/3+eps,2)``@``n^{3/5}``),
* **Theorem 15** (plus): stretch ``(3 + 2/l + eps, 2)`` with
  ``Õ(l n^{l/(2l+1)}/eps)`` tables (``l=2`` → ``(4+eps,2)``@``n^{2/5}``).

Shared machinery (``q = n^{1/(2l∓1)}``, levels ``i = 0..l``):

* nested balls ``B_i(u) = B(u, q̃^i)`` with radii ``a_i = r_u(q̃^i)``,
* Lemma 4 landmark sets ``L_i`` with ``|C_{L_i}(w)| = O(q^i)``; per-level
  cluster trees (records at members, member labels at owners),
* per-level intersection tables: the best common vertex of
  ``B_i(u)`` and ``B_{L_{l-i}}(v)`` (exact delivery when nonempty — the
  Theorem 10 argument applies per level),
* per-instance Lemma 6 colorings of ``B_i`` with ``q^i`` colors, balanced
  partitions of the paired ``L_j``, and one Technique 2 instance each,
* per-instance color representatives.

Routing without an intersection picks the instance ``j`` minimizing
``a_j + b_{pair(j)}`` (``b_i = d(v, p_{L_i}(v)) - 1``, from the label);
Lemma 12/14 bound that minimum by ``(1 ∓ 1/l) d``, which yields the stated
stretch after the ``(2+eps')``-weighted detour through the representative
and the landmark.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..core.technique2 import Technique2
from ..graph.core import Graph
from ..graph.metric import MetricView
from ..graph.trees import RootedTree
from ..routing.model import Deliver, Forward, RouteAction
from ..routing.ports import PortAssignment
from ..routing.tree_routing import TreeRouting, tree_step
from ..structures.balls import BallFamily, ball_size_parameter
from ..structures.coloring import color_classes
from .base import SchemeBase

if TYPE_CHECKING:
    from ..structures.bunches import BunchStructure

__all__ = ["GeneralMinusScheme", "GeneralPlusScheme"]


class _GeneralizedScheme(SchemeBase):
    """Common construction of Theorems 13 (sign=-1) and 15 (sign=+1)."""

    #: -1 for Theorem 13, +1 for Theorem 15
    sign: int = -1

    def __init__(
        self,
        graph: Graph,
        ell: int = 2,
        eps: float = 1.0,
        *,
        alpha: float = 0.5,
        q: Optional[float] = None,
        seed: int = 0,
        ports: Optional[PortAssignment] = None,
        metric: Optional[MetricView] = None,
        substrate: Optional[Any] = None,
    ) -> None:
        super().__init__(
            graph, ports=ports, metric=metric, substrate=substrate
        )
        if not graph.is_unweighted():
            raise ValueError("Theorems 13/15 are stated for unweighted graphs")
        if ell < 2:
            raise ValueError(f"the generalization needs l >= 2, got {ell}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.ell = ell
        self.eps = eps
        n = graph.n
        denom = 2 * ell + self.sign
        self.q = q if q is not None else max(1.5, n ** (1.0 / denom))

        # Instance index sets (paper's i ranges) and target pairing.
        self._init_instances()

        # --- nested balls ---------------------------------------------
        self.families: List[BallFamily] = []
        sizes = []
        for i in range(ell + 1):
            size = ball_size_parameter(n, self.q ** i, alpha)
            if sizes:
                size = max(size, sizes[-1])  # enforce nesting
            sizes.append(size)
            self.families.append(self._ball_family_of_size(size))
        self.family = self.families[ell]
        self._install_ball_ports(self.family)
        for u in graph.vertices():
            for i in range(ell + 1):
                self._tables[u].put(
                    "radius", i, int(round(self.families[i].radius(u)))
                )

        # --- landmark sets L_i with clusters O(q^i) ---------------------
        self.landmark_sets: List[List[int]] = []
        self.bunches: List[BunchStructure] = []
        for i in range(ell + 1):
            s = max(1.0, n / (self.q ** i))
            li = self._sample_landmarks(s, seed + 31 * i)
            if not li:
                li = [0]
            self.landmark_sets.append(li)
            self.bunches.append(self._bunch_structure(li))

        # Cluster trees per level.
        self._cluster_trees: List[Dict[int, TreeRouting]] = []
        for i in range(ell + 1):
            level_trees: Dict[int, TreeRouting] = {}
            for w in graph.vertices():
                members = self.bunches[i].cluster(w)
                if not members:
                    continue
                tree = self._tree_routing(
                    w, members,
                    lambda w=w, members=members: RootedTree(
                        self.metric.restricted_spt_parents(w, members)
                    ),
                )
                level_trees[w] = tree
                for v in members:
                    self._tables[v].put(f"ctree{i}", w, tree.record_of(v))
                    self._tables[w].put(f"clabel{i}", v, tree.label_of(v))
            self._cluster_trees.append(level_trees)

        # Intersection tables: best w in B_i(u) ∩ B_{L_{l-i}}(v), per i.
        for u in graph.vertices():
            table = self._tables[u]
            for i in range(ell + 1):
                bunches = self.bunches[ell - i]
                best: Dict[int, Tuple[float, int]] = {}
                for w in self.families[i].ball(u):
                    through = self.metric.d(u, w)
                    for v in bunches.cluster(w):
                        cand = (through + self.metric.d(w, v), w)
                        if v not in best or cand < best[v]:
                            best[v] = cand
                for v, (_, w) in best.items():
                    table.put(f"xsect{i}", v, w)

        # Colorings, balanced target partitions and Technique 2 instances.
        self.colorings: Dict[int, List[int]] = {}
        self.techniques: Dict[int, Technique2] = {}
        self._target_class: Dict[int, Dict[int, int]] = {}
        for i in self.instances:
            colors_count = max(1, int(round(self.q ** i)))
            coloring = self._find_coloring(
                self.families[i], colors_count, seed + 97 * i
            )
            self.colorings[i] = coloring
            classes = color_classes(coloring, colors_count)

            k = self._pair(i)
            lk = self.landmark_sets[k]
            parts: List[List[int]] = [[] for _ in range(colors_count)]
            part_of: Dict[int, int] = {}
            per_part = -(-len(lk) // colors_count)
            for idx, w in enumerate(lk):
                part = min(idx // per_part, colors_count - 1)
                parts[part].append(w)
                part_of[w] = part
            self._target_class[k] = part_of

            technique = Technique2(
                self.metric,
                self.families[i],
                self.ports,
                classes,
                parts,
                eps / (4.0 if self.sign > 0 else 3.0),
                prefix=f"t2.{i}:",
                validate_hitting=False,
            )
            self.techniques[i] = technique
            for table in self._tables:
                technique.install(table)

            for u in graph.vertices():
                table = self._tables[u]
                needed = set(range(colors_count))
                for w in self.families[i].ball(u):
                    c = coloring[w]
                    if c in needed:
                        table.put(f"rep{i}", c, w)
                        needed.discard(c)
                if needed:
                    raise RuntimeError(
                        f"B_{i}({u}) misses colors {sorted(needed)}"
                    )

        # Labels: per target level k, the pivot, its part, its distance and
        # the first edge toward v.
        for v in graph.vertices():
            per_level = {}
            for k in self.target_levels:
                p = self.bunches[k].pivot(v)
                d = int(round(self.bunches[k].distance_to_landmarks(v)))
                z = None if p == v else self.metric.next_hop(p, v)
                per_level[k] = (p, self._target_class[k].get(p, 0), d, z)
            self._labels[v] = (v, per_level)

    # ------------------------------------------------------------------
    def _init_instances(self) -> None:
        """Instance index sets (paper's ``i`` ranges) and target pairing."""
        ell = self.ell
        if self.sign < 0:
            self.instances = list(range(ell))       # i in {0..l-1}
            self._pair = lambda i: ell - i - 1      # targets L_{l-i-1}
        else:
            self.instances = list(range(1, ell + 1))  # i in {1..l}
            self._pair = lambda i: ell - i + 1        # targets L_{l-i+1}
        self.target_levels = sorted({self._pair(i) for i in self.instances})

    # ------------------------------------------------------------------
    def stretch_bound(self) -> Tuple[float, float]:
        """``(alpha, beta)`` of the guaranteed ``alpha*d + beta`` bound."""
        return (3.0 + self.sign * 2.0 / self.ell + self.eps, 2.0)

    # ------------------------------------------------------------------
    def shard_categories(self) -> frozenset:
        """Per-level trees/intersections/reps plus the shared ball state."""
        cats = {"ball", "radius"}
        for i in range(self.ell + 1):
            cats.update({f"ctree{i}", f"clabel{i}", f"xsect{i}"})
        for i in self.instances:
            cats.add(f"rep{i}")
            cats.add(self.techniques[i].cat_seq)
        return frozenset(cats)

    def routing_params(self) -> dict:
        return {"ell": self.ell, "eps": self.eps}

    def _restore_routing(self, params: dict) -> None:
        self.ell = params["ell"]
        self.eps = params["eps"]
        self._init_instances()
        self.techniques = {
            i: Technique2.stepper(self.ports, prefix=f"t2.{i}:")
            for i in self.instances
        }

    # ------------------------------------------------------------------
    def step(self, u: int, header: Any, dest_label: Any) -> RouteAction:
        v, per_level = dest_label
        if u == v:
            return Deliver()
        table = self.table_of(u)

        if header is None:
            ball_port = table.get("ball", v)
            if ball_port is not None:
                return Forward(ball_port, ("ball",))
            for i in range(self.ell + 1):
                w = table.get(f"xsect{i}", v)
                if w is not None:
                    lvl = self.ell - i
                    if w == u:
                        return self._enter_cluster_tree(table, u, lvl, w, v)
                    return Forward(table.get("ball", w), ("tox", lvl, w))
            j = self._choose_instance(table, per_level)
            k = self._pair(j)
            p, part, _, _ = per_level[k]
            rep = table.get(f"rep{j}", part)
            if rep == u:
                return self._start_t2(table, u, j, k, per_level, v)
            return Forward(table.get("ball", rep), ("torep", j, rep))

        tag = header[0]
        if tag == "ball":
            return Forward(table.get("ball", v), header)
        if tag == "tox":
            lvl, w = header[1], header[2]
            if u == w:
                return self._enter_cluster_tree(table, u, lvl, w, v)
            return Forward(table.get("ball", w), header)
        if tag == "torep":
            j, rep = header[1], header[2]
            if u == rep:
                return self._start_t2(table, u, j, self._pair(j), per_level, v)
            return Forward(table.get("ball", rep), header)
        if tag == "t2":
            j = header[1]
            k = self._pair(j)
            p = per_level[k][0]
            port, t2h = self.techniques[j].step(table, u, header[2], p)
            if port is not None:
                return Forward(port, ("t2", j, t2h))
            z = per_level[k][3]
            return Forward(self.ports.port_to(u, z), ("atz", k))
        if tag == "atz":
            k = header[1]
            return self._enter_cluster_tree(table, u, k, u, v)
        if tag == "ctree":
            return self._tree_forward(table, u, header, v)
        raise ValueError(f"unknown header tag {tag!r}")

    # ------------------------------------------------------------------
    def _choose_instance(self, table, per_level) -> int:
        """``argmin_j a_j + b_{pair(j)}``, ties to the highest index."""
        best_j = None
        best_val = None
        for j in self.instances:
            a_j = table.get("radius", j)
            k = self._pair(j)
            d_k = per_level[k][2]
            b_k = 0 if d_k == 0 else d_k - 1
            val = a_j + b_k
            if best_val is None or val <= best_val:
                best_val = val
                best_j = j
        return best_j

    def _start_t2(self, table, u: int, j: int, k: int, per_level, v: int) -> RouteAction:
        p, _, _, z = per_level[k]
        if u == p:
            if z is None:
                raise RuntimeError(f"label of {v} lacks the level-{k} edge")
            return Forward(self.ports.port_to(u, z), ("atz", k))
        t2h = self.techniques[j].start(table, u, p)
        port, t2h = self.techniques[j].step(table, u, t2h, p)
        return Forward(port, ("t2", j, t2h))

    def _enter_cluster_tree(self, table, u: int, lvl: int, root: int, v: int) -> RouteAction:
        tlabel = table.get(f"clabel{lvl}", v)
        if tlabel is None:
            raise RuntimeError(
                f"{u} stores no level-{lvl} cluster label for {v}"
            )
        return self._tree_forward(table, u, ("ctree", lvl, root, tlabel), v)

    def _tree_forward(self, table, u: int, header, v: int) -> RouteAction:
        lvl, root, tlabel = header[1], header[2], header[3]
        record = table.get(f"ctree{lvl}", root)
        if record is None:
            raise RuntimeError(f"{u} lacks a ctree{lvl} record for {root}")
        port = tree_step(record, tlabel)
        if port is None:
            if u != v:
                raise RuntimeError(f"tree delivery at {u} but target is {v}")
            return Deliver()
        return Forward(port, header)


class GeneralMinusScheme(_GeneralizedScheme):
    """Theorem 13: (3 - 2/l + eps, 2)-stretch, ``Õ(l n^{l/(2l-1)}/eps)``."""

    sign = -1

    def __init__(self, graph: Graph, ell: int = 2, eps: float = 1.0, **kwargs) -> None:
        super().__init__(graph, ell, eps, **kwargs)
        self.name = f"Thm 13 (3-2/{ell}+eps,2)"


class GeneralPlusScheme(_GeneralizedScheme):
    """Theorem 15: (3 + 2/l + eps, 2)-stretch, ``Õ(l n^{l/(2l+1)}/eps)``."""

    sign = +1

    def __init__(self, graph: Graph, ell: int = 2, eps: float = 1.0, **kwargs) -> None:
        super().__init__(graph, ell, eps, **kwargs)
        self.name = f"Thm 15 (3+2/{ell}+eps,2)"
