"""Theorem 11: (5+eps)-stretch routing for weighted graphs.

Space ``Õ(n^{1/3} log D / eps)`` per vertex — the paper's headline result,
breaking the ``sqrt(n)`` barrier for stretch below 7 and almost matching
the 5-stretch ``Õ(n^{4/3})``-space distance oracle of Thorup–Zwick.

Construction (``q = n^{1/3}``):

* balls ``B(u, q̃)`` with first-edge ports,
* Lemma 4 landmark set ``A`` (size ``Õ(n^{2/3})``, clusters ``O(n^{1/3})``)
  with cluster trees ``T_{C_A(w)}`` (records at members, member labels at
  the owner),
* a Lemma 6 coloring with ``q`` colors inducing ``U``, an arbitrary
  balanced partition ``W`` of ``A``, and **Technique 2** (Lemma 8) routing
  from ``U_i`` into ``W_i``,
* per color, one ball representative.

Routing ``u -> v``:

1. ``v ∈ B(u, q̃)`` → ball routing (exact);
2. ``v ∈ C_A(u)`` → own cluster tree (exact);
3. otherwise hop to the ball representative ``w`` with
   ``c(w) = α(p_A(v))``, ride Lemma 8 from ``w`` to the landmark
   ``p_A(v)``, forward over the first edge ``(p_A(v), z)`` from ``v``'s
   label, and finish on the cluster tree ``T_{C_A(z)}`` (``v ∈ C_A(z)``,
   and ``z`` stores ``v``'s tree label).

Length: ``d(u,w) + (1+eps/3) d(w, p_A(v)) + d(p_A(v), v)``; with
``d(u,w) <= d(u,v)`` (``v`` outside the ball), ``d(v,p_A(v)) <= d(u,v)``
(``v`` outside ``C_A(u)``) and the triangle inequality this is at most
``(5 + eps) d(u,v)``.

The label of ``v`` is ``(v, p_A(v), α(p_A(v)), z)`` — 4 words, matching
the paper's ``O(log n)``-bit labels.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..core.technique2 import Technique2
from ..graph.core import Graph
from ..graph.metric import MetricView
from ..routing.model import Deliver, Forward, RouteAction
from ..routing.ports import PortAssignment
from ..routing.tree_routing import tree_step
from ..structures.coloring import color_classes
from .base import SchemeBase

__all__ = ["Stretch5PlusScheme"]


class Stretch5PlusScheme(SchemeBase):
    """Theorem 11: labeled (5+eps)-stretch, ``Õ(n^{1/3} log D/eps)`` tables."""

    name = "Thm 11 (5+eps)"

    def stretch_bound(self) -> float:
        return 5.0 + self.eps

    def __init__(
        self,
        graph: Graph,
        eps: float = 0.6,
        *,
        alpha: float = 1.0,
        q: Optional[int] = None,
        seed: int = 0,
        ports: Optional[PortAssignment] = None,
        metric: Optional[MetricView] = None,
        substrate: Optional[Any] = None,
    ) -> None:
        super().__init__(
            graph, ports=ports, metric=metric, substrate=substrate
        )
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.eps = eps
        n = graph.n
        self.q = q if q is not None else max(1, round(n ** (1.0 / 3.0)))

        self.family = self._build_balls(self.q, alpha)
        self._install_ball_ports(self.family)

        self.landmarks = self._sample_landmarks(n / self.q, seed)
        if not self.landmarks:
            self.landmarks = [0]
        self.bunches = self._bunch_structure(self.landmarks)

        for w in graph.vertices():
            members = self.bunches.cluster(w)
            if not members:
                continue
            tree = self._tree_routing(
                w, members, lambda w=w: self.bunches.cluster_tree(w)
            )
            for v in members:
                self._tables[v].put("ctree", w, tree.record_of(v))
                self._tables[w].put("clabel", v, tree.label_of(v))

        self.colors = self._find_coloring(self.family, self.q, seed)
        classes = color_classes(self.colors, self.q)

        # Arbitrary balanced partition W of the landmark set A.
        self._target_class: dict[int, int] = {}
        target_parts: List[List[int]] = [[] for _ in range(self.q)]
        per_part = -(-len(self.landmarks) // self.q)  # ceil
        for i, w in enumerate(self.landmarks):
            part = min(i // per_part, self.q - 1)
            target_parts[part].append(w)
            self._target_class[w] = part

        self.technique = Technique2(
            self.metric,
            self.family,
            self.ports,
            classes,
            target_parts,
            eps / 3.0,
            validate_hitting=False,  # guaranteed by find_coloring
        )
        for table in self._tables:
            self.technique.install(table)

        for u in graph.vertices():
            table = self._tables[u]
            needed = set(range(self.q))
            for w in self.family.ball(u):
                c = self.colors[w]
                if c in needed:
                    table.put("colorrep", c, w)
                    needed.discard(c)
            if needed:
                raise RuntimeError(
                    f"B({u}) misses colors {sorted(needed)} despite Lemma 6"
                )

        for v in graph.vertices():
            p = self.bunches.pivot(v)
            z = None if p == v else self.metric.next_hop(p, v)
            self._labels[v] = (v, p, self._target_class[p], z)

    # ------------------------------------------------------------------
    def shard_categories(self) -> frozenset:
        """Ball ports, cluster trees + owner labels, reps, Lemma 8."""
        return frozenset(
            {"ball", "ctree", "clabel", "colorrep", self.technique.cat_seq}
        )

    def routing_params(self) -> dict:
        return {"eps": self.eps, "q": self.q}

    def _restore_routing(self, params: dict) -> None:
        self.eps = params["eps"]
        self.q = params.get("q")
        self.technique = Technique2.stepper(self.ports)

    # ------------------------------------------------------------------
    def step(self, u: int, header: Any, dest_label: Any) -> RouteAction:
        v, v_pivot, v_part, v_z = dest_label
        if u == v:
            return Deliver()
        table = self.table_of(u)

        if header is None:
            ball_port = table.get("ball", v)
            if ball_port is not None:
                return Forward(ball_port, ("ball",))
            own_label = table.get("clabel", v)
            if own_label is not None:
                # v is in u's own cluster: exact delivery on T_{C_A(u)}.
                return self._tree_forward(table, u, ("ctree", u, own_label), v)
            rep = table.get("colorrep", v_part)
            if rep == u:
                return self._start_t2(table, u, v_pivot, v, v_z)
            return Forward(table.get("ball", rep), ("torep", rep))

        tag = header[0]
        if tag == "ball":
            return Forward(table.get("ball", v), header)
        if tag == "torep":
            rep = header[1]
            if u == rep:
                return self._start_t2(table, u, v_pivot, v, v_z)
            return Forward(table.get("ball", rep), header)
        if tag == "t2":
            port, t2h = self.technique.step(table, u, header[1], v_pivot)
            if port is not None:
                return Forward(port, ("t2", t2h))
            # Arrived at the landmark p_A(v): cross the first label edge.
            return Forward(self.ports.port_to(u, v_z), ("atz",))
        if tag == "atz":
            tlabel = table.get("clabel", v)
            if tlabel is None:
                raise RuntimeError(
                    f"{u} stores no cluster label for {v}; v not in C_A(z)"
                )
            return self._tree_forward(table, u, ("ctree", u, tlabel), v)
        if tag == "ctree":
            return self._tree_forward(table, u, header, v)
        raise ValueError(f"unknown header tag {tag!r}")

    # ------------------------------------------------------------------
    def _start_t2(self, table, u: int, pivot: int, v: int, v_z) -> RouteAction:
        if u == pivot:
            # Already at the landmark; jump straight to the label edge.
            if v_z is None:
                raise RuntimeError(f"label of {v} lacks the pivot edge")
            return Forward(self.ports.port_to(u, v_z), ("atz",))
        t2h = self.technique.start(table, u, pivot)
        port, t2h = self.technique.step(table, u, t2h, pivot)
        return Forward(port, ("t2", t2h))

    def _tree_forward(self, table, u: int, header, v: int) -> RouteAction:
        root, tlabel = header[1], header[2]
        record = table.get("ctree", root)
        if record is None:
            raise RuntimeError(f"{u} lacks a cluster-tree record for {root}")
        port = tree_step(record, tlabel)
        if port is None:
            if u != v:
                raise RuntimeError(f"tree delivery at {u} but target is {v}")
            return Deliver()
        return Forward(port, header)
