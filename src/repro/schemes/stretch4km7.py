"""Theorem 16: (4k-7+eps)-stretch routing for weighted graphs.

Improves the Thorup–Zwick (4k-5) scheme by two stretch units at the same
``Õ(n^{1/k})`` table size (times ``log D / eps``).  The idea: the expensive
TZ case is ``i = k-1`` (delivery through the topmost pivot); Theorem 16
replaces it by Lemma 8 — instead of paying ``2 d(u, p_{k-1}(v))`` the
message rides a ``(1+eps')``-stretch path to the *level-(k-2)* pivot, whose
tree then delivers.

Construction = the full TZ (4k-5) structure (hierarchy, cluster trees,
own-cluster labels) plus:

* balls ``B(u, q̃)`` (``q = n^{1/k}``) with first-edge ports,
* a Lemma 6 coloring with ``q`` colors inducing ``U``,
* an arbitrary balanced partition ``W`` of ``A_{k-2}`` into ``q`` parts,
* Technique 2 from ``U_i`` into ``W_i``,
* a per-color ball representative at every vertex.

The label is the TZ label plus ``α(p_{k-2}(v))`` — the index of the part
holding ``v``'s level-(k-2) pivot.

Routing ``u -> v``: ball hit → exact; own cluster → exact; smallest
``i <= k-2`` with ``u ∈ C(p_i(v))`` → TZ tree (``<= (4k-9) d``); otherwise
color representative → Lemma 8 to ``p_{k-2}(v)`` → tree
(``<= (4k-7+eps) d``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.technique2 import Technique2
from ..graph.core import Graph
from ..graph.metric import MetricView
from ..graph.trees import RootedTree
from ..routing.model import Deliver, Forward, RouteAction
from ..routing.ports import PortAssignment
from ..routing.tree_routing import TreeRouting, tree_step
from ..structures.coloring import color_classes
from .base import SchemeBase

__all__ = ["Stretch4kMinus7Scheme"]


class Stretch4kMinus7Scheme(SchemeBase):
    """Theorem 16: labeled (4k-7+eps)-stretch, ``Õ(n^{1/k} log D/eps)`` tables."""

    def stretch_bound(self) -> float:
        return 4.0 * self.k - 7.0 + self.eps

    def __init__(
        self,
        graph: Graph,
        k: int = 4,
        eps: float = 1.0,
        *,
        alpha: float = 1.0,
        q: Optional[int] = None,
        seed: int = 0,
        ports: Optional[PortAssignment] = None,
        metric: Optional[MetricView] = None,
        substrate: Optional[Any] = None,
    ) -> None:
        super().__init__(
            graph, ports=ports, metric=metric, substrate=substrate
        )
        if k < 3:
            raise ValueError(f"Theorem 16 needs k >= 3, got {k}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.k = k
        self.eps = eps
        self.name = f"Thm 16 4k-7+eps (k={k})"
        n = graph.n
        self.q = q if q is not None else max(1, round(n ** (1.0 / k)))

        self.hierarchy = self._sampled_hierarchy(k, seed)

        # --- TZ (4k-5) substrate -------------------------------------
        self._trees: Dict[int, TreeRouting] = {}
        for w in graph.vertices():
            members = self.hierarchy.cluster(w)
            if not members:
                continue
            tree = self._tree_routing(
                w, members,
                lambda w=w, members=members: RootedTree(
                    self.metric.restricted_spt_parents(w, members)
                ),
            )
            self._trees[w] = tree
            for v in members:
                self._tables[v].put("tztree", w, tree.record_of(v))
        level1 = set(self.hierarchy.level(1))
        for u in graph.vertices():
            if u in level1 or u not in self._trees:
                continue
            tree = self._trees[u]
            for v in self.hierarchy.cluster(u):
                self._tables[u].put("c0label", v, tree.label_of(v))

        # --- Theorem 16 additions ------------------------------------
        self.family = self._build_balls(self.q, alpha)
        self._install_ball_ports(self.family)

        self.colors = self._find_coloring(self.family, self.q, seed)
        classes = color_classes(self.colors, self.q)

        ak2 = self.hierarchy.level(k - 2)
        self._target_class: Dict[int, int] = {}
        target_parts: List[List[int]] = [[] for _ in range(self.q)]
        per_part = -(-len(ak2) // self.q)  # ceil
        for i, w in enumerate(ak2):
            part = min(i // per_part, self.q - 1)
            target_parts[part].append(w)
            self._target_class[w] = part

        # eps' such that the total comes out at (4k-7+eps): the Lemma 8 leg
        # is at most (2k-3) d long, so eps' = eps / (2k-3).
        self.technique = Technique2(
            self.metric,
            self.family,
            self.ports,
            classes,
            target_parts,
            eps / (2.0 * k - 3.0),
            validate_hitting=False,
        )
        for table in self._tables:
            self.technique.install(table)

        for u in graph.vertices():
            table = self._tables[u]
            needed = set(range(self.q))
            for w in self.family.ball(u):
                c = self.colors[w]
                if c in needed:
                    table.put("colorrep", c, w)
                    needed.discard(c)
            if needed:
                raise RuntimeError(
                    f"B({u}) misses colors {sorted(needed)} despite Lemma 6"
                )

        for v in graph.vertices():
            entries = []
            for i in range(self.k):
                p = self.hierarchy.pivot(i, v)
                entries.append((p, self._trees[p].label_of(v)))
            pk2 = self.hierarchy.pivot(k - 2, v)
            self._labels[v] = (v, tuple(entries), self._target_class[pk2])

    # ------------------------------------------------------------------
    def shard_categories(self) -> frozenset:
        """TZ trees + own-cluster labels, ball ports, reps, Lemma 8."""
        return frozenset(
            {"ball", "tztree", "c0label", "colorrep",
             self.technique.cat_seq}
        )

    def routing_params(self) -> dict:
        return {"k": self.k, "eps": self.eps, "q": self.q}

    def _restore_routing(self, params: dict) -> None:
        self.k = params["k"]
        self.eps = params["eps"]
        self.q = params.get("q")
        self.name = f"Thm 16 4k-7+eps (k={self.k})"
        self.technique = Technique2.stepper(self.ports)

    # ------------------------------------------------------------------
    def step(self, u: int, header: Any, dest_label: Any) -> RouteAction:
        v, entries, v_part = dest_label
        if u == v:
            return Deliver()
        table = self.table_of(u)

        if header is None:
            ball_port = table.get("ball", v)
            if ball_port is not None:
                return Forward(ball_port, ("ball",))
            own = table.get("c0label", v)
            if own is not None:
                return self._tree_forward(table, u, ("tree", u, own), v)
            for i in range(self.k - 1):
                p, tlabel = entries[i]
                if table.has("tztree", p):
                    return self._tree_forward(table, u, ("tree", p, tlabel), v)
            # i = k-1 case: color representative + Lemma 8 to p_{k-2}(v).
            rep = table.get("colorrep", v_part)
            pk2 = entries[self.k - 2][0]
            if rep == u:
                return self._start_t2(table, u, pk2, entries, v)
            return Forward(table.get("ball", rep), ("torep", rep))

        tag = header[0]
        if tag == "ball":
            return Forward(table.get("ball", v), header)
        if tag == "torep":
            rep = header[1]
            pk2 = entries[self.k - 2][0]
            if u == rep:
                return self._start_t2(table, u, pk2, entries, v)
            return Forward(table.get("ball", rep), header)
        if tag == "t2":
            pk2, tlabel = entries[self.k - 2]
            port, t2h = self.technique.step(table, u, header[1], pk2)
            if port is not None:
                return Forward(port, ("t2", t2h))
            # Arrived at p_{k-2}(v): deliver on its cluster tree.
            return self._tree_forward(table, u, ("tree", pk2, tlabel), v)
        if tag == "tree":
            return self._tree_forward(table, u, header, v)
        raise ValueError(f"unknown header tag {tag!r}")

    # ------------------------------------------------------------------
    def _start_t2(self, table, u: int, pk2: int, entries, v: int) -> RouteAction:
        if u == pk2:
            tlabel = entries[self.k - 2][1]
            return self._tree_forward(table, u, ("tree", pk2, tlabel), v)
        t2h = self.technique.start(table, u, pk2)
        port, t2h = self.technique.step(table, u, t2h, pk2)
        return Forward(port, ("t2", t2h))

    def _tree_forward(self, table, u: int, header, v: int) -> RouteAction:
        root, tlabel = header[1], header[2]
        record = table.get("tztree", root)
        if record is None:
            raise RuntimeError(f"{u} lacks a tztree record for {root}")
        port = tree_step(record, tlabel)
        if port is None:
            if u != v:
                raise RuntimeError(f"tree delivery at {u} but target is {v}")
            return Deliver()
        return Forward(port, header)
