"""The paper's routing schemes (one module per theorem)."""

from .base import SchemeBase
from .generalized import GeneralMinusScheme, GeneralPlusScheme
from .name_independent import NameIndependent3Eps
from .stretch2plus1 import Stretch2Plus1Scheme
from .stretch4km7 import Stretch4kMinus7Scheme
from .stretch5plus import Stretch5PlusScheme
from .warmup3 import Warmup3Scheme

__all__ = [
    "SchemeBase",
    "GeneralMinusScheme",
    "GeneralPlusScheme",
    "NameIndependent3Eps",
    "Stretch2Plus1Scheme",
    "Stretch4kMinus7Scheme",
    "Stretch5PlusScheme",
    "Warmup3Scheme",
]
