"""Combinatorial substrates: balls, hitting sets, sampling, coloring, bunches."""

from .balls import BallFamily, ball_size_parameter
from .bunches import BunchStructure
from .coloring import (
    ColoringError,
    color_classes,
    find_coloring,
    find_hash_coloring,
    hash_color,
    verify_coloring,
)
from .hitting_set import greedy_hitting_set, random_hitting_set, verify_hitting_set
from .sampling import cluster_sizes, sample_cluster_bounded

__all__ = [
    "BallFamily",
    "ball_size_parameter",
    "BunchStructure",
    "ColoringError",
    "color_classes",
    "find_coloring",
    "find_hash_coloring",
    "hash_color",
    "verify_coloring",
    "greedy_hitting_set",
    "random_hitting_set",
    "verify_hitting_set",
    "cluster_sizes",
    "sample_cluster_bounded",
]
