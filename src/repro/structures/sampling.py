"""Cluster-bounded sampling (Lemma 4, Thorup–Zwick's ``center`` algorithm).

Given a parameter ``s``, construct ``A ⊆ V`` with expected size
``O(s log n)`` such that every cluster ``C_A(w) = {v : d(w,v) < d(v,A)}``
has at most ``4n/s`` vertices.  The algorithm repeatedly samples, from the
current set of "oversized-cluster owners" ``W``, each vertex with
probability ``s/|W|``, adds the sample to ``A``, and recomputes ``W``; the
expected number of rounds is ``O(log n)``.

The returned set's postcondition (all clusters within the bound) is checked
before returning — a failed sample is retried, never silently accepted.
"""

from __future__ import annotations

import random
from typing import List

import numpy as np

from ..graph.metric import MetricView

__all__ = ["cluster_sizes", "sample_cluster_bounded"]


def _distance_to_set(metric: MetricView, members: List[int]) -> np.ndarray:
    """``d(v, A)`` for every vertex ``v`` (``inf`` for empty ``A``)."""
    if not members:
        return np.full(metric.n, np.inf)
    # Landmark columns are the landmark rows transposed (symmetry), which
    # keeps this O(|A| * n) memory with a lazy metric.
    return metric.columns(members).min(axis=1)


def cluster_sizes(metric: MetricView, members: List[int]) -> np.ndarray:
    """``|C_A(w)|`` for every ``w`` with ``A = members``.

    ``C_A(w) = {v : d(w, v) < d(v, A)}`` (strict, following the paper).
    Counted blockwise through the metric's row-oriented API so no dense
    ``n x n`` comparison matrix is ever materialized.
    """
    d_to_a = _distance_to_set(metric, members)
    return metric.count_rows_below(d_to_a)


def sample_cluster_bounded(
    metric: MetricView,
    s: float,
    seed: int = 0,
    *,
    bound_factor: float = 4.0,
    max_rounds: int = 200,
) -> List[int]:
    """Lemma 4: a set ``A`` with ``|C_A(w)| <= bound_factor * n / s`` for all w.

    Parameters
    ----------
    metric:
        Exact metric of the graph.
    s:
        Size parameter; the expected size of ``A`` is ``O(s log n)``.
    bound_factor:
        The ``4`` of the paper's ``4n/s`` bound.
    """
    n = metric.n
    if n == 0:
        return []
    if s <= 0:
        raise ValueError(f"sample parameter s must be positive, got {s}")
    bound = bound_factor * n / s
    rng = random.Random(seed)
    a: set[int] = set()
    for _ in range(max_rounds):
        sizes = cluster_sizes(metric, sorted(a))
        oversized = [w for w in range(n) if sizes[w] > bound]
        if not oversized:
            return sorted(a)
        p = min(1.0, s / len(oversized))
        newly = {w for w in oversized if rng.random() < p}
        if not newly:
            # Guarantee progress on unlucky draws.
            newly = {rng.choice(oversized)}
        a |= newly
    raise RuntimeError(
        f"cluster-bounded sampling did not converge in {max_rounds} rounds "
        f"(n={n}, s={s})"
    )
