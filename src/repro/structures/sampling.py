"""Cluster-bounded sampling (Lemma 4, Thorup–Zwick's ``center`` algorithm).

Given a parameter ``s``, construct ``A ⊆ V`` with expected size
``O(s log n)`` such that every cluster ``C_A(w) = {v : d(w,v) < d(v,A)}``
has at most ``4n/s`` vertices.  The algorithm repeatedly samples, from the
current set of "oversized-cluster owners" ``W``, each vertex with
probability ``s/|W|``, adds the sample to ``A``, and recomputes ``W``; the
expected number of rounds is ``O(log n)``.

Cross-round cluster-size cache
------------------------------
Growing ``A`` only shrinks clusters (``A ⊆ A'`` implies
``C_{A'}(w) ⊆ C_A(w)``, because ``d(v, A)`` is pointwise non-increasing and
the membership comparison is strict), so a vertex whose cluster fits the
bound once can never become oversized again.  The sampler exploits this:
each round re-counts only the *previously oversized* owners, through the
metric's bounded-row sweep (no vertex beyond ``max_v d(v, A)`` can be in
any cluster), and maintains ``d(v, A)`` incrementally from the freshly
sampled members' rows.  The first round needs no distance scan at all —
with ``A = ∅`` every cluster is its owner's connected component.  A lazy
metric therefore stops paying one blockwise APSP per sampling round; the
candidate set and the RNG stream are *identical* to the rescan-everything
reference (``use_cache=False``), so both paths return the same set for the
same seed.

The returned set's postcondition (all clusters within the bound) is checked
before returning — a failed sample is retried, never silently accepted.
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

from ..graph.metric import MetricView

__all__ = ["cluster_sizes", "sample_cluster_bounded"]


def _distance_to_set(metric: MetricView, members: List[int]) -> np.ndarray:
    """``d(v, A)`` for every vertex ``v`` (``inf`` for empty ``A``)."""
    if not members:
        return np.full(metric.n, np.inf)
    # Landmark columns are the landmark rows transposed (the canonical
    # row orientation), which keeps this O(|A| * n) memory with a lazy
    # metric.
    return metric.columns(members).min(axis=1)


def cluster_sizes(metric: MetricView, members: List[int]) -> np.ndarray:
    """``|C_A(w)|`` for every ``w`` with ``A = members``.

    ``C_A(w) = {v : d(w, v) < d(v, A)}`` (strict, following the paper).
    Counted through the metric's bounded row-oriented API so no dense
    ``n x n`` comparison matrix is ever materialized.
    """
    d_to_a = _distance_to_set(metric, members)
    return metric.count_rows_below(d_to_a)


def sample_cluster_bounded(
    metric: MetricView,
    s: float,
    seed: int = 0,
    *,
    bound_factor: float = 4.0,
    max_rounds: int = 200,
    use_cache: bool = True,
) -> List[int]:
    """Lemma 4: a set ``A`` with ``|C_A(w)| <= bound_factor * n / s`` for all w.

    Parameters
    ----------
    metric:
        Exact metric of the graph.
    s:
        Size parameter; the expected size of ``A`` is ``O(s log n)``.
    bound_factor:
        The ``4`` of the paper's ``4n/s`` bound.
    use_cache:
        Keep the cross-round cluster-size cache (see the module
        docstring).  ``False`` re-counts every vertex from scratch each
        round — the reference path, kept for differential tests and
        benchmarks; both paths draw identical samples for the same seed.
    """
    n = metric.n
    if n == 0:
        return []
    if s <= 0:
        raise ValueError(f"sample parameter s must be positive, got {s}")
    bound = bound_factor * n / s
    rng = random.Random(seed)
    a: set[int] = set()
    # Cross-round state: d(v, A) so far, and the still-suspect owners
    # (None = first round, where cluster sizes are component sizes).
    thr = np.full(n, np.inf)
    candidates: Optional[List[int]] = None
    for _ in range(max_rounds):
        if not use_cache:
            sizes = cluster_sizes(metric, sorted(a))
            oversized = [w for w in range(n) if sizes[w] > bound]
        elif candidates is None:
            # A = ∅: every cluster is its owner's connected component —
            # component sizes need no distance computation at all.
            comp_sizes = np.zeros(n, dtype=np.int64)
            for comp in metric.graph.connected_components():
                comp_sizes[comp] = len(comp)
            oversized = [w for w in range(n) if comp_sizes[w] > bound]
        else:
            sizes = metric.count_rows_below(thr, sources=candidates)
            oversized = [
                w for w, sz in zip(candidates, sizes) if sz > bound
            ]
        if not oversized:
            return sorted(a)
        p = min(1.0, s / len(oversized))
        newly = {w for w in oversized if rng.random() < p}
        if not newly:
            # Guarantee progress on unlucky draws.
            newly = {rng.choice(oversized)}
        a |= newly
        if use_cache:
            # Fold the fresh members into d(v, A) — |newly| rows instead
            # of re-deriving the whole landmark set — and shrink the
            # suspect set (cluster sizes only ever decrease).
            new_rows = metric.rows(sorted(newly))
            np.minimum(thr, new_rows.min(axis=0), out=thr)
            candidates = oversized
    raise RuntimeError(
        f"cluster-bounded sampling did not converge in {max_rounds} rounds "
        f"(n={n}, s={s})"
    )
