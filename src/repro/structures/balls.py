"""Vertex vicinities ``B(u, ell)`` (Section 2 of the paper).

``B(u, ell)`` is the set of the ``ell`` closest vertices of ``u``, breaking
distance ties by vertex id (the paper's lexicographic rule).  With this tie
breaking, **Property 1** holds for every shortest path: if
``v in B(u, ell)`` and ``w`` lies on a shortest ``u``–``v`` path then
``v in B(w, ell)``.  Proof sketch: ``x <_w v`` implies
``d(u,x) <= d(u,w) + d(w,x) <= d(u,v)`` with ties resolving the same way,
hence ``x <_u v``; so ``v``'s rank at ``w`` is at most its rank at ``u``.
Property 1 is what makes hop-by-hop ball routing (Lemma 2) correct, and it
is re-checked by the property tests in ``tests/structures``.

:class:`BallFamily` materializes the balls of every vertex for one fixed
``ell``, together with the radii ``r_u(ell)``.
"""

from __future__ import annotations

from typing import FrozenSet, List

from ..graph.metric import MetricView

__all__ = ["BallFamily", "ball_size_parameter"]


def ball_size_parameter(n: int, q: float, alpha: float) -> int:
    """The paper's ``q̃ = alpha * q * log n`` ball-size parameter, clamped.

    ``alpha`` is the "large enough constant" of the paper; at reproduction
    scale it is an explicit knob.  The value is clamped to ``[1, n]``.
    """
    import math

    if n <= 0:
        return 0
    log_n = max(math.log2(n), 1.0)
    return max(1, min(n, int(math.ceil(alpha * q * log_n))))


class BallFamily:
    """All balls ``B(u, ell)`` of a graph for one size parameter ``ell``.

    Construction goes through :meth:`MetricView.all_balls` — the batched
    sweep that, with a lazy metric, runs on the CSR kernel's batched
    engines (the delta-stepping candidate queue on weighted graphs, the
    vectorized level BFS on unit weights) with reused flat buffers, never
    materializing the distance matrix; with a dense metric it reads the
    matrix rows it already has.  Either way the balls agree exactly with
    the owning metric's own ``ball``/``row`` view, which is what
    Property 1 and the routing structures rely on.
    """

    def __init__(self, metric: MetricView, ell: int) -> None:
        if ell < 1:
            raise ValueError(f"ball size must be >= 1, got {ell}")
        self.metric = metric
        self.ell = min(ell, metric.n)
        balls, radii = metric.all_balls(self.ell, with_radii=True)
        self._balls: List[List[int]] = balls
        self._radii: List[float] = radii
        self._sets: List[FrozenSet[int]] = [frozenset(b) for b in balls]

    @property
    def n(self) -> int:
        return self.metric.n

    def ball(self, u: int) -> List[int]:
        """``B(u, ell)`` in increasing ``(distance, id)`` order."""
        return self._balls[u]

    def balls(self) -> List[List[int]]:
        """All balls, indexed by vertex (shared list — do not mutate)."""
        return self._balls

    def ball_set(self, u: int) -> FrozenSet[int]:
        """``B(u, ell)`` as a set for O(1) membership."""
        return self._sets[u]

    def contains(self, u: int, v: int) -> bool:
        """Whether ``v in B(u, ell)``."""
        return v in self._sets[u]

    def radius(self, u: int) -> float:
        """The paper's ``r_u(ell)``: the largest radius fully inside the ball."""
        return self._radii[u]

    def boundary_edge(self, u: int, v: int) -> tuple[int, int]:
        """The paper's ``(y, z)``: an edge on a shortest ``u``–``v`` path with
        ``y in B(u, ell)`` and ``z not in B(u, ell)``.

        Requires ``v not in B(u, ell)``.  Walks the deterministic shortest
        path from ``u`` until it exits the ball; Property 1 guarantees the
        prefix stays meaningful and the walk is at most ``n`` steps.
        """
        if self.contains(u, v):
            raise ValueError(f"{v} is inside B({u}); no boundary edge")
        prev = u
        cur = u
        while self.contains(u, cur):
            prev = cur
            cur = self.metric.next_hop(cur, v)
        return prev, cur
