"""Bunches, clusters, pivots and cluster trees (Section 2, after [22]).

For a landmark set ``A ⊆ V``:

* ``p_A(v)`` — the closest landmark of ``v`` (ties to the smaller id),
* ``B_A(v) = {w : d(v,w) < d(v,A)}`` — the *bunch* of ``v``,
* ``C_A(w) = {v : d(w,v) < d(v,A)}`` — the *cluster* of ``w``
  (``w ∈ B_A(v)`` iff ``v ∈ C_A(w)``).

Clusters are shortest-path closed toward their owner, so each nonempty
cluster carries a shortest-path tree ``T_{C_A(w)}`` rooted at ``w``; those
trees are the local-delivery workhorse of Theorems 10, 11, 13, 15 and 16.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..graph.metric import MetricView
from ..graph.trees import RootedTree

__all__ = ["BunchStructure"]


class BunchStructure:
    """All pivots, bunches and clusters for one landmark set ``A``."""

    def __init__(self, metric: MetricView, landmarks: Sequence[int]) -> None:
        self.metric = metric
        self.landmarks = sorted(set(landmarks))
        if not self.landmarks:
            raise ValueError("landmark set must be nonempty")
        n = metric.n
        sub = metric.columns(self.landmarks)  # (n, |A|)
        # p_A(v): closest landmark, ties to the smaller landmark id; the
        # landmark columns are sorted by id, so argmin's first-hit rule is
        # exactly the lexicographic tie break.
        arg = np.argmin(sub, axis=1)
        self._pivot = [self.landmarks[int(arg[v])] for v in range(n)]
        self._d_to_a = sub[np.arange(n), arg]

        self._bunches: List[List[int]] = [[] for _ in range(n)]
        self._clusters: Dict[int, List[int]] = {}
        d_to_a = self._d_to_a
        # Bounded cluster scan: no vertex beyond max d(v, A) can belong
        # to any cluster, so each row only needs the neighbourhood inside
        # that radius — the metric's bounded-row sweep (batched truncated
        # delta-stepping on a lazy metric, plain row reads when dense)
        # instead of a full blockwise APSP.
        limit = float(d_to_a.max()) if n else 0.0
        for w, verts, dists in metric.iter_bounded_rows(limit):
            members = verts[dists < d_to_a[verts]].tolist()
            if members:
                self._clusters[w] = members
            for v in members:
                self._bunches[v].append(w)
        self._trees: Dict[int, RootedTree] = {}

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.metric.n

    def pivot(self, v: int) -> int:
        """The paper's ``p_A(v)``."""
        return self._pivot[v]

    def distance_to_landmarks(self, v: int) -> float:
        """``d(v, A) = d(v, p_A(v))``."""
        return float(self._d_to_a[v])

    def bunch(self, v: int) -> List[int]:
        """``B_A(v)`` sorted by vertex id."""
        return self._bunches[v]

    def cluster(self, w: int) -> List[int]:
        """``C_A(w)`` sorted by vertex id (empty for ``w ∈ A``)."""
        return self._clusters.get(w, [])

    def in_cluster(self, w: int, v: int) -> bool:
        """Whether ``v ∈ C_A(w)``."""
        return self.metric.d(w, v) < float(self._d_to_a[v])

    def max_cluster_size(self) -> int:
        """Largest cluster (the Lemma 4 bound's subject)."""
        return max((len(c) for c in self._clusters.values()), default=0)

    def max_bunch_size(self) -> int:
        """Largest bunch."""
        return max((len(b) for b in self._bunches), default=0)

    def cluster_tree(self, w: int) -> RootedTree:
        """Shortest-path tree rooted at ``w`` spanning ``C_A(w)`` (cached).

        Clusters are shortest-path closed toward ``w``: for ``v ∈ C_A(w)``
        and ``x`` on a shortest ``w``–``v`` path,
        ``d(x, A) >= d(v, A) - d(v, x) > d(v, w) - d(v, x) = d(x, w)``,
        so ``x ∈ C_A(w)`` and the tree is well defined.
        """
        if w not in self._trees:
            members = self.cluster(w)
            if not members:
                raise ValueError(f"cluster of {w} is empty (w is a landmark)")
            parent = self.metric.restricted_spt_parents(w, members)
            self._trees[w] = RootedTree(parent)
        return self._trees[w]
