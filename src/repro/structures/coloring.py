"""The coloring technique (Lemma 6, after Abraham et al. / Abraham–Gavoille).

Given vertex sets ``S_1..S_k`` (in this repository: the balls
``B(u, q̃)``), color ``V`` with ``q`` colors such that

1. every set contains every color (so each ball holds a representative of
   every color class), and
2. every color class has ``O(n/q)`` vertices (the classes form the balanced
   partition ``U`` fed to the routing techniques).

The paper shows a uniformly random coloring works w.h.p. when the sets have
size ``Ω(q log n)``.  At reproduction scale we random-color, *verify* both
requirements, run a local repair pass for stragglers and retry with fresh
seeds; a coloring is only ever returned after verification, so downstream
code may rely on the two properties unconditionally.

:func:`find_hash_coloring` is the name-independent variant: the color of a
vertex is a seeded hash of its id, so any vertex can evaluate ``c(v)``
knowing only ``v``'s name and the (O(1)-word) seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "ColoringError",
    "verify_coloring",
    "find_coloring",
    "find_hash_coloring",
    "color_classes",
    "hash_color",
]


class ColoringError(RuntimeError):
    """No valid Lemma-6 coloring was found; increase ball size (alpha)."""


def verify_coloring(
    colors: Sequence[int],
    sets: Sequence[Sequence[int]],
    q: int,
    *,
    max_class_size: Optional[float] = None,
) -> bool:
    """Check Lemma 6's two requirements for a candidate coloring."""
    for s in sets:
        present = {colors[v] for v in s}
        if len(present) < q:
            return False
    if max_class_size is not None:
        counts = [0] * q
        for c in colors:
            counts[c] += 1
        if max(counts, default=0) > max_class_size:
            return False
    return True


def _repair(
    colors: List[int],
    sets: Sequence[Sequence[int]],
    q: int,
    rng: random.Random,
    rounds: int = 20,
) -> None:
    """Local repair: recolor duplicated-in-set vertices to missing colors."""
    for _ in range(rounds):
        deficient = False
        for s in sets:
            present: dict[int, List[int]] = {}
            for v in s:
                present.setdefault(colors[v], []).append(v)
            missing = [c for c in range(q) if c not in present]
            if not missing:
                continue
            deficient = True
            donors = [
                v
                for c, members in present.items()
                if len(members) > 1
                for v in members[1:]
            ]
            rng.shuffle(donors)
            for c, v in zip(missing, donors):
                colors[v] = c
        if not deficient:
            return


def find_coloring(
    sets: Sequence[Sequence[int]],
    n: int,
    q: int,
    seed: int = 0,
    *,
    balance_factor: float = 4.0,
    max_tries: int = 48,
) -> List[int]:
    """Lemma 6 coloring of ``0..n-1`` with colors ``0..q-1``.

    Every set in ``sets`` will contain all ``q`` colors and every color
    class will have at most ``balance_factor * n / q`` vertices (never less
    than ``q`` vertices of slack, so tiny instances remain feasible).
    Raises :class:`ColoringError` when the sets are too small for ``q``
    colors — the caller should increase the ball-size constant ``alpha``.
    """
    if q < 1:
        raise ValueError(f"need at least one color, got {q}")
    if any(len(s) < q for s in sets):
        raise ColoringError(
            f"a set of size {min(len(s) for s in sets)} cannot contain "
            f"{q} distinct colors; increase ball size"
        )
    max_class = max(balance_factor * n / q, float(q))
    for attempt in range(max_tries):
        rng = random.Random(seed + 7919 * attempt)
        colors = [rng.randrange(q) for _ in range(n)]
        _repair(colors, sets, q, rng)
        if verify_coloring(colors, sets, q, max_class_size=max_class):
            return colors
    raise ColoringError(
        f"no valid coloring with q={q} after {max_tries} attempts; "
        f"increase ball size (alpha)"
    )


def hash_color(v: int, q: int, seed: int) -> int:
    """Deterministic seeded hash color of vertex ``v`` (name-independent)."""
    # splitmix64-style mixing; stable across processes (unlike hash()).
    x = (v + seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x = x ^ (x >> 31)
    return x % q


def find_hash_coloring(
    sets: Sequence[Sequence[int]],
    n: int,
    q: int,
    seed: int = 0,
    *,
    balance_factor: float = 4.0,
    max_tries: int = 256,
) -> Tuple[int, List[int]]:
    """Name-independent Lemma 6 coloring: ``c(v) = hash(v; seed) mod q``.

    Returns ``(hash_seed, colors)``.  Unlike :func:`find_coloring` there is
    no repair pass (the color must be computable from the name alone), so we
    only search over seeds.
    """
    if any(len(s) < q for s in sets):
        raise ColoringError(
            "sets too small to contain all colors; increase ball size"
        )
    max_class = max(balance_factor * n / q, float(q))
    for attempt in range(max_tries):
        hash_seed = seed + attempt + 1
        colors = [hash_color(v, q, hash_seed) for v in range(n)]
        if verify_coloring(colors, sets, q, max_class_size=max_class):
            return hash_seed, colors
    raise ColoringError(
        f"no valid hash coloring with q={q} after {max_tries} seeds; "
        f"increase ball size (alpha)"
    )


def color_classes(colors: Sequence[int], q: int) -> List[List[int]]:
    """The partition ``U = {U_1..U_q}`` induced by a coloring."""
    classes: List[List[int]] = [[] for _ in range(q)]
    for v, c in enumerate(colors):
        classes[c].append(v)
    return classes
