"""Hitting sets (Lemma 5, after Aingworth et al. / Dor–Halperin–Zwick).

Given sets ``S_1..S_k``, each of size at least ``s``, find a small set ``H``
intersecting all of them.  Two constructions:

* :func:`greedy_hitting_set` — the classic greedy set-cover dual; returns a
  hitting set of size ``O((n/s) * ln k)``, deterministic.
* :func:`random_hitting_set` — samples each vertex with probability
  ``c * ln(k+1) / s``; retried until it hits everything, matching the
  paper's ``Õ(n/s)`` bound with high probability.

Both verify the postcondition before returning.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Set

__all__ = ["greedy_hitting_set", "random_hitting_set", "verify_hitting_set"]


def verify_hitting_set(hitting: Set[int], sets: Sequence[Sequence[int]]) -> bool:
    """Whether ``hitting`` intersects every set."""
    return all(any(v in hitting for v in s) for s in sets)


def greedy_hitting_set(sets: Sequence[Sequence[int]]) -> List[int]:
    """Greedy hitting set: repeatedly pick the vertex in most unhit sets.

    Deterministic (ties to the smallest vertex id).  Size is within a
    ``ln k`` factor of optimal, which meets the paper's ``Õ(n/s)`` bound
    when every set has size at least ``s``.
    """
    remaining = [set(s) for s in sets if s]
    hitting: List[int] = []
    # vertex -> indices of unhit sets containing it
    containing: dict[int, Set[int]] = {}
    for i, s in enumerate(remaining):
        for v in s:
            containing.setdefault(v, set()).add(i)
    unhit = set(range(len(remaining)))
    while unhit:
        best_v = -1
        best_gain = -1
        for v, idxs in containing.items():
            gain = len(idxs & unhit)
            if gain > best_gain or (gain == best_gain and v < best_v):
                best_v = v
                best_gain = gain
        if best_gain <= 0:
            raise RuntimeError("greedy hitting set stalled on empty sets")
        hitting.append(best_v)
        unhit -= containing[best_v]
        del containing[best_v]
    hitting.sort()
    return hitting


def random_hitting_set(
    sets: Sequence[Sequence[int]],
    n: int,
    seed: int = 0,
    *,
    constant: float = 2.0,
    max_tries: int = 64,
) -> List[int]:
    """Random hitting set of expected size ``O((n/s) log k)``.

    Each vertex is kept with probability ``min(1, c * ln(k+1) / s)`` where
    ``s`` is the smallest set size; resampled (new seed) until every set is
    hit, then returned.  Raises after ``max_tries`` failures.
    """
    nonempty = [s for s in sets if s]
    if not nonempty:
        return []
    s_min = min(len(s) for s in nonempty)
    k = len(nonempty)
    p = min(1.0, constant * math.log(k + 1) / max(s_min, 1))
    for attempt in range(max_tries):
        rng = random.Random(seed + attempt)
        hitting = {v for v in range(n) if rng.random() < p}
        if verify_hitting_set(hitting, nonempty):
            return sorted(hitting)
        p = min(1.0, p * 1.5)
    raise RuntimeError(
        f"failed to find a hitting set in {max_tries} tries "
        f"(k={k}, s_min={s_min})"
    )
