"""Tree routing (Lemma 3, after Thorup–Zwick / Fraigniaud–Gavoille).

Routes on the unique tree path between any two vertices of a rooted tree,
with **O(1) words of routing information per vertex per tree** and
**O(log n)-word labels**.  The construction is the classic heavy-path
interval scheme:

* order every vertex's children heavy-first and assign DFS intervals
  ``[in, out)``; a vertex's subtree is exactly the interval,
* each vertex keeps: its own interval, the port to its parent, and the port
  plus interval of its *heavy* child (largest subtree),
* the label of ``v`` is its DFS index plus, for every **light** edge
  ``p -> c`` on the root-to-``v`` path, the pair ``(dfs_in(c), port at p)``.

A light edge at least halves the subtree size, so a label carries at most
``log2 n`` pairs.  Routing at ``u`` toward label ``L``:

1. ``u``'s interval does not contain ``L`` → go to the parent;
2. the heavy child's interval contains ``L`` → take the heavy port;
3. otherwise the next edge is light and ``u``'s child on the path is the
   entry of ``L`` with the smallest DFS index inside ``u``'s interval.

Every routing table in this repository stores tree information as the plain
6-tuple produced here, so the word accounting of
:mod:`repro.routing.model` sees its true cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graph.trees import RootedTree
from .ports import PortAssignment

__all__ = ["TreeRecord", "TreeLabel", "TreeRouting", "tree_step"]

# (dfs_in, dfs_out, parent_port, heavy_port, heavy_in, heavy_out)
# parent_port = -1 at the root; heavy_port = -1 at leaves.
TreeRecord = Tuple[int, int, int, int, int, int]

# (dfs_in, ((light_child_dfs_in, port_at_parent), ...))
TreeLabel = Tuple[int, Tuple[Tuple[int, int], ...]]


def tree_step(record: TreeRecord, label: TreeLabel) -> Optional[int]:
    """One routing decision: the port to forward on, or ``None`` to deliver."""
    dfs_in, dfs_out, parent_port, heavy_port, heavy_in, heavy_out = record
    target_in, light_stops = label
    if target_in == dfs_in:
        return None
    if not dfs_in <= target_in < dfs_out:
        if parent_port < 0:
            raise ValueError("target outside the tree reached the root")
        return parent_port
    if heavy_port >= 0 and heavy_in <= target_in < heavy_out:
        return heavy_port
    # The next edge is light: find the label entry that is u's child, i.e.
    # the shallowest stop inside u's interval.
    best: Optional[Tuple[int, int]] = None
    for stop_in, port in light_stops:
        if dfs_in < stop_in < dfs_out and (best is None or stop_in < best[0]):
            best = (stop_in, port)
    if best is None:
        raise ValueError(
            f"no light stop inside interval [{dfs_in},{dfs_out}); corrupt label"
        )
    return best[1]


class TreeRouting:
    """Preprocessed tree routing structure for one rooted tree.

    Parameters
    ----------
    tree:
        The rooted tree (vertices are graph vertex ids; every tree edge must
        be a graph edge).
    ports:
        The fixed-port assignment of the underlying graph.
    """

    def __init__(self, tree: RootedTree, ports: PortAssignment) -> None:
        self.tree = tree
        self.root = tree.root
        self._records: Dict[int, TreeRecord] = {}
        self._labels: Dict[int, TreeLabel] = {}

        heavy: Dict[int, Optional[int]] = {
            v: tree.heavy_child(v) for v in tree.parent
        }
        # Iterative DFS, heavy child first, to assign intervals.
        dfs_in: Dict[int, int] = {}
        dfs_out: Dict[int, int] = {}
        counter = 0
        stack: List[Tuple[int, bool]] = [(tree.root, False)]
        while stack:
            v, processed = stack.pop()
            if processed:
                dfs_out[v] = counter
                continue
            dfs_in[v] = counter
            counter += 1
            stack.append((v, True))
            kids = tree.children[v]
            h = heavy[v]
            ordered = ([h] if h is not None else []) + [
                c for c in kids if c != h
            ]
            # Push in reverse so the heavy child is visited first.
            for c in reversed(ordered):
                stack.append((c, False))

        for v in tree.parent:
            parent_port = (
                -1 if v == tree.root else ports.port_to(v, tree.parent[v])
            )
            h = heavy[v]
            if h is None:
                record: TreeRecord = (
                    dfs_in[v], dfs_out[v], parent_port, -1, 0, 0
                )
            else:
                record = (
                    dfs_in[v],
                    dfs_out[v],
                    parent_port,
                    ports.port_to(v, h),
                    dfs_in[h],
                    dfs_out[h],
                )
            self._records[v] = record

        # Labels: accumulate light stops down from the root.
        light_stops: Dict[int, Tuple[Tuple[int, int], ...]] = {
            tree.root: ()
        }
        for v in tree.vertices:
            if v == tree.root:
                continue
            p = tree.parent[v]
            inherited = light_stops[p]
            if heavy[p] == v:
                light_stops[v] = inherited
            else:
                light_stops[v] = inherited + (
                    (dfs_in[v], ports.port_to(p, v)),
                )
        for v in tree.parent:
            self._labels[v] = (dfs_in[v], light_stops[v])

    # ------------------------------------------------------------------
    def record_of(self, v: int) -> TreeRecord:
        """Routing record stored at tree vertex ``v`` (6 words)."""
        return self._records[v]

    def label_of(self, v: int) -> TreeLabel:
        """Tree label of ``v`` (``1 + 2 * #light-edges`` words)."""
        return self._labels[v]

    def members(self) -> List[int]:
        """Vertices covered by this tree."""
        return self.tree.vertices

    @staticmethod
    def step(record: TreeRecord, label: TreeLabel) -> Optional[int]:
        """Forwarding decision (see :func:`tree_step`)."""
        return tree_step(record, label)
