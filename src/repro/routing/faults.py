"""Deterministic fault injection for the shard-serving I/O seam.

Every byte a store reads goes through its ``DirectIO`` object
(:mod:`repro.routing.serving`), so wrapping that seam is enough to
subject the *entire* serving stack — mapping, checksum verification,
failover, retry/backoff, quarantine, repair — to disk-level faults
without touching a single store internal.  :class:`FaultInjector` is
that wrapper: construct a store with ``io=FaultInjector(seed=...,
rates=...)`` and a seeded fraction of its reads fail in one of four
ways:

``missing``
    The file vanishes: ``FileNotFoundError`` exactly as if it had been
    unlinked.
``truncate``
    The mapped bytes stop early at a seeded cut point — a torn write or
    a short copy.
``bitflip``
    One seeded bit of the returned buffer is inverted — silent media
    corruption, the case checksums exist for.
``transient``
    :class:`TransientIOError` (``errno.EIO``): a flaky medium that
    succeeds on retry.  Stores retry these with backoff
    (``retry_budget``/``backoff_s``), so a transient fault costs a retry
    counter tick, never a failover.

The injector is a *bounded* adversary, which is what makes chaos runs
assertable rather than merely noisy:

* deterministic — all draws come from one seeded ``random.Random``, and
  every injected fault is appended to :attr:`events`, so a chaos test
  reconciles the store's ``retries``/``failovers``/``checksum_failures``
  counters against the exact schedule that ran;
* at most one fault per group file — after faulting a path, its
  basename is protected from further injection, so a replicated store's
  failover (same group, different replica root) and a retried transient
  read always find healthy bytes.  With ``replicas >= 2`` every route
  must therefore complete with hop decisions identical to the
  fault-free run, and the chaos suite asserts exactly that.

Repair deliberately bypasses the injector
(:meth:`ReplicatedShardStore.repair` opens its own ``DirectIO``): it is
an administrative operation, and letting the schedule corrupt the
repair would turn a bounded adversary into an unbounded one.
"""

from __future__ import annotations

import errno
import os
import random
from typing import Any, Dict, List, Optional

from .serving import DirectIO

__all__ = [
    "FAULT_KINDS",
    "TransientIOError",
    "FaultInjector",
]

#: recognised keys of a ``rates`` schedule, in draw order
FAULT_KINDS = ("missing", "truncate", "bitflip", "transient")


class TransientIOError(OSError):
    """Injected ``EIO``: fails once, succeeds when retried."""

    def __init__(self, path: str) -> None:
        super().__init__(
            errno.EIO, "injected transient I/O error", path
        )


class FaultInjector:
    """Seeded fault-injecting wrapper around a :class:`DirectIO`.

    Implements the same ``map_group``/``read_bytes``/``close`` protocol,
    so any ``_ShardStoreBase`` subclass accepts it via its ``io=``
    parameter.  Faulted buffers (truncations, bit flips) are served from
    private ``bytes`` copies — the files on disk are never modified, so
    one shard directory can back both the faulted and the fault-free leg
    of a chaos comparison.
    """

    def __init__(
        self,
        io: Optional[DirectIO] = None,
        *,
        seed: int = 0,
        rates: Optional[Dict[str, float]] = None,
    ) -> None:
        rates = dict(rates or {})
        unknown = set(rates) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown fault kinds {sorted(unknown)!r} "
                f"(known: {FAULT_KINDS})"
            )
        self._io = io if io is not None else DirectIO()
        self._rng = random.Random(seed)
        self.rates = rates
        #: every injected fault, in order: {"kind", "op", "path"}
        self.events: List[Dict[str, str]] = []
        # basenames already faulted once — never faulted again, so
        # failover and transient retries always find healthy bytes
        self._protected: set = set()

    # -- schedule ------------------------------------------------------
    def _draw(self, path: str, op: str) -> Optional[str]:
        if os.path.basename(path) in self._protected:
            return None
        for kind in FAULT_KINDS:
            p = self.rates.get(kind, 0.0)
            if p > 0.0 and self._rng.random() < p:
                self._protected.add(os.path.basename(path))
                self.events.append(
                    {"kind": kind, "op": op, "path": path}
                )
                return kind
        return None

    def fault_counts(self) -> Dict[str, int]:
        """``{kind: times injected}`` over :attr:`events`."""
        out = {kind: 0 for kind in FAULT_KINDS}
        for event in self.events:
            out[event["kind"]] += 1
        return out

    # -- corrupted-buffer fabrication ---------------------------------
    def _corrupted(self, kind: str, path: str) -> bytes:
        data = self._io.read_bytes(path)
        if kind == "truncate" and len(data) >= 2:
            return data[: self._rng.randrange(1, len(data))]
        if kind == "bitflip" and data:
            flipped = bytearray(data)
            i = self._rng.randrange(len(flipped))
            flipped[i] ^= 1 << self._rng.randrange(8)
            return bytes(flipped)
        return data

    def _serve(self, kind: Optional[str], path: str) -> Optional[bytes]:
        """Bytes to serve for a faulted access, or ``None`` = healthy.

        Raising kinds (``missing``, ``transient``) raise from here.
        """
        if kind is None:
            return None
        if kind == "missing":
            # The injected fault *is* the raw OS-level failure the typed
            # hierarchy must be proven to translate — raising it typed
            # would make the fault-tolerance tests test nothing.
            raise FileNotFoundError(  # repro: noqa ERR001 — injected raw fault under test
                errno.ENOENT, "injected missing file", path
            )
        if kind == "transient":
            raise TransientIOError(path)
        return self._corrupted(kind, path)

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "FaultInjector":
        """Build an injector from a plain-dict spec: ``{"seed": int,
        "rates": {kind: probability}}``.

        The cluster driver sends fault schedules to worker processes as
        JSON-able dicts (a live injector holds an RNG and an open
        ``DirectIO`` — not something to ship across ``fork``/a wire);
        each worker rebuilds its own injector from the spec, so a chaos
        run's schedule is reproducible per worker from ``(seed, rates)``
        alone.
        """
        unknown = set(spec) - {"seed", "rates"}
        if unknown:
            raise ValueError(
                f"unknown fault-spec keys {sorted(unknown)!r} "
                f"(known: seed, rates)"
            )
        return cls(
            seed=int(spec.get("seed", 0)),
            rates=spec.get("rates") or {},
        )

    # -- DirectIO protocol --------------------------------------------
    def map_group(self, path: str, *, sequential: bool = False) -> memoryview:
        faulted = self._serve(self._draw(path, "map"), path)
        if faulted is None:
            return self._io.map_group(path, sequential=sequential)
        return memoryview(faulted)

    def read_bytes(self, path: str) -> bytes:
        faulted = self._serve(self._draw(path, "read"), path)
        if faulted is None:
            return self._io.read_bytes(path)
        return faulted

    def close(self) -> None:
        self._io.close()

    # -- diagnostics ---------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "seed_events": len(self.events),
            "by_kind": self.fault_counts(),
            "protected_files": len(self._protected),
        }
