"""Message-routing simulator for the fixed-port model.

The simulator is the "network": it repeatedly invokes the scheme's local
decision function at the message's current vertex, moves the message across
the returned port, and records the traversed path.  It enforces global
sanity (delivery at the right vertex, hop budgets against routing loops) and
measures everything the evaluation needs: path length, hop count and the
largest header ever attached to the message.

Engine protocol
---------------
The routing loop runs against a *local-knowledge engine*, not a scheme:

* ``step(u, header, dest_label)`` — the local decision,
* ``label_of(v)`` — the destination label a sender holds,
* ``local_edge(u, port) -> (neighbour, weight)`` — the link the message
  crosses, answered from ``u``'s local state,
* ``n`` — vertex count (hop-budget default only).

A monolithic in-memory scheme is adapted on the fly (:class:`SchemeEngine`
reads the graph and port assignment it already holds); the sharded
serving engine (:class:`repro.routing.serving.LocalRouter`) implements
the protocol natively, answering every call from the current vertex's
shard.  Either way the loop below is the only "network" — it never peeks
past the engine surface, which is what makes the local-knowledge tests
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple

from ..graph.metric import MetricView
from .model import CompactRoutingScheme, Deliver, Forward, words_of

__all__ = [
    "RouteResult",
    "RoutingLoopError",
    "MisdeliveryError",
    "route",
    "SchemeEngine",
    "as_engine",
    "StretchReport",
    "measure_stretch",
]


class RoutingLoopError(RuntimeError):
    """The message exceeded its hop budget without being delivered.

    Carries the evidence a fault-mode diagnosis needs — no re-run with
    prints required: :attr:`partial_path` is every vertex the message
    visited (in order) and :attr:`last_header` the header attached when
    the budget ran out.  :attr:`result` packages the same trace as a
    failed :class:`RouteResult`.
    """

    def __init__(
        self,
        message: str,
        *,
        partial_path: Optional[List[int]] = None,
        last_header: Any = None,
        result: Optional["RouteResult"] = None,
    ):
        super().__init__(message)
        self.partial_path: List[int] = (
            list(partial_path) if partial_path is not None else []
        )
        self.last_header = last_header
        self.result = result


class MisdeliveryError(RuntimeError):
    """The scheme delivered at the wrong vertex — worse than looping.

    Like :class:`RoutingLoopError`, carries :attr:`partial_path`,
    :attr:`last_header` and a failed :attr:`result` for diagnostics.
    """

    def __init__(
        self,
        message: str,
        *,
        partial_path: Optional[List[int]] = None,
        last_header: Any = None,
        result: Optional["RouteResult"] = None,
    ):
        super().__init__(message)
        self.partial_path: List[int] = (
            list(partial_path) if partial_path is not None else []
        )
        self.last_header = last_header
        self.result = result


@dataclass
class RouteResult:
    """Outcome of routing one message.

    A *failed* result (``failed=True``, produced when :func:`route`
    raises and attaches the trace to the exception) holds the partial
    path walked before the failure plus the failure reason; its
    ``delivered`` is always ``False`` even if the walk happened to end
    at the target vertex.
    """

    source: int
    target: int
    path: List[int]
    length: float
    hops: int
    max_header_words: int
    #: hops per routing phase (header tag), e.g. {"ball": 3, "t2": 7}
    phase_hops: dict = None  # type: ignore[assignment]
    #: the route did not complete; ``path`` is the partial walk
    failed: bool = False
    #: short failure reason ("" when the route completed)
    error: str = ""
    #: header attached at the failure point (None when completed)
    last_header: Any = None

    @property
    def delivered(self) -> bool:
        return not self.failed and self.path[-1] == self.target


class SchemeEngine:
    """Adapter: a monolithic in-memory scheme as a local-knowledge engine.

    Wraps the scheme's graph + port assignment behind the engine
    protocol so the routing loop is written once.  ``local_edge`` is the
    only lookup a real node performs when forwarding: the neighbour id
    and weight of one of its own links.
    """

    def __init__(self, scheme: CompactRoutingScheme) -> None:
        self.scheme = scheme
        self.n = scheme.graph.n

    def step(self, u: int, header: Any, dest_label: Any):
        return self.scheme.step(u, header, dest_label)

    def label_of(self, v: int) -> Any:
        return self.scheme.label_of(v)

    def local_edge(self, u: int, port: int) -> Tuple[int, float]:
        nxt = self.scheme.ports.neighbor(u, port)
        return nxt, self.scheme.graph.weight(u, nxt)


def as_engine(scheme: Any) -> Any:
    """``scheme`` itself when it speaks the engine protocol, else adapted."""
    if hasattr(scheme, "local_edge"):
        return scheme
    return SchemeEngine(scheme)


def route(
    scheme: Any,
    source: int,
    target: int,
    max_hops: Optional[int] = None,
) -> RouteResult:
    """Route one message from ``source`` to ``target`` and return the trace.

    ``scheme`` is either a :class:`CompactRoutingScheme` (adapted via
    :class:`SchemeEngine`) or a serving engine implementing the protocol
    directly.  ``max_hops`` defaults to ``8 * n + 64``, far above any
    bound the implemented schemes can legitimately need, so hitting it
    indicates a routing loop and raises :class:`RoutingLoopError`.
    """
    engine = as_engine(scheme)
    if max_hops is None:
        max_hops = 8 * engine.n + 64
    dest_label = engine.label_of(target)
    header: Any = None
    current = source
    path = [source]
    length = 0.0
    max_header_words = 0
    phase_hops: dict = {}
    def _failed(reason: str) -> RouteResult:
        return RouteResult(
            source=source,
            target=target,
            path=path,
            length=length,
            hops=len(path) - 1,
            max_header_words=max_header_words,
            phase_hops=phase_hops,
            failed=True,
            error=reason,
            last_header=header,
        )

    for _ in range(max_hops + 1):
        action = engine.step(current, header, dest_label)
        if isinstance(action, Deliver):
            if current != target:
                reason = (
                    f"scheme delivered at {current}, expected {target}"
                )
                raise MisdeliveryError(
                    reason,
                    partial_path=path,
                    last_header=header,
                    result=_failed(reason),
                )
            return RouteResult(
                source=source,
                target=target,
                path=path,
                length=length,
                hops=len(path) - 1,
                max_header_words=max_header_words,
                phase_hops=phase_hops,
            )
        assert isinstance(action, Forward)
        nxt, weight = engine.local_edge(current, action.port)
        length += weight
        path.append(nxt)
        header = action.header
        max_header_words = max(max_header_words, words_of(header))
        phase = (
            header[0]
            if isinstance(header, tuple) and header and isinstance(header[0], str)
            else "?"
        )
        phase_hops[phase] = phase_hops.get(phase, 0) + 1
        current = nxt
    reason = (
        f"message {source}->{target} not delivered within {max_hops} "
        f"hops; path prefix: {path[:20]}..."
    )
    raise RoutingLoopError(
        reason,
        partial_path=path,
        last_header=header,
        result=_failed(reason),
    )


@dataclass
class StretchReport:
    """Stretch statistics over a set of routed pairs."""

    pairs: int
    max_stretch: float
    avg_stretch: float
    max_additive_over: float
    max_hops: int
    max_header_words: int
    #: worst pair as ((source, target), routed_length, true_distance)
    worst: Tuple[Tuple[int, int], float, float]

    def row(self, name: str) -> str:
        return (
            f"{name:<28} pairs={self.pairs:<7} "
            f"stretch max={self.max_stretch:<8.4f} avg={self.avg_stretch:<8.4f} "
            f"header max={self.max_header_words}"
        )


def measure_stretch(
    scheme: CompactRoutingScheme,
    metric: MetricView,
    pairs: Iterable[Tuple[int, int]],
    *,
    multiplicative_slack: float = 1.0,
    additive_slack: float = 0.0,
) -> StretchReport:
    """Route every pair, compare with exact distances, aggregate stretch.

    ``multiplicative_slack``/``additive_slack`` describe the *expected*
    ``(alpha, beta)`` bound; ``max_additive_over`` reports the largest
    ``routed - alpha * d`` observed, so a scheme meeting an
    ``(alpha, beta)`` guarantee yields ``max_additive_over <= beta``.
    """
    count = 0
    max_stretch = 0.0
    sum_stretch = 0.0
    max_additive_over = float("-inf")
    max_hops = 0
    max_header = 0
    worst = ((-1, -1), 0.0, 0.0)
    for s, t in pairs:
        result = route(scheme, s, t)
        d = metric.d(s, t)
        if d <= 0:
            if result.length > 0:
                raise RuntimeError(f"non-zero route for zero-distance pair {s},{t}")
            continue
        stretch = result.length / d
        count += 1
        sum_stretch += stretch
        if stretch > max_stretch:
            max_stretch = stretch
            worst = ((s, t), result.length, d)
        over = result.length - multiplicative_slack * d
        max_additive_over = max(max_additive_over, over)
        max_hops = max(max_hops, result.hops)
        max_header = max(max_header, result.max_header_words)
    if count == 0:
        max_additive_over = 0.0
    return StretchReport(
        pairs=count,
        max_stretch=max_stretch,
        avg_stretch=sum_stretch / count if count else 1.0,
        max_additive_over=max_additive_over,
        max_hops=max_hops,
        max_header_words=max_header,
        worst=worst,
    )
