"""The fixed-port model (Fraigniaud & Gavoille).

In the fixed-port model every vertex ``u`` numbers its incident links with
ports ``0 .. deg(u)-1`` *before* the routing scheme is constructed; the
scheme must work with whatever numbering it is handed (it may not choose a
convenient one).  A routing decision outputs a port number, not a neighbour
id.

:class:`PortAssignment` materializes such a numbering.  The default is the
graph's deterministic adjacency order; a ``seed`` produces a shuffled
(adversarial-ish) numbering used in tests to check that no scheme silently
relies on a friendly port order.

The standard model additionally allows a vertex to translate a *neighbour id*
into the port leading to it (paper, footnote 2); :meth:`PortAssignment.port_to`
provides exactly that operation and nothing more.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..graph.core import Graph

__all__ = ["PortAssignment"]


class PortAssignment:
    """Port numbering of every vertex's incident links."""

    def __init__(
        self,
        g: Graph,
        seed: int | None = None,
        *,
        order: List[List[int]] | None = None,
    ) -> None:
        self.graph = g
        self._ports: List[List[int]] = []
        if order is not None:
            # Adopt an explicit numbering (persistence restore path),
            # validating it is a permutation of each vertex's neighbours
            # so a persisted numbering can never silently drift from the
            # graph it is applied to.
            if len(order) != g.n:
                raise ValueError(
                    f"port order covers {len(order)} vertices, "
                    f"graph has {g.n}"
                )
            for u in g.vertices():
                ports = [int(v) for v in order[u]]
                if sorted(ports) != sorted(g.neighbors(u)):
                    raise ValueError(
                        f"port order of vertex {u} is not a permutation "
                        f"of its neighbours"
                    )
                self._ports.append(ports)
        else:
            rng = random.Random(seed) if seed is not None else None
            for u in g.vertices():
                neighbours = g.neighbors(u)
                if rng is not None:
                    rng.shuffle(neighbours)
                self._ports.append(neighbours)
        self._port_of: List[Dict[int, int]] = [
            {v: p for p, v in enumerate(ports)} for ports in self._ports
        ]

    def to_order(self) -> List[List[int]]:
        """Neighbour ids of every vertex in port order (lossless export)."""
        return [list(ports) for ports in self._ports]

    @classmethod
    def from_order(cls, g: Graph, order: List[List[int]]) -> "PortAssignment":
        """Rebuild an assignment from :meth:`to_order` output (validated)."""
        return cls(g, order=order)

    def degree(self, u: int) -> int:
        """Number of ports at ``u``."""
        return len(self._ports[u])

    def neighbor(self, u: int, port: int) -> int:
        """The vertex at the other end of ``u``'s link ``port``."""
        ports = self._ports[u]
        if not 0 <= port < len(ports):
            raise ValueError(f"vertex {u} has no port {port}")
        return ports[port]

    def port_to(self, u: int, v: int) -> int:
        """The port of ``u`` leading to its neighbour ``v``.

        This is the neighbour-id-to-link translation the standard model
        assumes (paper, footnote 2).  Raises when ``v`` is not adjacent.
        """
        try:
            return self._port_of[u][v]
        except KeyError:
            raise ValueError(f"{v} is not a neighbour of {u}") from None
