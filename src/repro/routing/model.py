"""Core abstractions of a labeled compact routing scheme.

A labeled compact routing scheme consists of

* a **routing table** per vertex (local memory, the quantity the paper's
  ``Õ(n^{1/3} log D)``-style bounds measure),
* a **label** per vertex (handed to anyone who wants to send to it),
* a **header** carried by the message (size bounded by the scheme),
* a local **decision function**: given the current vertex's table, the
  header and the destination label, output either *deliver* or a port plus
  the (possibly rewritten) header.

:class:`CompactRoutingScheme` captures this contract.  The decision function
receives only the current vertex id; implementations must restrict
themselves to ``self.table_of(u)``, the header, the destination label and
the neighbour-id-to-port translation — the simulator and tests rely on this
discipline (Python cannot physically sandbox it, but all schemes in this
repository are written against :class:`SizedTable` lookups only).

Space accounting
----------------
:class:`SizedTable` stores entries grouped by *category* (e.g. ``"ball"``,
``"tree-records"``, ``"sequences"``) and measures them in machine **words**
(ints/floats = 1 word, containers = sum of their items).  Word counts are
what the benchmarks report next to the paper's asymptotic bounds.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List

from ..graph.core import Graph
from .ports import PortAssignment

__all__ = [
    "words_of",
    "SizedTable",
    "Deliver",
    "Forward",
    "RouteAction",
    "CompactRoutingScheme",
    "SchemeStats",
    "aggregate_scheme_stats",
]


def words_of(value: Any) -> int:
    """Approximate storage cost of a value in machine words.

    Scalars cost one word; containers cost the sum of their contents;
    ``None`` and booleans cost nothing extra (they encode a flag inside an
    existing word in a real implementation).
    """
    if value is None or isinstance(value, bool):
        return 0
    if isinstance(value, (int, float, str)):
        return 1
    if isinstance(value, (tuple, list, set, frozenset)):
        return sum(words_of(item) for item in value)
    if isinstance(value, dict):
        return sum(words_of(k) + words_of(v) for k, v in value.items())
    if hasattr(value, "words"):
        return int(value.words())
    raise TypeError(f"cannot size value of type {type(value)!r}")


class SizedTable:
    """A per-vertex routing table with word-accurate accounting by category."""

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self._data: Dict[str, Dict[Any, Any]] = {}

    def put(self, category: str, key: Any, value: Any) -> None:
        """Store ``value`` under ``key`` in ``category`` (overwrites)."""
        self._data.setdefault(category, {})[key] = value

    def get(self, category: str, key: Any, default: Any = None) -> Any:
        """Look up ``key`` in ``category``."""
        return self._data.get(category, {}).get(key, default)

    def has(self, category: str, key: Any) -> bool:
        """Membership test for ``key`` in ``category``."""
        return key in self._data.get(category, {})

    def category(self, category: str) -> Dict[Any, Any]:
        """The raw ``key -> value`` mapping of a category (may be empty)."""
        return self._data.get(category, {})

    def categories(self) -> List[str]:
        """All category names present in this table."""
        return list(self._data.keys())

    def words_by_category(self) -> Dict[str, int]:
        """Word count of every category (keys + values)."""
        return {
            cat: sum(words_of(k) + words_of(v) for k, v in entries.items())
            for cat, entries in self._data.items()
        }

    def total_words(self) -> int:
        """Total stored words across all categories."""
        return sum(self.words_by_category().values())


@dataclass(frozen=True)
class Deliver:
    """The message has arrived at its destination."""


@dataclass(frozen=True)
class Forward:
    """Forward the message on ``port`` with (possibly new) ``header``."""

    port: int
    header: Any


RouteAction = Deliver | Forward


@dataclass
class SchemeStats:
    """Space statistics of a built scheme."""

    name: str
    n: int
    max_table_words: int
    avg_table_words: float
    total_table_words: int
    max_label_words: int
    avg_label_words: float
    table_breakdown_max: Dict[str, int] = field(default_factory=dict)

    def row(self) -> str:
        """One paper-style text row."""
        return (
            f"{self.name:<28} n={self.n:<6} "
            f"table max={self.max_table_words:<8} avg={self.avg_table_words:<10.1f} "
            f"label max={self.max_label_words}"
        )


class CompactRoutingScheme(ABC):
    """Contract every routing scheme in this repository implements."""

    #: human-readable scheme name (used in benchmark tables)
    name: str = "abstract"

    def __init__(self, graph: Graph, ports: PortAssignment) -> None:
        self.graph = graph
        self.ports = ports

    # -- preprocessing products ---------------------------------------
    @abstractmethod
    def label_of(self, v: int) -> Any:
        """The (small) label of ``v`` that senders must know."""

    @abstractmethod
    def table_of(self, v: int) -> SizedTable:
        """The routing table stored at ``v``."""

    # -- distributed decision function --------------------------------
    @abstractmethod
    def step(self, u: int, header: Any, dest_label: Any) -> RouteAction:
        """Local routing decision at ``u``.

        ``header`` is ``None`` on the first call (at the source); the scheme
        initializes it then.  Implementations may consult only
        ``self.table_of(u)``, the arguments, and
        ``self.ports.port_to(u, neighbour_id)``.
        """

    # -- statistics -----------------------------------------------------
    def stats(self) -> SchemeStats:
        """Aggregate table/label sizes over all vertices."""
        return aggregate_scheme_stats(
            self.name,
            self.graph.n,
            (self.table_of(v) for v in self.graph.vertices()),
            (self.label_of(v) for v in self.graph.vertices()),
        )


def aggregate_scheme_stats(
    name: str,
    n: int,
    tables: Iterable[SizedTable],
    labels: Iterable[Any],
) -> SchemeStats:
    """One word-accounting aggregation for every table source.

    Both the in-memory schemes and the shard-serving engine report
    through this function, so the accounting formula (word counts,
    per-category maxima, averages) has a single definition — two
    implementations here would be exactly the drift the shard
    reconciliation checks exist to catch.
    """
    table_words = []
    breakdown_max: Dict[str, int] = {}
    for table in tables:
        table_words.append(table.total_words())
        for cat, w in table.words_by_category().items():
            breakdown_max[cat] = max(breakdown_max.get(cat, 0), w)
    label_words = [words_of(label) for label in labels]
    denom = max(n, 1)
    return SchemeStats(
        name=name,
        n=n,
        max_table_words=max(table_words, default=0),
        avg_table_words=sum(table_words) / denom,
        total_table_words=sum(table_words),
        max_label_words=max(label_words, default=0),
        avg_label_words=sum(label_words) / denom,
        table_breakdown_max=breakdown_max,
    )
