"""Ball routing (Lemma 2): shortest-path routing inside vicinities.

Every vertex ``u`` stores, for each ``v in B(u, ell)``, the port of the
first edge on a shortest path to ``v``.  When a message for
``v in B(u, ell)`` is at ``u``, it is forwarded along that port; by
Property 1 the next vertex ``w`` also has ``v in B(w, ell)``, so the walk
follows a shortest path all the way (edge weights are positive, so distance
to ``v`` strictly decreases and no loop is possible).

The class below computes the first-edge ports; schemes install them into
their per-vertex :class:`~repro.routing.model.SizedTable` under a category
(conventionally ``"ball"``) so the space accounting sees them (2 words per
ball member: key + port).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..graph.metric import MetricView
from ..structures.balls import BallFamily
from .model import CompactRoutingScheme, Deliver, Forward, RouteAction, SizedTable
from .ports import PortAssignment

__all__ = ["BallRoutingTables", "BallRoutingScheme"]


class BallRoutingTables:
    """First-edge ports for every ball of a :class:`BallFamily`."""

    def __init__(
        self,
        metric: MetricView,
        family: BallFamily,
        ports: PortAssignment,
    ) -> None:
        self.family = family
        self._port: list[Dict[int, int]] = []
        for u in range(metric.n):
            entry: Dict[int, int] = {}
            for v in family.ball(u):
                if v == u:
                    continue
                entry[v] = ports.port_to(u, metric.next_hop(u, v))
            self._port.append(entry)

    def port_for(self, u: int, v: int) -> Optional[int]:
        """Port of ``u``'s first edge toward ``v``; ``None`` if outside ball."""
        if v == u:
            return None
        return self._port[u].get(v)

    def install(self, table: SizedTable, category: str = "ball") -> None:
        """Copy vertex ``table.owner``'s ball ports into its sized table."""
        for v, port in self._port[table.owner].items():
            table.put(category, v, port)


class BallRoutingScheme(CompactRoutingScheme):
    """Standalone Lemma-2 scheme (shortest-path routing within balls).

    Only valid for targets inside the source's ball; used directly by tests
    and as the building block of every scheme in :mod:`repro.schemes`.
    The label of a vertex is its id; there is no header.
    """

    name = "ball-routing (Lemma 2)"

    def __init__(
        self,
        metric: MetricView,
        family: BallFamily,
        ports: PortAssignment,
    ) -> None:
        super().__init__(metric.graph, ports)
        self.family = family
        tables = BallRoutingTables(metric, family, ports)
        self._tables: list[SizedTable] = []
        for u in self.graph.vertices():
            table = SizedTable(u)
            tables.install(table)
            self._tables.append(table)

    def label_of(self, v: int) -> int:
        return v

    def table_of(self, v: int) -> SizedTable:
        return self._tables[v]

    def step(self, u: int, header, dest_label: int) -> RouteAction:
        if u == dest_label:
            return Deliver()
        port = self.table_of(u).get("ball", dest_label)
        if port is None:
            raise ValueError(
                f"target {dest_label} outside B({u}); Lemma 2 does not apply"
            )
        return Forward(port, None)
