"""Classic DFS interval routing on trees — the baseline Lemma 3 improves.

Interval routing (Santoro–Khatib) stores, *per port*, the DFS interval of
the subtree behind it: a vertex of degree ``d`` stores ``O(d)`` words and
labels are a single DFS index.  Tree routing à la Lemma 3 (heavy-path,
:mod:`repro.routing.tree_routing`) instead stores **O(1) words per vertex**
and moves the ``O(log n)`` cost into the label.

The distinction matters for the paper's schemes: a vertex participates in
*many* trees (one per hitting-set vertex, landmark, or bunch member), so
per-tree vertex storage is multiplied by that count — ``O(1)`` per tree is
what keeps tables at ``Õ(n^{1/3})``.  This module exists as the measured
counterpoint (see ``tests/routing/test_interval_routing.py``): identical
routes, degree-dependent storage.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graph.trees import RootedTree
from .ports import PortAssignment

__all__ = ["IntervalTreeRouting"]


class IntervalTreeRouting:
    """Per-port interval tables for one rooted tree.

    The record of vertex ``v`` is
    ``(dfs_in, dfs_out, parent_port, ((child_in, child_out, port), ...))``
    — one triple per child, i.e. ``O(deg)`` words.
    The label of a vertex is its DFS index (one word).
    """

    def __init__(self, tree: RootedTree, ports: PortAssignment) -> None:
        self.tree = tree
        self.root = tree.root
        dfs_in: Dict[int, int] = {}
        dfs_out: Dict[int, int] = {}
        counter = 0
        stack: List[Tuple[int, bool]] = [(tree.root, False)]
        while stack:
            v, processed = stack.pop()
            if processed:
                dfs_out[v] = counter
                continue
            dfs_in[v] = counter
            counter += 1
            stack.append((v, True))
            for c in reversed(tree.children[v]):
                stack.append((c, False))
        self._labels = dict(dfs_in)
        self._records: Dict[int, tuple] = {}
        for v in tree.parent:
            parent_port = (
                -1 if v == tree.root else ports.port_to(v, tree.parent[v])
            )
            child_entries = tuple(
                (dfs_in[c], dfs_out[c], ports.port_to(v, c))
                for c in tree.children[v]
            )
            self._records[v] = (
                dfs_in[v], dfs_out[v], parent_port, child_entries
            )

    def record_of(self, v: int) -> tuple:
        """Routing record of ``v`` (``3 + 3*deg_tree(v)`` words)."""
        return self._records[v]

    def label_of(self, v: int) -> int:
        """DFS index of ``v`` (one word)."""
        return self._labels[v]

    @staticmethod
    def step(record: tuple, label: int) -> Optional[int]:
        """Port toward the label's vertex, or ``None`` to deliver."""
        dfs_in, dfs_out, parent_port, children = record
        if label == dfs_in:
            return None
        if not dfs_in <= label < dfs_out:
            if parent_port < 0:
                raise ValueError("target outside the tree reached the root")
            return parent_port
        for child_in, child_out, port in children:
            if child_in <= label < child_out:
                return port
        raise ValueError(f"DFS index {label} not covered by any child")
