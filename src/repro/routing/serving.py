"""Local-knowledge serving: route on per-vertex shards loaded from disk.

The deployment story of a compact routing scheme (ROADMAP follow-up (b)):
each node holds *its own* ``o(n)``-word table and forwards using that
table plus the packet header — nothing global.  This module makes that
executable:

* :func:`write_shards` — lay a compiled scheme out on disk, either as one
  binary shard per vertex (:mod:`repro.routing.shard_codec`) under a
  fan-out directory tree (layout v1), or — with ``packed=True`` — as a
  handful of packed group files holding many shard payloads each behind
  a sorted offset/length index (layout v2), plus one small
  ``manifest.json`` with the scheme identity, codec version, layout and
  byte/word accounting,
* :class:`ShardStore` / :class:`PackedShardStore` — lazy shard loaders
  over the two layouts, sharing one LRU residency bound and one set of
  serve statistics (loads, cache hits, bytes read); the packed store
  maps each group file once (``mmap``) and decodes a record through
  a zero-copy ``memoryview`` of the mapped buffer — no per-vertex
  ``open()``, no intermediate ``bytes``,
* :func:`open_store` — layout dispatch from the manifest, so callers
  (and ``RoutingSession.load``) never care which layout is on disk,
* :class:`LocalRouter` — the serving engine: a step-only scheme instance
  (``SchemeBase.restore_serving``) whose table, label and port accesses
  all resolve from the *current vertex's* shard.  It implements the
  simulator's engine protocol (``step``/``label_of``/``local_edge``), so
  :func:`repro.routing.simulator.route` drives it exactly like an
  in-memory scheme — and the local-knowledge tests prove the step
  decisions are identical even when every shard (or group) but the
  visited ones is deleted from disk.  Every forwarded header is pushed
  through the wire codec (:mod:`repro.routing.header_codec`): the header
  the next hop sees is the decoded wire bytes, and ``serve_stats()``
  reports the true header bytes sent.

Layouts on disk::

    <dir>/manifest.json             # identity + accounting, JSON
    <dir>/shards/<g>/<v>.shard      # v1: g = v // fanout, zero-padded hex
    <dir>/groups/<g>.pack           # v2: g = v // group_size

Cold-start cost is the point: serving vertex ``v`` reads the manifest
and ``v``'s shard — a few hundred bytes — instead of parsing the whole
JSON session blob.  The packed layout extends that to ``n >= 10^5``:
``O(n / group_size)`` files instead of ``n`` inodes, and the group index
is binary-searched in the mapped file (``benchmarks/bench_serving.py``
gates both the 10x cold start and the >= 100x file-count reduction).
"""

from __future__ import annotations

import errno
import json
import mmap
import os
import shutil
import time
import zlib
from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # import cycle: ports imports graph helpers
    from .ports import PortAssignment

from ..graph.core import Graph
from . import header_codec
from .model import RouteAction, Forward, SchemeStats, aggregate_scheme_stats
from .shard_codec import (
    CODEC_VERSION,
    ChecksumError,
    ShardCodecError,
    check_pack,
    decode_node_table_fast,
    encode_node_table,
    encode_pack,
    find_pack_entry,
    parse_pack_header,
    verify_pack,
)
from .tables import NodeTable

__all__ = [
    "ServingError",
    "ShardUnavailableError",
    "ShardIntegrityError",
    "ReplicaExhaustedError",
    "WireContractError",
    "ShardAccountingError",
    "DirectIO",
    "ShardStore",
    "PackedShardStore",
    "ReplicatedShardStore",
    "open_store",
    "verify_shard_dir",
    "LocalRouter",
    "write_shards",
    "write_shard_records",
    "shard_path",
    "group_path",
    "replica_root",
    "is_shard_dir",
]

MANIFEST_NAME = "manifest.json"
FORMAT = "repro.routing.shards"
#: layout version 1: one file per vertex under shards/<g>/<v>.shard
FORMAT_VERSION = 1
#: layout version 2: packed group files under groups/<g>.pack
PACKED_FORMAT_VERSION = 2
#: layout version 3: packed group files whose index and payloads carry
#: CRC32 checksums (pack v2); with ``replicas=R > 1`` every group exists
#: on R replica paths under replica/<r>/groups/<g>.pack
CHECKSUM_FORMAT_VERSION = 3
#: shards per leaf directory (keeps directories small at n ~ 10^6)
DEFAULT_FANOUT = 256
#: shard payloads per packed group file: at n = 10^6 this is ~245 files
#: (vs 10^6 inodes), while one group stays small enough to map lazily
DEFAULT_GROUP_SIZE = 4096
#: transient-IO retry policy defaults (see _ShardStoreBase)
DEFAULT_RETRY_BUDGET = 2
DEFAULT_BACKOFF_S = 0.002


class ServingError(RuntimeError):
    """Base of the typed serving-failure hierarchy.

    Degraded-mode callers catch this one type; the subclasses say what
    failed (and multiple-inherit the legacy exception types earlier
    releases raised, so existing handlers keep working).
    """


class ShardUnavailableError(ServingError, FileNotFoundError):
    """A shard/group file that the manifest covers cannot be opened."""


class ShardIntegrityError(ServingError, ShardCodecError):
    """Stored bytes are corrupt: checksum mismatch, lying index, or a
    manifest-covered vertex missing from a structurally valid index."""


class WireContractError(ServingError):
    """A header violates the wire codec's contract (bool leaves, or a
    value that does not survive an encode/decode round trip)."""


class ShardAccountingError(ServingError):
    """Compiled shard bytes disagree with the scheme's word accounting."""


class ReplicaExhaustedError(ServingError):
    """Every replica of a group failed; carries the per-replica causes."""

    def __init__(self, message: str, causes: Dict[int, Exception]) -> None:
        super().__init__(message)
        #: replica index -> the exception that disqualified it
        self.causes = causes


class DirectIO:
    """The real filesystem behind a shard store.

    Stores never touch ``open``/``mmap`` directly — they go through one
    of these, which is the seam the fault-injection layer
    (:class:`repro.routing.faults.FaultInjector`) wraps.  Owns the maps
    it hands out; :meth:`close` releases them (the ``close()``
    discipline the leak tests enforce).
    """

    def __init__(self) -> None:
        self._views: List[memoryview] = []
        self._mmaps: List[mmap.mmap] = []

    def map_group(self, path: str, *, sequential: bool = False) -> memoryview:
        """Map ``path`` read-only; the view stays valid until close().

        ``sequential=True`` advises the kernel the map will be scanned
        front to back (``MADV_SEQUENTIAL`` readahead) — the verify
        sweeps touch every byte of every pack exactly once, which is the
        opposite of the random-access pattern serving exhibits.  Advice
        only: platforms without ``mmap.madvise`` (or without the flag)
        serve identical bytes, just without the readahead hint.
        """
        with open(path, "rb") as fh:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        if (
            sequential
            and hasattr(mapped, "madvise")
            and hasattr(mmap, "MADV_SEQUENTIAL")
        ):
            mapped.madvise(mmap.MADV_SEQUENTIAL)
        view = memoryview(mapped)
        self._views.append(view)
        self._mmaps.append(mapped)
        return view

    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as fh:
            return fh.read()

    def close(self) -> None:
        views, self._views = self._views, []
        for view in views:
            view.release()
        mmaps, self._mmaps = self._mmaps, []
        collected = False
        for mapped in mmaps:
            try:
                mapped.close()
            except BufferError:
                # a stray sub-view of this map is pinned in a reference
                # cycle (typically an exception traceback from a failed
                # verify) — one gc pass frees it; a second BufferError
                # is a real leak and propagates
                if not collected:
                    import gc

                    gc.collect()
                    collected = True
                mapped.close()


def shard_path(root: str, v: int, fanout: int) -> str:
    """On-disk path of vertex ``v``'s shard under a v1 layout ``root``."""
    return os.path.join(
        root, "shards", f"{v // fanout:04x}", f"{v}.shard"
    )


def group_path(root: str, g: int) -> str:
    """On-disk path of packed group ``g`` under a v2/v3 layout ``root``."""
    return os.path.join(root, "groups", f"{g:04x}.pack")


def replica_root(root: str, r: int) -> str:
    """Root of replica ``r`` under a replicated (v3) layout ``root``."""
    return os.path.join(root, "replica", str(r))


def _clear_stale_layouts(path: str) -> None:
    # A previous, larger or differently-packed layout would leave orphan
    # shards the new manifest cannot reach — and the directory's on-disk
    # size would no longer match the manifest's byte accounting.  Start
    # clean, whichever layout was there before.  The old manifest goes
    # FIRST: every reader gates on it, so a write interrupted anywhere
    # after this point leaves an unambiguous "not a shard directory"
    # (the new manifest only appears, atomically, after the last shard
    # landed) instead of a stale manifest describing deleted shards.
    manifest = os.path.join(path, MANIFEST_NAME)
    if os.path.isfile(manifest):
        os.remove(manifest)
    for sub in ("shards", "groups", "replica"):
        stale = os.path.join(path, sub)
        if os.path.isdir(stale):
            shutil.rmtree(stale)


def _write_per_file(
    path: str, blobs: Iterable[Tuple[int, bytes]], fanout: int
) -> Dict[str, Any]:
    # Streaming: each shard hits disk as it arrives — O(1) residency.
    made_dirs = set()
    count = 0
    for v, blob in blobs:
        target = shard_path(path, v, fanout)
        leaf = os.path.dirname(target)
        if leaf not in made_dirs:
            os.makedirs(leaf, exist_ok=True)
            made_dirs.add(leaf)
        tmp = f"{target}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, target)
        count += 1
    return {
        "version": FORMAT_VERSION,
        "layout": "files",
        "fanout": fanout,
        "files": {"shards": count, "dirs": len(made_dirs)},
    }


def _write_packed(
    path: str,
    blobs: Iterable[Tuple[int, bytes]],
    group_size: int,
    *,
    checksums: bool = True,
    replicas: int = 1,
) -> Dict[str, Any]:
    # Streaming with O(group) residency: a group flushes as soon as a
    # record of a later group arrives, so a 10^6-vertex layout never
    # holds more than one group's payloads.  That requires records in
    # nondecreasing group order — what every producer in this repository
    # emits (compile_tables, iter_nodes and the benches walk vertices in
    # order; within a group, encode_pack sorts).
    #
    # ``replicas=R > 1`` lands every encoded group on R replica roots
    # (encode once, write R times) — the redundancy the
    # ReplicatedShardStore fails over across.  Replication without
    # checksums would fail over on *loud* faults only, so it is refused.
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if replicas > 1 and not checksums:
        raise ValueError(
            "replicas > 1 requires checksums=True — failover is driven "
            "by checksum verification, a replica set without checksums "
            "could silently serve a corrupted group"
        )
    roots = (
        [path] if replicas == 1
        else [replica_root(path, r) for r in range(replicas)]
    )
    for root in roots:
        os.makedirs(os.path.join(root, "groups"), exist_ok=True)
    groups_written = 0

    # Groups are independent and encode_pack is a pure function of
    # (entries, checksums), so under REPRO_PARALLEL the encoding farms
    # out to the shared worker pool — FIFO, windowed, byte-identical
    # output; see repro.graph.parallel.PackEncoder.  The graph tier is
    # optional (pure-python installs have no numpy), hence the gate.
    try:
        from ..graph.parallel import pack_encoder
    except ImportError:
        encoder = None
    else:
        encoder = pack_encoder()

    def write(g: int, pack: bytes) -> None:
        nonlocal groups_written
        for root in roots:
            target = group_path(root, g)
            tmp = f"{target}.tmp.{os.getpid()}"
            with open(tmp, "wb") as fh:
                fh.write(pack)
            os.replace(tmp, target)
        groups_written += 1

    def flush(g: int, entries: List[Tuple[int, bytes]]) -> None:
        if encoder is not None:
            encoder.submit(g, entries, checksums)
            for done_g, pack in encoder.ready():
                write(done_g, pack)
        else:
            write(g, encode_pack(entries, checksums=checksums))

    try:
        current: Optional[int] = None
        entries: List[Tuple[int, bytes]] = []
        for v, blob in blobs:
            g = v // group_size
            if current is None:
                current = g
            elif g != current:
                if g < current:
                    raise ValueError(
                        f"packed layout needs records in nondecreasing "
                        f"group order; got group {g} after {current} "
                        f"(vertex {v})"
                    )
                flush(current, entries)
                current, entries = g, []
            entries.append((v, blob))
        if current is not None:
            flush(current, entries)
        if encoder is not None:
            for done_g, pack in encoder.drain():
                write(done_g, pack)
    finally:
        if encoder is not None:
            encoder.close()
    return {
        "version": (
            CHECKSUM_FORMAT_VERSION if checksums else PACKED_FORMAT_VERSION
        ),
        "layout": "packed",
        "group_size": group_size,
        "checksums": checksums,
        "replicas": replicas,
        "files": {"groups": groups_written, "replicas": replicas},
    }


def write_shard_records(
    records: Iterable[NodeTable],
    path: str,
    *,
    identity: Dict[str, Any],
    packed: bool = False,
    fanout: int = DEFAULT_FANOUT,
    group_size: int = DEFAULT_GROUP_SIZE,
    checksums: bool = True,
    replicas: int = 1,
) -> Dict[str, Any]:
    """Write encoded :class:`NodeTable` records under ``path``.

    The record-level half of :func:`write_shards`: callers that already
    hold records (re-export of a shard-backed session, the storage-layer
    benchmark) use it directly; ``identity`` supplies the manifest's
    scheme-identity fields (``spec``, ``scheme``, ``name``, ``params``,
    ``routing_params``, ``seed``).  ``records`` may be a generator — it
    is consumed in one streaming pass with bounded residency (one shard
    for the per-file layout, one group for the packed layout; packed
    writing needs records in nondecreasing ``owner // group_size``
    order, which every producer here emits).  Returns the manifest dict
    (also written to ``manifest.json``).

    Packed layouts default to ``checksums=True`` (layout v3: CRC32 per
    payload and per index); ``checksums=False`` writes the legacy v2
    packs.  ``replicas=R > 1`` (packed + checksummed only) lands every
    group on R replica paths for :class:`ReplicatedShardStore` failover.
    """
    if replicas > 1 and not packed:
        raise ValueError("replicas > 1 requires packed=True")
    os.makedirs(path, exist_ok=True)
    _clear_stale_layouts(path)
    stats = {"n": 0, "bytes": 0, "max_bytes": 0, "words": 0, "max_words": 0}

    def encoded() -> Iterator[Tuple[int, bytes]]:
        for record in records:
            blob = encode_node_table(record)
            stats["n"] += 1
            stats["bytes"] += len(blob)
            stats["max_bytes"] = max(stats["max_bytes"], len(blob))
            words = record.table_words()
            stats["words"] += words
            stats["max_words"] = max(stats["max_words"], words)
            yield record.owner, blob

    if packed:
        layout = _write_packed(
            path, encoded(), group_size,
            checksums=checksums, replicas=replicas,
        )
    else:
        layout = _write_per_file(path, encoded(), fanout)
    manifest = {
        "format": FORMAT,
        "codec": CODEC_VERSION,
        "n": stats["n"],
        "bytes": {
            "total": stats["bytes"],
            "max_shard": stats["max_bytes"],
            "avg_shard": round(stats["bytes"] / max(stats["n"], 1), 1),
        },
        "words": {
            "total_table_words": stats["words"],
            "max_table_words": stats["max_words"],
        },
    }
    manifest.update(layout)
    manifest.update(identity)
    # tmp + os.replace: the manifest appears atomically or not at all —
    # and a crash mid-dump must not leave the tmp file behind either
    # (operators sweeping a shard fleet should never wonder whether a
    # half-written .tmp is load-bearing).
    tmp = os.path.join(path, f"{MANIFEST_NAME}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, os.path.join(path, MANIFEST_NAME))
    except BaseException:
        if os.path.exists(tmp):
            os.remove(tmp)
        raise
    return manifest


def write_shards(
    scheme: Any,
    path: str,
    *,
    spec_name: str,
    params: Optional[Dict[str, Any]] = None,
    seed: int = 0,
    fanout: int = DEFAULT_FANOUT,
    packed: bool = False,
    group_size: int = DEFAULT_GROUP_SIZE,
    checksums: bool = True,
    replicas: int = 1,
) -> Dict[str, Any]:
    """Compile ``scheme`` and write the sharded layout under ``path``.

    ``packed=False`` writes one file per vertex (layout v1);
    ``packed=True`` writes ``O(n / group_size)`` packed group files —
    same payload bytes, same manifest accounting, a fraction of the
    inodes — checksummed by default (layout v3; ``checksums=False``
    reverts to the legacy v2 packs) and optionally replicated
    (``replicas=R`` places every group on R replica paths for
    :class:`ReplicatedShardStore` failover).  Returns the manifest
    dict.  The manifest's word totals are asserted against the scheme's
    own :class:`SchemeStats` — byte accounting that silently drifted
    from the word accounting would invalidate every size table we
    report.
    """
    records = scheme.compile_tables()
    stats = scheme.stats()
    total_words = sum(r.table_words() for r in records)
    if total_words != stats.total_table_words:
        raise ShardAccountingError(
            f"compiled shards hold {total_words} table words, scheme "
            f"reports {stats.total_table_words} — accounting drift"
        )
    identity = {
        "spec": spec_name,
        # LocalRouter re-exports carry the original scheme class through
        # scheme_class_name; built schemes are their own class.
        "scheme": getattr(
            scheme, "scheme_class_name", type(scheme).__name__
        ),
        "name": scheme.name,
        "seed": seed,
        "params": dict(params or {}),
        "routing_params": scheme.routing_params(),
    }
    return write_shard_records(
        records,
        path,
        identity=identity,
        packed=packed,
        fanout=fanout,
        group_size=group_size,
        checksums=checksums,
        replicas=replicas,
    )


def is_shard_dir(path: str) -> bool:
    """Whether ``path`` looks like a :func:`write_shards` layout."""
    return os.path.isdir(path) and os.path.isfile(
        os.path.join(path, MANIFEST_NAME)
    )


#: manifest fields every layout must carry, with their validators —
#: _load_manifest refuses arbitrary JSON instead of letting a missing
#: or mistyped field surface later as a KeyError in the serving path
_MANIFEST_COMMON = {
    "version": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "n": lambda v: (
        isinstance(v, int) and not isinstance(v, bool) and v >= 0
    ),
    "spec": lambda v: isinstance(v, str) and v != "",
    "scheme": lambda v: isinstance(v, str) and v != "",
}
_MANIFEST_LAYOUT = {
    FORMAT_VERSION: {
        "fanout": lambda v: (
            isinstance(v, int) and not isinstance(v, bool) and v >= 1
        ),
    },
    PACKED_FORMAT_VERSION: {
        "group_size": lambda v: (
            isinstance(v, int) and not isinstance(v, bool) and v >= 1
        ),
    },
    CHECKSUM_FORMAT_VERSION: {
        "group_size": lambda v: (
            isinstance(v, int) and not isinstance(v, bool) and v >= 1
        ),
        "checksums": lambda v: v is True,
        "replicas": lambda v: (
            isinstance(v, int) and not isinstance(v, bool) and v >= 1
        ),
    },
}


def _validate_manifest(manifest: Any, path: str) -> Dict[str, Any]:
    """Refuse manifests that are not what :func:`write_shard_records`
    writes, with the precise field named — a manifest is operator-edited
    JSON, and a typo'd ``n`` or ``group_size`` must fail at open, not as
    a wrong-shaped lookup mid-route."""
    if not isinstance(manifest, dict):
        raise ValueError(
            f"shard manifest of {path!r} is not a JSON object "
            f"(got {type(manifest).__name__})"
        )
    if manifest.get("format") != FORMAT:
        raise ValueError(
            f"not a shard manifest (format={manifest.get('format')!r})"
        )
    checks = dict(_MANIFEST_COMMON)
    version = manifest.get("version")
    if version in _MANIFEST_LAYOUT:
        checks.update(_MANIFEST_LAYOUT[version])
    for field, ok in checks.items():
        if field not in manifest:
            raise ValueError(
                f"shard manifest of {path!r} is missing required "
                f"field {field!r} (layout version {version!r})"
            )
        if not ok(manifest[field]):
            raise ValueError(
                f"shard manifest of {path!r} has invalid "
                f"{field}={manifest[field]!r}"
            )
    return manifest


def _load_manifest(path: str) -> Dict[str, Any]:
    manifest_path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        # ShardUnavailableError multiple-inherits FileNotFoundError, so
        # callers keyed on the legacy type keep working.
        raise ShardUnavailableError(
            f"{path!r} is not a shard directory (no {MANIFEST_NAME})"
        ) from None
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"shard manifest of {path!r} is not valid JSON: {exc}"
        ) from None
    return _validate_manifest(manifest, path)


class _ShardStoreBase:
    """Shared store machinery: LRU residency, serve counters, decoding.

    Subclasses implement one method — ``_read_shard(v)`` returning the
    raw shard bytes (or a zero-copy view of them) — and everything else
    (decode, owner check, LRU, statistics) is identical across layouts,
    which is what makes the packed-vs-per-file equivalence tests
    meaningful: the counters count the same events.
    """

    #: subclass-provided layout tag for stats()/repr
    layout = "?"

    def __init__(
        self, path: str, manifest: Dict[str, Any],
        max_resident: Optional[int],
        io: Optional[DirectIO] = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
        backoff_s: float = DEFAULT_BACKOFF_S,
    ) -> None:
        self.path = path
        self.manifest = manifest
        self.n = int(manifest["n"])
        self.max_resident = max_resident
        self._io = io if io is not None else DirectIO()
        #: transient-IO retry policy: an EIO read is retried up to
        #: ``retry_budget`` times with exponential backoff before the
        #: error escapes (or, in the replicated store, fails over)
        self.retry_budget = retry_budget
        self.backoff_s = backoff_s
        self._resident: "OrderedDict[int, NodeTable]" = OrderedDict()
        #: serve statistics
        self.loads = 0
        self.hits = 0
        self.bytes_read = 0
        #: fault-tolerance counters (every layout reports them; only
        #: the checksummed/replicated paths can move most of them)
        self.retries = 0
        self.checksum_failures = 0
        self.failovers = 0
        self.repairs = 0

    def _with_retries(self, op: Callable[[], Any], describe: str) -> Any:
        """Run ``op()`` retrying transient IO errors (EIO/EAGAIN).

        A NAS hiccup or an injected transient fault is not corruption:
        it is retried up to ``retry_budget`` times with exponential
        backoff, counted in ``retries``.  Anything else (missing file,
        checksum mismatch) propagates immediately — retrying those
        wastes the budget and delays failover.
        """
        attempt = 0
        while True:
            try:
                return op()
            except OSError as exc:
                if isinstance(exc, FileNotFoundError) or exc.errno not in (
                    errno.EIO, errno.EAGAIN,
                ):
                    raise
                if attempt >= self.retry_budget:
                    raise
                self.retries += 1
                if self.backoff_s:
                    time.sleep(self.backoff_s * (2 ** attempt))
                attempt += 1

    # -- layout hooks --------------------------------------------------
    def _read_shard(self, v: int) -> Union[bytes, memoryview]:
        raise NotImplementedError

    def _diagnose(self, v: int) -> None:
        """Layout-specific deep check when a shard fails to decode.

        Called before re-raising a decode/owner error so a layout can
        replace a vague symptom with the precise cause (the packed
        store runs the full index validation here).  Default: no-op.
        """

    # ------------------------------------------------------------------
    def node(self, v: int) -> NodeTable:
        """Vertex ``v``'s record, loaded from its shard on first touch."""
        record = self._resident.get(v)
        if record is not None:
            self._resident.move_to_end(v)
            self.hits += 1
            return record
        if not 0 <= v < self.n:
            raise ValueError(f"vertex {v} outside 0..{self.n - 1}")
        blob = self._read_shard(v)
        try:
            # Native-scanner dispatch (kernel-mode gated); identical
            # results and errors to the pure decoder in every mode.
            record = decode_node_table_fast(blob)
        except ShardCodecError:
            self._diagnose(v)
            raise
        if record.owner != v:
            self._diagnose(v)
            raise ValueError(
                f"shard of vertex {v} holds vertex {record.owner}"
            )
        self.loads += 1
        self.bytes_read += len(blob)
        self._resident[v] = record
        if (
            self.max_resident is not None
            and len(self._resident) > self.max_resident
        ):
            self._resident.popitem(last=False)
        return record

    def iter_nodes(self) -> Iterator[NodeTable]:
        """Every record in vertex order (a full scan — stats/export only)."""
        for v in range(self.n):
            yield self.node(v)

    def stats(self) -> Dict[str, Any]:
        """Serve counters: shard loads, cache hits, bytes read, residency,
        and the fault-tolerance counters (retries, checksum failures,
        failovers, repairs)."""
        return {
            "n": self.n,
            "layout": self.layout,
            "loads": self.loads,
            "hits": self.hits,
            "bytes_read": self.bytes_read,
            "resident": len(self._resident),
            "max_resident": self.max_resident,
            "retries": self.retries,
            "checksum_failures": self.checksum_failures,
            "failovers": self.failovers,
            "repairs": self.repairs,
        }

    def health(self) -> Dict[str, Any]:
        """One-look serving-health summary.

        ``status`` is ``"ok"`` until the store has observed (and
        survived) a fault — retried IO, a checksum failure, a failover —
        then ``"degraded"``; a store that cannot serve raises instead of
        reporting.  Subclasses extend this with layout detail (the
        replicated store adds its quarantine list).
        """
        degraded = bool(
            self.retries or self.checksum_failures or self.failovers
        )
        return {
            "status": "degraded" if degraded else "ok",
            "layout": self.layout,
            "n": self.n,
            "retries": self.retries,
            "checksum_failures": self.checksum_failures,
            "failovers": self.failovers,
            "repairs": self.repairs,
        }

    def close(self) -> None:
        """Release every IO resource (the store is unusable afterwards)."""
        self._io.close()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.path!r}, n={self.n}, "
            f"loads={self.loads}, hits={self.hits})"
        )


class ShardStore(_ShardStoreBase):
    """Layout-v1 store: one file per vertex, opened lazily.

    Parameters
    ----------
    path:
        Directory :func:`write_shards` produced (``packed=False``).
    max_resident:
        Optional LRU bound on decoded shards kept in memory — the
        serving-node memory budget.  ``None`` keeps everything touched.
    """

    layout = "files"

    def __init__(
        self,
        path: str,
        *,
        max_resident: Optional[int] = None,
        manifest: Optional[Dict[str, Any]] = None,
        io: Optional[DirectIO] = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
        backoff_s: float = DEFAULT_BACKOFF_S,
    ) -> None:
        # ``manifest`` lets open_store hand over the parse it already
        # did — cold-open reads the file once, not per-dispatch-step.
        if manifest is None:
            manifest = _load_manifest(path)
        if manifest.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported shard layout version "
                f"{manifest.get('version')!r} (per-file store reads "
                f"version {FORMAT_VERSION}; use open_store for dispatch)"
            )
        super().__init__(
            path, manifest, max_resident, io, retry_budget, backoff_s
        )
        self.fanout = int(manifest.get("fanout", DEFAULT_FANOUT))

    def shard_path(self, v: int) -> str:
        return shard_path(self.path, v, self.fanout)

    def _read_shard(self, v: int) -> bytes:
        target = self.shard_path(v)
        try:
            return self._with_retries(
                lambda: self._io.read_bytes(target), target
            )
        except FileNotFoundError:
            raise ShardUnavailableError(
                f"shard of vertex {v} is missing ({target}); a "
                f"local-knowledge route only touches visited vertices — "
                f"this one was needed"
            ) from None


class PackedShardStore(_ShardStoreBase):
    """Layout-v2/v3 store: ``mmap``-ed group files, zero-copy decode.

    Each ``groups/<g>.pack`` file is mapped once on first touch with its
    header validated (magic, version, index-fits-in-file — and, for the
    checksummed v3 layout, the index CRC32, so a lying index is caught
    before the first binary search trusts it); serving vertex ``v`` then
    binary-searches the mapped index and decodes the record straight
    from a ``memoryview`` slice of the map — no per-vertex
    ``open()``/``read()`` syscalls and no intermediate ``bytes`` copy on
    the hot path.  On v3 the payload's CRC32 is verified *before* the
    decoder touches the bytes, so a flipped bit in a stored weight —
    which would decode to a structurally valid but wrong table — raises
    :class:`ShardIntegrityError` instead.  The full O(count) structural
    index validation (:func:`repro.routing.shard_codec.check_pack`) is
    deferred off the hot path: it runs on the first anomaly — a lookup
    miss, a decode failure, an owner mismatch — so corruption still
    fails loudly with the codec's precise error, and eagerly (including
    every payload checksum) via :meth:`verify`.

    ``group_paths`` restricts the store to an explicit
    ``{group: pack path}`` assignment: only those groups are servable
    (any other raises :class:`ShardUnavailableError` — the precise
    failure a cluster worker must report when handed a vertex it does
    not own) and each group's pack is read from the given path rather
    than the default ``groups/<g>.pack``.  This is how a cluster worker
    (:mod:`repro.cluster.worker`) serves its owned slice of a
    replicated (v3) layout — each owned group mapped from one specific
    ``replica/<r>/groups/<g>.pack`` — which is also why the
    replicated-manifest refusal is lifted when an assignment is given:
    the placement, not this store, decides which copy serves.
    """

    layout = "packed"

    def __init__(
        self,
        path: str,
        *,
        max_resident: Optional[int] = None,
        manifest: Optional[Dict[str, Any]] = None,
        io: Optional[DirectIO] = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
        backoff_s: float = DEFAULT_BACKOFF_S,
        group_paths: Optional[Dict[int, str]] = None,
    ) -> None:
        if manifest is None:
            manifest = _load_manifest(path)
        version = manifest.get("version")
        if (
            version not in (PACKED_FORMAT_VERSION, CHECKSUM_FORMAT_VERSION)
            or manifest.get("layout") != "packed"
        ):
            raise ValueError(
                f"unsupported shard layout version {version!r}/"
                f"{manifest.get('layout')!r} (packed store reads "
                f"versions {PACKED_FORMAT_VERSION} and "
                f"{CHECKSUM_FORMAT_VERSION}, layout 'packed')"
            )
        if int(manifest.get("replicas", 1)) > 1 and group_paths is None:
            raise ValueError(
                f"shard directory {path!r} is replicated "
                f"(replicas={manifest['replicas']}); use "
                f"ReplicatedShardStore or open_store"
            )
        super().__init__(
            path, manifest, max_resident, io, retry_budget, backoff_s
        )
        self.group_size = int(manifest["group_size"])
        self.checksums = bool(manifest.get("checksums", False))
        self._maps: Dict[int, memoryview] = {}
        self._group_paths = (
            None if group_paths is None else dict(group_paths)
        )

    def group_path(self, g: int) -> str:
        if self._group_paths is not None:
            target = self._group_paths.get(g)
            if target is None:
                raise ShardUnavailableError(
                    f"group {g} is not in this store's assignment "
                    f"({len(self._group_paths)} owned groups under "
                    f"{self.path!r}) — route the lookup to the group's "
                    f"owner"
                )
            return target
        return group_path(self.path, g)

    def owns(self, v: int) -> bool:
        """Whether vertex ``v``'s shard is servable from this store."""
        if not 0 <= v < self.n:
            return False
        if self._group_paths is None:
            return True
        return self.group_of(v) in self._group_paths

    def owned_groups(self) -> Optional[Tuple[int, ...]]:
        """Sorted assignment groups, or ``None`` when unrestricted."""
        if self._group_paths is None:
            return None
        return tuple(sorted(self._group_paths))

    def group_of(self, v: int) -> int:
        return v // self.group_size

    @property
    def groups_mapped(self) -> int:
        return len(self._maps)

    def _map_group_file(
        self, target: str, g: int, *, sequential: bool = False
    ) -> memoryview:
        try:
            view = self._with_retries(
                lambda: self._io.map_group(target, sequential=sequential),
                target,
            )
        except FileNotFoundError:
            raise ShardUnavailableError(
                f"group {g} of the packed layout is missing "
                f"({target}); a local-knowledge route only touches "
                f"visited vertices' groups — this one was needed"
            ) from None
        # Header validation per mapping (plus the index CRC on v3)
        # keeps cold lookups syscall-light; the O(count) structural
        # index check runs on demand (_diagnose / verify) and every
        # corruption it would catch still surfaces through a failed
        # lookup, checksum, decode or owner check first.
        parse_pack_header(view)
        return view

    def _group_view(self, g: int, *, sequential: bool = False) -> memoryview:
        view = self._maps.get(g)
        if view is None:
            view = self._map_group_file(
                self.group_path(g), g, sequential=sequential
            )
            self._maps[g] = view
        return view

    def _quarantine_mapping(self, g: int) -> None:
        """Drop group ``g``'s mapping so the next access re-maps the
        file — a repaired/replaced pack must not be shadowed by a map
        of its corrupt predecessor."""
        self._maps.pop(g, None)

    def _read_shard(self, v: int) -> memoryview:
        g = self.group_of(v)
        view = self._group_view(g)
        found = find_pack_entry(view, v)
        if found is None:
            # The manifest covers v and write_shard_records packs every
            # record of a group into its file — an in-range miss means
            # the index lied (or the pack is incomplete), never that
            # deleting the file would help.  Quarantine the mapping and
            # raise the *integrity* error, not FileNotFoundError: the
            # structural check may name the corruption precisely.
            try:
                check_pack(view)
            except ShardCodecError as exc:
                self._quarantine_mapping(g)
                raise ShardIntegrityError(
                    f"index of group {g} is corrupt "
                    f"({self.group_path(g)}): {exc}"
                ) from exc
            self._quarantine_mapping(g)
            raise ShardIntegrityError(
                f"index of group {g} ({self.group_path(g)}) has no "
                f"entry for vertex {v}, which the manifest covers — "
                f"the index is corrupt or the pack is incomplete; the "
                f"mapping is quarantined (do NOT delete the pack: the "
                f"other entries may be intact)"
            )
        offset, length, crc = found
        if crc is not None:
            if zlib.crc32(view[offset:offset + length]) != crc:
                self.checksum_failures += 1
                self._quarantine_mapping(g)
                raise ShardIntegrityError(
                    f"payload of vertex {v} in group {g} fails its "
                    f"CRC32 ({self.group_path(g)}) — refusing to "
                    f"decode corrupted bytes"
                )
        return view[offset:offset + length]

    def _diagnose(self, v: int) -> None:
        # A shard that fails to decode (or holds the wrong owner) from
        # an mmap slice means the group's index lied about its bounds —
        # replace the symptom with check_pack's precise diagnosis.
        check_pack(self._group_view(self.group_of(v)))

    def group_count(self) -> int:
        return (self.n + self.group_size - 1) // self.group_size

    def _sweep_groups(self) -> List[int]:
        """Groups a verify sweep covers: the assignment when restricted,
        every group of the layout otherwise."""
        if self._group_paths is not None:
            return sorted(self._group_paths)
        return list(range(self.group_count()))

    def verify(self) -> int:
        """Eagerly validate every group — full index check plus every
        payload checksum (v3) or structural decode (v2); returns the
        number of groups checked.  Offline tooling / release checks —
        serving itself validates lazily.  Sweep mappings are made with
        sequential readahead advice (the scan touches every byte once)."""
        groups = self._sweep_groups()
        for g in groups:
            verify_pack(self._group_view(g, sequential=True))
        return len(groups)

    def verify_report(self) -> Dict[str, str]:
        """Non-raising :meth:`verify`: per-group ``"ok"`` or the error.

        The ``shard --verify`` sweep prints this — operators want the
        whole corruption picture, not the first bad group.
        """
        report: Dict[str, str] = {}
        for g in self._sweep_groups():
            name = f"group {g:04x}"
            try:
                verify_pack(self._group_view(g, sequential=True))
                report[name] = "ok"
            except (ShardCodecError, OSError) as exc:
                self._quarantine_mapping(g)
                report[name] = f"{type(exc).__name__}: {exc}"
        return report

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["groups_mapped"] = self.groups_mapped
        out["group_size"] = self.group_size
        out["checksums"] = self.checksums
        return out

    def close(self) -> None:
        """Release every mapping (the store is unusable afterwards)."""
        self._maps = {}
        self._io.close()


class ReplicatedShardStore(_ShardStoreBase):
    """Layout-v3 store over R replica roots with checksum-driven failover.

    Every group exists as ``replica/<r>/groups/<g>.pack`` for each
    replica ``r``; the store maps one replica per group and, because v3
    packs are fully checksummed, runs :func:`verify_pack` over the whole
    group *at map time* — so a corrupt or truncated replica is rejected
    before a single entry is served from it, and the store fails over to
    the next replica.  A replica that fails (missing file, short map,
    checksum mismatch, persistent I/O error) is **quarantined** for that
    group: subsequent maps skip it until :meth:`repair` rewrites it from
    a healthy copy.  Transient I/O errors (EIO/EAGAIN) are retried with
    backoff before counting as a replica failure.  If every replica of a
    group is bad, :class:`ReplicaExhaustedError` reports each replica's
    individual cause — the operator's starting point for manual
    recovery.

    Full-group verification at map time costs O(group) once per mapped
    group (amortised to nothing over a warm serving run) and buys a hard
    guarantee the chaos suite asserts: no corrupted table is ever
    silently decoded, and every injected corruption produces exactly one
    observable failover.
    """

    layout = "packed"

    def __init__(
        self,
        path: str,
        *,
        max_resident: Optional[int] = None,
        manifest: Optional[Dict[str, Any]] = None,
        io: Optional[DirectIO] = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
        backoff_s: float = DEFAULT_BACKOFF_S,
    ) -> None:
        if manifest is None:
            manifest = _load_manifest(path)
        if (
            manifest.get("version") != CHECKSUM_FORMAT_VERSION
            or manifest.get("layout") != "packed"
            or int(manifest.get("replicas", 1)) < 2
        ):
            raise ValueError(
                f"unsupported shard layout "
                f"version={manifest.get('version')!r} "
                f"layout={manifest.get('layout')!r} "
                f"replicas={manifest.get('replicas')!r} (replicated "
                f"store needs version {CHECKSUM_FORMAT_VERSION}, "
                f"layout 'packed', replicas >= 2)"
            )
        super().__init__(
            path, manifest, max_resident, io, retry_budget, backoff_s
        )
        self.group_size = int(manifest["group_size"])
        self.checksums = True
        self.replicas = int(manifest["replicas"])
        self._maps: Dict[int, memoryview] = {}
        self._map_replica: Dict[int, int] = {}
        # group -> set of quarantined replica indices
        self._quarantined: Dict[int, set] = {}

    # -- paths ---------------------------------------------------------
    def group_path(self, g: int, r: int = 0) -> str:
        return group_path(replica_root(self.path, r), g)

    def group_of(self, v: int) -> int:
        return v // self.group_size

    def group_count(self) -> int:
        return (self.n + self.group_size - 1) // self.group_size

    @property
    def groups_mapped(self) -> int:
        return len(self._maps)

    def quarantined(self) -> Dict[int, Tuple[int, ...]]:
        """``{group: (replica, ...)}`` of currently quarantined copies."""
        return {
            g: tuple(sorted(rs))
            for g, rs in self._quarantined.items()
            if rs
        }

    # -- failover core -------------------------------------------------
    def _replica_unavailable(
        self, g: int, r: int, target: str
    ) -> ShardUnavailableError:
        """Typed translation of a missing replica file.

        Names the replica (the operator's unit of repair) and detects
        the partially-written case — a ``replica/<r>`` directory whose
        ``groups/`` subdir never landed (an interrupted ``write_shards``
        or a botched copy) — instead of letting a raw
        ``FileNotFoundError`` cross the store (or, one layer up, the
        cluster RPC) boundary untyped.
        """
        groups_dir = os.path.join(replica_root(self.path, r), "groups")
        if not os.path.isdir(groups_dir):
            return ShardUnavailableError(
                f"replica {r} of {self.path!r} is partially written: "
                f"its groups/ directory is missing ({groups_dir}) — "
                f"the replica never finished landing; repair() can "
                f"rewrite it from a healthy replica"
            )
        return ShardUnavailableError(
            f"replica {r} of group {g} is missing ({target})"
        )

    def _map_verified(
        self, g: int, r: int, *, sequential: bool = False
    ) -> memoryview:
        """Map replica ``r`` of group ``g`` and verify it end to end."""
        target = self.group_path(g, r)
        try:
            view = self._with_retries(
                lambda: self._io.map_group(target, sequential=sequential),
                target,
            )
        except FileNotFoundError as exc:
            raise self._replica_unavailable(g, r, target) from exc
        try:
            verify_pack(view)
        except ShardCodecError:
            view.release()
            raise
        return view

    def _group_view(self, g: int) -> memoryview:
        view = self._maps.get(g)
        if view is not None:
            return view
        bad = self._quarantined.setdefault(g, set())
        causes: Dict[int, Exception] = {}
        for r in range(self.replicas):
            if r in bad:
                causes[r] = ReplicaExhaustedError(
                    "quarantined earlier this session", {}
                )
                continue
            try:
                view = self._map_verified(g, r)
            except (OSError, ShardCodecError) as exc:
                # strip the traceback before keeping the exception: its
                # frames hold memoryview slices of the just-released
                # map in a reference cycle, which would keep the mmap
                # un-closeable until a gc pass
                causes[r] = exc.with_traceback(None)
                bad.add(r)
                if isinstance(exc, ChecksumError):
                    self.checksum_failures += 1
                self.failovers += 1
                continue
            self._maps[g] = view
            self._map_replica[g] = r
            return view
        raise ReplicaExhaustedError(
            f"every replica of group {g} is unavailable or corrupt "
            f"(root {self.path})",
            causes,
        )

    def _quarantine_mapping(self, g: int) -> None:
        """Quarantine the *currently mapped* replica of group ``g`` and
        drop the mapping, so the next access fails over."""
        view = self._maps.pop(g, None)
        if view is not None:
            view.release()
        r = self._map_replica.pop(g, None)
        if r is not None:
            self._quarantined.setdefault(g, set()).add(r)

    def _read_shard(self, v: int) -> memoryview:
        g = self.group_of(v)
        view = self._group_view(g)
        found = find_pack_entry(view, v)
        if found is None:
            # The mapped replica passed verify_pack, so its index is
            # structurally sound and checksummed — a miss for an
            # in-range vertex means this replica's pack is incomplete.
            # Quarantine it and fail over.
            self._quarantine_mapping(g)
            self.failovers += 1
            view = self._group_view(g)
            found = find_pack_entry(view, v)
            if found is None:
                self._quarantine_mapping(g)
                raise ShardIntegrityError(
                    f"no replica of group {g} holds vertex {v}, which "
                    f"the manifest covers — the packs are incomplete"
                )
        offset, length, crc = found
        if crc is not None and zlib.crc32(
            view[offset:offset + length]
        ) != crc:
            # verify_pack passed at map time, so the bytes rotted
            # *after* mapping (or the medium is flaky) — quarantine
            # and fail over once.
            self.checksum_failures += 1
            self._quarantine_mapping(g)
            self.failovers += 1
            return self._read_shard(v)
        return view[offset:offset + length]

    def _diagnose(self, v: int) -> None:
        check_pack(self._group_view(self.group_of(v)))

    # -- sweeps --------------------------------------------------------
    def _map_for_sweep(self, g: int, r: int) -> memoryview:
        """Map one replica copy for a verify sweep: sequential readahead
        (the sweep scans every byte once), missing files translated to
        the typed :class:`ShardUnavailableError` naming the replica."""
        target = self.group_path(g, r)
        try:
            return self._io.map_group(target, sequential=True)
        except FileNotFoundError as exc:
            raise self._replica_unavailable(g, r, target) from exc

    def verify(self) -> int:
        """Validate every replica of every group; returns the number of
        groups checked.  Raises on the first corrupt copy — use
        :meth:`verify_report` for the full picture."""
        groups = self.group_count()
        for g in range(groups):
            for r in range(self.replicas):
                verify_pack(self._map_for_sweep(g, r))
        return groups

    def verify_report(self) -> Dict[str, str]:
        """Per-``(group, replica)`` map of ``"ok"`` or the error."""
        report: Dict[str, str] = {}
        for g in range(self.group_count()):
            for r in range(self.replicas):
                name = f"group {g:04x} replica {r}"
                try:
                    verify_pack(self._map_for_sweep(g, r))
                    report[name] = "ok"
                except (ShardCodecError, OSError) as exc:
                    report[name] = f"{type(exc).__name__}: {exc}"
        return report

    def repair(self) -> Dict[str, int]:
        """Rewrite every bad replica copy from a healthy one.

        Sweeps all ``(group, replica)`` pairs on the real filesystem
        (deliberately *not* through the store's I/O seam — repair is an
        administrative operation, and running it through a fault
        injector would let the chaos schedule corrupt the repair
        itself), rewriting any copy that is missing or fails
        :func:`verify_pack` from the first healthy copy of the same
        group, via tmp + ``os.replace`` so a crash mid-repair never
        leaves a torn pack.  Quarantined replicas that turn out healthy
        on disk (e.g. a transient error burned their budget) are simply
        requalified.  Returns counters; raises
        :class:`ReplicaExhaustedError` if some group has no healthy
        copy at all.
        """
        repaired = 0
        requalified = 0
        admin = DirectIO()
        try:
            for g in range(self.group_count()):
                healthy: Optional[int] = None
                bad: List[int] = []
                causes: Dict[int, Exception] = {}
                for r in range(self.replicas):
                    try:
                        try:
                            blob = admin.read_bytes(self.group_path(g, r))
                        except FileNotFoundError as exc:
                            # typed, replica-named cause — a partially
                            # written replica (missing groups/ subdir)
                            # says so, instead of a raw OSError
                            raise self._replica_unavailable(
                                g, r, self.group_path(g, r)
                            ) from exc
                        verify_pack(blob)
                    except (OSError, ShardCodecError) as exc:
                        bad.append(r)
                        causes[r] = exc.with_traceback(None)
                    else:
                        if healthy is None:
                            healthy = r
                if healthy is None:
                    raise ReplicaExhaustedError(
                        f"group {g} has no healthy replica to repair "
                        f"from (root {self.path})",
                        causes,
                    )
                if bad:
                    blob = admin.read_bytes(self.group_path(g, healthy))
                    for r in bad:
                        target = self.group_path(g, r)
                        os.makedirs(
                            os.path.dirname(target), exist_ok=True
                        )
                        tmp = target + ".tmp"
                        with open(tmp, "wb") as fh:
                            fh.write(blob)
                        os.replace(tmp, target)
                        repaired += 1
                        self.repairs += 1
                # every copy of g is now healthy on disk: lift the
                # quarantine and drop any mapping of a replaced file
                quarantined = self._quarantined.pop(g, set())
                requalified += len(quarantined - set(bad))
                if g in self._maps and self._map_replica.get(g) in bad:
                    view = self._maps.pop(g)
                    view.release()
                    self._map_replica.pop(g, None)
        finally:
            admin.close()
        return {"repaired": repaired, "requalified": requalified}

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["groups_mapped"] = self.groups_mapped
        out["group_size"] = self.group_size
        out["checksums"] = True
        out["replicas"] = self.replicas
        out["quarantined"] = sum(
            len(rs) for rs in self._quarantined.values()
        )
        return out

    def health(self) -> Dict[str, Any]:
        out = super().health()
        quarantined = sum(len(rs) for rs in self._quarantined.values())
        out["quarantined"] = quarantined
        if quarantined:
            out["status"] = "degraded"
        return out

    def close(self) -> None:
        self._maps = {}
        self._map_replica = {}
        self._io.close()


def open_store(
    path: str,
    *,
    max_resident: Optional[int] = None,
    io: Optional[DirectIO] = None,
    retry_budget: int = DEFAULT_RETRY_BUDGET,
    backoff_s: float = DEFAULT_BACKOFF_S,
) -> _ShardStoreBase:
    """Open a shard directory with the store matching its manifest.

    Layout dispatch lives here (and only here): per-file v1 manifests
    get a :class:`ShardStore`, packed v2 and single-copy v3 manifests a
    :class:`PackedShardStore`, replicated v3 manifests a
    :class:`ReplicatedShardStore`; anything else fails loudly instead
    of being misread by the wrong backend.
    """
    manifest = _load_manifest(path)
    version = manifest.get("version")
    if version == FORMAT_VERSION:
        return ShardStore(
            path,
            max_resident=max_resident,
            manifest=manifest,
            io=io,
            retry_budget=retry_budget,
            backoff_s=backoff_s,
        )
    if version in (PACKED_FORMAT_VERSION, CHECKSUM_FORMAT_VERSION):
        cls = (
            ReplicatedShardStore
            if int(manifest.get("replicas", 1)) > 1
            else PackedShardStore
        )
        return cls(
            path,
            max_resident=max_resident,
            manifest=manifest,
            io=io,
            retry_budget=retry_budget,
            backoff_s=backoff_s,
        )
    raise ValueError(f"unsupported shard layout version {version!r}")


def verify_shard_dir(path: str) -> Dict[str, str]:
    """Offline integrity sweep of a shard directory, any layout.

    Returns a ``{unit: "ok" | "<Error>: <detail>"}`` report — per group
    for packed layouts (per group *and replica* when replicated), per
    shard file for the v1 per-file layout.  Never raises on corruption
    (only on an unreadable/invalid manifest): operators want the whole
    picture in one sweep.
    """
    manifest = _load_manifest(path)
    if manifest.get("version") == FORMAT_VERSION:
        report: Dict[str, str] = {}
        store = ShardStore(path, manifest=manifest)
        try:
            for v in range(store.n):
                try:
                    store.node(v)
                except (ShardCodecError, OSError) as exc:
                    report[f"shard {v}"] = f"{type(exc).__name__}: {exc}"
                else:
                    report[f"shard {v}"] = "ok"
        finally:
            store.close()
        return report
    store = open_store(path)
    try:
        return store.verify_report()
    finally:
        store.close()


def _contains_bool(header: Any) -> bool:
    """Whether a (nested-tuple) header carries a bool leaf anywhere.

    The bool-free header contract's checker: ``LocalRouter._wire_len``
    runs it on value-cache misses, and the serving conformance tests
    run it on every header every registered scheme forwards.
    """
    if isinstance(header, bool):
        return True
    if isinstance(header, tuple):
        return any(_contains_bool(item) for item in header)
    return False


# ----------------------------------------------------------------------
# Shard-backed views handed to SchemeBase.restore_serving
# ----------------------------------------------------------------------
class _ShardPorts:
    """Footnote-2 port translation answered from the local shard only."""

    def __init__(self, store: _ShardStoreBase) -> None:
        self._store = store

    def port_to(self, u: int, v: int) -> int:
        return self._store.node(u).port_to(v)

    def neighbor(self, u: int, port: int) -> int:
        return self._store.node(u).neighbor(port)

    def degree(self, u: int) -> int:
        return self._store.node(u).degree()


class _ShardTables:
    """``tables[v]`` view resolving to the shard's :class:`SizedTable`."""

    def __init__(self, store: _ShardStoreBase) -> None:
        self._store = store
        self._sized: Dict[int, Any] = {}

    def __getitem__(self, v: int) -> Any:
        table = self._sized.get(v)
        if table is None:
            table = self._store.node(v).sized_table()
            self._sized[v] = table
            if (
                self._store.max_resident is not None
                and len(self._sized) > self._store.max_resident
            ):
                self._sized.clear()  # cheap reset; rebuilt from residents
        return table


class _ShardLabels:
    """``labels[v]`` view resolving to the shard's label."""

    def __init__(self, store: _ShardStoreBase) -> None:
        self._store = store

    def __getitem__(self, v: int) -> Any:
        return self._store.node(v).label


class LocalRouter:
    """The serving engine: step decisions from the current shard alone.

    Implements the simulator's engine protocol — ``step``, ``label_of``,
    ``local_edge`` and ``n`` — so :func:`repro.routing.simulator.route`
    executes a message with *zero* global knowledge: each decision reads
    vertex ``u``'s shard, and the move across the returned port reads the
    same shard's neighbour list.  The inner stepper is the real scheme
    class (resolved from the registry via the manifest), rebuilt step-only
    via ``SchemeBase.restore_serving`` — so decisions are byte-identical
    to the monolithic in-memory scheme, which the serving tests assert
    hop by hop for every registered scheme.

    Every forwarded header crosses the wire codec
    (:mod:`repro.routing.header_codec`): the first time a header value is
    forwarded it is encoded, decoded back, and checked for exact
    round-trip — a header shape the codec cannot carry fails at serve
    time, not in a hypothetical future deployment — and its wire length
    is cached by value, so the per-hop cost of accounting the true
    header bytes (``header_stats()``, surfaced through
    ``RoutingSession.serve_stats()``) is one dict probe.  The verified
    round-trip is what makes forwarding the in-memory header equivalent
    to forwarding the wire bytes, which keeps warm shard throughput
    within the ~10%-of-in-memory budget the serving benchmark gates.
    """

    def __init__(self, store: _ShardStoreBase) -> None:
        # Resolved lazily to keep repro.routing import-independent from
        # repro.api (which imports the schemes, which import routing).
        from ..api.registry import get_spec

        self.store = store
        manifest = store.manifest
        spec = get_spec(manifest["spec"])
        if spec.factory.__name__ != manifest["scheme"]:
            raise ValueError(
                f"shards were compiled by {manifest['scheme']}, spec "
                f"{manifest['spec']!r} maps to {spec.factory.__name__}"
            )
        self.spec_name = manifest["spec"]
        self.scheme_class_name = manifest["scheme"]
        self.n = store.n
        self._stepper = spec.factory.restore_serving(
            ports=_ShardPorts(store),
            tables=_ShardTables(store),
            labels=_ShardLabels(store),
            params=manifest.get("routing_params") or {},
            name=manifest.get("name"),
        )
        self.name = self._stepper.name
        self._graph: Optional[Graph] = None
        self._ports: Optional[Any] = None
        #: wire-header accounting (headers forwarded, total/max bytes)
        self.headers_encoded = 0
        self.header_bytes = 0
        self.max_header_bytes = 0
        #: header value -> verified wire length (bounded; see _wire_len)
        self._wire_cache: Dict[Any, int] = {}

    def _wire_len(self, header: Any) -> int:
        """Wire byte length of ``header``, round-trip-verified once.

        A cache miss pays the full ``decode(encode(h)) == h`` check;
        hits (the overwhelming majority — tree-phase headers repeat
        unchanged hop after hop, technique headers recur by value
        across routes) cost one dict probe.

        Contract: headers must be bool-free (use 0/1 ints).  Python
        equality conflates ``True``/``1`` — whose wire encodings differ
        — so a bool-leafed header that happened to equal a cached int
        shape would be misaccounted by its twin's length; a per-lookup
        deep check would cost more than the encode it avoids (measured:
        warm shard throughput drops from ~0.9x of in-memory to ~0.7x),
        so the contract is enforced where it is free — the miss path
        below refuses bool leaves outright, and the serving conformance
        tests assert bool-freedom for every header every registered
        scheme forwards, hop by hop.
        """
        length = self._wire_cache.get(header)
        if length is None:
            if _contains_bool(header):
                raise WireContractError(
                    f"header {header!r} carries a bool leaf; the "
                    f"serving engine's wire-length cache cannot tell "
                    f"True/False from 1/0 (Python value equality) — "
                    f"encode the flag as an int instead"
                )
            wire = header_codec.encode(header)
            if header_codec.decode(wire) != header:
                raise WireContractError(
                    f"header {header!r} does not survive the wire codec"
                )
            length = len(wire)
            if len(self._wire_cache) >= 65536:
                self._wire_cache.clear()
            self._wire_cache[header] = length
        return length

    # -- engine protocol -----------------------------------------------
    def step(self, u: int, header: Any, dest_label: Any) -> RouteAction:
        action = self._stepper.step(u, header, dest_label)
        if isinstance(action, Forward):
            length = self._wire_len(action.header)
            self.headers_encoded += 1
            self.header_bytes += length
            if length > self.max_header_bytes:
                self.max_header_bytes = length
        return action

    def label_of(self, v: int) -> Any:
        return self.store.node(v).label

    def local_edge(self, u: int, port: int) -> Tuple[int, float]:
        """``(neighbour, weight)`` of ``u``'s link ``port`` — shard-local."""
        return self.store.node(u).edge(port)

    def header_stats(self) -> Dict[str, int]:
        """True wire cost of every header this engine forwarded."""
        return {
            "headers_encoded": self.headers_encoded,
            "header_bytes": self.header_bytes,
            "max_header_bytes": self.max_header_bytes,
        }

    # -- scheme-compatible surface (measurement/accounting) ------------
    def table_of(self, v: int) -> Any:
        return self._stepper.table_of(v)

    def stretch_bound(self) -> Any:
        return self._stepper.stretch_bound()

    def routing_params(self) -> Dict[str, Any]:
        return self._stepper.routing_params()

    @property
    def graph(self) -> Graph:
        """The graph reassembled from every shard's neighbour list.

        Serving never needs this — it exists so a shard-backed session
        can still ``measure``/``validate`` against the exact metric.
        Loads all shards on first use (and says so in the docstring
        rather than pretending to be cheap).
        """
        if self._graph is None:
            adjacency: List[List[Tuple[int, float]]] = [
                [(nb, w) for nb, w in self.store.node(v).neighbors]
                for v in range(self.n)
            ]
            self._graph = Graph.from_adjacency(adjacency)
        return self._graph

    @property
    def ports(self) -> "PortAssignment":
        """The global port numbering reassembled from the shards.

        Like :attr:`graph`, a full-scan convenience for re-export and
        offline inspection — serving resolves ports shard-locally.
        """
        if self._ports is None:
            from .ports import PortAssignment

            order = [
                [nb for nb, _ in self.store.node(v).neighbors]
                for v in range(self.n)
            ]
            self._ports = PortAssignment.from_order(self.graph, order)
        return self._ports

    def compile_tables(self) -> List[NodeTable]:
        """The resident shape itself: every shard's record (full scan)."""
        return list(self.store.iter_nodes())

    def stats(self) -> SchemeStats:
        """Aggregate table/label sizes over all shards (full scan)."""
        records = list(self.store.iter_nodes())
        return aggregate_scheme_stats(
            self.name,
            self.n,
            (r.sized_table() for r in records),
            (r.label for r in records),
        )

    def __repr__(self) -> str:
        return f"LocalRouter({self.name!r}, n={self.n}, {self.store!r})"
