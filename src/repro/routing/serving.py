"""Local-knowledge serving: route on per-vertex shards loaded from disk.

The deployment story of a compact routing scheme (ROADMAP follow-up (b)):
each node holds *its own* ``o(n)``-word table and forwards using that
table plus the packet header — nothing global.  This module makes that
executable:

* :func:`write_shards` — lay a compiled scheme out on disk, either as one
  binary shard per vertex (:mod:`repro.routing.shard_codec`) under a
  fan-out directory tree (layout v1), or — with ``packed=True`` — as a
  handful of packed group files holding many shard payloads each behind
  a sorted offset/length index (layout v2), plus one small
  ``manifest.json`` with the scheme identity, codec version, layout and
  byte/word accounting,
* :class:`ShardStore` / :class:`PackedShardStore` — lazy shard loaders
  over the two layouts, sharing one LRU residency bound and one set of
  serve statistics (loads, cache hits, bytes read); the packed store
  maps each group file once (``mmap``) and decodes a record through
  a zero-copy ``memoryview`` of the mapped buffer — no per-vertex
  ``open()``, no intermediate ``bytes``,
* :func:`open_store` — layout dispatch from the manifest, so callers
  (and ``RoutingSession.load``) never care which layout is on disk,
* :class:`LocalRouter` — the serving engine: a step-only scheme instance
  (``SchemeBase.restore_serving``) whose table, label and port accesses
  all resolve from the *current vertex's* shard.  It implements the
  simulator's engine protocol (``step``/``label_of``/``local_edge``), so
  :func:`repro.routing.simulator.route` drives it exactly like an
  in-memory scheme — and the local-knowledge tests prove the step
  decisions are identical even when every shard (or group) but the
  visited ones is deleted from disk.  Every forwarded header is pushed
  through the wire codec (:mod:`repro.routing.header_codec`): the header
  the next hop sees is the decoded wire bytes, and ``serve_stats()``
  reports the true header bytes sent.

Layouts on disk::

    <dir>/manifest.json             # identity + accounting, JSON
    <dir>/shards/<g>/<v>.shard      # v1: g = v // fanout, zero-padded hex
    <dir>/groups/<g>.pack           # v2: g = v // group_size

Cold-start cost is the point: serving vertex ``v`` reads the manifest
and ``v``'s shard — a few hundred bytes — instead of parsing the whole
JSON session blob.  The packed layout extends that to ``n >= 10^5``:
``O(n / group_size)`` files instead of ``n`` inodes, and the group index
is binary-searched in the mapped file (``benchmarks/bench_serving.py``
gates both the 10x cold start and the >= 100x file-count reduction).
"""

from __future__ import annotations

import json
import mmap
import os
import shutil
from collections import OrderedDict
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..graph.core import Graph
from . import header_codec
from .model import RouteAction, Forward, SchemeStats, aggregate_scheme_stats
from .shard_codec import (
    CODEC_VERSION,
    ShardCodecError,
    check_pack,
    decode_node_table,
    encode_node_table,
    encode_pack,
    find_in_pack,
    parse_pack_header,
)
from .tables import NodeTable

__all__ = [
    "ShardStore",
    "PackedShardStore",
    "open_store",
    "LocalRouter",
    "write_shards",
    "write_shard_records",
    "shard_path",
    "group_path",
    "is_shard_dir",
]

MANIFEST_NAME = "manifest.json"
FORMAT = "repro.routing.shards"
#: layout version 1: one file per vertex under shards/<g>/<v>.shard
FORMAT_VERSION = 1
#: layout version 2: packed group files under groups/<g>.pack
PACKED_FORMAT_VERSION = 2
#: shards per leaf directory (keeps directories small at n ~ 10^6)
DEFAULT_FANOUT = 256
#: shard payloads per packed group file: at n = 10^6 this is ~245 files
#: (vs 10^6 inodes), while one group stays small enough to map lazily
DEFAULT_GROUP_SIZE = 4096


def shard_path(root: str, v: int, fanout: int) -> str:
    """On-disk path of vertex ``v``'s shard under a v1 layout ``root``."""
    return os.path.join(
        root, "shards", f"{v // fanout:04x}", f"{v}.shard"
    )


def group_path(root: str, g: int) -> str:
    """On-disk path of packed group ``g`` under a v2 layout ``root``."""
    return os.path.join(root, "groups", f"{g:04x}.pack")


def _clear_stale_layouts(path: str) -> None:
    # A previous, larger or differently-packed layout would leave orphan
    # shards the new manifest cannot reach — and the directory's on-disk
    # size would no longer match the manifest's byte accounting.  Start
    # clean, whichever layout was there before.  The old manifest goes
    # FIRST: every reader gates on it, so a write interrupted anywhere
    # after this point leaves an unambiguous "not a shard directory"
    # (the new manifest only appears, atomically, after the last shard
    # landed) instead of a stale manifest describing deleted shards.
    manifest = os.path.join(path, MANIFEST_NAME)
    if os.path.isfile(manifest):
        os.remove(manifest)
    for sub in ("shards", "groups"):
        stale = os.path.join(path, sub)
        if os.path.isdir(stale):
            shutil.rmtree(stale)


def _write_per_file(
    path: str, blobs: Iterable[Tuple[int, bytes]], fanout: int
) -> Dict[str, Any]:
    # Streaming: each shard hits disk as it arrives — O(1) residency.
    made_dirs = set()
    count = 0
    for v, blob in blobs:
        target = shard_path(path, v, fanout)
        leaf = os.path.dirname(target)
        if leaf not in made_dirs:
            os.makedirs(leaf, exist_ok=True)
            made_dirs.add(leaf)
        tmp = f"{target}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, target)
        count += 1
    return {
        "version": FORMAT_VERSION,
        "layout": "files",
        "fanout": fanout,
        "files": {"shards": count, "dirs": len(made_dirs)},
    }


def _write_packed(
    path: str, blobs: Iterable[Tuple[int, bytes]], group_size: int
) -> Dict[str, Any]:
    # Streaming with O(group) residency: a group flushes as soon as a
    # record of a later group arrives, so a 10^6-vertex layout never
    # holds more than one group's payloads.  That requires records in
    # nondecreasing group order — what every producer in this repository
    # emits (compile_tables, iter_nodes and the benches walk vertices in
    # order; within a group, encode_pack sorts).
    os.makedirs(os.path.join(path, "groups"), exist_ok=True)
    groups_written = 0

    def flush(g: int, entries: List[Tuple[int, bytes]]) -> None:
        target = group_path(path, g)
        tmp = f"{target}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(encode_pack(entries))
        os.replace(tmp, target)

    current: Optional[int] = None
    entries: List[Tuple[int, bytes]] = []
    for v, blob in blobs:
        g = v // group_size
        if current is None:
            current = g
        elif g != current:
            if g < current:
                raise ValueError(
                    f"packed layout needs records in nondecreasing "
                    f"group order; got group {g} after {current} "
                    f"(vertex {v})"
                )
            flush(current, entries)
            groups_written += 1
            current, entries = g, []
        entries.append((v, blob))
    if current is not None:
        flush(current, entries)
        groups_written += 1
    return {
        "version": PACKED_FORMAT_VERSION,
        "layout": "packed",
        "group_size": group_size,
        "files": {"groups": groups_written},
    }


def write_shard_records(
    records: Iterable[NodeTable],
    path: str,
    *,
    identity: Dict[str, Any],
    packed: bool = False,
    fanout: int = DEFAULT_FANOUT,
    group_size: int = DEFAULT_GROUP_SIZE,
) -> Dict[str, Any]:
    """Write encoded :class:`NodeTable` records under ``path``.

    The record-level half of :func:`write_shards`: callers that already
    hold records (re-export of a shard-backed session, the storage-layer
    benchmark) use it directly; ``identity`` supplies the manifest's
    scheme-identity fields (``spec``, ``scheme``, ``name``, ``params``,
    ``routing_params``, ``seed``).  ``records`` may be a generator — it
    is consumed in one streaming pass with bounded residency (one shard
    for the per-file layout, one group for the packed layout; packed
    writing needs records in nondecreasing ``owner // group_size``
    order, which every producer here emits).  Returns the manifest dict
    (also written to ``manifest.json``).
    """
    os.makedirs(path, exist_ok=True)
    _clear_stale_layouts(path)
    stats = {"n": 0, "bytes": 0, "max_bytes": 0, "words": 0, "max_words": 0}

    def encoded() -> Iterator[Tuple[int, bytes]]:
        for record in records:
            blob = encode_node_table(record)
            stats["n"] += 1
            stats["bytes"] += len(blob)
            stats["max_bytes"] = max(stats["max_bytes"], len(blob))
            words = record.table_words()
            stats["words"] += words
            stats["max_words"] = max(stats["max_words"], words)
            yield record.owner, blob

    if packed:
        layout = _write_packed(path, encoded(), group_size)
    else:
        layout = _write_per_file(path, encoded(), fanout)
    manifest = {
        "format": FORMAT,
        "codec": CODEC_VERSION,
        "n": stats["n"],
        "bytes": {
            "total": stats["bytes"],
            "max_shard": stats["max_bytes"],
            "avg_shard": round(stats["bytes"] / max(stats["n"], 1), 1),
        },
        "words": {
            "total_table_words": stats["words"],
            "max_table_words": stats["max_words"],
        },
    }
    manifest.update(layout)
    manifest.update(identity)
    tmp = os.path.join(path, f"{MANIFEST_NAME}.tmp.{os.getpid()}")
    with open(tmp, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, os.path.join(path, MANIFEST_NAME))
    return manifest


def write_shards(
    scheme: Any,
    path: str,
    *,
    spec_name: str,
    params: Optional[Dict[str, Any]] = None,
    seed: int = 0,
    fanout: int = DEFAULT_FANOUT,
    packed: bool = False,
    group_size: int = DEFAULT_GROUP_SIZE,
) -> Dict[str, Any]:
    """Compile ``scheme`` and write the sharded layout under ``path``.

    ``packed=False`` writes one file per vertex (layout v1);
    ``packed=True`` writes ``O(n / group_size)`` packed group files
    (layout v2) — same payload bytes, same manifest accounting, a
    fraction of the inodes.  Returns the manifest dict.  The manifest's
    word totals are asserted against the scheme's own
    :class:`SchemeStats` — byte accounting that silently drifted from
    the word accounting would invalidate every size table we report.
    """
    records = scheme.compile_tables()
    stats = scheme.stats()
    total_words = sum(r.table_words() for r in records)
    if total_words != stats.total_table_words:
        raise RuntimeError(
            f"compiled shards hold {total_words} table words, scheme "
            f"reports {stats.total_table_words} — accounting drift"
        )
    identity = {
        "spec": spec_name,
        # LocalRouter re-exports carry the original scheme class through
        # scheme_class_name; built schemes are their own class.
        "scheme": getattr(
            scheme, "scheme_class_name", type(scheme).__name__
        ),
        "name": scheme.name,
        "seed": seed,
        "params": dict(params or {}),
        "routing_params": scheme.routing_params(),
    }
    return write_shard_records(
        records,
        path,
        identity=identity,
        packed=packed,
        fanout=fanout,
        group_size=group_size,
    )


def is_shard_dir(path: str) -> bool:
    """Whether ``path`` looks like a :func:`write_shards` layout."""
    return os.path.isdir(path) and os.path.isfile(
        os.path.join(path, MANIFEST_NAME)
    )


def _load_manifest(path: str) -> Dict[str, Any]:
    manifest_path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        raise FileNotFoundError(
            f"{path!r} is not a shard directory (no {MANIFEST_NAME})"
        ) from None
    if manifest.get("format") != FORMAT:
        raise ValueError(
            f"not a shard manifest (format={manifest.get('format')!r})"
        )
    return manifest


class _ShardStoreBase:
    """Shared store machinery: LRU residency, serve counters, decoding.

    Subclasses implement one method — ``_read_shard(v)`` returning the
    raw shard bytes (or a zero-copy view of them) — and everything else
    (decode, owner check, LRU, statistics) is identical across layouts,
    which is what makes the packed-vs-per-file equivalence tests
    meaningful: the counters count the same events.
    """

    #: subclass-provided layout tag for stats()/repr
    layout = "?"

    def __init__(
        self, path: str, manifest: Dict[str, Any],
        max_resident: Optional[int],
    ) -> None:
        self.path = path
        self.manifest = manifest
        self.n = int(manifest["n"])
        self.max_resident = max_resident
        self._resident: "OrderedDict[int, NodeTable]" = OrderedDict()
        #: serve statistics
        self.loads = 0
        self.hits = 0
        self.bytes_read = 0

    # -- layout hooks --------------------------------------------------
    def _read_shard(self, v: int):
        raise NotImplementedError

    def _diagnose(self, v: int) -> None:
        """Layout-specific deep check when a shard fails to decode.

        Called before re-raising a decode/owner error so a layout can
        replace a vague symptom with the precise cause (the packed
        store runs the full index validation here).  Default: no-op.
        """

    # ------------------------------------------------------------------
    def node(self, v: int) -> NodeTable:
        """Vertex ``v``'s record, loaded from its shard on first touch."""
        record = self._resident.get(v)
        if record is not None:
            self._resident.move_to_end(v)
            self.hits += 1
            return record
        if not 0 <= v < self.n:
            raise ValueError(f"vertex {v} outside 0..{self.n - 1}")
        blob = self._read_shard(v)
        try:
            record = decode_node_table(blob)
        except ShardCodecError:
            self._diagnose(v)
            raise
        if record.owner != v:
            self._diagnose(v)
            raise ValueError(
                f"shard of vertex {v} holds vertex {record.owner}"
            )
        self.loads += 1
        self.bytes_read += len(blob)
        self._resident[v] = record
        if (
            self.max_resident is not None
            and len(self._resident) > self.max_resident
        ):
            self._resident.popitem(last=False)
        return record

    def iter_nodes(self) -> Iterator[NodeTable]:
        """Every record in vertex order (a full scan — stats/export only)."""
        for v in range(self.n):
            yield self.node(v)

    def stats(self) -> Dict[str, Any]:
        """Serve counters: shard loads, cache hits, bytes read, residency."""
        return {
            "n": self.n,
            "layout": self.layout,
            "loads": self.loads,
            "hits": self.hits,
            "bytes_read": self.bytes_read,
            "resident": len(self._resident),
            "max_resident": self.max_resident,
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.path!r}, n={self.n}, "
            f"loads={self.loads}, hits={self.hits})"
        )


class ShardStore(_ShardStoreBase):
    """Layout-v1 store: one file per vertex, opened lazily.

    Parameters
    ----------
    path:
        Directory :func:`write_shards` produced (``packed=False``).
    max_resident:
        Optional LRU bound on decoded shards kept in memory — the
        serving-node memory budget.  ``None`` keeps everything touched.
    """

    layout = "files"

    def __init__(
        self,
        path: str,
        *,
        max_resident: Optional[int] = None,
        manifest: Optional[Dict[str, Any]] = None,
    ):
        # ``manifest`` lets open_store hand over the parse it already
        # did — cold-open reads the file once, not per-dispatch-step.
        if manifest is None:
            manifest = _load_manifest(path)
        if manifest.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported shard layout version "
                f"{manifest.get('version')!r} (per-file store reads "
                f"version {FORMAT_VERSION}; use open_store for dispatch)"
            )
        super().__init__(path, manifest, max_resident)
        self.fanout = int(manifest.get("fanout", DEFAULT_FANOUT))

    def shard_path(self, v: int) -> str:
        return shard_path(self.path, v, self.fanout)

    def _read_shard(self, v: int) -> bytes:
        target = self.shard_path(v)
        try:
            with open(target, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            raise FileNotFoundError(
                f"shard of vertex {v} is missing ({target}); a "
                f"local-knowledge route only touches visited vertices — "
                f"this one was needed"
            ) from None


class PackedShardStore(_ShardStoreBase):
    """Layout-v2 store: ``mmap``-ed group files, zero-copy decode.

    Each ``groups/<g>.pack`` file is mapped once on first touch with its
    header validated (magic, version, index-fits-in-file); serving
    vertex ``v`` then binary-searches the mapped index and decodes the
    record straight from a ``memoryview`` slice of the map — no
    per-vertex ``open()``/``read()`` syscalls and no intermediate
    ``bytes`` copy on the hot path.  The full O(count) index validation
    (:func:`repro.routing.shard_codec.check_pack`) is deferred off the
    hot path: it runs on the first anomaly — a lookup miss, a decode
    failure, an owner mismatch — so corruption still fails loudly with
    the codec's precise error, and eagerly via :meth:`verify`.
    """

    layout = "packed"

    def __init__(
        self,
        path: str,
        *,
        max_resident: Optional[int] = None,
        manifest: Optional[Dict[str, Any]] = None,
    ):
        if manifest is None:
            manifest = _load_manifest(path)
        if (
            manifest.get("version") != PACKED_FORMAT_VERSION
            or manifest.get("layout") != "packed"
        ):
            raise ValueError(
                f"unsupported shard layout version "
                f"{manifest.get('version')!r}/"
                f"{manifest.get('layout')!r} (packed store reads "
                f"version {PACKED_FORMAT_VERSION}, layout 'packed')"
            )
        super().__init__(path, manifest, max_resident)
        self.group_size = int(manifest["group_size"])
        self._maps: Dict[int, memoryview] = {}
        self._mmaps: List[mmap.mmap] = []

    def group_path(self, g: int) -> str:
        return group_path(self.path, g)

    def group_of(self, v: int) -> int:
        return v // self.group_size

    @property
    def groups_mapped(self) -> int:
        return len(self._maps)

    def _group_view(self, g: int) -> memoryview:
        view = self._maps.get(g)
        if view is None:
            target = self.group_path(g)
            try:
                with open(target, "rb") as fh:
                    mapped = mmap.mmap(
                        fh.fileno(), 0, access=mmap.ACCESS_READ
                    )
            except FileNotFoundError:
                raise FileNotFoundError(
                    f"group {g} of the packed layout is missing "
                    f"({target}); a local-knowledge route only touches "
                    f"visited vertices' groups — this one was needed"
                ) from None
            # Header-only validation per mapping keeps cold lookups
            # syscall-light; the O(count) index check runs on demand
            # (_diagnose / verify) and every corruption it would catch
            # still surfaces through a failed lookup, decode or owner
            # check first.
            view = memoryview(mapped)
            parse_pack_header(view)
            self._maps[g] = view
            self._mmaps.append(mapped)
        return view

    def _read_shard(self, v: int) -> memoryview:
        view = self._group_view(self.group_of(v))
        found = find_in_pack(view, v)
        if found is None:
            check_pack(view)  # corrupt index? raise its precise error
            raise FileNotFoundError(
                f"shard of vertex {v} is missing from group "
                f"{self.group_of(v)} ({self.group_path(self.group_of(v))})"
            )
        offset, length = found
        return view[offset:offset + length]

    def _diagnose(self, v: int) -> None:
        # A shard that fails to decode (or holds the wrong owner) from
        # an mmap slice means the group's index lied about its bounds —
        # replace the symptom with check_pack's precise diagnosis.
        check_pack(self._group_view(self.group_of(v)))

    def verify(self) -> int:
        """Eagerly validate every group's full index; returns the number
        of groups checked.  Offline tooling / release checks — serving
        itself validates lazily."""
        groups = (self.n + self.group_size - 1) // self.group_size
        for g in range(groups):
            check_pack(self._group_view(g))
        return groups

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["groups_mapped"] = self.groups_mapped
        out["group_size"] = self.group_size
        return out

    def close(self) -> None:
        """Release every mapping (the store is unusable afterwards)."""
        maps, self._maps = self._maps, {}
        for view in maps.values():
            view.release()
        mmaps, self._mmaps = self._mmaps, []
        for mapped in mmaps:
            mapped.close()


def open_store(
    path: str, *, max_resident: Optional[int] = None
) -> _ShardStoreBase:
    """Open a shard directory with the store matching its manifest.

    Layout dispatch lives here (and only here): per-file v1 manifests
    get a :class:`ShardStore`, packed v2 manifests a
    :class:`PackedShardStore`; anything else fails loudly instead of
    being misread by the wrong backend.
    """
    manifest = _load_manifest(path)
    version = manifest.get("version")
    if version == FORMAT_VERSION:
        return ShardStore(
            path, max_resident=max_resident, manifest=manifest
        )
    if version == PACKED_FORMAT_VERSION:
        return PackedShardStore(
            path, max_resident=max_resident, manifest=manifest
        )
    raise ValueError(f"unsupported shard layout version {version!r}")


def _contains_bool(header: Any) -> bool:
    """Whether a (nested-tuple) header carries a bool leaf anywhere.

    The bool-free header contract's checker: ``LocalRouter._wire_len``
    runs it on value-cache misses, and the serving conformance tests
    run it on every header every registered scheme forwards.
    """
    if isinstance(header, bool):
        return True
    if isinstance(header, tuple):
        return any(_contains_bool(item) for item in header)
    return False


# ----------------------------------------------------------------------
# Shard-backed views handed to SchemeBase.restore_serving
# ----------------------------------------------------------------------
class _ShardPorts:
    """Footnote-2 port translation answered from the local shard only."""

    def __init__(self, store: _ShardStoreBase) -> None:
        self._store = store

    def port_to(self, u: int, v: int) -> int:
        return self._store.node(u).port_to(v)

    def neighbor(self, u: int, port: int) -> int:
        return self._store.node(u).neighbor(port)

    def degree(self, u: int) -> int:
        return self._store.node(u).degree()


class _ShardTables:
    """``tables[v]`` view resolving to the shard's :class:`SizedTable`."""

    def __init__(self, store: _ShardStoreBase) -> None:
        self._store = store
        self._sized: Dict[int, Any] = {}

    def __getitem__(self, v: int):
        table = self._sized.get(v)
        if table is None:
            table = self._store.node(v).sized_table()
            self._sized[v] = table
            if (
                self._store.max_resident is not None
                and len(self._sized) > self._store.max_resident
            ):
                self._sized.clear()  # cheap reset; rebuilt from residents
        return table


class _ShardLabels:
    """``labels[v]`` view resolving to the shard's label."""

    def __init__(self, store: _ShardStoreBase) -> None:
        self._store = store

    def __getitem__(self, v: int):
        return self._store.node(v).label


class LocalRouter:
    """The serving engine: step decisions from the current shard alone.

    Implements the simulator's engine protocol — ``step``, ``label_of``,
    ``local_edge`` and ``n`` — so :func:`repro.routing.simulator.route`
    executes a message with *zero* global knowledge: each decision reads
    vertex ``u``'s shard, and the move across the returned port reads the
    same shard's neighbour list.  The inner stepper is the real scheme
    class (resolved from the registry via the manifest), rebuilt step-only
    via ``SchemeBase.restore_serving`` — so decisions are byte-identical
    to the monolithic in-memory scheme, which the serving tests assert
    hop by hop for every registered scheme.

    Every forwarded header crosses the wire codec
    (:mod:`repro.routing.header_codec`): the first time a header value is
    forwarded it is encoded, decoded back, and checked for exact
    round-trip — a header shape the codec cannot carry fails at serve
    time, not in a hypothetical future deployment — and its wire length
    is cached by value, so the per-hop cost of accounting the true
    header bytes (``header_stats()``, surfaced through
    ``RoutingSession.serve_stats()``) is one dict probe.  The verified
    round-trip is what makes forwarding the in-memory header equivalent
    to forwarding the wire bytes, which keeps warm shard throughput
    within the ~10%-of-in-memory budget the serving benchmark gates.
    """

    def __init__(self, store: _ShardStoreBase) -> None:
        # Resolved lazily to keep repro.routing import-independent from
        # repro.api (which imports the schemes, which import routing).
        from ..api.registry import get_spec

        self.store = store
        manifest = store.manifest
        spec = get_spec(manifest["spec"])
        if spec.factory.__name__ != manifest["scheme"]:
            raise ValueError(
                f"shards were compiled by {manifest['scheme']}, spec "
                f"{manifest['spec']!r} maps to {spec.factory.__name__}"
            )
        self.spec_name = manifest["spec"]
        self.scheme_class_name = manifest["scheme"]
        self.n = store.n
        self._stepper = spec.factory.restore_serving(
            ports=_ShardPorts(store),
            tables=_ShardTables(store),
            labels=_ShardLabels(store),
            params=manifest.get("routing_params") or {},
            name=manifest.get("name"),
        )
        self.name = self._stepper.name
        self._graph: Optional[Graph] = None
        self._ports: Optional[Any] = None
        #: wire-header accounting (headers forwarded, total/max bytes)
        self.headers_encoded = 0
        self.header_bytes = 0
        self.max_header_bytes = 0
        #: header value -> verified wire length (bounded; see _wire_len)
        self._wire_cache: Dict[Any, int] = {}

    def _wire_len(self, header: Any) -> int:
        """Wire byte length of ``header``, round-trip-verified once.

        A cache miss pays the full ``decode(encode(h)) == h`` check;
        hits (the overwhelming majority — tree-phase headers repeat
        unchanged hop after hop, technique headers recur by value
        across routes) cost one dict probe.

        Contract: headers must be bool-free (use 0/1 ints).  Python
        equality conflates ``True``/``1`` — whose wire encodings differ
        — so a bool-leafed header that happened to equal a cached int
        shape would be misaccounted by its twin's length; a per-lookup
        deep check would cost more than the encode it avoids (measured:
        warm shard throughput drops from ~0.9x of in-memory to ~0.7x),
        so the contract is enforced where it is free — the miss path
        below refuses bool leaves outright, and the serving conformance
        tests assert bool-freedom for every header every registered
        scheme forwards, hop by hop.
        """
        length = self._wire_cache.get(header)
        if length is None:
            if _contains_bool(header):
                raise RuntimeError(
                    f"header {header!r} carries a bool leaf; the "
                    f"serving engine's wire-length cache cannot tell "
                    f"True/False from 1/0 (Python value equality) — "
                    f"encode the flag as an int instead"
                )
            wire = header_codec.encode(header)
            if header_codec.decode(wire) != header:
                raise RuntimeError(
                    f"header {header!r} does not survive the wire codec"
                )
            length = len(wire)
            if len(self._wire_cache) >= 65536:
                self._wire_cache.clear()
            self._wire_cache[header] = length
        return length

    # -- engine protocol -----------------------------------------------
    def step(self, u: int, header: Any, dest_label: Any) -> RouteAction:
        action = self._stepper.step(u, header, dest_label)
        if isinstance(action, Forward):
            length = self._wire_len(action.header)
            self.headers_encoded += 1
            self.header_bytes += length
            if length > self.max_header_bytes:
                self.max_header_bytes = length
        return action

    def label_of(self, v: int) -> Any:
        return self.store.node(v).label

    def local_edge(self, u: int, port: int) -> Tuple[int, float]:
        """``(neighbour, weight)`` of ``u``'s link ``port`` — shard-local."""
        return self.store.node(u).edge(port)

    def header_stats(self) -> Dict[str, int]:
        """True wire cost of every header this engine forwarded."""
        return {
            "headers_encoded": self.headers_encoded,
            "header_bytes": self.header_bytes,
            "max_header_bytes": self.max_header_bytes,
        }

    # -- scheme-compatible surface (measurement/accounting) ------------
    def table_of(self, v: int):
        return self._stepper.table_of(v)

    def stretch_bound(self):
        return self._stepper.stretch_bound()

    def routing_params(self) -> Dict[str, Any]:
        return self._stepper.routing_params()

    @property
    def graph(self) -> Graph:
        """The graph reassembled from every shard's neighbour list.

        Serving never needs this — it exists so a shard-backed session
        can still ``measure``/``validate`` against the exact metric.
        Loads all shards on first use (and says so in the docstring
        rather than pretending to be cheap).
        """
        if self._graph is None:
            adjacency: List[List[Tuple[int, float]]] = [
                [(nb, w) for nb, w in self.store.node(v).neighbors]
                for v in range(self.n)
            ]
            self._graph = Graph.from_adjacency(adjacency)
        return self._graph

    @property
    def ports(self):
        """The global port numbering reassembled from the shards.

        Like :attr:`graph`, a full-scan convenience for re-export and
        offline inspection — serving resolves ports shard-locally.
        """
        if self._ports is None:
            from .ports import PortAssignment

            order = [
                [nb for nb, _ in self.store.node(v).neighbors]
                for v in range(self.n)
            ]
            self._ports = PortAssignment.from_order(self.graph, order)
        return self._ports

    def compile_tables(self) -> List[NodeTable]:
        """The resident shape itself: every shard's record (full scan)."""
        return list(self.store.iter_nodes())

    def stats(self) -> SchemeStats:
        """Aggregate table/label sizes over all shards (full scan)."""
        records = list(self.store.iter_nodes())
        return aggregate_scheme_stats(
            self.name,
            self.n,
            (r.sized_table() for r in records),
            (r.label for r in records),
        )

    def __repr__(self) -> str:
        return f"LocalRouter({self.name!r}, n={self.n}, {self.store!r})"
