"""Local-knowledge serving: route on per-vertex shards loaded from disk.

The deployment story of a compact routing scheme (ROADMAP follow-up (b)):
each node holds *its own* ``o(n)``-word table and forwards using that
table plus the packet header — nothing global.  This module makes that
executable:

* :func:`write_shards` — lay a compiled scheme out on disk as one binary
  shard per vertex (:mod:`repro.routing.shard_codec`) under a fan-out
  directory tree, plus one small ``manifest.json`` with the scheme
  identity, codec version and byte/word accounting,
* :class:`ShardStore` — lazy shard loader with an optional LRU residency
  bound and serve statistics (loads, cache hits, bytes read),
* :class:`LocalRouter` — the serving engine: a step-only scheme instance
  (``SchemeBase.restore_serving``) whose table, label and port accesses
  all resolve from the *current vertex's* shard.  It implements the
  simulator's engine protocol (``step``/``label_of``/``local_edge``), so
  :func:`repro.routing.simulator.route` drives it exactly like an
  in-memory scheme — and the local-knowledge tests prove the step
  decisions are identical even when every shard but the visited ones is
  deleted from disk.

Layout on disk::

    <dir>/manifest.json             # identity + accounting, JSON
    <dir>/shards/<g>/<v>.shard      # g = v // fanout, zero-padded hex

Cold-start cost is the point: serving vertex ``v`` reads the manifest
and ``v``'s shard — a few hundred bytes — instead of parsing the whole
JSON session blob (``benchmarks/bench_serving.py`` gates the 10x).
"""

from __future__ import annotations

import json
import os
import shutil
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..graph.core import Graph
from .model import RouteAction, SchemeStats, aggregate_scheme_stats
from .shard_codec import (
    CODEC_VERSION,
    decode_node_table,
    encode_node_table,
)
from .tables import NodeTable

__all__ = [
    "ShardStore",
    "LocalRouter",
    "write_shards",
    "shard_path",
    "is_shard_dir",
]

MANIFEST_NAME = "manifest.json"
FORMAT = "repro.routing.shards"
FORMAT_VERSION = 1
#: shards per leaf directory (keeps directories small at n ~ 10^6)
DEFAULT_FANOUT = 256


def shard_path(root: str, v: int, fanout: int) -> str:
    """On-disk path of vertex ``v``'s shard under ``root``."""
    return os.path.join(
        root, "shards", f"{v // fanout:04x}", f"{v}.shard"
    )


def write_shards(
    scheme: Any,
    path: str,
    *,
    spec_name: str,
    params: Optional[Dict[str, Any]] = None,
    seed: int = 0,
    fanout: int = DEFAULT_FANOUT,
) -> Dict[str, Any]:
    """Compile ``scheme`` and write the sharded layout under ``path``.

    Returns the manifest dict (also written to ``manifest.json``).  The
    manifest's word totals are asserted against the scheme's own
    :class:`SchemeStats` — byte accounting that silently drifted from
    the word accounting would invalidate every size table we report.
    """
    records = scheme.compile_tables()
    stats = scheme.stats()
    total_words = sum(r.table_words() for r in records)
    if total_words != stats.total_table_words:
        raise RuntimeError(
            f"compiled shards hold {total_words} table words, scheme "
            f"reports {stats.total_table_words} — accounting drift"
        )
    os.makedirs(path, exist_ok=True)
    # A previous, larger layout would leave orphan shards the new
    # manifest cannot reach — and the directory's on-disk size would no
    # longer match the manifest's byte accounting.  Start clean.
    stale = os.path.join(path, "shards")
    if os.path.isdir(stale):
        shutil.rmtree(stale)
    total_bytes = 0
    max_bytes = 0
    made_dirs = set()
    for record in records:
        blob = encode_node_table(record)
        total_bytes += len(blob)
        max_bytes = max(max_bytes, len(blob))
        target = shard_path(path, record.owner, fanout)
        leaf = os.path.dirname(target)
        if leaf not in made_dirs:
            os.makedirs(leaf, exist_ok=True)
            made_dirs.add(leaf)
        tmp = f"{target}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, target)
    manifest = {
        "format": FORMAT,
        "version": FORMAT_VERSION,
        "codec": CODEC_VERSION,
        "fanout": fanout,
        "spec": spec_name,
        # LocalRouter re-exports carry the original scheme class through
        # scheme_class_name; built schemes are their own class.
        "scheme": getattr(
            scheme, "scheme_class_name", type(scheme).__name__
        ),
        "name": scheme.name,
        "n": len(records),
        "seed": seed,
        "params": dict(params or {}),
        "routing_params": scheme.routing_params(),
        "bytes": {
            "total": total_bytes,
            "max_shard": max_bytes,
            "avg_shard": round(total_bytes / max(len(records), 1), 1),
        },
        "words": {
            "total_table_words": total_words,
            "max_table_words": stats.max_table_words,
        },
    }
    tmp = os.path.join(path, f"{MANIFEST_NAME}.tmp.{os.getpid()}")
    with open(tmp, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, os.path.join(path, MANIFEST_NAME))
    return manifest


def is_shard_dir(path: str) -> bool:
    """Whether ``path`` looks like a :func:`write_shards` layout."""
    return os.path.isdir(path) and os.path.isfile(
        os.path.join(path, MANIFEST_NAME)
    )


class ShardStore:
    """Lazy per-vertex shard loader with serve statistics.

    Parameters
    ----------
    path:
        Directory :func:`write_shards` produced.
    max_resident:
        Optional LRU bound on decoded shards kept in memory — the
        serving-node memory budget.  ``None`` keeps everything touched.
    """

    def __init__(self, path: str, *, max_resident: Optional[int] = None):
        self.path = path
        manifest_path = os.path.join(path, MANIFEST_NAME)
        try:
            with open(manifest_path) as fh:
                self.manifest = json.load(fh)
        except FileNotFoundError:
            raise FileNotFoundError(
                f"{path!r} is not a shard directory (no {MANIFEST_NAME})"
            ) from None
        if self.manifest.get("format") != FORMAT:
            raise ValueError(
                f"not a shard manifest "
                f"(format={self.manifest.get('format')!r})"
            )
        if self.manifest.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported shard layout version "
                f"{self.manifest.get('version')!r}"
            )
        self.n = int(self.manifest["n"])
        self.fanout = int(self.manifest.get("fanout", DEFAULT_FANOUT))
        self.max_resident = max_resident
        self._resident: "OrderedDict[int, NodeTable]" = OrderedDict()
        #: serve statistics
        self.loads = 0
        self.hits = 0
        self.bytes_read = 0

    # ------------------------------------------------------------------
    def shard_path(self, v: int) -> str:
        return shard_path(self.path, v, self.fanout)

    def node(self, v: int) -> NodeTable:
        """Vertex ``v``'s record, loaded from its shard on first touch."""
        record = self._resident.get(v)
        if record is not None:
            self._resident.move_to_end(v)
            self.hits += 1
            return record
        if not 0 <= v < self.n:
            raise ValueError(f"vertex {v} outside 0..{self.n - 1}")
        target = self.shard_path(v)
        try:
            with open(target, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            raise FileNotFoundError(
                f"shard of vertex {v} is missing ({target}); a "
                f"local-knowledge route only touches visited vertices — "
                f"this one was needed"
            ) from None
        record = decode_node_table(blob)
        if record.owner != v:
            raise ValueError(
                f"shard {target} holds vertex {record.owner}, not {v}"
            )
        self.loads += 1
        self.bytes_read += len(blob)
        self._resident[v] = record
        if (
            self.max_resident is not None
            and len(self._resident) > self.max_resident
        ):
            self._resident.popitem(last=False)
        return record

    def iter_nodes(self) -> Iterator[NodeTable]:
        """Every record in vertex order (a full scan — stats/export only)."""
        for v in range(self.n):
            yield self.node(v)

    def stats(self) -> Dict[str, Any]:
        """Serve counters: shard loads, cache hits, bytes read, residency."""
        return {
            "n": self.n,
            "loads": self.loads,
            "hits": self.hits,
            "bytes_read": self.bytes_read,
            "resident": len(self._resident),
            "max_resident": self.max_resident,
        }

    def __repr__(self) -> str:
        return (
            f"ShardStore({self.path!r}, n={self.n}, "
            f"loads={self.loads}, hits={self.hits})"
        )


# ----------------------------------------------------------------------
# Shard-backed views handed to SchemeBase.restore_serving
# ----------------------------------------------------------------------
class _ShardPorts:
    """Footnote-2 port translation answered from the local shard only."""

    def __init__(self, store: ShardStore) -> None:
        self._store = store

    def port_to(self, u: int, v: int) -> int:
        return self._store.node(u).port_to(v)

    def neighbor(self, u: int, port: int) -> int:
        return self._store.node(u).neighbor(port)

    def degree(self, u: int) -> int:
        return self._store.node(u).degree()


class _ShardTables:
    """``tables[v]`` view resolving to the shard's :class:`SizedTable`."""

    def __init__(self, store: ShardStore) -> None:
        self._store = store
        self._sized: Dict[int, Any] = {}

    def __getitem__(self, v: int):
        table = self._sized.get(v)
        if table is None:
            table = self._store.node(v).sized_table()
            self._sized[v] = table
            if (
                self._store.max_resident is not None
                and len(self._sized) > self._store.max_resident
            ):
                self._sized.clear()  # cheap reset; rebuilt from residents
        return table


class _ShardLabels:
    """``labels[v]`` view resolving to the shard's label."""

    def __init__(self, store: ShardStore) -> None:
        self._store = store

    def __getitem__(self, v: int):
        return self._store.node(v).label


class LocalRouter:
    """The serving engine: step decisions from the current shard alone.

    Implements the simulator's engine protocol — ``step``, ``label_of``,
    ``local_edge`` and ``n`` — so :func:`repro.routing.simulator.route`
    executes a message with *zero* global knowledge: each decision reads
    vertex ``u``'s shard, and the move across the returned port reads the
    same shard's neighbour list.  The inner stepper is the real scheme
    class (resolved from the registry via the manifest), rebuilt step-only
    via ``SchemeBase.restore_serving`` — so decisions are byte-identical
    to the monolithic in-memory scheme, which the serving tests assert
    hop by hop for every registered scheme.
    """

    def __init__(self, store: ShardStore) -> None:
        # Resolved lazily to keep repro.routing import-independent from
        # repro.api (which imports the schemes, which import routing).
        from ..api.registry import get_spec

        self.store = store
        manifest = store.manifest
        spec = get_spec(manifest["spec"])
        if spec.factory.__name__ != manifest["scheme"]:
            raise ValueError(
                f"shards were compiled by {manifest['scheme']}, spec "
                f"{manifest['spec']!r} maps to {spec.factory.__name__}"
            )
        self.spec_name = manifest["spec"]
        self.scheme_class_name = manifest["scheme"]
        self.n = store.n
        self._stepper = spec.factory.restore_serving(
            ports=_ShardPorts(store),
            tables=_ShardTables(store),
            labels=_ShardLabels(store),
            params=manifest.get("routing_params") or {},
            name=manifest.get("name"),
        )
        self.name = self._stepper.name
        self._graph: Optional[Graph] = None
        self._ports: Optional[Any] = None

    # -- engine protocol -----------------------------------------------
    def step(self, u: int, header: Any, dest_label: Any) -> RouteAction:
        return self._stepper.step(u, header, dest_label)

    def label_of(self, v: int) -> Any:
        return self.store.node(v).label

    def local_edge(self, u: int, port: int) -> Tuple[int, float]:
        """``(neighbour, weight)`` of ``u``'s link ``port`` — shard-local."""
        return self.store.node(u).edge(port)

    # -- scheme-compatible surface (measurement/accounting) ------------
    def table_of(self, v: int):
        return self._stepper.table_of(v)

    def stretch_bound(self):
        return self._stepper.stretch_bound()

    def routing_params(self) -> Dict[str, Any]:
        return self._stepper.routing_params()

    @property
    def graph(self) -> Graph:
        """The graph reassembled from every shard's neighbour list.

        Serving never needs this — it exists so a shard-backed session
        can still ``measure``/``validate`` against the exact metric.
        Loads all shards on first use (and says so in the docstring
        rather than pretending to be cheap).
        """
        if self._graph is None:
            adjacency: List[List[Tuple[int, float]]] = [
                [(nb, w) for nb, w in self.store.node(v).neighbors]
                for v in range(self.n)
            ]
            self._graph = Graph.from_adjacency(adjacency)
        return self._graph

    @property
    def ports(self):
        """The global port numbering reassembled from the shards.

        Like :attr:`graph`, a full-scan convenience for re-export and
        offline inspection — serving resolves ports shard-locally.
        """
        if self._ports is None:
            from .ports import PortAssignment

            order = [
                [nb for nb, _ in self.store.node(v).neighbors]
                for v in range(self.n)
            ]
            self._ports = PortAssignment.from_order(self.graph, order)
        return self._ports

    def compile_tables(self) -> List[NodeTable]:
        """The resident shape itself: every shard's record (full scan)."""
        return list(self.store.iter_nodes())

    def stats(self) -> SchemeStats:
        """Aggregate table/label sizes over all shards (full scan)."""
        records = list(self.store.iter_nodes())
        return aggregate_scheme_stats(
            self.name,
            self.n,
            (r.sized_table() for r in records),
            (r.label for r in records),
        )

    def __repr__(self) -> str:
        return f"LocalRouter({self.name!r}, n={self.n}, {self.store!r})"
