"""Versioned binary codec for per-vertex :class:`NodeTable` shards.

The JSON persistence of :mod:`repro.routing.persistence` is fine for one
whole-scheme blob but wrong for serving: a node that only needs *its own*
table should not parse (or even read) megabytes of everyone else's.  This
codec packs one :class:`~repro.routing.tables.NodeTable` into one compact
byte string:

* 4-byte header: magic ``RT`` + format version + flags,
* varint-packed structure (zigzag for signed ints, ``struct``-packed
  IEEE doubles for floats, UTF-8 for strings),
* a tag byte per value; tuples/lists/dicts nest arbitrarily — the same
  value domain :func:`repro.routing.model.words_of` accepts, so anything
  a scheme can put into a :class:`SizedTable` round-trips,
* unit-weight neighbour lists (unweighted graphs) skip the 8-byte
  weights entirely (flag bit 0).

Decoding validates the magic and version and fails loudly on anything
else — a shard written by a future codec is rejected, never misread.
:func:`decode_node_table` accepts a :class:`memoryview` as well as
``bytes`` and never copies the payload while parsing, so a store that
maps a packed group file (``mmap``) can decode a vertex's record straight
from the mapped buffer (the zero-copy hot path of
:class:`repro.routing.serving.PackedShardStore`).

Packed groups (format v2 of the on-disk layout)
-----------------------------------------------
One file per *vertex* costs an inode each — a non-starter at
``n >= 10^5``.  The packed group format concatenates many v1 shard
payloads into one ``<g>.pack`` file:

* 10-byte header: magic ``RTPK`` + version + flags + entry count,
* a *sorted*, fixed-width per-vertex index (``vertex, offset, length``
  little-endian structs) that binary-searches directly over the mapped
  buffer — no parsing, no allocation,
* the concatenated v1 shard payloads (each still self-validating).

:func:`parse_pack_header` validates the header per mapping (O(1) for
pack v1; pack v2 adds one crc32 sweep of the index region);
:func:`find_in_pack` locates one vertex's payload in ``O(log count)``
buffer reads; :func:`check_pack` is the full O(count) index validation
(sorted, in-bounds, non-overlapping) the store runs on first anomaly
and on explicit ``verify()``.

Checksummed packs (pack v2, on-disk layout v3)
----------------------------------------------
A flipped bit in a stored double decodes to a structurally valid but
*wrong* table — the self-validating v1 payload cannot catch it.  Pack
version 2 closes that hole with CRC32 everywhere:

* each index entry grows a ``crc32(payload)`` field
  (``vertex, offset, length, crc`` little-endian structs),
* a ``crc32(header + index)`` trailer follows the index, verified on
  every mapping (:func:`parse_pack_header`), so a lying index is caught
  before the first binary search trusts it,
* :func:`find_pack_entry` hands the per-entry checksum to the store,
  which verifies the payload bytes *before* decoding them
  (:func:`payload_checksum_ok`), raising :class:`ChecksumError` —
  a corrupted table is never silently decoded,
* :func:`verify_pack` is the offline sweep: full index validation plus
  every payload checksum (v1 packs fall back to decoding each payload).

``encode_pack(..., checksums=True)`` writes pack v2; v1 packs (and v1
per-file shard dirs) still load unchanged.

Size accounting
---------------
``encoded_size`` reports the exact byte cost of a record.  The shard
tests reconcile this against the word accounting of
:class:`~repro.routing.model.SizedTable`/``SchemeStats``: decoded shards
must reproduce the exact per-vertex word counts, and the bytes-per-word
ratio is recorded in the shard manifest so the benchmark tables can show
real on-disk cost next to the paper's word bounds.
"""

from __future__ import annotations

import struct
import threading
import zlib
from typing import Any, Iterator, List, Optional, Sequence, Tuple, Union

from .tables import NodeTable

__all__ = [
    "CODEC_VERSION",
    "PACK_VERSION",
    "PACK_VERSION_CRC",
    "ShardCodecError",
    "ChecksumError",
    "encode_node_table",
    "decode_node_table",
    "decode_node_table_fast",
    "encoded_size",
    "encode_value",
    "decode_value",
    "encode_pack",
    "parse_pack_header",
    "check_pack",
    "verify_pack",
    "find_in_pack",
    "find_pack_entry",
    "payload_checksum_ok",
    "iter_pack_entries",
]

#: anything the decoders accept without copying
Buffer = Union[bytes, bytearray, memoryview]

MAGIC = b"RT"
CODEC_VERSION = 1

PACK_MAGIC = b"RTPK"
PACK_VERSION = 1
#: pack format with per-entry payload CRC32s and a whole-index CRC32
PACK_VERSION_CRC = 2
#: (vertex, payload offset, payload length), little-endian, fixed width
#: so binary search reads straight out of an mmap without parsing
_PACK_ENTRY = struct.Struct("<IQI")
#: pack v2 entry: (vertex, offset, length, crc32 of the payload bytes)
_PACK_ENTRY_CRC = struct.Struct("<IQII")
#: pack v2 index trailer: crc32 of header + index entries
_INDEX_CRC = struct.Struct("<I")
#: magic + version byte + flags byte + entry count
_PACK_HEADER = struct.Struct("<4sBBI")

#: flag bit 0: every incident edge weight is exactly 1.0 (skip weights)
_FLAG_UNIT_WEIGHTS = 0x01

# value tag bytes
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_TUPLE = 0x06
_T_LIST = 0x07
_T_DICT = 0x08

_DOUBLE = struct.Struct("<d")


class ShardCodecError(ValueError):
    """Raised on malformed, foreign or future-versioned shard bytes."""


class ChecksumError(ShardCodecError):
    """Stored CRC32 disagrees with the bytes — corruption, not format."""


# ----------------------------------------------------------------------
# varints
# ----------------------------------------------------------------------
#: decode stops at shift 70, i.e. 11 varint bytes = 77 payload bits;
#: encoding enforces the same bound so everything written decodes back
_UVARINT_LIMIT = 1 << 77


def _write_uvarint(out: List[bytes], value: int) -> None:
    if value < 0:
        raise ShardCodecError(f"uvarint cannot encode {value}")
    if value >= _UVARINT_LIMIT:
        raise ShardCodecError(
            f"int {value} exceeds the codec's 77-bit varint range"
        )
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(bytes((byte | 0x80,)))
        else:
            out.append(bytes((byte,)))
            return


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ShardCodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ShardCodecError("varint too long")


def _write_svarint(out: List[bytes], value: int) -> None:
    # zigzag: non-negative -> even, negative -> odd
    _write_uvarint(out, value << 1 if value >= 0 else ((-value) << 1) - 1)


def _read_svarint(data: bytes, pos: int) -> Tuple[int, int]:
    raw, pos = _read_uvarint(data, pos)
    return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1), pos


# ----------------------------------------------------------------------
# values
# ----------------------------------------------------------------------
def _write_value(out: List[bytes], value: Any) -> None:
    if value is None:
        out.append(bytes((_T_NONE,)))
    elif value is True:
        out.append(bytes((_T_TRUE,)))
    elif value is False:
        out.append(bytes((_T_FALSE,)))
    elif isinstance(value, int):
        out.append(bytes((_T_INT,)))
        _write_svarint(out, value)
    elif isinstance(value, float):
        out.append(bytes((_T_FLOAT,)))
        out.append(_DOUBLE.pack(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(bytes((_T_STR,)))
        _write_uvarint(out, len(raw))
        out.append(raw)
    elif isinstance(value, tuple):
        out.append(bytes((_T_TUPLE,)))
        _write_uvarint(out, len(value))
        for item in value:
            _write_value(out, item)
    elif isinstance(value, list):
        out.append(bytes((_T_LIST,)))
        _write_uvarint(out, len(value))
        for item in value:
            _write_value(out, item)
    elif isinstance(value, dict):
        out.append(bytes((_T_DICT,)))
        _write_uvarint(out, len(value))
        for k, v in value.items():
            _write_value(out, k)
            _write_value(out, v)
    else:
        raise ShardCodecError(
            f"cannot encode value of type {type(value)!r}"
        )


def _read_value(data: bytes, pos: int) -> Tuple[Any, int]:
    if pos >= len(data):
        raise ShardCodecError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        return _read_svarint(data, pos)
    if tag == _T_FLOAT:
        end = pos + 8
        if end > len(data):
            raise ShardCodecError("truncated float")
        return _DOUBLE.unpack_from(data, pos)[0], end
    if tag == _T_STR:
        length, pos = _read_uvarint(data, pos)
        end = pos + length
        if end > len(data):
            raise ShardCodecError("truncated string")
        # bytes() copies only the string payload itself (str objects own
        # their storage anyway); the surrounding buffer is never copied.
        return bytes(data[pos:end]).decode("utf-8"), end
    if tag in (_T_TUPLE, _T_LIST):
        count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _read_value(data, pos)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_DICT:
        count, pos = _read_uvarint(data, pos)
        result = {}
        for _ in range(count):
            k, pos = _read_value(data, pos)
            v, pos = _read_value(data, pos)
            result[k] = v
        return result, pos
    raise ShardCodecError(f"unknown value tag 0x{tag:02x}")


# ----------------------------------------------------------------------
# node tables
# ----------------------------------------------------------------------
def encode_node_table(record: NodeTable) -> bytes:
    """Pack one :class:`NodeTable` into versioned shard bytes."""
    unit = all(w == 1.0 for _, w in record.neighbors)
    flags = _FLAG_UNIT_WEIGHTS if unit else 0
    out: List[bytes] = [MAGIC, bytes((CODEC_VERSION, flags))]
    _write_uvarint(out, record.owner)
    _write_uvarint(out, len(record.neighbors))
    for nb, _ in record.neighbors:
        _write_uvarint(out, nb)
    if not unit:
        for _, w in record.neighbors:
            out.append(_DOUBLE.pack(w))
    _write_value(out, record.label)
    _write_uvarint(out, len(record.categories))
    for cat, entries in record.categories.items():
        _write_value(out, cat)
        _write_uvarint(out, len(entries))
        for k, v in entries.items():
            _write_value(out, k)
            _write_value(out, v)
    return b"".join(out)


def decode_node_table(data: Buffer) -> NodeTable:
    """Inverse of :func:`encode_node_table` (validates magic + version).

    Accepts ``bytes`` or a ``memoryview``; a view (e.g. a slice of an
    ``mmap``-ed pack file) is parsed in place — integers, floats and
    structure are read straight out of the buffer and only leaf string
    payloads are materialized.
    """
    if len(data) < 4 or data[:2] != MAGIC:
        raise ShardCodecError("not a routing-table shard (bad magic)")
    version, flags = data[2], data[3]
    if version != CODEC_VERSION:
        raise ShardCodecError(
            f"unsupported shard codec version {version} "
            f"(this build reads version {CODEC_VERSION})"
        )
    pos = 4
    owner, pos = _read_uvarint(data, pos)
    degree, pos = _read_uvarint(data, pos)
    ids = []
    for _ in range(degree):
        nb, pos = _read_uvarint(data, pos)
        ids.append(nb)
    if flags & _FLAG_UNIT_WEIGHTS:
        weights = [1.0] * degree
    else:
        end = pos + 8 * degree
        if end > len(data):
            raise ShardCodecError("truncated weights")
        weights = [
            _DOUBLE.unpack_from(data, pos + 8 * i)[0] for i in range(degree)
        ]
        pos = end
    label, pos = _read_value(data, pos)
    cat_count, pos = _read_uvarint(data, pos)
    categories = {}
    for _ in range(cat_count):
        cat, pos = _read_value(data, pos)
        if not isinstance(cat, str):
            raise ShardCodecError(f"category name {cat!r} is not a string")
        entry_count, pos = _read_uvarint(data, pos)
        entries = {}
        for _ in range(entry_count):
            k, pos = _read_value(data, pos)
            v, pos = _read_value(data, pos)
            entries[k] = v
        categories[cat] = entries
    if pos != len(data):
        raise ShardCodecError(
            f"{len(data) - pos} trailing bytes after shard payload"
        )
    return NodeTable(
        owner=owner,
        neighbors=tuple(zip(ids, weights)),
        label=label,
        categories=categories,
    )


# ----------------------------------------------------------------------
# native-accelerated decode
# ----------------------------------------------------------------------
#: string-span packing of the native scanner's aux words (offset in the
#: low bits, length above) — mirrored by STR_OFFSET_BITS in _kernels.c
_STR_OFFSET_BITS = 40
_STR_OFFSET_MASK = (1 << _STR_OFFSET_BITS) - 1
#: pseudo-tag the native scanner emits for bare (untagged) counts
_T_COUNT = 0xF1


class _ScanScratch(threading.local):
    """Per-thread reusable buffers for the native payload scanner.

    The serving stores decode under a threaded TCP server, so the
    scratch is thread-local; buffers grow to the largest payload seen
    and are reused for every later decode on that thread.
    """

    def __init__(self) -> None:
        self.size = 0
        self.ids: Any = None
        self.wts: Any = None
        self.tags: Any = None
        self.aux: Any = None
        self.meta: Any = None

    def ensure(self, n: int) -> "_ScanScratch":
        if self.size < n:
            import numpy as np

            cap = max(1024, 1 << max(1, (n - 1).bit_length()))
            self.ids = np.empty(cap, dtype=np.int64)
            self.wts = np.empty(cap, dtype=np.float64)
            self.tags = np.empty(cap, dtype=np.uint8)
            self.aux = np.empty(cap, dtype=np.int64)
            self.meta = np.empty(4, dtype=np.int64)
            self.size = cap
        return self


_SCRATCH = _ScanScratch()


def _native_scanner() -> Any:
    """The native kernel handle, iff the resolved kernel mode is native."""
    from ..graph.shortest_paths import kernel_mode

    if kernel_mode() != "native":
        return None
    from .. import native

    return native.try_kernels()


def _build_value(
    tags: List[int], aux: List[int], data: Buffer, i: int
) -> Tuple[Any, int]:
    """One value from the scanner's preorder token stream.

    The scanner already validated structure and bounds, so this walker
    only materialises: ints/floats/bools straight from the aux word,
    strings from their (offset, length) span over the original buffer.
    """
    tag = tags[i]
    a = aux[i]
    i += 1
    # ints and floats are the bulk of real payloads (bunch/cluster
    # dicts); their aux words are already the final Python values —
    # floats were bulk bit-cast before the walk (see the caller).
    if tag == _T_INT or tag == _T_FLOAT:
        return a, i
    if tag == _T_STR:
        off = a & _STR_OFFSET_MASK
        end = off + (a >> _STR_OFFSET_BITS)
        return bytes(data[off:end]).decode("utf-8"), i
    if tag == _T_NONE:
        return None, i
    if tag == _T_TRUE:
        return True, i
    if tag == _T_FALSE:
        return False, i
    if tag in (_T_TUPLE, _T_LIST):
        items = []
        for _ in range(a):
            item, i = _build_value(tags, aux, data, i)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), i
    # _T_DICT: the scanner admits no other tag into the stream
    result = {}
    for _ in range(a):
        k, i = _build_value(tags, aux, data, i)
        v, i = _build_value(tags, aux, data, i)
        result[k] = v
    return result, i


def decode_node_table_fast(data: Buffer) -> NodeTable:
    """:func:`decode_node_table` through the native scanner when on.

    Dispatches on the resolved ``REPRO_KERNEL`` mode: under ``native``
    the payload is tokenised by the C scanner (varints, zigzag
    unpacking, weight block, string spans) in one pass and assembled
    here from the token stream.  *Any* anomaly the scanner meets —
    truncation, foreign version, a non-string category name, an unknown
    tag — makes it stand down and this function re-run the pure
    decoder, so error messages and edge-case behaviour stay identical
    across kernel modes.  Pure/numpy modes call the pure decoder
    directly.
    """
    kernels = _native_scanner()
    if kernels is None:
        return decode_node_table(data)
    import numpy as np

    buf = np.frombuffer(data, dtype=np.uint8)
    scratch = _SCRATCH.ensure(buf.size)
    ok = kernels.scan_table(
        buf, scratch.ids, scratch.wts, scratch.tags, scratch.aux,
        scratch.meta,
    )
    if not ok:
        return decode_node_table(data)
    owner = int(scratch.meta[0])
    degree = int(scratch.meta[1])
    unit = bool(scratch.meta[2])
    ntok = int(scratch.meta[3])
    ids = scratch.ids[:degree].tolist()
    weights = [1.0] * degree if unit else scratch.wts[:degree].tolist()
    tags_arr = scratch.tags[:ntok]
    aux_arr = scratch.aux[:ntok]
    tags = tags_arr.tolist()
    aux = aux_arr.tolist()
    # Bulk bit-cast every float token's aux word to its Python float up
    # front — the walker then reads finals only (no per-token struct).
    is_float = tags_arr == _T_FLOAT
    if is_float.any():
        for j, val in zip(
            np.flatnonzero(is_float).tolist(),
            aux_arr.view(np.float64)[is_float].tolist(),
        ):
            aux[j] = val
    label, i = _build_value(tags, aux, data, 0)
    cat_count = aux[i]  # _T_COUNT
    i += 1
    categories = {}
    for _ in range(cat_count):
        cat, i = _build_value(tags, aux, data, i)
        entry_count = aux[i]  # _T_COUNT
        i += 1
        entries = {}
        for _ in range(entry_count):
            k, i = _build_value(tags, aux, data, i)
            v, i = _build_value(tags, aux, data, i)
            entries[k] = v
        categories[cat] = entries
    return NodeTable(
        owner=owner,
        neighbors=tuple(zip(ids, weights)),
        label=label,
        categories=categories,
    )


def encoded_size(record: NodeTable) -> int:
    """Exact on-disk byte cost of ``record``."""
    return len(encode_node_table(record))


def encode_value(value: Any) -> bytes:
    """Encode one value with the codec's self-describing tag scheme.

    The public face of the tagged value encoding the shard payloads use
    internally (``None``/bool/int/float/str/tuple/list/dict, nested
    arbitrarily) — the cluster wire protocol
    (:mod:`repro.cluster.wire`) frames every RPC body with it, so
    headers, labels and status dicts cross the wire in the exact format
    the shards already commit to (and CODEC001 already audits).
    """
    out: List[bytes] = []
    _write_value(out, value)
    return b"".join(out)


def decode_value(data: Buffer) -> Any:
    """Inverse of :func:`encode_value`; rejects trailing bytes."""
    value, pos = _read_value(data, 0)
    if pos != len(data):
        raise ShardCodecError(
            f"{len(data) - pos} trailing bytes after encoded value"
        )
    return value


# ----------------------------------------------------------------------
# packed groups (layout v2): many shard payloads in one mmap-able file
# ----------------------------------------------------------------------
def encode_pack(
    entries: Sequence[Tuple[int, bytes]], *, checksums: bool = False
) -> bytes:
    """Pack ``(vertex, shard bytes)`` pairs into one group-file blob.

    Entries are index-sorted by vertex id; payloads are laid out in the
    same order, concatenated directly after the index.  Each payload is
    an unmodified v1 shard (:func:`encode_node_table` output), so a
    packed group is exactly the per-file layout minus the inodes.

    ``checksums=True`` writes pack version 2: every index entry carries
    the CRC32 of its payload, and the index itself is sealed with a
    CRC32 trailer — the integrity substrate of the fault-tolerant
    serving layer (on-disk layout v3).
    """
    ordered = sorted(entries, key=lambda e: e[0])
    for (v, _), (w, _) in zip(ordered, ordered[1:]):
        if v == w:
            raise ShardCodecError(f"vertex {v} appears twice in the pack")
    version = PACK_VERSION_CRC if checksums else PACK_VERSION
    entry_struct = _PACK_ENTRY_CRC if checksums else _PACK_ENTRY
    out: List[bytes] = [
        _PACK_HEADER.pack(PACK_MAGIC, version, 0, len(ordered))
    ]
    offset = 0
    for v, blob in ordered:
        if checksums:
            out.append(
                entry_struct.pack(v, offset, len(blob), zlib.crc32(blob))
            )
        else:
            out.append(entry_struct.pack(v, offset, len(blob)))
        offset += len(blob)
    if checksums:
        out.append(_INDEX_CRC.pack(zlib.crc32(b"".join(out))))
    out.extend(blob for _, blob in ordered)
    return b"".join(out)


def parse_pack_header(buf: Buffer) -> Tuple[int, int]:
    """Validate the pack header; return ``(count, payload_start)``.

    The cheap half of validation run on every mapping: magic, version,
    and that the claimed index fits in the buffer — O(1) for pack v1.
    For pack v2 this also verifies the index CRC32 (one crc sweep of
    the index region, ~20 bytes/entry), so a mapped group's index is
    known-good before the first binary search trusts it.
    :func:`check_pack` is the full structural index check.
    """
    version, count, payload_start = _pack_bounds(buf)
    if version == PACK_VERSION_CRC:
        _check_index_crc(buf, count, payload_start)
    return count, payload_start


def _entry_struct(version: int) -> struct.Struct:
    return _PACK_ENTRY_CRC if version == PACK_VERSION_CRC else _PACK_ENTRY


def _check_index_crc(buf: Buffer, count: int, payload_start: int) -> None:
    """Verify the pack-v2 index trailer (crc32 of header + entries)."""
    crc_at = payload_start - _INDEX_CRC.size
    (stored,) = _INDEX_CRC.unpack_from(buf, crc_at)
    actual = zlib.crc32(memoryview(buf)[:crc_at])
    if stored != actual:
        raise ChecksumError(
            f"pack index checksum mismatch (stored 0x{stored:08x}, "
            f"bytes hash to 0x{actual:08x}) — the index is corrupt"
        )


def _pack_bounds(buf: Buffer) -> Tuple[int, int, int]:
    """Validate the pack header; return ``(version, count, payload_start)``."""
    if len(buf) < _PACK_HEADER.size:
        raise ShardCodecError("truncated pack header")
    magic, version, _flags, count = _PACK_HEADER.unpack_from(buf, 0)
    if magic != PACK_MAGIC:
        raise ShardCodecError("not a shard pack (bad magic)")
    if version not in (PACK_VERSION, PACK_VERSION_CRC):
        raise ShardCodecError(
            f"unsupported pack version {version} (this build reads "
            f"versions {PACK_VERSION} and {PACK_VERSION_CRC})"
        )
    payload_start = _PACK_HEADER.size + count * _entry_struct(version).size
    if version == PACK_VERSION_CRC:
        payload_start += _INDEX_CRC.size
    if payload_start > len(buf):
        raise ShardCodecError(
            f"pack index claims {count} entries but the file is too short"
        )
    return version, count, payload_start


_PACK_INDEX_DTYPE = [("v", "<u4"), ("off", "<u8"), ("len", "<u4")]
_PACK_INDEX_CRC_DTYPE = [
    ("v", "<u4"), ("off", "<u8"), ("len", "<u4"), ("crc", "<u4"),
]


def check_pack(buf: Buffer) -> int:
    """Validate a whole pack index; returns the entry count.

    Vectorized (numpy view over the index region — ~50us for a
    4096-entry group): the index must be strictly sorted by vertex,
    every payload must lie inside the payload region, and payloads must
    not overlap; a v2 index must additionally match its CRC32 trailer.
    The packed store keeps its cold path syscall-light by running only
    :func:`parse_pack_header` per mapping and deferring this full check
    to the first anomaly (a failed lookup or decode) and to explicit
    ``verify()`` calls — every corruption the index can carry still
    fails loudly, with this function's precise error.
    """
    import numpy as np

    version, count, payload_start = _pack_bounds(buf)
    if version == PACK_VERSION_CRC:
        _check_index_crc(buf, count, payload_start)
    payload_size = len(buf) - payload_start
    dtype = (
        _PACK_INDEX_CRC_DTYPE if version == PACK_VERSION_CRC
        else _PACK_INDEX_DTYPE
    )
    index = np.frombuffer(
        buf, dtype=dtype, count=count, offset=_PACK_HEADER.size,
    )
    vertices = index["v"].astype(np.int64)
    ends = index["off"].astype(np.int64) + index["len"]
    if count and not (np.diff(vertices) > 0).all():
        i = int(np.argmax(np.diff(vertices) <= 0)) + 1
        raise ShardCodecError(
            f"pack index not strictly sorted at entry {i} "
            f"(vertex {int(vertices[i])} after {int(vertices[i - 1])})"
        )
    if count and not (index["off"][1:] >= ends[:-1]).all():
        i = int(np.argmax(index["off"][1:] < ends[:-1])) + 1
        raise ShardCodecError(
            f"pack entry for vertex {int(vertices[i])} overlaps the "
            f"previous payload"
        )
    if count and not (ends <= payload_size).all():
        i = int(np.argmax(ends > payload_size))
        raise ShardCodecError(
            f"pack entry for vertex {int(vertices[i])} runs past the "
            f"payload region"
        )
    if version == PACK_VERSION_CRC:
        # v2 payloads are written back to back, so the exact file size
        # is known — trailing bytes mean appended garbage or a torn
        # rewrite (v1 packs stay tolerant: their spec never pinned it)
        expected = int(ends[-1]) if count else 0
        if payload_size != expected:
            raise ShardCodecError(
                f"pack holds {payload_size} payload bytes but the "
                f"index accounts for {expected} — trailing garbage "
                f"or a torn rewrite"
            )
    return count


def verify_pack(buf: Buffer) -> int:
    """The offline integrity sweep: index *and* every payload.

    Runs :func:`check_pack`, then verifies each payload: against its
    stored CRC32 for pack v2 (:class:`ChecksumError` names the first
    corrupt vertex), or — for checksum-less v1 packs — by decoding it
    (the payload's structural self-validation, which cannot catch a
    flipped weight bit but catches everything else).  Returns the entry
    count.  ``PackedShardStore.verify()`` and ``shard --verify`` run
    this per group.
    """
    count = check_pack(buf)
    version, _, _ = _pack_bounds(buf)
    view = memoryview(buf)
    for v, offset, length, crc in _iter_entries_crc(buf):
        if version == PACK_VERSION_CRC:
            if zlib.crc32(view[offset:offset + length]) != crc:
                raise ChecksumError(
                    f"payload of vertex {v} fails its CRC32 — "
                    f"{length} bytes at offset {offset} are corrupt"
                )
        else:
            decode_node_table(view[offset:offset + length])
    return count


def payload_checksum_ok(
    buf: Buffer, offset: int, length: int, crc: int
) -> bool:
    """Whether ``buf[offset:offset+length]`` hashes to ``crc``."""
    return zlib.crc32(memoryview(buf)[offset:offset + length]) == crc


def find_pack_entry(
    buf: Buffer, v: int
) -> Optional[Tuple[int, int, Optional[int]]]:
    """Binary-search the index for vertex ``v``.

    Returns ``(absolute offset, length, crc)`` of the payload inside
    ``buf`` — ``crc`` is the stored payload CRC32 for pack v2, ``None``
    for checksum-less v1 packs — or ``None`` when the pack holds no
    shard for ``v``.  Assumes a sorted index (what :func:`encode_pack`
    writes and :func:`check_pack` certifies); on an unsorted or corrupt
    index the search can only miss or surface a payload whose checksum
    or self-validating decode fails — callers diagnose that with
    :func:`check_pack`.
    """
    version, count, payload_start = _pack_bounds(buf)
    entry = _entry_struct(version)
    lo, hi = 0, count
    while lo < hi:
        mid = (lo + hi) // 2
        fields = entry.unpack_from(buf, _PACK_HEADER.size + mid * entry.size)
        vertex, offset, length = fields[0], fields[1], fields[2]
        if vertex == v:
            crc = fields[3] if version == PACK_VERSION_CRC else None
            return payload_start + offset, length, crc
        if vertex < v:
            lo = mid + 1
        else:
            hi = mid
    return None


def find_in_pack(buf: Buffer, v: int) -> Optional[Tuple[int, int]]:
    """:func:`find_pack_entry` without the checksum field."""
    found = find_pack_entry(buf, v)
    return None if found is None else found[:2]


def _iter_entries_crc(
    buf: Buffer,
) -> Iterator[Tuple[int, int, int, Optional[int]]]:
    """Yield ``(vertex, absolute offset, length, crc-or-None)``."""
    version, count, payload_start = _pack_bounds(buf)
    entry = _entry_struct(version)
    for i in range(count):
        fields = entry.unpack_from(buf, _PACK_HEADER.size + i * entry.size)
        crc = fields[3] if version == PACK_VERSION_CRC else None
        yield fields[0], payload_start + fields[1], fields[2], crc


def iter_pack_entries(buf: Buffer) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(vertex, absolute offset, length)`` in index order."""
    for v, offset, length, _ in _iter_entries_crc(buf):
        yield v, offset, length
