"""Versioned binary codec for per-vertex :class:`NodeTable` shards.

The JSON persistence of :mod:`repro.routing.persistence` is fine for one
whole-scheme blob but wrong for serving: a node that only needs *its own*
table should not parse (or even read) megabytes of everyone else's.  This
codec packs one :class:`~repro.routing.tables.NodeTable` into one compact
byte string:

* 4-byte header: magic ``RT`` + format version + flags,
* varint-packed structure (zigzag for signed ints, ``struct``-packed
  IEEE doubles for floats, UTF-8 for strings),
* a tag byte per value; tuples/lists/dicts nest arbitrarily — the same
  value domain :func:`repro.routing.model.words_of` accepts, so anything
  a scheme can put into a :class:`SizedTable` round-trips,
* unit-weight neighbour lists (unweighted graphs) skip the 8-byte
  weights entirely (flag bit 0).

Decoding validates the magic and version and fails loudly on anything
else — a shard written by a future codec is rejected, never misread.

Size accounting
---------------
``encoded_size`` reports the exact byte cost of a record.  The shard
tests reconcile this against the word accounting of
:class:`~repro.routing.model.SizedTable`/``SchemeStats``: decoded shards
must reproduce the exact per-vertex word counts, and the bytes-per-word
ratio is recorded in the shard manifest so the benchmark tables can show
real on-disk cost next to the paper's word bounds.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from .tables import NodeTable

__all__ = [
    "CODEC_VERSION",
    "ShardCodecError",
    "encode_node_table",
    "decode_node_table",
    "encoded_size",
]

MAGIC = b"RT"
CODEC_VERSION = 1

#: flag bit 0: every incident edge weight is exactly 1.0 (skip weights)
_FLAG_UNIT_WEIGHTS = 0x01

# value tag bytes
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_TUPLE = 0x06
_T_LIST = 0x07
_T_DICT = 0x08

_DOUBLE = struct.Struct("<d")


class ShardCodecError(ValueError):
    """Raised on malformed, foreign or future-versioned shard bytes."""


# ----------------------------------------------------------------------
# varints
# ----------------------------------------------------------------------
#: decode stops at shift 70, i.e. 11 varint bytes = 77 payload bits;
#: encoding enforces the same bound so everything written decodes back
_UVARINT_LIMIT = 1 << 77


def _write_uvarint(out: List[bytes], value: int) -> None:
    if value < 0:
        raise ShardCodecError(f"uvarint cannot encode {value}")
    if value >= _UVARINT_LIMIT:
        raise ShardCodecError(
            f"int {value} exceeds the codec's 77-bit varint range"
        )
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(bytes((byte | 0x80,)))
        else:
            out.append(bytes((byte,)))
            return


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ShardCodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ShardCodecError("varint too long")


def _write_svarint(out: List[bytes], value: int) -> None:
    # zigzag: non-negative -> even, negative -> odd
    _write_uvarint(out, value << 1 if value >= 0 else ((-value) << 1) - 1)


def _read_svarint(data: bytes, pos: int) -> Tuple[int, int]:
    raw, pos = _read_uvarint(data, pos)
    return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1), pos


# ----------------------------------------------------------------------
# values
# ----------------------------------------------------------------------
def _write_value(out: List[bytes], value: Any) -> None:
    if value is None:
        out.append(bytes((_T_NONE,)))
    elif value is True:
        out.append(bytes((_T_TRUE,)))
    elif value is False:
        out.append(bytes((_T_FALSE,)))
    elif isinstance(value, int):
        out.append(bytes((_T_INT,)))
        _write_svarint(out, value)
    elif isinstance(value, float):
        out.append(bytes((_T_FLOAT,)))
        out.append(_DOUBLE.pack(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(bytes((_T_STR,)))
        _write_uvarint(out, len(raw))
        out.append(raw)
    elif isinstance(value, tuple):
        out.append(bytes((_T_TUPLE,)))
        _write_uvarint(out, len(value))
        for item in value:
            _write_value(out, item)
    elif isinstance(value, list):
        out.append(bytes((_T_LIST,)))
        _write_uvarint(out, len(value))
        for item in value:
            _write_value(out, item)
    elif isinstance(value, dict):
        out.append(bytes((_T_DICT,)))
        _write_uvarint(out, len(value))
        for k, v in value.items():
            _write_value(out, k)
            _write_value(out, v)
    else:
        raise ShardCodecError(
            f"cannot encode value of type {type(value)!r}"
        )


def _read_value(data: bytes, pos: int) -> Tuple[Any, int]:
    if pos >= len(data):
        raise ShardCodecError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        return _read_svarint(data, pos)
    if tag == _T_FLOAT:
        end = pos + 8
        if end > len(data):
            raise ShardCodecError("truncated float")
        return _DOUBLE.unpack_from(data, pos)[0], end
    if tag == _T_STR:
        length, pos = _read_uvarint(data, pos)
        end = pos + length
        if end > len(data):
            raise ShardCodecError("truncated string")
        return data[pos:end].decode("utf-8"), end
    if tag in (_T_TUPLE, _T_LIST):
        count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _read_value(data, pos)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_DICT:
        count, pos = _read_uvarint(data, pos)
        result = {}
        for _ in range(count):
            k, pos = _read_value(data, pos)
            v, pos = _read_value(data, pos)
            result[k] = v
        return result, pos
    raise ShardCodecError(f"unknown value tag 0x{tag:02x}")


# ----------------------------------------------------------------------
# node tables
# ----------------------------------------------------------------------
def encode_node_table(record: NodeTable) -> bytes:
    """Pack one :class:`NodeTable` into versioned shard bytes."""
    unit = all(w == 1.0 for _, w in record.neighbors)
    flags = _FLAG_UNIT_WEIGHTS if unit else 0
    out: List[bytes] = [MAGIC, bytes((CODEC_VERSION, flags))]
    _write_uvarint(out, record.owner)
    _write_uvarint(out, len(record.neighbors))
    for nb, _ in record.neighbors:
        _write_uvarint(out, nb)
    if not unit:
        for _, w in record.neighbors:
            out.append(_DOUBLE.pack(w))
    _write_value(out, record.label)
    _write_uvarint(out, len(record.categories))
    for cat, entries in record.categories.items():
        _write_value(out, cat)
        _write_uvarint(out, len(entries))
        for k, v in entries.items():
            _write_value(out, k)
            _write_value(out, v)
    return b"".join(out)


def decode_node_table(data: bytes) -> NodeTable:
    """Inverse of :func:`encode_node_table` (validates magic + version)."""
    if len(data) < 4 or data[:2] != MAGIC:
        raise ShardCodecError("not a routing-table shard (bad magic)")
    version, flags = data[2], data[3]
    if version != CODEC_VERSION:
        raise ShardCodecError(
            f"unsupported shard codec version {version} "
            f"(this build reads version {CODEC_VERSION})"
        )
    pos = 4
    owner, pos = _read_uvarint(data, pos)
    degree, pos = _read_uvarint(data, pos)
    ids = []
    for _ in range(degree):
        nb, pos = _read_uvarint(data, pos)
        ids.append(nb)
    if flags & _FLAG_UNIT_WEIGHTS:
        weights = [1.0] * degree
    else:
        end = pos + 8 * degree
        if end > len(data):
            raise ShardCodecError("truncated weights")
        weights = [
            _DOUBLE.unpack_from(data, pos + 8 * i)[0] for i in range(degree)
        ]
        pos = end
    label, pos = _read_value(data, pos)
    cat_count, pos = _read_uvarint(data, pos)
    categories = {}
    for _ in range(cat_count):
        cat, pos = _read_value(data, pos)
        if not isinstance(cat, str):
            raise ShardCodecError(f"category name {cat!r} is not a string")
        entry_count, pos = _read_uvarint(data, pos)
        entries = {}
        for _ in range(entry_count):
            k, pos = _read_value(data, pos)
            v, pos = _read_value(data, pos)
            entries[k] = v
        categories[cat] = entries
    if pos != len(data):
        raise ShardCodecError(
            f"{len(data) - pos} trailing bytes after shard payload"
        )
    return NodeTable(
        owner=owner,
        neighbors=tuple(zip(ids, weights)),
        label=label,
        categories=categories,
    )


def encoded_size(record: NodeTable) -> int:
    """Exact on-disk byte cost of ``record``."""
    return len(encode_node_table(record))
