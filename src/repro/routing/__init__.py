"""Distributed routing substrate: fixed-port model, simulator, Lemmas 2–3."""

from .ball_routing import BallRoutingScheme, BallRoutingTables
from .header_codec import decode as decode_header
from .header_codec import encode as encode_header
from .header_codec import encoded_bits as header_bits
from .interval_routing import IntervalTreeRouting
from .model import (
    CompactRoutingScheme,
    Deliver,
    Forward,
    RouteAction,
    SchemeStats,
    SizedTable,
    words_of,
)
from .persistence import dumps as dump_scheme_state
from .persistence import loads as load_scheme_state
from .ports import PortAssignment
from .serving import (
    LocalRouter,
    PackedShardStore,
    ShardStore,
    open_store,
    write_shards,
)
from .shard_codec import decode_node_table, encode_node_table
from .simulator import (
    RouteResult,
    SchemeEngine,
    StretchReport,
    as_engine,
    measure_stretch,
    route,
)
from .tables import NodeTable, compile_tables
from .tree_routing import TreeRouting, tree_step

__all__ = [
    "BallRoutingScheme",
    "decode_header",
    "encode_header",
    "header_bits",
    "IntervalTreeRouting",
    "dump_scheme_state",
    "load_scheme_state",
    "BallRoutingTables",
    "CompactRoutingScheme",
    "Deliver",
    "Forward",
    "RouteAction",
    "SchemeStats",
    "SizedTable",
    "words_of",
    "PortAssignment",
    "LocalRouter",
    "PackedShardStore",
    "ShardStore",
    "open_store",
    "write_shards",
    "decode_node_table",
    "encode_node_table",
    "NodeTable",
    "compile_tables",
    "RouteResult",
    "SchemeEngine",
    "StretchReport",
    "as_engine",
    "measure_stretch",
    "route",
    "TreeRouting",
    "tree_step",
]
