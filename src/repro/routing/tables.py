"""The compile layer: a built scheme as per-vertex :class:`NodeTable` records.

A compact routing scheme's deployment unit is *one vertex's* state — the
paper's whole point is that each node stores ``o(n)`` words and forwards
using only that plus the packet header.  The in-memory scheme objects in
this repository, however, are monolithic: tables, labels, ports and the
graph live in one process.  This module compiles a built scheme into the
deployment shape:

* :class:`NodeTable` — everything vertex ``v`` ships with: its routing
  table (category -> key -> value, exactly the :class:`SizedTable`
  contents), its label, and its incident links in port order (neighbour
  id + edge weight), which is the fixed-port model's local knowledge,
* :meth:`repro.schemes.base.SchemeBase.compile_tables` — the per-scheme
  hook producing one record per vertex; each scheme declares the table
  categories its ``step`` function reads (:meth:`shard_categories`) and
  compilation cross-checks the built tables against that manifest, so a
  category added to preprocessing but unknown to the decision function
  (or vice versa) fails at compile time, not at serve time.

Word accounting is preserved exactly: ``NodeTable.table_words()`` equals
``SizedTable.total_words()`` of the source table, and summing over a
compiled scheme reproduces :class:`~repro.routing.model.SchemeStats` —
the reconciliation the shard tests assert for every registered scheme.
:mod:`repro.routing.shard_codec` packs these records into versioned
binary shards; :mod:`repro.routing.serving` loads and routes on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .model import CompactRoutingScheme, SizedTable, words_of

__all__ = ["NodeTable", "compile_node_table", "compile_tables"]


@dataclass
class NodeTable:
    """One vertex's complete routing state — the unit a deployed node holds.

    ``neighbors`` lists the incident links in *port order*: entry ``p`` is
    ``(neighbour id, edge weight)`` of port ``p``.  That is exactly the
    local knowledge the fixed-port model grants a node (footnote 2 of the
    paper: a vertex may translate a neighbour id into the port leading to
    it), so a :class:`NodeTable` suffices to execute every ``step`` and to
    move the message across the returned port without any global state.
    """

    owner: int
    #: incident links in port order: ``neighbors[p] == (vertex, weight)``
    neighbors: Tuple[Tuple[int, float], ...]
    label: Any
    #: category -> key -> value, the :class:`SizedTable` contents
    categories: Dict[str, Dict[Any, Any]]
    _port_of: Optional[Dict[int, int]] = field(
        default=None, repr=False, compare=False
    )

    # -- fixed-port local knowledge ------------------------------------
    def degree(self) -> int:
        return len(self.neighbors)

    def neighbor(self, port: int) -> int:
        """The vertex at the other end of link ``port``."""
        if not 0 <= port < len(self.neighbors):
            raise ValueError(f"vertex {self.owner} has no port {port}")
        return self.neighbors[port][0]

    def edge(self, port: int) -> Tuple[int, float]:
        """``(neighbour, weight)`` of link ``port``."""
        if not 0 <= port < len(self.neighbors):
            raise ValueError(f"vertex {self.owner} has no port {port}")
        return self.neighbors[port]

    def port_to(self, v: int) -> int:
        """The port leading to neighbour ``v`` (footnote-2 translation)."""
        if self._port_of is None:
            self._port_of = {
                nb: p for p, (nb, _) in enumerate(self.neighbors)
            }
        try:
            return self._port_of[v]
        except KeyError:
            raise ValueError(
                f"{v} is not a neighbour of {self.owner}"
            ) from None

    # -- table views ----------------------------------------------------
    def sized_table(self) -> SizedTable:
        """The record's table as a :class:`SizedTable` (same accounting)."""
        table = SizedTable(self.owner)
        for cat, entries in self.categories.items():
            for key, value in entries.items():
                table.put(cat, key, value)
        return table

    # -- word accounting ------------------------------------------------
    def table_words(self) -> int:
        """Word count of the table contents (= ``SizedTable.total_words``)."""
        return sum(
            words_of(k) + words_of(v)
            for entries in self.categories.values()
            for k, v in entries.items()
        )

    def label_words(self) -> int:
        return words_of(self.label)


def compile_node_table(scheme: CompactRoutingScheme, v: int) -> NodeTable:
    """Compile vertex ``v``'s state out of a built (in-memory) scheme."""
    g = scheme.graph
    neighbors = tuple(
        (nb, g.weight(v, nb))
        for nb in (
            scheme.ports.neighbor(v, p)
            for p in range(scheme.ports.degree(v))
        )
    )
    table = scheme.table_of(v)
    categories = {
        cat: dict(table.category(cat)) for cat in table.categories()
    }
    return NodeTable(
        owner=v,
        neighbors=neighbors,
        label=scheme.label_of(v),
        categories=categories,
    )


def compile_tables(
    scheme: CompactRoutingScheme,
    *,
    allowed_categories: Optional[frozenset] = None,
) -> List[NodeTable]:
    """Compile every vertex of ``scheme`` into :class:`NodeTable` records.

    ``allowed_categories`` is the scheme's declared step-time manifest
    (see ``SchemeBase.shard_categories``); any built category outside it
    means the routing tables and the decision function have drifted apart
    and compilation refuses to ship the shard.
    """
    records = []
    for v in scheme.graph.vertices():
        record = compile_node_table(scheme, v)
        if allowed_categories is not None:
            unknown = set(record.categories) - allowed_categories
            if unknown:
                raise ValueError(
                    f"table of vertex {v} holds categories "
                    f"{sorted(unknown)} that {scheme.name!r} never "
                    f"declared in shard_categories(); step() could not "
                    f"read them — refusing to compile drifting state"
                )
        records.append(record)
    return records
