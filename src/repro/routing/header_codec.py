"""Bit-level header encoding: making the paper's header bounds concrete.

The theorems state header sizes in bits (e.g. ``Õ(1/eps)``-bit headers for
Theorem 10, ``Õ((1/eps) log D)`` for Theorem 11).  The simulator's word
accounting approximates this; this module provides an *actual* codec —
headers are serialized to bytes and parsed back — so tests and benchmarks
can measure true header bits on the wire.

The format is self-describing and covers every header shape the schemes
produce: ``None``, ints, strings (phase tags), and nested tuples.

* varint-encoded non-negative integers (LEB128),
* zigzag for the occasional negative int,
* one tag byte per node of the structure.

``encoded_bits(header)`` is the measurement entry point; ``encode`` /
``decode`` round-trip exactly (property-tested).
"""

from __future__ import annotations

from typing import Any, List, Tuple

__all__ = ["encode", "decode", "encoded_bits"]

_TAG_NONE = 0
_TAG_INT = 1
_TAG_STR = 2
_TAG_TUPLE = 3
_TAG_BOOL_TRUE = 4
_TAG_BOOL_FALSE = 5


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError("varint requires non-negative input")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if value & 1 == 0 else -((value + 1) >> 1)


def _encode_node(out: bytearray, node: Any) -> None:
    if node is None:
        out.append(_TAG_NONE)
    elif node is True:
        out.append(_TAG_BOOL_TRUE)
    elif node is False:
        out.append(_TAG_BOOL_FALSE)
    elif isinstance(node, int):
        out.append(_TAG_INT)
        _write_varint(out, _zigzag(node))
    elif isinstance(node, str):
        encoded = node.encode("utf-8")
        out.append(_TAG_STR)
        _write_varint(out, len(encoded))
        out.extend(encoded)
    elif isinstance(node, tuple):
        out.append(_TAG_TUPLE)
        _write_varint(out, len(node))
        for item in node:
            _encode_node(out, item)
    else:
        raise TypeError(
            f"headers may contain None/bool/int/str/tuple, got {type(node)!r}"
        )


def _decode_node(data: bytes, pos: int) -> Tuple[Any, int]:
    if pos >= len(data):
        raise ValueError("truncated header")
    tag = data[pos]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_BOOL_TRUE:
        return True, pos
    if tag == _TAG_BOOL_FALSE:
        return False, pos
    if tag == _TAG_INT:
        raw, pos = _read_varint(data, pos)
        return _unzigzag(raw), pos
    if tag == _TAG_STR:
        length, pos = _read_varint(data, pos)
        if pos + length > len(data):
            raise ValueError("truncated string")
        return data[pos : pos + length].decode("utf-8"), pos + length
    if tag == _TAG_TUPLE:
        count, pos = _read_varint(data, pos)
        items: List[Any] = []
        for _ in range(count):
            item, pos = _decode_node(data, pos)
            items.append(item)
        return tuple(items), pos
    raise ValueError(f"unknown header tag byte {tag}")


def encode(header: Any) -> bytes:
    """Serialize a header to bytes."""
    out = bytearray()
    _encode_node(out, header)
    return bytes(out)


def decode(data: bytes) -> Any:
    """Parse bytes produced by :func:`encode` back into the header."""
    node, pos = _decode_node(data, 0)
    if pos != len(data):
        raise ValueError(f"{len(data) - pos} trailing bytes after header")
    return node


def encoded_bits(header: Any) -> int:
    """The true wire size of a header, in bits."""
    return 8 * len(encode(header))
