"""Serialization of routing state: tables, labels, ports.

A compact routing scheme's whole point is that, after preprocessing, the
*only* state a vertex needs is its table (plus the global port numbering
it was built against), and the only state a sender needs is the
destination label.  This module makes that claim operational: it exports
every table and label into a plain JSON-able structure and re-imports it
into fresh :class:`SizedTable` objects, byte-identical in word accounting.

Use cases: shipping precomputed tables to simulated nodes, snapshotting a
scheme for regression tests, or inspecting table contents offline.  The
scheme's *decision function* is code, not state, so deserialization is
paired with the scheme class (``scheme_state`` records which one).

Keys inside tables may be ints, strings or (small) int tuples; values may
be anything :func:`repro.routing.model.words_of` accepts.  Tuples are
encoded with a ``{"t": [...]}`` wrapper so JSON round trips preserve them.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .model import CompactRoutingScheme, SizedTable

__all__ = [
    "encode_value",
    "decode_value",
    "export_table",
    "import_table",
    "export_scheme_state",
    "import_scheme_state",
    "dumps",
    "loads",
]


def encode_value(value: Any) -> Any:
    """Lower a table/label value into JSON-able form (tuples wrapped)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"t": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"l": [encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {
            "d": [
                [_encode_key(k), encode_value(v)] for k, v in value.items()
            ]
        }
    raise TypeError(f"cannot serialize value of type {type(value)!r}")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if set(value) == {"t"}:
            return tuple(decode_value(v) for v in value["t"])
        if set(value) == {"l"}:
            return [decode_value(v) for v in value["l"]]
        if set(value) == {"d"}:
            return {_decode_key(k): decode_value(v) for k, v in value["d"]}
        raise ValueError(f"unknown wrapper {sorted(value)}")
    return value


def _encode_key(key: Any) -> str:
    if isinstance(key, bool):
        raise TypeError("bool table keys are not supported")
    if isinstance(key, int):
        return f"i:{key}"
    if isinstance(key, str):
        return f"s:{key}"
    if isinstance(key, tuple) and all(isinstance(k, int) for k in key):
        return "p:" + ",".join(map(str, key))
    raise TypeError(f"cannot serialize table key {key!r}")


def _decode_key(key: str) -> Any:
    kind, _, body = key.partition(":")
    if kind == "i":
        return int(body)
    if kind == "s":
        return body
    if kind == "p":
        return tuple(int(x) for x in body.split(",")) if body else ()
    raise ValueError(f"unknown key encoding {key!r}")


def export_table(table: SizedTable) -> Dict[str, Any]:
    """One vertex's table as a JSON-able dict."""
    return {
        "owner": table.owner,
        "categories": {
            cat: {
                _encode_key(k): encode_value(v)
                for k, v in table.category(cat).items()
            }
            for cat in table.categories()
        },
    }


def import_table(data: Dict[str, Any]) -> SizedTable:
    """Rebuild a :class:`SizedTable` exported by :func:`export_table`."""
    table = SizedTable(int(data["owner"]))
    for cat, entries in data["categories"].items():
        for key, value in entries.items():
            table.put(cat, _decode_key(key), decode_value(value))
    return table


def export_scheme_state(scheme: CompactRoutingScheme) -> Dict[str, Any]:
    """Everything a deployment needs: tables, labels, scheme identity."""
    return {
        "scheme": type(scheme).__name__,
        "name": scheme.name,
        "n": scheme.graph.n,
        "tables": [
            export_table(scheme.table_of(v)) for v in scheme.graph.vertices()
        ],
        "labels": [
            encode_value(scheme.label_of(v)) for v in scheme.graph.vertices()
        ],
    }


def import_scheme_state(data: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild tables and labels from :func:`export_scheme_state` output."""
    return {
        "scheme": data["scheme"],
        "name": data["name"],
        "n": int(data["n"]),
        "tables": [import_table(t) for t in data["tables"]],
        "labels": [decode_value(l) for l in data["labels"]],
    }


def dumps(scheme: CompactRoutingScheme) -> str:
    """JSON string of the scheme's full routing state."""
    return json.dumps(export_scheme_state(scheme))


def loads(text: str) -> Dict[str, Any]:
    """Parse a :func:`dumps` string back into tables and labels."""
    return import_scheme_state(json.loads(text))
