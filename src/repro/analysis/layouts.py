"""The single declared layout table the CODEC001 rule cross-checks.

Every magic byte string, format-version integer and ``struct`` format
the on-disk codecs commit to is declared here, once.  CODEC001 parses
the codec modules and verifies that each module-level constant still
holds exactly its declared value, and that no *undeclared* struct
format string appears in a ``struct`` call — so changing a wire layout
without updating this table (or vice versa) fails the static gate
instead of silently forking the format.

This is deliberately data, not imports: importing the codec modules and
reading the live values would make the check a tautology.  The table is
the reviewable, diffable statement of the wire contract; the modules
are the implementation under test.
"""

from __future__ import annotations

from typing import Dict, Union

__all__ = ["DECLARED_LAYOUTS"]

#: per-module layout contract: ``constants`` are module-level names with
#: their exact values (bytes, int or str), ``structs`` are names bound
#: to ``struct.Struct(<format>)`` with the exact format string.
LayoutTable = Dict[str, Dict[str, Dict[str, Union[bytes, int, str]]]]

DECLARED_LAYOUTS: LayoutTable = {
    "repro/routing/shard_codec.py": {
        "constants": {
            # shard payload header (layout v1 payloads, all pack versions)
            "MAGIC": b"RT",
            "CODEC_VERSION": 1,
            # packed group files
            "PACK_MAGIC": b"RTPK",
            "PACK_VERSION": 1,
            "PACK_VERSION_CRC": 2,
            # weight-layout flag bits in the shard payload header
            "_FLAG_UNIT_WEIGHTS": 0x01,
            # value tag bytes of the self-describing payload encoding
            "_T_NONE": 0x00,
            "_T_FALSE": 0x01,
            "_T_TRUE": 0x02,
            "_T_INT": 0x03,
            "_T_FLOAT": 0x04,
            "_T_STR": 0x05,
            "_T_TUPLE": 0x06,
            "_T_LIST": 0x07,
            "_T_DICT": 0x08,
            # native-scanner token-stream contract (decode_node_table_fast):
            # mirrored by RT_T_COUNT / STR_OFFSET_BITS in _kernels.c
            "_T_COUNT": 0xF1,
            "_STR_OFFSET_BITS": 40,
        },
        "structs": {
            "_PACK_ENTRY": "<IQI",
            "_PACK_ENTRY_CRC": "<IQII",
            "_INDEX_CRC": "<I",
            "_PACK_HEADER": "<4sBBI",
            "_DOUBLE": "<d",
        },
    },
    # the native scanner's mirror of the shard_codec.py layout above:
    # CODEC001's text mode parses these as `#define NAME VALUE` lines,
    # so C-side drift from the committed wire format fails the gate the
    # same way Python-side drift does (RT_MAGIC_0/1 are the bytes of
    # MAGIC = b"RT"; the RT_T_* tags are the _T_* tag bytes)
    "repro/native/_kernels.c": {
        "constants": {
            "RT_MAGIC_0": 0x52,
            "RT_MAGIC_1": 0x54,
            "RT_CODEC_VERSION": 1,
            "RT_FLAG_UNIT_WEIGHTS": 0x01,
            "RT_T_NONE": 0x00,
            "RT_T_FALSE": 0x01,
            "RT_T_TRUE": 0x02,
            "RT_T_INT": 0x03,
            "RT_T_FLOAT": 0x04,
            "RT_T_STR": 0x05,
            "RT_T_TUPLE": 0x06,
            "RT_T_LIST": 0x07,
            "RT_T_DICT": 0x08,
            # pseudo-tag of the token stream (never in shard bytes) and
            # the aux-word split of the string tokens — both halves of
            # the scanner/assembler contract with shard_codec.py
            "RT_T_COUNT": 0xF1,
            "STR_OFFSET_BITS": 40,
        },
        "structs": {},
    },
    "repro/routing/header_codec.py": {
        "constants": {
            "_TAG_NONE": 0,
            "_TAG_INT": 1,
            "_TAG_STR": 2,
            "_TAG_TUPLE": 3,
            "_TAG_BOOL_TRUE": 4,
            "_TAG_BOOL_FALSE": 5,
        },
        "structs": {},
    },
    "repro/routing/serving.py": {
        "constants": {
            "MANIFEST_NAME": "manifest.json",
            "FORMAT": "repro.routing.shards",
            "FORMAT_VERSION": 1,
            "PACKED_FORMAT_VERSION": 2,
            "CHECKSUM_FORMAT_VERSION": 3,
        },
        "structs": {},
    },
    "repro/cluster/wire.py": {
        "constants": {
            # RPC frame header: magic, version, msg type, payload length
            "WIRE_MAGIC": b"RC",
            "WIRE_VERSION": 1,
            "FRAME_BYTES": 8,
            "MAX_PAYLOAD": 67108864,
            # message / reply type bytes
            "MSG_STATUS": 1,
            "MSG_LABEL": 2,
            "MSG_LOOKUP": 3,
            "MSG_FORWARD": 4,
            "MSG_SHUTDOWN": 5,
            "REPLY_OK": 32,
            "REPLY_ERROR": 33,
        },
        "structs": {
            "_FRAME": "<2sBBI",
        },
    },
}
