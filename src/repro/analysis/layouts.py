"""The single declared layout table the CODEC001 rule cross-checks.

Every magic byte string, format-version integer and ``struct`` format
the on-disk codecs commit to is declared here, once.  CODEC001 parses
the codec modules and verifies that each module-level constant still
holds exactly its declared value, and that no *undeclared* struct
format string appears in a ``struct`` call — so changing a wire layout
without updating this table (or vice versa) fails the static gate
instead of silently forking the format.

This is deliberately data, not imports: importing the codec modules and
reading the live values would make the check a tautology.  The table is
the reviewable, diffable statement of the wire contract; the modules
are the implementation under test.
"""

from __future__ import annotations

from typing import Dict, Union

__all__ = ["DECLARED_LAYOUTS"]

#: per-module layout contract: ``constants`` are module-level names with
#: their exact values (bytes, int or str), ``structs`` are names bound
#: to ``struct.Struct(<format>)`` with the exact format string.
LayoutTable = Dict[str, Dict[str, Dict[str, Union[bytes, int, str]]]]

DECLARED_LAYOUTS: LayoutTable = {
    "repro/routing/shard_codec.py": {
        "constants": {
            # shard payload header (layout v1 payloads, all pack versions)
            "MAGIC": b"RT",
            "CODEC_VERSION": 1,
            # packed group files
            "PACK_MAGIC": b"RTPK",
            "PACK_VERSION": 1,
            "PACK_VERSION_CRC": 2,
            # weight-layout flag bits in the shard payload header
            "_FLAG_UNIT_WEIGHTS": 0x01,
            # value tag bytes of the self-describing payload encoding
            "_T_NONE": 0x00,
            "_T_FALSE": 0x01,
            "_T_TRUE": 0x02,
            "_T_INT": 0x03,
            "_T_FLOAT": 0x04,
            "_T_STR": 0x05,
            "_T_TUPLE": 0x06,
            "_T_LIST": 0x07,
            "_T_DICT": 0x08,
        },
        "structs": {
            "_PACK_ENTRY": "<IQI",
            "_PACK_ENTRY_CRC": "<IQII",
            "_INDEX_CRC": "<I",
            "_PACK_HEADER": "<4sBBI",
            "_DOUBLE": "<d",
        },
    },
    "repro/routing/header_codec.py": {
        "constants": {
            "_TAG_NONE": 0,
            "_TAG_INT": 1,
            "_TAG_STR": 2,
            "_TAG_TUPLE": 3,
            "_TAG_BOOL_TRUE": 4,
            "_TAG_BOOL_FALSE": 5,
        },
        "structs": {},
    },
    "repro/routing/serving.py": {
        "constants": {
            "MANIFEST_NAME": "manifest.json",
            "FORMAT": "repro.routing.shards",
            "FORMAT_VERSION": 1,
            "PACKED_FORMAT_VERSION": 2,
            "CHECKSUM_FORMAT_VERSION": 3,
        },
        "structs": {},
    },
    "repro/cluster/wire.py": {
        "constants": {
            # RPC frame header: magic, version, msg type, payload length
            "WIRE_MAGIC": b"RC",
            "WIRE_VERSION": 1,
            "FRAME_BYTES": 8,
            "MAX_PAYLOAD": 67108864,
            # message / reply type bytes
            "MSG_STATUS": 1,
            "MSG_LABEL": 2,
            "MSG_LOOKUP": 3,
            "MSG_FORWARD": 4,
            "MSG_SHUTDOWN": 5,
            "REPLY_OK": 32,
            "REPLY_ERROR": 33,
        },
        "structs": {
            "_FRAME": "<2sBBI",
        },
    },
}
