"""Static invariant analysis for the serving/kernel core.

The runtime layers already enforce this repository's load-bearing
contracts — compile-time category refusal (:mod:`repro.routing.tables`),
seeded-RNG discipline behind the bit-identical differential tests, the
typed :class:`~repro.routing.serving.ServingError` hierarchy, the
ResourceWarning escalation in ``pytest.ini``.  This package makes the
same contracts *statically* checkable: a small AST-visitor framework
(:mod:`repro.analysis.framework`) dispatches a registry of domain rules
(:mod:`repro.analysis.rules`) over source files, with ``# repro: noqa
RULE`` suppressions and both human and machine-readable output.

Run it as ``python -m repro.analysis src/repro`` or via the CLI
subcommand ``python -m repro check``; ``--json`` emits findings as
``{file, line, rule, message}`` objects for CI diffing.

The rules (see README "Static analysis & invariants" for the full
table):

========  ============================================================
LK001     serving-path code reads only declared ``shard_categories()``
DET001    no unseeded module-level RNG, wall-clock, or bare-set
          iteration order in algorithmic code
ERR001    raises (and broad excepts) in the serving/codec modules stay
          inside the typed error hierarchy
RES001    every ``open()``/``mmap`` in ``routing/`` is owned by a
          ``with`` block or a ``close()``-bearing class
GEN001    identity-keyed caches consult generation/version stamps; no
          ``lru_cache`` on methods
CODEC001  struct formats and magic/version constants match the single
          declared layout table (:mod:`repro.analysis.layouts`)
========  ============================================================
"""

from .framework import (
    AnalysisError,
    Finding,
    Rule,
    all_rules,
    analyze_paths,
    analyze_source,
    format_findings,
    iter_python_files,
    rule,
)
from . import rules as _rules  # noqa: F401 - imported for registration

__all__ = [
    "AnalysisError",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "format_findings",
    "iter_python_files",
    "rule",
]
