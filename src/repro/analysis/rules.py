"""The domain rules: static counterparts of the runtime invariants.

Each rule mirrors a check the repository already enforces dynamically —
the point is to catch the drift *before* a test (or a production route)
has to.  See the module docstrings below and the README rule table for
the invariant each one guards and the runtime check it mirrors.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .framework import Finding, Rule, rule
from .layouts import DECLARED_LAYOUTS

__all__ = [
    "LocalKnowledgeRule",
    "DeterminismRule",
    "ErrorTaxonomyRule",
    "ResourceHygieneRule",
    "StampDisciplineRule",
    "CodecLayoutRule",
]


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """``{local name: full dotted origin}`` from the module's imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = item.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for item in node.names:
                aliases[item.asname or item.name] = (
                    f"{node.module}.{item.name}"
                )
    return aliases


def _resolve(call_target: str, aliases: Dict[str, str]) -> str:
    """Rewrite the first component of a dotted target via the imports."""
    head, _, rest = call_target.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return call_target
    return f"{origin}.{rest}" if rest else origin


def _fstring_prefix(node: ast.JoinedStr) -> str:
    """The constant leading text of an f-string (``f"ctree{i}"`` -> ``ctree``)."""
    prefix = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            prefix.append(value.value)
        else:
            break
    return "".join(prefix)


def _methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


# ----------------------------------------------------------------------
# LK001 — local-knowledge category manifest
# ----------------------------------------------------------------------
@rule
class LocalKnowledgeRule(Rule):
    """Serving-path code may only read declared ``shard_categories()``.

    The static counterpart of the compile-time refusal in
    :func:`repro.routing.tables.compile_tables`: the runtime check
    rejects *built* tables holding categories ``step`` never declared;
    this rule rejects *code* reading categories the declaration does not
    cover — the other half of the same drift, caught before a single
    scheme is built.  In any class defining both ``shard_categories``
    and ``step``, every literal (or f-string-prefixed) category passed
    to ``table.get/has/category`` in a serving-path method must appear
    in the literals (or f-string prefixes) of ``shard_categories``.
    """

    id = "LK001"
    title = (
        "serving-path table reads stay inside the declared "
        "shard_categories() manifest"
    )
    paths = ("repro/schemes/", "repro/baselines/")

    #: methods that run at build/declaration time, not on the serving path
    _BUILD_TIME = frozenset({"__init__", "shard_categories"})

    def check(
        self, tree: ast.Module, source: str, relpath: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = _methods(node)
            decl = methods.get("shard_categories")
            if decl is None or "step" not in methods:
                continue
            literals, prefixes = self._declared(decl)
            if not literals and not prefixes:
                continue  # no extractable declaration (e.g. returns None)
            for name, method in methods.items():
                if name in self._BUILD_TIME:
                    continue
                findings.extend(
                    self._check_method(
                        relpath, node.name, method, literals, prefixes
                    )
                )
        return findings

    def _declared(
        self, decl: ast.FunctionDef
    ) -> Tuple[Set[str], Set[str]]:
        literals: Set[str] = set()
        prefixes: Set[str] = set()
        for node in ast.walk(decl):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                literals.add(node.value)
            elif isinstance(node, ast.JoinedStr):
                prefix = _fstring_prefix(node)
                if prefix:
                    prefixes.add(prefix)
        return literals, prefixes

    def _table_names(self, method: ast.FunctionDef) -> Set[str]:
        """Local names that hold a routing table inside ``method``."""
        names = {
            arg.arg
            for arg in (
                method.args.posonlyargs
                + method.args.args
                + method.args.kwonlyargs
            )
            if arg.arg == "table"
        }
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                target_fn = node.value.func
                if (
                    isinstance(target_fn, ast.Attribute)
                    and target_fn.attr == "table_of"
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    def _check_method(
        self,
        relpath: str,
        class_name: str,
        method: ast.FunctionDef,
        literals: Set[str],
        prefixes: Set[str],
    ) -> Iterator[Finding]:
        tables = self._table_names(method)
        if not tables:
            return
        for node in ast.walk(method):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("get", "has", "category")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in tables
                and node.args
            ):
                continue
            category = node.args[0]
            if isinstance(category, ast.Constant) and isinstance(
                category.value, str
            ):
                used = category.value
                if used in literals or any(
                    used.startswith(p) for p in prefixes
                ):
                    continue
                yield self.finding(
                    relpath,
                    node,
                    f"{class_name}.{method.name} reads table category "
                    f"{used!r}, which {class_name}.shard_categories() "
                    f"never declares — a shard served to this step "
                    f"function would not carry it",
                )
            elif isinstance(category, ast.JoinedStr):
                prefix = _fstring_prefix(category)
                if not prefix or prefix in prefixes or prefix in literals:
                    continue
                yield self.finding(
                    relpath,
                    node,
                    f"{class_name}.{method.name} reads table categories "
                    f"{prefix!r}* (f-string), which "
                    f"{class_name}.shard_categories() never declares",
                )


# ----------------------------------------------------------------------
# DET001 — determinism discipline
# ----------------------------------------------------------------------
@rule
class DeterminismRule(Rule):
    """No unseeded global RNG, wall-clock values, or bare-set iteration.

    Protects every bit-identical differential test (kernel-vs-pure
    distances, save/load step decisions, packed-vs-per-file routes):
    all randomness must flow through a seeded ``random.Random`` /
    ``numpy`` generator instance, no algorithmic value may derive from
    the wall clock, and loops must not iterate a bare ``set`` (whose
    order is salted per process) where the order can reach an output.
    ``time.perf_counter``/``monotonic``/``sleep`` stay legal: timing
    instrumentation and retry backoff measure duration, they never
    become algorithmic output.
    """

    id = "DET001"
    title = (
        "seeded RNG instances only; no wall clock or bare-set iteration "
        "in algorithmic code"
    )
    paths = ("repro/",)

    #: constructors of explicitly seeded generators — allowed
    _RNG_OK = frozenset({"Random", "SystemRandom"})
    _NP_OK = frozenset(
        {"default_rng", "Generator", "RandomState", "SeedSequence"}
    )
    _WALL_CLOCK = frozenset(
        {
            "time.time",
            "time.time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def check(
        self, tree: ast.Module, source: str, relpath: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        aliases = _import_aliases(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(relpath, node, aliases))
            elif isinstance(node, ast.For):
                findings.extend(
                    self._check_iterable(relpath, node.iter, aliases)
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    findings.extend(
                        self._check_iterable(relpath, gen.iter, aliases)
                    )
        return findings

    def _check_call(
        self, relpath: str, node: ast.Call, aliases: Dict[str, str]
    ) -> Iterator[Finding]:
        target = _dotted_name(node.func)
        if target is None:
            return
        resolved = _resolve(target, aliases)
        if resolved in self._WALL_CLOCK:
            yield self.finding(
                relpath,
                node,
                f"wall-clock call {resolved}() in algorithmic code — "
                f"outputs must be a function of (input, seed), use "
                f"perf_counter for instrumentation-only timing",
            )
            return
        parts = resolved.split(".")
        if parts[:1] == ["random"] and len(parts) == 2:
            fn = parts[1]
            if fn not in self._RNG_OK:
                yield self.finding(
                    relpath,
                    node,
                    f"module-level random.{fn}() draws from the global "
                    f"unseeded RNG stream — construct a seeded "
                    f"random.Random(seed) instance instead",
                )
            elif fn == "Random" and not (node.args or node.keywords):
                yield self.finding(
                    relpath,
                    node,
                    "random.Random() without a seed is as nondeterministic "
                    "as the global stream — pass an explicit seed",
                )
        elif parts[:2] == ["numpy", "random"] and len(parts) == 3:
            fn = parts[2]
            if fn not in self._NP_OK:
                yield self.finding(
                    relpath,
                    node,
                    f"np.random.{fn}() draws from numpy's global RNG — "
                    f"use np.random.default_rng(seed)",
                )
            elif not (node.args or node.keywords):
                yield self.finding(
                    relpath,
                    node,
                    f"np.random.{fn}() without a seed is nondeterministic "
                    f"— pass an explicit seed",
                )

    def _check_iterable(
        self, relpath: str, iterable: ast.AST, aliases: Dict[str, str]
    ) -> Iterator[Finding]:
        if isinstance(iterable, ast.Set):
            yield self.finding(
                relpath,
                iterable,
                "iterating a set literal: set order is salted per "
                "process — wrap in sorted() if the loop order can "
                "reach an output",
            )
        elif isinstance(iterable, ast.Call):
            target = _dotted_name(iterable.func)
            if target in ("set", "frozenset"):
                yield self.finding(
                    relpath,
                    iterable,
                    f"iterating a bare {target}(): set order is salted "
                    f"per process — wrap in sorted() if the loop order "
                    f"can reach an output",
                )


# ----------------------------------------------------------------------
# ERR001 — error taxonomy at the serving boundary
# ----------------------------------------------------------------------
@rule
class ErrorTaxonomyRule(Rule):
    """Raises escaping the serving/codec core stay typed; no blanket
    ``except Exception`` swallows.

    The static face of the :class:`~repro.routing.serving.ServingError`
    hierarchy: a future RPC boundary can only translate failures it can
    *name*, so the serving and codec modules must raise the typed
    hierarchy (``ServingError``/``ShardCodecError`` subclasses — or
    ``ValueError`` for caller-side API misuse that never crosses the
    wire), never bare ``Exception``/``RuntimeError``/``OSError``.
    Symmetrically, a broad ``except Exception`` handler in these modules
    hides exactly the failures the hierarchy exists to surface — it is
    only legal when it re-raises.
    """

    id = "ERR001"
    title = (
        "serving/codec raises use the typed error hierarchy; broad "
        "excepts must re-raise"
    )
    paths = (
        "routing/serving.py",
        "routing/faults.py",
        "routing/shard_codec.py",
        "eval/validation.py",
        # every cluster module crosses the RPC boundary: untyped raises
        # there cannot be re-raised typed client-side
        "repro/cluster/",
        # the native tier's load/build/execute failures must stay the
        # NativeError hierarchy — REPRO_KERNEL=native surfaces them to
        # callers who dispatch on the type
        "repro/native/",
    )

    #: raising these crosses the boundary untyped
    _BANNED_RAISES = frozenset(
        {
            "Exception",
            "BaseException",
            "RuntimeError",
            "OSError",
            "IOError",
            "EnvironmentError",
            "FileNotFoundError",
            "PermissionError",
            "KeyError",
            "IndexError",
            "LookupError",
            "TypeError",
            "AttributeError",
        }
    )

    def check(
        self, tree: ast.Module, source: str, relpath: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        local_classes = {
            node.name
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        }
        for node in ast.walk(tree):
            if isinstance(node, ast.Raise):
                findings.extend(
                    self._check_raise(relpath, node, local_classes)
                )
            elif isinstance(node, ast.ExceptHandler):
                findings.extend(self._check_handler(relpath, node))
        return findings

    def _check_raise(
        self, relpath: str, node: ast.Raise, local_classes: Set[str]
    ) -> Iterator[Finding]:
        exc = node.exc
        if exc is None:
            return  # bare re-raise
        if isinstance(exc, ast.Call):
            exc = exc.func
        if not isinstance(exc, ast.Name):
            return  # dynamic/attribute raise: out of static reach
        name = exc.id
        if name in local_classes:
            return  # module-defined (typed) exception
        if name in self._BANNED_RAISES:
            yield self.finding(
                relpath,
                node,
                f"raise {name} crosses the serving boundary untyped — "
                f"raise a ServingError/ShardCodecError subclass so a "
                f"remote caller can translate the failure",
            )

    def _check_handler(
        self, relpath: str, node: ast.ExceptHandler
    ) -> Iterator[Finding]:
        broad = node.type is None or (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
        )
        if not broad:
            return
        for child in ast.walk(node):
            if isinstance(child, ast.Raise) and child.exc is None:
                return  # cleanup-and-reraise is fine
        caught = (
            "bare except"
            if node.type is None
            else f"except {node.type.id}"  # type: ignore[union-attr]
        )
        yield self.finding(
            relpath,
            node,
            f"{caught} swallows the typed error hierarchy — catch "
            f"(ServingError, ShardCodecError, ...) explicitly, or "
            f"re-raise from a narrow fallback",
        )


# ----------------------------------------------------------------------
# RES001 — resource hygiene
# ----------------------------------------------------------------------
@rule
class ResourceHygieneRule(Rule):
    """Every raw OS resource in ``routing/`` / ``graph/parallel.py`` /
    ``native/`` has an owner.

    The static face of the ``pytest.ini`` ResourceWarning escalation:
    a raw handle — ``open()``, ``mmap.mmap()``, and since the parallel
    tier also ``multiprocessing.shared_memory.SharedMemory`` segments
    and process pools (``ProcessPoolExecutor`` / ``Pool``) — is legal
    only when (a) it is the context expression of a ``with`` block, or
    (b) it is created inside a class that defines ``close()`` (the
    ``DirectIO``/``SharedCSR`` discipline — something owns the
    resource's lifetime and the leak tests can see it).  Shared-memory
    segments leak *kernel* objects in ``/dev/shm``, not just fds, so an
    unowned one outlives the process.  The native tier adds two more
    raw-resource kinds: ``ctypes.CDLL`` handles (a loaded library stays
    mapped until the handle dies — ``NativeKernels`` owns it behind
    ``close()``) and compile temporary directories
    (``TemporaryDirectory``/``mkdtemp`` — an unowned one strands build
    litter in the kernel cache dir on every crashed compile).
    """

    id = "RES001"
    title = (
        "open()/mmap/SharedMemory/pools/CDLL/tempdirs in routing/, "
        "graph/parallel and native/ are owned by a with-block or a "
        "close()-bearing class"
    )
    paths = (
        "repro/routing/",
        "repro/graph/parallel.py",
        "repro/native/",
    )

    #: dotted spellings of calls that create a raw OS resource
    _TARGETS = (
        "open",
        "mmap.mmap",
        "SharedMemory",
        "shared_memory.SharedMemory",
        "multiprocessing.shared_memory.SharedMemory",
        "Pool",
        "multiprocessing.Pool",
        "ProcessPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "futures.ProcessPoolExecutor",
        "CDLL",
        "ctypes.CDLL",
        "TemporaryDirectory",
        "tempfile.TemporaryDirectory",
        "mkdtemp",
        "tempfile.mkdtemp",
    )

    def check(
        self, tree: ast.Module, source: str, relpath: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        in_with: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for child in ast.walk(item.context_expr):
                        in_with.add(id(child))
        self._scan(tree, relpath, in_with, owns_close=False, out=findings)
        return findings

    def _scan(
        self,
        node: ast.AST,
        relpath: str,
        in_with: Set[int],
        owns_close: bool,
        out: List[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            owns = owns_close
            if isinstance(child, ast.ClassDef):
                owns = any(
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "close"
                    for item in child.body
                )
            if isinstance(child, ast.Call):
                target = _dotted_name(child.func)
                if target in self._TARGETS and not (
                    id(child) in in_with or owns
                ):
                    out.append(
                        self.finding(
                            relpath,
                            child,
                            f"{target}() outside a with-block in a class "
                            f"without close() — nothing owns this "
                            f"resource's lifetime (the DirectIO/"
                            f"SharedCSR seam or a context manager must)",
                        )
                    )
            self._scan(child, relpath, in_with, owns, out)


# ----------------------------------------------------------------------
# GEN001 — generation-stamp discipline
# ----------------------------------------------------------------------
@rule
class StampDisciplineRule(Rule):
    """Identity-keyed caches must consult generation/version stamps.

    Substrate artifacts are shared across schemes on the strength of
    the generation stamps (:mod:`repro.api.substrate`): a cache keyed
    by object identity (``id(obj)``) outlives mutation *and* id reuse
    after garbage collection unless it also checks a stamp
    (``generation`` / ``_version`` / ``substrate_stamp``).  Likewise
    ``functools.lru_cache`` on a *method* keys the instance by
    equality/identity with no stamp at all (and pins it alive) — both
    are exactly how stale-artifact bugs are born.
    """

    id = "GEN001"
    title = (
        "id()-keyed caches check a generation/version stamp; no "
        "lru_cache on methods"
    )
    paths = ("repro/",)

    _STAMPS = frozenset(
        {"generation", "_version", "version", "substrate_stamp"}
    )
    _CACHE_DECOS = frozenset(
        {"lru_cache", "cache", "functools.lru_cache", "functools.cache"}
    )

    def check(
        self, tree: ast.Module, source: str, relpath: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        findings.extend(
                            self._check_decorators(relpath, node, item)
                        )
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_id_keys(relpath, node))
        return findings

    def _check_decorators(
        self,
        relpath: str,
        cls: ast.ClassDef,
        method: ast.FunctionDef,
    ) -> Iterator[Finding]:
        for deco in method.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _dotted_name(target)
            if name in self._CACHE_DECOS:
                yield self.finding(
                    relpath,
                    deco,
                    f"functools caching on method "
                    f"{cls.name}.{method.name} keys (and pins) self with "
                    f"no generation stamp — memoize onto the instance "
                    f"behind a stamp check instead",
                )

    def _check_id_keys(
        self, relpath: str, fn: ast.FunctionDef
    ) -> Iterator[Finding]:
        id_key_nodes = [
            node
            for node in ast.walk(fn)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and self._in_key_position(fn, node)
        ]
        if not id_key_nodes:
            return
        if self._mentions_stamp(fn):
            return
        yield self.finding(
            relpath,
            id_key_nodes[0],
            f"{fn.name} caches by object identity (id(...) key) without "
            f"consulting a generation/version stamp — ids are reused "
            f"after garbage collection and mutation invalidates nothing",
        )

    def _in_key_position(self, fn: ast.FunctionDef, call: ast.Call) -> bool:
        """Whether the ``id(...)`` call is used as a subscript key or a
        ``.get``/``.setdefault``/``.pop`` argument anywhere in ``fn``."""
        for node in ast.walk(fn):
            if isinstance(node, ast.Subscript):
                for child in ast.walk(node.slice):
                    if child is call:
                        return True
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("get", "setdefault", "pop")
            ):
                for arg in node.args:
                    for child in ast.walk(arg):
                        if child is call:
                            return True
        return False

    def _mentions_stamp(self, fn: ast.FunctionDef) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and node.id in self._STAMPS:
                return True
            if isinstance(node, ast.Attribute) and node.attr in self._STAMPS:
                return True
            if isinstance(node, ast.Constant) and node.value in self._STAMPS:
                return True
        return False


# ----------------------------------------------------------------------
# CODEC001 — codec layout audit
# ----------------------------------------------------------------------
@rule
class CodecLayoutRule(Rule):
    """Wire constants and struct formats match the declared layout table.

    The codecs' magic bytes, format versions, tag bytes and ``struct``
    formats are the on-disk/wire contract; the single source of truth is
    :data:`repro.analysis.layouts.DECLARED_LAYOUTS`.  This rule verifies
    every declared module-level constant still holds exactly its
    declared value, that none went missing, and that no *undeclared*
    literal struct format sneaks into a ``struct`` call — the static
    companion of the codec fuzz/rejection suites, which can only prove
    the implemented format is self-consistent, not that it is still the
    format we committed to.

    The native C scanner mirrors the same wire layout, so the rule also
    runs in text mode over declared ``.c`` files: every layout constant
    must appear as a ``#define NAME <int>`` with exactly the declared
    value — Python codec and C scanner can then only drift from the
    committed format together with the reviewable table, never apart.
    """

    id = "CODEC001"
    title = (
        "codec magic/version constants and struct formats match the "
        "declared layout table"
    )
    paths = tuple(DECLARED_LAYOUTS)

    _STRUCT_FNS = frozenset(
        {
            "struct.Struct",
            "struct.pack",
            "struct.unpack",
            "struct.pack_into",
            "struct.unpack_from",
            "struct.iter_unpack",
            "struct.calcsize",
            "Struct",
        }
    )

    #: ``#define NAME <integer literal>`` (hex or decimal) in a C source
    _C_DEFINE = re.compile(
        r"^\s*#\s*define\s+(?P<name>\w+)\s+"
        r"(?P<value>0[xX][0-9a-fA-F]+|\d+)\s*(?:/\*|//|$)"
    )

    def _layout_for(self, relpath: str) -> Optional[dict]:
        norm = relpath.replace("\\", "/")
        for key, declared in DECLARED_LAYOUTS.items():
            if norm == key or norm.endswith("/" + key):
                return declared
        return None

    def check_text(self, source: str, relpath: str) -> List[Finding]:
        """The C-file face of the rule: audit ``#define`` constants."""
        layout = self._layout_for(relpath)
        if layout is None:
            return []
        constants = dict(layout.get("constants", {}))
        findings: List[Finding] = []
        seen: Set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = self._C_DEFINE.match(text)
            if match is None:
                continue
            name = match.group("name")
            if name not in constants:
                continue
            seen.add(name)
            actual = int(match.group("value"), 0)
            if actual != constants[name]:
                findings.append(
                    Finding(
                        file=relpath,
                        line=lineno,
                        col=1,
                        rule=self.id,
                        message=(
                            f"#define {name} {match.group('value')} "
                            f"disagrees with the declared layout table "
                            f"({constants[name]!r}) — update "
                            f"repro/analysis/layouts.py in the same "
                            f"change as the wire format, or revert"
                        ),
                    )
                )
        for name in sorted(set(constants) - seen):
            findings.append(
                Finding(
                    file=relpath,
                    line=1,
                    col=1,
                    rule=self.id,
                    message=(
                        f"declared layout constant {name} has no "
                        f"#define in this C source — the layout table "
                        f"and the native scanner have drifted apart"
                    ),
                )
            )
        return findings

    def check(
        self, tree: ast.Module, source: str, relpath: str
    ) -> List[Finding]:
        layout = self._layout_for(relpath)
        if layout is None:
            return []
        findings: List[Finding] = []
        constants = dict(layout.get("constants", {}))
        structs = dict(layout.get("structs", {}))
        declared_formats = set(structs.values())
        seen: Set[str] = set()
        aliases = _import_aliases(tree)

        for node in tree.body:
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                continue
            name = node.targets[0].id
            if name in constants:
                seen.add(name)
                expected = constants[name]
                actual = self._const_value(node.value)
                if actual != expected:
                    findings.append(
                        self._mismatch(
                            relpath, node.value, name, expected, actual
                        )
                    )
            elif name in structs:
                seen.add(name)
                fmt = self._struct_format(node.value, aliases)
                if fmt != structs[name]:
                    findings.append(
                        self._mismatch(
                            relpath, node.value, name, structs[name], fmt
                        )
                    )
        for name in sorted((set(constants) | set(structs)) - seen):
            findings.append(
                Finding(
                    file=relpath,
                    line=1,
                    col=1,
                    rule=self.id,
                    message=(
                        f"declared layout constant {name} has no "
                        f"module-level assignment — the layout table "
                        f"and the codec have drifted apart"
                    ),
                )
            )
        findings.extend(
            self._check_inline_formats(
                tree, relpath, declared_formats, aliases
            )
        )
        return findings

    def _mismatch(
        self,
        relpath: str,
        node: ast.AST,
        name: str,
        expected: object,
        actual: object,
    ) -> Finding:
        return Finding(
            file=relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=(
                f"{name} = {actual!r} disagrees with the declared "
                f"layout table ({expected!r}) — update "
                f"repro/analysis/layouts.py in the same change as the "
                f"wire format, or revert"
            ),
        )

    def _const_value(self, node: ast.AST):
        if isinstance(node, ast.Constant):
            return node.value
        return ast.dump(node)

    def _struct_format(
        self, node: ast.AST, aliases: Dict[str, str]
    ) -> Optional[str]:
        if (
            isinstance(node, ast.Call)
            and _resolve(_dotted_name(node.func) or "", aliases)
            == "struct.Struct"
            and node.args
            and isinstance(node.args[0], ast.Constant)
        ):
            value = node.args[0].value
            return value if isinstance(value, str) else None
        return None

    def _check_inline_formats(
        self,
        tree: ast.Module,
        relpath: str,
        declared_formats: Set[str],
        aliases: Dict[str, str],
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve(_dotted_name(node.func) or "", aliases)
            if target not in self._STRUCT_FNS:
                continue
            if not (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            fmt = node.args[0].value
            if fmt not in declared_formats:
                yield Finding(
                    file=relpath,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule=self.id,
                    message=(
                        f"struct format {fmt!r} is not in the declared "
                        f"layout table — every wire format must be "
                        f"declared in repro/analysis/layouts.py"
                    ),
                )
