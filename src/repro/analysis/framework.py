"""Rule registry, per-file dispatch, suppressions and finding output.

A *rule* is a named checker over one parsed module: it receives the AST,
the source text and a repository-relative path, and returns
:class:`Finding` objects.  The framework owns everything rules should
not reimplement:

* **registration** — subclass :class:`Rule` and decorate with
  :func:`rule`; the registry is what the CLI's ``--select`` filters and
  ``--list-rules`` prints,
* **scoping** — a rule declares path prefixes/suffixes
  (:attr:`Rule.paths`) and :meth:`Rule.applies_to` keeps it off modules
  it was never written for,
* **suppressions** — a finding whose source line carries ``# repro:
  noqa`` (all rules) or ``# repro: noqa LK001`` / ``LK001,DET001``
  (specific rules) is dropped, and the framework records how many were
  suppressed so a self-scan can assert "zero *unsuppressed* findings"
  honestly,
* **output** — :func:`format_findings` renders the human report;
  ``Finding.to_dict()`` is the machine shape (``file, line, col, rule,
  message``) the ``--json`` mode emits for CI diffing.

Rules never crash a run: a file that fails to parse becomes a single
``PARSE`` finding, and everything else keeps scanning.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

__all__ = [
    "AnalysisError",
    "Finding",
    "Rule",
    "rule",
    "all_rules",
    "analyze_source",
    "analyze_paths",
    "iter_python_files",
    "format_findings",
]


class AnalysisError(ValueError):
    """Misuse of the analysis framework itself (unknown rule, bad path)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    file: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        """The machine-readable shape ``--json`` emits."""
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.file}:{self.line}:{self.col}: {self.rule} {self.message}"


class Rule:
    """Base class every checker extends.

    Class attributes:

    ``id``
        Stable rule identifier (``LK001`` ...), what suppressions and
        ``--select`` name.
    ``title``
        One-line invariant statement for ``--list-rules``.
    ``paths``
        Path fragments scoping the rule: a fragment ending in ``/``
        matches any file under that package directory, anything else
        must match the file's repo-relative suffix exactly.  Empty
        means "every file".
    """

    id: str = "RULE"
    title: str = ""
    paths: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if not self.paths:
            return True
        norm = relpath.replace(os.sep, "/")
        for fragment in self.paths:
            if fragment.endswith("/"):
                if f"/{fragment}" in f"/{norm}" or norm.startswith(fragment):
                    return True
            elif norm == fragment or norm.endswith("/" + fragment):
                return True
        return False

    def check(
        self, tree: ast.Module, source: str, relpath: str
    ) -> List[Finding]:
        raise NotImplementedError

    def check_text(self, source: str, relpath: str) -> List[Finding]:
        """Text-mode checker for non-Python sources (C files).

        The framework routes ``.c`` files here instead of :meth:`check`
        (there is no AST to hand over).  The default is "nothing to
        say", so pure-AST rules are automatically inert on C sources;
        a rule that audits C code overrides this.
        """
        return []

    # -- helpers shared by concrete rules ------------------------------
    def finding(
        self, relpath: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            file=relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a :class:`Rule` subclass."""
    instance = cls()
    if not instance.id or instance.id in _REGISTRY:
        raise AnalysisError(
            f"rule id {instance.id!r} is empty or already registered"
        )
    _REGISTRY[instance.id] = instance
    return cls


def all_rules() -> Dict[str, Rule]:
    """The registry, id -> rule instance (insertion-ordered)."""
    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
#: ``# repro: noqa`` or ``# repro: noqa LK001`` / ``LK001,DET001``;
#: C sources spell the comment ``// repro: noqa ...``
_NOQA = re.compile(
    r"(?:#|//)\s*repro:\s*noqa(?:\s+(?P<rules>[A-Z0-9_,\s]+?))?"
    r"\s*(?:#|//|—|-|$)"
)


def suppressions_for(source: str) -> Dict[int, Optional[frozenset]]:
    """``{line: suppressed rule ids or None meaning all}`` for a module."""
    out: Dict[int, Optional[frozenset]] = {}
    for i, text in enumerate(source.splitlines(), start=1):
        if "repro:" not in text:
            continue
        match = _NOQA.search(text)
        if match is None:
            continue
        names = match.group("rules")
        if names is None:
            out[i] = None
        else:
            ids = frozenset(
                name.strip() for name in names.split(",") if name.strip()
            )
            out[i] = ids if ids else None
    return out


def _suppressed(
    finding: Finding, table: Dict[int, Optional[frozenset]]
) -> bool:
    ids = table.get(finding.line, frozenset())
    if ids is None:  # bare noqa: every rule
        return True
    return finding.rule in ids


@dataclass
class FileReport:
    """Per-file outcome: surviving findings + suppression accounting."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0


def _select_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    if select is None:
        return list(_REGISTRY.values())
    chosen = []
    for rule_id in select:
        instance = _REGISTRY.get(rule_id)
        if instance is None:
            raise AnalysisError(
                f"unknown rule {rule_id!r} "
                f"(known: {', '.join(sorted(_REGISTRY))})"
            )
        chosen.append(instance)
    return chosen


def analyze_source(
    source: str,
    relpath: str,
    *,
    select: Optional[Sequence[str]] = None,
) -> FileReport:
    """Run every applicable rule over one module's source text.

    ``.c`` paths dispatch to each rule's :meth:`Rule.check_text` (no
    AST); everything else parses as Python and dispatches to
    :meth:`Rule.check`.  Suppression comments work identically in both
    modes (``# repro: noqa`` / ``// repro: noqa``).
    """
    report = FileReport(path=relpath)
    if relpath.endswith(".c"):
        table = suppressions_for(source)
        for instance in _select_rules(select):
            if not instance.applies_to(relpath):
                continue
            for finding in instance.check_text(source, relpath):
                if _suppressed(finding, table):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)
        report.findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return report
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                file=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="PARSE",
                message=f"file does not parse: {exc.msg}",
            )
        )
        return report
    table = suppressions_for(source)
    for instance in _select_rules(select):
        if not instance.applies_to(relpath):
            continue
        for finding in instance.check(tree, source, relpath):
            if _suppressed(finding, table):
                report.suppressed += 1
            else:
                report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return report


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` and ``.c`` file under ``paths`` (files pass
    through as-is; C sources go through the text-mode rule dispatch)."""
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                dirs[:] = [
                    d for d in dirs
                    if not d.startswith(".") and d != "__pycache__"
                ]
                for name in sorted(files):
                    if name.endswith((".py", ".c")):
                        yield os.path.join(root, name)
        else:
            raise AnalysisError(f"no such file or directory: {path!r}")


def _relpath_of(path: str) -> str:
    """Repo-relative path rules match against.

    Rules are scoped by package-relative fragments (``routing/``,
    ``repro/schemes/``); anchoring at the last ``repro`` component makes
    ``src/repro/routing/serving.py``, an installed tree, and a test's
    temporary copy all resolve to the same rule scope.
    """
    norm = os.path.normpath(path).replace(os.sep, "/")
    parts = norm.split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return norm


def analyze_paths(
    paths: Sequence[str],
    *,
    select: Optional[Sequence[str]] = None,
) -> List[FileReport]:
    """Analyze every Python file under ``paths``; one report per file."""
    reports = []
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        report = analyze_source(
            source, _relpath_of(path), select=select
        )
        report.path = _relpath_of(path)
        reports.append(report)
    return reports


def format_findings(reports: Iterable[FileReport]) -> str:
    """The human report: one line per finding plus a summary."""
    lines = []
    total = 0
    suppressed = 0
    files = 0
    for report in reports:
        files += 1
        suppressed += report.suppressed
        for finding in report.findings:
            lines.append(finding.render())
            total += 1
    lines.append(
        f"{total} finding{'s' if total != 1 else ''} in {files} files"
        + (f" ({suppressed} suppressed)" if suppressed else "")
    )
    return "\n".join(lines)
