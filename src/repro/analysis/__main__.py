"""CLI for the invariant linter: ``python -m repro.analysis [paths]``.

Exit status 0 means zero unsuppressed findings; 1 means findings; 2
means the invocation itself was wrong (unknown rule, missing path).
``--json`` emits the machine-readable findings list for CI diffing.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .framework import AnalysisError, all_rules, analyze_paths, format_findings

DEFAULT_PATHS = ("src/repro",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON list of {file, line, col, rule, message}",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def run(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, instance in all_rules().items():
            print(f"{rule_id}: {instance.title}")
        return 0
    try:
        reports = analyze_paths(args.paths, select=args.select)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings: List = [f for report in reports for f in report.findings]
    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        print(format_findings(reports))
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(run())
