"""Command-line entry point: ``python -m repro``.

Subcommands (all scheme names resolve through the ``repro.api`` registry):

* ``list-schemes`` — print every registered scheme spec (parameters,
  defaults, stretch bound, accepted graph classes),
* ``table1`` — regenerate the paper's Table 1 on a chosen topology,
  sharing one substrate (metric, ports, balls) across all five schemes,
* ``route`` — build one scheme and trace one message,
* ``validate`` — run the structural validation checklist on a scheme,
* ``save`` — build a scheme and persist its routing state to disk,
* ``load`` — restore a saved scheme (no preprocessing) and serve it.
"""

from __future__ import annotations

import argparse
import sys

from .api import (
    SchemeParamError,
    SubstrateCache,
    TABLE1_SCHEMES,
    all_specs,
    build,
    get_spec,
    load as load_session,
    scheme_names,
)
from .eval.reporting import table
from .eval.workloads import sample_pairs
from .graph.generators import (
    erdos_renyi,
    grid,
    preferential_attachment,
    random_geometric,
    with_random_weights,
)

FAMILIES = ["er", "grid", "ba", "geo"]


def _build_graph(family: str, n: int, seed: int, weighted: bool):
    if family == "er":
        g = erdos_renyi(n, 7.0 / max(n - 1, 1), seed=seed)
    elif family == "grid":
        side = max(2, int(round(n ** 0.5)))
        g = grid(side, side)
    elif family == "ba":
        g = preferential_attachment(n, 2, seed=seed)
    elif family == "geo":
        return random_geometric(n, 2.6 / n ** 0.5, seed=seed)
    else:
        raise SystemExit(f"unknown family {family!r}")
    if weighted:
        g = with_random_weights(g, seed=seed + 1, low=1.0, high=8.0)
    return g


def _build_session(name: str, n: int, family: str, seed: int):
    """Build one scheme on its preferred variant of the topology."""
    spec = get_spec(name)
    weighted = spec.prefers_weighted and family != "geo"
    g = _build_graph(family, n, seed, weighted)
    try:
        spec.check_graph(g)
    except SchemeParamError as exc:
        raise SystemExit(str(exc)) from None
    return build(name, g, seed=seed)


def cmd_list_schemes(args) -> int:
    rows = []
    for spec in all_specs():
        params = ", ".join(
            f"{p.name}={p.default}" for p in spec.params
        )
        graphs = "any" if spec.weighted_capable else "unweighted"
        rows.append([spec.name, spec.stretch, graphs, params])
    print(f"{len(rows)} registered schemes:")
    print(table(["name", "stretch", "graphs", "parameters"], rows))
    print("\ndetails:")
    for spec in all_specs():
        print(f"  {spec.name:<12} {spec.summary}")
    return 0


def _print_route(session, source: int, target: int) -> None:
    """Trace one message and print the path + measured stretch lines."""
    s = source % session.graph.n
    t = target % session.graph.n
    result = session.route(s, t)
    print(f"route {s} -> {t}: {' -> '.join(map(str, result.path))}")
    d = session.metric.d(s, t)
    if d > 0:
        print(
            f"length {result.length:.4f} vs optimal {d:.4f} "
            f"(stretch {result.length / d:.4f})"
        )


def cmd_route(args) -> int:
    session = _build_session(args.scheme, args.n, args.family, args.seed)
    print(f"{session.name} on {session.graph}")
    _print_route(session, args.source, args.target)
    return 0


def cmd_validate(args) -> int:
    session = _build_session(args.scheme, args.n, args.family, args.seed)
    result = session.validate(sample=args.pairs, seed=args.seed)
    print(f"{session.name} on {session.graph}")
    print(
        f"checked {result.checked_pairs} pairs: max stretch "
        f"{result.max_stretch:.4f}, max header {result.max_header_words} "
        f"words, max label {result.max_label_words} words"
    )
    if result.ok:
        print("validation: OK")
        return 0
    print("validation: FAILED")
    for problem in result.problems[:20]:
        print(f"  - {problem}")
    return 1


def cmd_table1(args) -> int:
    rows = []
    cache = SubstrateCache()
    graphs = {}  # one graph per (weighted?) variant, substrates shared
    substrate_seconds = 0.0
    scheme_seconds = 0.0
    for name in TABLE1_SCHEMES:
        spec = get_spec(name)
        weighted = spec.prefers_weighted and args.family != "geo"
        if not spec.weighted_capable:
            if args.family == "geo":
                continue  # geometric graphs are weighted
            weighted = False
        if weighted not in graphs:
            graphs[weighted] = _build_graph(
                args.family, args.n, args.seed, weighted
            )
        g = graphs[weighted]
        if not spec.weighted_capable and not g.is_unweighted():
            continue
        session = build(name, g, cache=cache, seed=args.seed)
        substrate_seconds += session.substrate_seconds
        scheme_seconds += session.build_seconds
        pairs = sample_pairs(g.n, args.pairs, seed=args.seed + 5)
        rep = session.measure(pairs)
        stats = session.stats()
        rows.append(
            f"{session.name:<26} max={rep.max_stretch:<7.3f} "
            f"avg={rep.avg_stretch:<7.3f} tbl-avg={stats.avg_table_words:<9.1f}"
        )
    print(f"Table 1 on family={args.family}, n={args.n}:")
    for row in rows:
        print("  " + row)
    print(
        f"  [substrate {substrate_seconds:.2f}s shared across "
        f"{len(rows)} schemes; scheme builds {scheme_seconds:.2f}s]"
    )
    return 0


def cmd_save(args) -> int:
    session = _build_session(args.scheme, args.n, args.family, args.seed)
    path = session.save(args.out)
    stats = session.stats()
    print(f"{session.name} on {session.graph}")
    print(
        f"saved to {path} ({stats.total_table_words} table words, "
        f"built in {session.build_seconds:.2f}s)"
    )
    return 0


def cmd_load(args) -> int:
    try:
        session = load_session(args.path)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"cannot load {args.path!r}: {exc}") from None
    print(f"loaded {session.name} [{session.spec_name}] on {session.graph}")
    if args.measure:
        rep = session.measure(count=args.measure, seed=args.seed)
        print(
            f"measured {args.measure} pairs: max stretch "
            f"{rep.max_stretch:.4f}, avg {rep.avg_stretch:.4f}"
        )
        return 0
    _print_route(session, args.source, args.target)
    return 0


def _add_build_args(parser, *, default_scheme: str = "thm11") -> None:
    parser.add_argument(
        "--scheme", default=default_scheme, choices=scheme_names()
    )
    parser.add_argument("--family", default="er", choices=FAMILIES)
    parser.add_argument("--n", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list-schemes", help="print the scheme registry"
    )
    p_list.set_defaults(func=cmd_list_schemes)

    p_route = sub.add_parser("route", help="trace one message")
    _add_build_args(p_route)
    p_route.add_argument("--source", type=int, default=0)
    p_route.add_argument("--target", type=int, default=42)
    p_route.set_defaults(func=cmd_route)

    p_val = sub.add_parser("validate", help="structural validation")
    _add_build_args(p_val)
    p_val.add_argument("--pairs", type=int, default=300)
    p_val.set_defaults(func=cmd_validate)

    p_t1 = sub.add_parser("table1", help="regenerate Table 1")
    p_t1.add_argument("--family", default="er", choices=FAMILIES)
    p_t1.add_argument("--n", type=int, default=250)
    p_t1.add_argument("--seed", type=int, default=0)
    p_t1.add_argument("--pairs", type=int, default=500)
    p_t1.set_defaults(func=cmd_table1)

    p_save = sub.add_parser(
        "save", help="build a scheme and persist its routing state"
    )
    _add_build_args(p_save)
    p_save.add_argument("--out", required=True, help="output JSON path")
    p_save.set_defaults(func=cmd_save)

    p_load = sub.add_parser(
        "load", help="restore a saved scheme and serve it"
    )
    p_load.add_argument("path", help="session JSON written by `save`")
    p_load.add_argument("--source", type=int, default=0)
    p_load.add_argument("--target", type=int, default=42)
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument(
        "--measure", type=int, default=0, metavar="PAIRS",
        help="measure stretch over PAIRS sampled pairs instead of routing",
    )
    p_load.set_defaults(func=cmd_load)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
