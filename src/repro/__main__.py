"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``table1`` — regenerate the paper's Table 1 on a chosen topology
  (thin wrapper around ``examples/compare_schemes.py`` logic),
* ``route`` — build one scheme and trace one message,
* ``validate`` — run the structural validation checklist on a scheme.
"""

from __future__ import annotations

import argparse
import sys

from .baselines.thorup_zwick import ThorupZwickScheme
from .eval.validation import validate_scheme
from .eval.workloads import sample_pairs
from .graph.generators import (
    erdos_renyi,
    grid,
    preferential_attachment,
    random_geometric,
    with_random_weights,
)
from .graph.metric import MetricView
from .routing import measure_stretch, route
from .schemes import (
    NameIndependent3Eps,
    Stretch2Plus1Scheme,
    Stretch4kMinus7Scheme,
    Stretch5PlusScheme,
    Warmup3Scheme,
)

SCHEMES = {
    "thm10": (Stretch2Plus1Scheme, {"eps": 0.5}, False),
    "thm11": (Stretch5PlusScheme, {"eps": 0.6}, True),
    "thm16": (Stretch4kMinus7Scheme, {"k": 4, "eps": 1.0}, True),
    "warmup3": (Warmup3Scheme, {"eps": 0.5}, True),
    "name-indep": (NameIndependent3Eps, {"eps": 0.5}, True),
    "tz2": (ThorupZwickScheme, {"k": 2}, True),
    "tz3": (ThorupZwickScheme, {"k": 3}, True),
}

FAMILIES = ["er", "grid", "ba", "geo"]


def _build_graph(family: str, n: int, seed: int, weighted: bool):
    if family == "er":
        g = erdos_renyi(n, 7.0 / max(n - 1, 1), seed=seed)
    elif family == "grid":
        side = max(2, int(round(n ** 0.5)))
        g = grid(side, side)
    elif family == "ba":
        g = preferential_attachment(n, 2, seed=seed)
    elif family == "geo":
        return random_geometric(n, 2.6 / n ** 0.5, seed=seed)
    else:
        raise SystemExit(f"unknown family {family!r}")
    if weighted:
        g = with_random_weights(g, seed=seed + 1, low=1.0, high=8.0)
    return g


def _make_scheme(name: str, n: int, family: str, seed: int):
    if name not in SCHEMES:
        raise SystemExit(
            f"unknown scheme {name!r}; choose from {sorted(SCHEMES)}"
        )
    factory, kwargs, weighted = SCHEMES[name]
    if name == "thm10" and family == "geo":
        raise SystemExit("thm10 is unweighted-only; pick er/grid/ba")
    g = _build_graph(family, n, seed, weighted and family != "geo")
    metric = MetricView(g)
    scheme = factory(g, metric=metric, seed=seed, **kwargs)
    return g, metric, scheme


def cmd_route(args) -> int:
    g, metric, scheme = _make_scheme(args.scheme, args.n, args.family, args.seed)
    s = args.source % g.n
    t = args.target % g.n
    result = route(scheme, s, t)
    print(f"{scheme.name} on {g}")
    print(f"route {s} -> {t}: {' -> '.join(map(str, result.path))}")
    d = metric.d(s, t)
    if d > 0:
        print(
            f"length {result.length:.4f} vs optimal {d:.4f} "
            f"(stretch {result.length / d:.4f})"
        )
    return 0


def cmd_validate(args) -> int:
    g, metric, scheme = _make_scheme(args.scheme, args.n, args.family, args.seed)
    result = validate_scheme(scheme, metric, sample=args.pairs, seed=args.seed)
    print(f"{scheme.name} on {g}")
    print(
        f"checked {result.checked_pairs} pairs: max stretch "
        f"{result.max_stretch:.4f}, max header {result.max_header_words} "
        f"words, max label {result.max_label_words} words"
    )
    if result.ok:
        print("validation: OK")
        return 0
    print("validation: FAILED")
    for problem in result.problems[:20]:
        print(f"  - {problem}")
    return 1


def cmd_table1(args) -> int:
    rows = []
    for name in ["thm10", "tz2", "tz3", "thm11", "thm16"]:
        factory, kwargs, weighted = SCHEMES[name]
        if name == "thm10" and args.family == "geo":
            continue
        g = _build_graph(
            args.family, args.n, args.seed, weighted and args.family != "geo"
        )
        if name == "thm10" and not g.is_unweighted():
            continue
        metric = MetricView(g)
        scheme = factory(g, metric=metric, seed=args.seed, **kwargs)
        pairs = sample_pairs(g.n, args.pairs, seed=args.seed + 5)
        bound = scheme.stretch_bound()
        alpha = bound[0] if isinstance(bound, tuple) else bound
        rep = measure_stretch(scheme, metric, pairs, multiplicative_slack=alpha)
        stats = scheme.stats()
        rows.append(
            f"{scheme.name:<26} max={rep.max_stretch:<7.3f} "
            f"avg={rep.avg_stretch:<7.3f} tbl-avg={stats.avg_table_words:<9.1f}"
        )
    print(f"Table 1 on family={args.family}, n={args.n}:")
    for row in rows:
        print("  " + row)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_route = sub.add_parser("route", help="trace one message")
    p_route.add_argument("--scheme", default="thm11", choices=sorted(SCHEMES))
    p_route.add_argument("--family", default="er", choices=FAMILIES)
    p_route.add_argument("--n", type=int, default=200)
    p_route.add_argument("--seed", type=int, default=0)
    p_route.add_argument("--source", type=int, default=0)
    p_route.add_argument("--target", type=int, default=42)
    p_route.set_defaults(func=cmd_route)

    p_val = sub.add_parser("validate", help="structural validation")
    p_val.add_argument("--scheme", default="thm11", choices=sorted(SCHEMES))
    p_val.add_argument("--family", default="er", choices=FAMILIES)
    p_val.add_argument("--n", type=int, default=200)
    p_val.add_argument("--seed", type=int, default=0)
    p_val.add_argument("--pairs", type=int, default=300)
    p_val.set_defaults(func=cmd_validate)

    p_t1 = sub.add_parser("table1", help="regenerate Table 1")
    p_t1.add_argument("--family", default="er", choices=FAMILIES)
    p_t1.add_argument("--n", type=int, default=250)
    p_t1.add_argument("--seed", type=int, default=0)
    p_t1.add_argument("--pairs", type=int, default=500)
    p_t1.set_defaults(func=cmd_table1)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
